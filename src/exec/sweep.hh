/**
 * @file
 * Deterministic sweep execution on top of exec::Pool.
 *
 * A sweep is a list of independent points (threshold values,
 * frequency steps, workloads, Monte Carlo seeds, ...), each mapped
 * to a result by a pure task function.  runSweep() shards the points
 * across the pool and returns the results in point order (ordered
 * reduction), so callers fold or print them exactly as a serial loop
 * would have.
 *
 * Every task receives a TaskContext carrying its own deterministic
 * RNG stream, derived from (sweep seed, point index) by splitmix64.
 * Tasks that need randomness must draw from that stream only; any
 * use of shared mutable RNG state would make results depend on the
 * schedule.  Under this contract the engine invariant holds:
 * `--jobs 1` and `--jobs N` produce bitwise-identical results.
 */

#ifndef VSGPU_EXEC_SWEEP_HH
#define VSGPU_EXEC_SWEEP_HH

#include <cstdint>
#include <vector>

#include "common/check.hh"
#include "common/random.hh"
#include "exec/pool.hh"

namespace vsgpu::exec
{

/** Per-task execution context handed to every sweep task. */
struct TaskContext
{
    /** Dense index of the point in the sweep (reduction order). */
    int index = 0;

    /** Stream seed for this task: splitmix64(sweepSeed, index). */
    std::uint64_t seed = 0;

    /** Deterministic RNG stream private to this task. */
    Rng rng{0};
};

/** splitmix64-style mix of a sweep seed and a task index. */
VSGPU_CONTRACT inline std::uint64_t
taskSeed(std::uint64_t sweepSeed, int index)
{
    VSGPU_REQUIRES(index >= 0, "negative sweep index ", index);
    std::uint64_t z =
        sweepSeed + 0x9e3779b97f4a7c15ull *
                        (static_cast<std::uint64_t>(index) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Run fn(point, ctx) for every point, sharded across @p pool, and
 * return the results in point order.
 *
 * @param pool      execution pool (jobs = pool.threads()).
 * @param points    sweep points; copied references stay valid for
 *                  the duration of the call.
 * @param sweepSeed base seed for the per-task RNG streams.
 * @param fn        task function: Result fn(const Point &,
 *                  TaskContext &).  Must not touch shared mutable
 *                  state; results must depend only on (point, ctx).
 */
template <typename Point, typename Fn>
auto
runSweep(Pool &pool, const std::vector<Point> &points,
         std::uint64_t sweepSeed, Fn &&fn)
    -> std::vector<decltype(fn(points.front(),
                               std::declval<TaskContext &>()))>
{
    using Result = decltype(fn(points.front(),
                               std::declval<TaskContext &>()));
    std::vector<Result> results(points.size());
    pool.parallelFor(
        static_cast<int>(points.size()), [&](int i) {
            TaskContext ctx;
            ctx.index = i;
            ctx.seed = taskSeed(sweepSeed, i);
            ctx.rng = Rng(ctx.seed);
            results[static_cast<std::size_t>(i)] =
                fn(points[static_cast<std::size_t>(i)], ctx);
        });
    return results;
}

/**
 * Convenience overload for index sweeps: fn(i, ctx) over [0, n).
 */
template <typename Fn>
auto
runIndexSweep(Pool &pool, int n, std::uint64_t sweepSeed, Fn &&fn)
    -> std::vector<decltype(fn(0, std::declval<TaskContext &>()))>
{
    using Result = decltype(fn(0, std::declval<TaskContext &>()));
    std::vector<Result> results(static_cast<std::size_t>(n));
    pool.parallelFor(n, [&](int i) {
        TaskContext ctx;
        ctx.index = i;
        ctx.seed = taskSeed(sweepSeed, i);
        ctx.rng = Rng(ctx.seed);
        results[static_cast<std::size_t>(i)] = fn(i, ctx);
    });
    return results;
}

/** Ordered fold over sweep results (explicit reduction helper). */
template <typename Result, typename Acc, typename Op>
Acc
foldOrdered(const std::vector<Result> &results, Acc acc, Op &&op)
{
    for (const Result &r : results)
        acc = op(std::move(acc), r);
    return acc;
}

} // namespace vsgpu::exec

#endif // VSGPU_EXEC_SWEEP_HH
