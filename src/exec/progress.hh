/**
 * @file
 * Per-task progress tracking for sweep/batch runs.
 *
 * A ProgressTracker plugs into exec::Pool via PoolHooks and records
 * one TaskRecord per completed task (batch number, task index, wall
 * milliseconds).  With live rendering enabled it also maintains a
 * single carriage-return stderr status line — completed/total,
 * percentage, mean task cost, and a wall-clock ETA — rate-limited so
 * even millisecond tasks cost nothing measurable.
 *
 * Determinism contract: wall timings are schedule-dependent, so the
 * records feed the scenario summary's optional diagnostics block and
 * the live line only — never results, never determinism-gated dumps.
 * The snapshot is sorted by (batch, task), so the record *ordering*
 * is stable across job counts even though the timings are not.
 */

#ifndef VSGPU_EXEC_PROGRESS_HH
#define VSGPU_EXEC_PROGRESS_HH

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/check.hh"
#include "exec/pool.hh"

namespace vsgpu::exec
{

/** One completed pool task (wall time is schedule-dependent). */
struct TaskRecord
{
    int batch = 0;  ///< parallelFor() batch number (0-based)
    int task = 0;   ///< task index within the batch
    double wallMs = 0.0; ///< wall-clock task duration
};

/**
 * Thread-safe progress sink for one or more sequential pool batches.
 */
class ProgressTracker
{
  public:
    /** @param live render a live \r status line on stderr. */
    explicit ProgressTracker(bool live = false);

    /** @return hooks bound to this tracker (install via setHooks). */
    PoolHooks hooks();

    /** Begin a batch of @p numTasks tasks. */
    void batchStart(int numTasks);

    /** Record one completed task (thread-safe). */
    void taskDone(int task, double wallMs);

    /** Finish: print the closing summary line when live. */
    void finish();

    /** Tasks completed across all batches so far. */
    int completed() const;

    /** Tasks announced across all batches so far. */
    int total() const;

    /** Snapshot of all records, sorted by (batch, task). */
    std::vector<TaskRecord> records() const;

  private:
    const bool live_;

    mutable std::mutex mutex_;
    std::vector<TaskRecord> records_ VSGPU_GUARDED_BY(mutex_);
    int batch_ VSGPU_GUARDED_BY(mutex_) = -1;
    int total_ VSGPU_GUARDED_BY(mutex_) = 0;
    int completed_ VSGPU_GUARDED_BY(mutex_) = 0;
    double wallMsSum_ VSGPU_GUARDED_BY(mutex_) = 0.0;
    std::int64_t startNs_ VSGPU_GUARDED_BY(mutex_) = 0;
    std::int64_t lastRenderNs_ VSGPU_GUARDED_BY(mutex_) = 0;
    bool lineOpen_ VSGPU_GUARDED_BY(mutex_) = false;
};

} // namespace vsgpu::exec

#endif // VSGPU_EXEC_PROGRESS_HH
