#include "exec/progress.hh"

#include <algorithm>
#include <cstdio>
#include <iostream> // vsgpu-lint: iostream-ok(live progress line writes straight to stderr, bypassing the pluggable log sink on purpose)

#include "obs/profile.hh"

namespace vsgpu::exec
{

namespace
{

/** Minimum wall time between live-line repaints (ns). */
constexpr std::int64_t renderPeriodNs = 100'000'000;

/** Paint the live \r status line from a locked snapshot.  Takes
 *  plain values so the guarded members are only read under mutex_
 *  in the callers. */
void
renderLine(int completed, int total, double wallMsSum,
           double elapsedSec)
{
    const double frac =
        total > 0 ? static_cast<double>(completed) /
                        static_cast<double>(total)
                  : 0.0;
    const double etaSec =
        completed > 0 ? elapsedSec *
                            static_cast<double>(total - completed) /
                            static_cast<double>(completed)
                      : 0.0;
    char line[160];
    std::snprintf(line, sizeof line,
                  "\r[exec] %d/%d tasks (%5.1f%%)  "
                  "avg %7.1f ms/task  eta %6.1f s   ",
                  completed, total, 100.0 * frac,
                  completed > 0
                      ? wallMsSum / static_cast<double>(completed)
                      : 0.0,
                  etaSec);
    std::cerr << line << std::flush; // vsgpu-lint: iostream-ok(live progress line writes straight to stderr, bypassing the pluggable log sink on purpose)
}

} // namespace

ProgressTracker::ProgressTracker(bool live)
    : live_(live)
{
}

PoolHooks
ProgressTracker::hooks()
{
    PoolHooks hooks;
    hooks.batchStart = [this](int numTasks) {
        batchStart(numTasks);
    };
    hooks.taskDone = [this](int task, double wallMs) {
        taskDone(task, wallMs);
    };
    return hooks;
}

void
ProgressTracker::batchStart(int numTasks)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++batch_;
    total_ += numTasks;
    if (startNs_ == 0)
        startNs_ = obs::profileNowNs();
}

void
ProgressTracker::taskDone(int task, double wallMs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(TaskRecord{batch_ < 0 ? 0 : batch_, task,
                                  wallMs});
    ++completed_;
    wallMsSum_ += wallMs;
    if (!live_)
        return;
    const std::int64_t now = obs::profileNowNs();
    if (completed_ < total_ &&
        now - lastRenderNs_ < renderPeriodNs) {
        return;
    }
    lastRenderNs_ = now;
    renderLine(completed_, total_, wallMsSum_,
               static_cast<double>(now - startNs_) * 1e-9);
    lineOpen_ = true;
}

void
ProgressTracker::finish()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!live_)
        return;
    if (completed_ > 0) {
        renderLine(completed_, total_, wallMsSum_,
                   static_cast<double>(obs::profileNowNs() -
                                       startNs_) *
                       1e-9);
        lineOpen_ = true;
    }
    if (lineOpen_) {
        std::cerr << "\n" << std::flush; // vsgpu-lint: iostream-ok(closing newline for the live stderr progress line)
        lineOpen_ = false;
    }
}

int
ProgressTracker::completed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
}

int
ProgressTracker::total() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
}

std::vector<TaskRecord>
ProgressTracker::records() const
{
    std::vector<TaskRecord> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out = records_;
    }
    std::sort(out.begin(), out.end(),
              [](const TaskRecord &a, const TaskRecord &b) {
                  return a.batch != b.batch ? a.batch < b.batch
                                            : a.task < b.task;
              });
    return out;
}

} // namespace vsgpu::exec
