#include "exec/pool.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/logging.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"

namespace vsgpu::exec
{

int
Pool::hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max(1, static_cast<int>(hw));
}

Pool::Pool(int threads)
    : threads_(threads > 0 ? threads : hardwareJobs())
{
    queues_.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    // Slot 0 belongs to the caller of parallelFor(); only the other
    // slots get a background thread.
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int slot = 1; slot < threads_; ++slot)
        workers_.emplace_back([this, slot] { workerMain(slot); });
}

Pool::~Pool()
{
    {
        std::lock_guard<std::mutex> lock(batchMutex_);
        shutdown_ = true;
    }
    batchStart_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
Pool::workerMain(int slot)
{
    std::uint64_t seenGeneration = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(batchMutex_);
            batchStart_.wait(lock, [&] {
                return shutdown_ || batchGeneration_ != seenGeneration;
            });
            if (shutdown_)
                return;
            seenGeneration = batchGeneration_;
            ++workersActive_;
        }
        drainBatch(slot);
        {
            std::lock_guard<std::mutex> lock(batchMutex_);
            --workersActive_;
        }
        batchDone_.notify_all();
    }
}

int
Pool::takeTask(int slot)
{
    // Own deque first: bottom (most recently assigned work, which
    // for the contiguous initial split keeps each worker inside its
    // own block of the sweep).
    {
        auto &own = *queues_[static_cast<std::size_t>(slot)];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            const int task = own.tasks.back();
            own.tasks.pop_back();
            return task;
        }
    }
    // Steal from the top of the other deques, scanning in a fixed
    // order starting after our own slot (deterministic scheduler
    // state; task results never depend on who ran what).
    for (int k = 1; k < threads_; ++k) {
        const int victim = (slot + k) % threads_;
        auto &queue = *queues_[static_cast<std::size_t>(victim)];
        std::lock_guard<std::mutex> lock(queue.mutex);
        if (!queue.tasks.empty()) {
            const int task = queue.tasks.front();
            queue.tasks.pop_front();
            steals_.fetch_add(1, std::memory_order_relaxed);
            return task;
        }
    }
    return -1;
}

void
Pool::drainBatch(int slot)
{
    for (;;) {
        const int task = takeTask(slot);
        if (task < 0)
            return;
        bool skip;
        {
            std::lock_guard<std::mutex> lock(batchMutex_);
            skip = cancelled_;
        }
        if (!skip) {
            try {
                const std::int64_t taskStartNs =
                    hooks_.taskDone ? obs::profileNowNs() : 0;
                {
                    obs::ScopedSpan span(obs::CatPool, "pool.task");
                    if (span.live())
                        span.setArg("task", std::to_string(task));
                    (*body_)(task);
                }
                tasksRun_.fetch_add(1, std::memory_order_relaxed);
                if (hooks_.taskDone) {
                    hooks_.taskDone(
                        task,
                        static_cast<double>(obs::profileNowNs() -
                                            taskStartNs) *
                            1e-6);
                }
            } catch (...) {
                std::lock_guard<std::mutex> lock(batchMutex_);
                if (!firstError_)
                    firstError_ = std::current_exception();
                cancelled_ = true;
            }
        }
        {
            std::lock_guard<std::mutex> lock(batchMutex_);
            --batchRemaining_;
        }
        batchDone_.notify_all();
    }
}

VSGPU_CONTRACT void
Pool::parallelFor(int numTasks, const std::function<void(int)> &body)
{
    VSGPU_REQUIRES(numTasks >= 0, "negative task count ", numTasks);
    VSGPU_REQUIRES(static_cast<bool>(body), "null task body");
    if (numTasks == 0)
        return;

    if (hooks_.batchStart)
        hooks_.batchStart(numTasks);

    if (threads_ == 1) {
        // Inline fast path: no threads, no locks — the determinism
        // baseline every parallel run is measured against.
        for (int i = 0; i < numTasks; ++i) {
            const std::int64_t taskStartNs =
                hooks_.taskDone ? obs::profileNowNs() : 0;
            {
                obs::ScopedSpan span(obs::CatPool, "pool.task");
                if (span.live())
                    span.setArg("task", std::to_string(i));
                body(i);
            }
            tasksRun_.fetch_add(1, std::memory_order_relaxed);
            if (hooks_.taskDone) {
                hooks_.taskDone(
                    i, static_cast<double>(obs::profileNowNs() -
                                           taskStartNs) *
                           1e-6);
            }
        }
        return;
    }

    {
        std::lock_guard<std::mutex> lock(batchMutex_);
        panicIfNot(body_ == nullptr,
                   "Pool::parallelFor is not reentrant");
        body_ = &body;
        firstError_ = nullptr;
        cancelled_ = false;
        batchRemaining_ = numTasks;
        // Contiguous initial split: slot s owns indices
        // [s*n/k, (s+1)*n/k); stealing rebalances from the far end.
        for (int slot = 0; slot < threads_; ++slot) {
            const int lo = static_cast<int>(
                static_cast<long long>(numTasks) * slot / threads_);
            const int hi = static_cast<int>(
                static_cast<long long>(numTasks) * (slot + 1) /
                threads_);
            auto &queue = *queues_[static_cast<std::size_t>(slot)];
            std::lock_guard<std::mutex> qlock(queue.mutex);
            for (int i = lo; i < hi; ++i)
                queue.tasks.push_back(i);
        }
        ++batchGeneration_;
    }
    batchStart_.notify_all();

    drainBatch(0);

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(batchMutex_);
        batchDone_.wait(lock, [&] {
            return batchRemaining_ == 0 && workersActive_ == 0;
        });
        error = firstError_;
        firstError_ = nullptr;
        body_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace vsgpu::exec
