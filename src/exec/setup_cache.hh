/**
 * @file
 * Thread-safe memoization of per-configuration electrical setup.
 *
 * A sweep typically runs many workload / controller variations
 * against a handful of electrical configurations.  The expensive,
 * workload-independent part of each run — building the PDN netlist,
 * sizing the CR-IVR, LU-solving the DC operating point, and (for
 * impedance studies) factoring the complex MNA system per frequency —
 * depends only on the electrical configuration, so the cache computes
 * it once per distinct configuration and hands every run a shared
 * immutable PdsSetup.
 *
 * Concurrency contract: the first caller of a key builds the value;
 * concurrent callers of the same key block on a shared_future until
 * it is ready; callers of distinct keys build concurrently (the map
 * mutex is only held to look up / insert the future, never during
 * the build).  Results are bitwise-identical to building privately,
 * so cached and uncached sweeps produce identical metrics.
 */

#ifndef VSGPU_EXEC_SETUP_CACHE_HH
#define VSGPU_EXEC_SETUP_CACHE_HH

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.hh"
#include "pdn/impedance.hh"
#include "sim/cosim.hh"
#include "sim/pds_setup.hh"

namespace vsgpu::exec
{

/**
 * Memoizes buildPdsSetup() by pdsSetupKey() and impedance sweeps by
 * configuration + frequency grid.  Safe to share across all worker
 * threads of a sweep; typically one cache lives for the duration of
 * one bench / test binary.
 */
class SetupCache
{
  public:
    SetupCache() = default;
    SetupCache(const SetupCache &) = delete;
    SetupCache &operator=(const SetupCache &) = delete;

    /**
     * @return the shared setup for cfg's electrical configuration,
     * building it on first use.  Rethrows the build error (and
     * forgets the entry) if construction failed.
     */
    std::shared_ptr<const PdsSetup> setupFor(const CosimConfig &cfg);

    /**
     * Convenience: copy cfg with its setup field pointing at the
     * cached shared setup.
     */
    CosimConfig withSetup(const CosimConfig &cfg);

    /**
     * Memoized effective-impedance sweep over a voltage-stacked
     * configuration (panics if cfg is not stacked).  The underlying
     * AC factorizations are shared across the four impedance
     * components per frequency (ImpedanceAnalyzer::sweepPoint) and
     * the whole sweep result is reused across repeated calls.
     */
    std::shared_ptr<const std::vector<ImpedancePoint>>
    impedanceSweep(const CosimConfig &cfg,
                   const std::vector<Hertz> &freqs);

    /** @return number of setups actually built (not cache hits). */
    int setupsBuilt() const;

    /** @return number of setupFor() calls answered from the cache. */
    int setupHits() const;

    /**
     * @return every distinct pdsSetupKey this cache has seen, in
     * map order (deterministic).  Feeds the run-manifest config
     * fingerprint: the set of keys identifies the electrical
     * configurations a sweep actually touched.
     */
    std::vector<std::string> cachedKeys() const;

  private:
    template <typename V, typename Build>
    std::shared_ptr<const V>
    getOrBuild(std::map<std::string, std::shared_future<
                   std::shared_ptr<const V>>> &map,
               const std::string &key, Build &&build, bool *hit);

    mutable std::mutex mutex_;
    std::map<std::string,
             std::shared_future<std::shared_ptr<const PdsSetup>>>
        setups_ VSGPU_GUARDED_BY(mutex_);
    std::map<std::string,
             std::shared_future<
                 std::shared_ptr<const std::vector<ImpedancePoint>>>>
        impedances_ VSGPU_GUARDED_BY(mutex_);
    int setupsBuilt_ VSGPU_GUARDED_BY(mutex_) = 0;
    int setupHits_ VSGPU_GUARDED_BY(mutex_) = 0;
};

} // namespace vsgpu::exec

#endif // VSGPU_EXEC_SETUP_CACHE_HH
