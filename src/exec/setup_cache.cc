#include "exec/setup_cache.hh"

#include <cstring>
#include <utility>

#include "common/check.hh"
#include "obs/trace.hh"

namespace vsgpu::exec
{

template <typename V, typename Build>
std::shared_ptr<const V>
SetupCache::getOrBuild(
    std::map<std::string,
             std::shared_future<std::shared_ptr<const V>>> &map,
    const std::string &key, Build &&build, bool *hit)
{
    std::promise<std::shared_ptr<const V>> promise;
    std::shared_future<std::shared_ptr<const V>> future;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map.find(key);
        if (it != map.end()) {
            *hit = true;
            future = it->second;
        } else {
            *hit = false;
            future = promise.get_future().share();
            map.emplace(key, future);
        }
    }
    if (*hit)
        return future.get();

    // Build outside the lock so distinct keys build concurrently.
    try {
        promise.set_value(build());
    } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex_);
        map.erase(key); // let a later caller retry
    }
    return future.get();
}

std::shared_ptr<const PdsSetup>
SetupCache::setupFor(const CosimConfig &cfg)
{
    bool hit = false;
    auto setup = getOrBuild(
        setups_, pdsSetupKey(cfg), // vsgpu-lint: lock-ok(reference only; getOrBuild takes mutex_ for every map access)
        [&cfg] {
            VSGPU_TRACE_SCOPE(obs::CatPhase, "setup.build_pds");
            return buildPdsSetup(cfg);
        },
        &hit);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (hit)
            ++setupHits_;
        else
            ++setupsBuilt_;
    }
    return setup;
}

CosimConfig
SetupCache::withSetup(const CosimConfig &cfg)
{
    CosimConfig out = cfg;
    out.setup = setupFor(cfg);
    return out;
}

std::shared_ptr<const std::vector<ImpedancePoint>>
SetupCache::impedanceSweep(const CosimConfig &cfg,
                           const std::vector<Hertz> &freqs)
{
    std::shared_ptr<const PdsSetup> setup = setupFor(cfg);
    panicIfNot(setup->stacked && setup->vs,
               "impedance sweep requires a voltage-stacked PDS");

    std::string key = setup->key;
    for (Hertz f : freqs) {
        const double hz = f.raw(); // vsgpu-lint: raw-escape-ok(cache-key byte serialization)
        char bytes[sizeof(double)];
        std::memcpy(bytes, &hz, sizeof(double));
        key.append(bytes, sizeof(double));
    }

    bool hit = false;
    return getOrBuild(
        impedances_, key, // vsgpu-lint: lock-ok(reference only; getOrBuild takes mutex_ for every map access)
        [&] {
            VSGPU_TRACE_SCOPE(obs::CatPhase, "setup.ac_scan");
            ImpedanceAnalyzer analyzer(*setup->vs);
            return std::make_shared<
                const std::vector<ImpedancePoint>>(
                analyzer.sweep(freqs));
        },
        &hit);
}

int
SetupCache::setupsBuilt() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return setupsBuilt_;
}

int
SetupCache::setupHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return setupHits_;
}

std::vector<std::string>
SetupCache::cachedKeys() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> keys;
    keys.reserve(setups_.size());
    for (const auto &entry : setups_)
        keys.push_back(entry.first);
    return keys;
}

} // namespace vsgpu::exec
