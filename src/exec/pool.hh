/**
 * @file
 * Work-stealing thread pool for sharding independent simulation work.
 *
 * The sweep/batch engine's scheduling substrate: a fixed set of
 * persistent workers, each with its own deque of task indices.  A
 * worker pops from the bottom of its own deque (LIFO, cache-friendly
 * for contiguous blocks) and, when empty, steals from the top of a
 * victim's deque (FIFO, taking the work farthest from the victim's
 * hot end).  Tasks are heavyweight — one co-simulation run each, in
 * the milliseconds-to-seconds range — so per-deque mutexes cost
 * nothing measurable while keeping the scheduler easy to reason
 * about and clean under ThreadSanitizer.
 *
 * Determinism contract: the pool never introduces nondeterminism by
 * itself.  Tasks are identified by dense indices, every task runs
 * exactly once, and callers store results by index, so any schedule
 * produces the same result vector.  Combined with per-task RNG
 * streams (sweep.hh) this yields the engine invariant that
 * `--jobs 1` and `--jobs N` produce bitwise-identical metrics.
 */

#ifndef VSGPU_EXEC_POOL_HH
#define VSGPU_EXEC_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hh"

namespace vsgpu::exec
{

/**
 * Observability hooks around pool batches (exec/progress.hh supplies
 * the standard implementation).  batchStart fires on the
 * parallelFor() caller before any task runs; taskDone fires on
 * whichever worker completed the task, concurrently with other
 * workers, so the callback must be thread-safe.  Task wall times are
 * wall-clock derived and therefore schedule-dependent: anything
 * reported through these hooks is diagnostics, never results.
 */
struct PoolHooks
{
    std::function<void(int numTasks)> batchStart;
    std::function<void(int task, double wallMs)> taskDone;
};

/**
 * Persistent work-stealing pool.
 *
 * A Pool of N threads uses N - 1 background workers plus the calling
 * thread of parallelFor(), so Pool(1) runs everything inline on the
 * caller with no threads and no synchronization at all.
 */
class Pool
{
  public:
    /**
     * @param threads worker count; 0 selects hardwareJobs().
     */
    explicit Pool(int threads = 0);

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    ~Pool();

    /** @return the configured parallelism (>= 1). */
    int threads() const { return threads_; }

    /** @return the default job count: hardware concurrency, >= 1. */
    static int hardwareJobs();

    /**
     * Run body(i) for every i in [0, numTasks), sharded across the
     * pool, and return when all tasks completed.  The calling thread
     * participates as worker slot 0.  Exceptions thrown by tasks are
     * captured; the first one (in completion order) is rethrown here
     * after all remaining tasks have been cancelled and the pool has
     * quiesced.  Not reentrant: parallelFor() must not be called
     * from inside a task of the same pool.
     */
    void parallelFor(int numTasks,
                     const std::function<void(int)> &body);

    /**
     * Install observability hooks.  Must not be called while a
     * parallelFor() batch is in flight (workers read the hooks
     * without a lock, by the same protocol as body_).
     */
    void setHooks(PoolHooks hooks) { hooks_ = std::move(hooks); }

    /** Tasks executed over the pool's lifetime (observability). */
    std::uint64_t tasksRun() const { return tasksRun_.load(); }

    /** Steals performed over the pool's lifetime (observability). */
    std::uint64_t steals() const { return steals_.load(); }

  private:
    /** One worker's task queue: dense task indices. */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<int> tasks VSGPU_GUARDED_BY(mutex);
    };

    /** Background worker main loop (slots 1..threads-1). */
    void workerMain(int slot);

    /** Drain the current batch from worker slot @p slot. */
    void drainBatch(int slot);

    /** Pop from own deque bottom, else steal; -1 when none left. */
    int takeTask(int slot);

    int threads_;
    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex batchMutex_;
    std::condition_variable batchStart_;
    std::condition_variable batchDone_;
    std::uint64_t batchGeneration_ VSGPU_GUARDED_BY(batchMutex_) = 0;
    /// Tasks not yet finished.
    int batchRemaining_ VSGPU_GUARDED_BY(batchMutex_) = 0;
    /// Background workers inside a batch.
    int workersActive_ VSGPU_GUARDED_BY(batchMutex_) = 0;
    bool shutdown_ VSGPU_GUARDED_BY(batchMutex_) = false;

    // body_ is deliberately unannotated: workers read it without the
    // lock, which is safe by protocol — it is written before the
    // batchGeneration_ bump that releases the workers and read only
    // while the batch it belongs to is in flight.
    const std::function<void(int)> *body_ = nullptr;
    std::exception_ptr firstError_ VSGPU_GUARDED_BY(batchMutex_);
    bool cancelled_ VSGPU_GUARDED_BY(batchMutex_) = false;

    // Same access protocol as body_: written only between batches.
    PoolHooks hooks_;

    std::atomic<std::uint64_t> tasksRun_{0};
    std::atomic<std::uint64_t> steals_{0};
};

} // namespace vsgpu::exec

#endif // VSGPU_EXEC_POOL_HH
