/**
 * @file
 * Per-cycle SM power evaluation (the GPUWattch role in the paper's
 * hybrid infrastructure): converts one cycle's micro-architectural
 * events into watts that the PDN co-simulation consumes.
 */

#ifndef VSGPU_POWER_POWER_MODEL_HH
#define VSGPU_POWER_POWER_MODEL_HH

#include "power/energy_model.hh"

namespace vsgpu
{

/**
 * Stateless evaluator of SM power from cycle events.
 */
class SmPowerModel
{
  public:
    explicit SmPowerModel(const EnergyParams &params = {});

    /** @return dynamic energy of one cycle's events. */
    Joules dynamicEnergy(const SmCycleEvents &events) const;

    /**
     * @return leakage power of an SM given its gating state.
     * @param now current cycle (gating is time-dependent).
     */
    Watts leakagePower(const Sm &sm, Cycle now) const;

    /**
     * @return total SM power for one cycle: dynamic energy over
     * the clock period, clock-tree power when clocked, and leakage.
     */
    Watts cyclePower(const SmCycleEvents &events, const Sm &sm,
                     Cycle now) const;

    /** @return the parameter set. */
    const EnergyParams &params() const { return params_; }

    /** @return nominal peak SM power implied by the parameters. */
    Watts peakPower() const;

  private:
    EnergyParams params_;
};

} // namespace vsgpu

#endif // VSGPU_POWER_POWER_MODEL_HH
