#include "power/power_model.hh"

#include "common/units.hh"

namespace vsgpu
{

SmPowerModel::SmPowerModel(const EnergyParams &params)
    : params_(params)
{
}

Joules
SmPowerModel::dynamicEnergy(const SmCycleEvents &events) const
{
    Joules joules{};
    double avgLanes = 1.0;
    const int total = events.totalIssued();
    if (total > 0) {
        avgLanes = static_cast<double>(events.lanesActive) /
                   (static_cast<double>(total) *
                    static_cast<double>(config::threadsPerWarp));
    }
    const double laneScale =
        (1.0 - params_.laneFraction) + params_.laneFraction * avgLanes;

    for (int op = 0; op < numOpClasses; ++op) {
        const int n = events.issued[static_cast<std::size_t>(op)];
        if (n == 0)
            continue;
        joules += static_cast<double>(n) *
                  (params_.opEnergy[static_cast<std::size_t>(op)] *
                       laneScale +
                   params_.issueEnergy);
    }
    joules += static_cast<double>(events.fakeIssued) *
              params_.fakeEnergy;
    return joules;
}

Watts
SmPowerModel::leakagePower(const Sm &sm, Cycle now) const
{
    Watts watts = params_.baseLeakage;
    for (int u = 0; u < numExecUnits; ++u) {
        const auto kind = static_cast<ExecUnitKind>(u);
        if (!sm.unit(kind).gated(now))
            watts += params_.unitLeakage[static_cast<std::size_t>(u)];
    }
    return watts;
}

Watts
SmPowerModel::cyclePower(const SmCycleEvents &events, const Sm &sm,
                         Cycle now) const
{
    Watts watts = dynamicEnergy(events) / config::clockPeriod;
    if (events.clocked && events.active)
        watts += params_.clockPower;
    watts += leakagePower(sm, now);
    return watts;
}

Watts
SmPowerModel::peakPower() const
{
    // Two FP instructions per cycle at full lanes plus clock and
    // un-gated leakage.
    Watts leak = params_.baseLeakage;
    for (Watts l : params_.unitLeakage)
        leak += l;
    const Watts dyn =
        2.0 * (params_.opEnergy[static_cast<std::size_t>(
                   OpClass::FpAlu)] +
               params_.issueEnergy) /
        config::clockPeriod;
    return dyn + params_.clockPower + leak;
}

} // namespace vsgpu
