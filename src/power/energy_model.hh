/**
 * @file
 * Event-energy parameters for the GPUWattch-style SM power model.
 *
 * Dynamic power is accumulated from per-warp-instruction energies by
 * op class (with a lane-dependent component for divergence), plus an
 * issue/fetch/decode overhead, clock-tree power on clocked cycles,
 * and per-execution-block gateable leakage.  Values are calibrated so
 * a Fermi-class SM averages ~7 W and peaks near 14 W at 700 MHz
 * (paper Table I system; SM grid = 93% of GPU average power).
 */

#ifndef VSGPU_POWER_ENERGY_MODEL_HH
#define VSGPU_POWER_ENERGY_MODEL_HH

#include <array>

#include "common/quantity.hh"
#include "gpu/exec_unit.hh"
#include "gpu/sm.hh"

namespace vsgpu
{

/** Tunable energy/power constants. */
struct EnergyParams
{
    /** Dynamic energy per warp instruction by op class. */
    std::array<Joules, numOpClasses> opEnergy = {
        1.7_nJ, // IntAlu
        2.5_nJ, // FpAlu
        4.2_nJ, // Sfu
        3.4_nJ, // Load
        3.0_nJ, // Store
        2.0_nJ, // SharedMem
        4.6_nJ, // Atomic
        0.2_nJ, // Sync
    };

    /** Fetch/decode/issue overhead per instruction. */
    Joules issueEnergy = 0.5_nJ;

    /** Energy of a fake injected instruction: an SP op that is
     *  fetched and executed but performs no architectural writeback. */
    Joules fakeEnergy = 2.0_nJ;

    /** Fraction of op energy that scales with active lanes. */
    double laneFraction = 0.6;

    /** Clock tree, pipeline registers, schedulers, and register-file
     *  background activity while the SM clock runs.  An SM that
     *  is resident-but-stalled (e.g. at a barrier) still burns this —
     *  real SMs idle near half their typical power, which bounds how
     *  deep barrier-induced power swings can be. */
    Watts clockPower = 2.6_W;

    /** Gateable leakage per execution block: SP0 SP1 SFU LSU. */
    std::array<Watts, numExecUnits> unitLeakage = {
        0.30_W, 0.30_W, 0.14_W, 0.24_W,
    };

    /** Non-gateable leakage: register file, shared memory, control. */
    Watts baseLeakage = 0.55_W;
};

} // namespace vsgpu

#endif // VSGPU_POWER_ENERGY_MODEL_HH
