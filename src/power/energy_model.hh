/**
 * @file
 * Event-energy parameters for the GPUWattch-style SM power model.
 *
 * Dynamic power is accumulated from per-warp-instruction energies by
 * op class (with a lane-dependent component for divergence), plus an
 * issue/fetch/decode overhead, clock-tree power on clocked cycles,
 * and per-execution-block gateable leakage.  Values are calibrated so
 * a Fermi-class SM averages ~7 W and peaks near 14 W at 700 MHz
 * (paper Table I system; SM grid = 93% of GPU average power).
 */

#ifndef VSGPU_POWER_ENERGY_MODEL_HH
#define VSGPU_POWER_ENERGY_MODEL_HH

#include <array>

#include "gpu/exec_unit.hh"
#include "gpu/sm.hh"

namespace vsgpu
{

/** Tunable energy/power constants (J and W). */
struct EnergyParams
{
    /** Dynamic energy per warp instruction by op class (J). */
    std::array<double, numOpClasses> opEnergy = {
        1.7e-9, // IntAlu
        2.5e-9, // FpAlu
        4.2e-9, // Sfu
        3.4e-9, // Load
        3.0e-9, // Store
        2.0e-9, // SharedMem
        4.6e-9, // Atomic
        0.2e-9, // Sync
    };

    /** Fetch/decode/issue overhead per instruction (J). */
    double issueEnergy = 0.5e-9;

    /** Energy of a fake injected instruction (J): an SP op that is
     *  fetched and executed but performs no architectural writeback. */
    double fakeEnergy = 2.0e-9;

    /** Fraction of op energy that scales with active lanes. */
    double laneFraction = 0.6;

    /** Clock tree, pipeline registers, schedulers, and register-file
     *  background activity while the SM clock runs (W).  An SM that
     *  is resident-but-stalled (e.g. at a barrier) still burns this —
     *  real SMs idle near half their typical power, which bounds how
     *  deep barrier-induced power swings can be. */
    double clockPower = 2.6;

    /** Gateable leakage per execution block (W): SP0 SP1 SFU LSU. */
    std::array<double, numExecUnits> unitLeakage = {
        0.30, 0.30, 0.14, 0.24,
    };

    /** Non-gateable leakage: register file, shared memory, control. */
    double baseLeakage = 0.55;
};

} // namespace vsgpu

#endif // VSGPU_POWER_ENERGY_MODEL_HH
