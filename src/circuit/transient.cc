#include "circuit/transient.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"

namespace vsgpu
{

namespace
{

/** Inductor replacement resistance for DC operating-point solves. */
constexpr double dcInductorOhms = kDcInductorOhms;

} // namespace

TransientSim::TransientSim(const Netlist &netlist, double dt,
                           SolverKind solver,
                           std::shared_ptr<const MnaPattern> pattern)
    : netlist_(netlist), dt_(dt), solver_(solver)
{
    panicIfNot(dt_ > 0.0, "transient timestep must be positive");
    numNodes_ = netlist_.numNodes();
    numVsrc_ = static_cast<int>(netlist_.voltageSources().size());
    numUnknowns_ = numNodes_ + numVsrc_;
    panicIfNot(numNodes_ > 0, "cannot simulate an empty netlist");
    panicIfNot(netlist_.switches().size() <= 64,
               "switch-state cache supports at most 64 switches");

    if (solver_ == SolverKind::Sparse) {
        usedCachedPattern_ = pattern != nullptr;
        pattern_ = pattern ? std::move(pattern)
                           : MnaPattern::build(netlist_);
        panicIfNot(pattern_->numUnknowns == numUnknowns_,
                   "assembly pattern does not match the netlist");
        assembler_ = std::make_unique<MnaAssembler>(pattern_);
    }

    solution_.assign(static_cast<std::size_t>(numUnknowns_), 0.0);
    rhs_.assign(static_cast<std::size_t>(numUnknowns_), 0.0);
    sourceAmps_.resize(netlist_.currentSources().size());
    for (std::size_t i = 0; i < sourceAmps_.size(); ++i)
        sourceAmps_[i] = netlist_.currentSources()[i].amps;
    switchClosed_.resize(netlist_.switches().size());
    for (std::size_t i = 0; i < switchClosed_.size(); ++i)
        switchClosed_[i] = netlist_.switches()[i].initiallyClosed;
    sourceVolts_.resize(netlist_.voltageSources().size());
    for (std::size_t i = 0; i < sourceVolts_.size(); ++i)
        sourceVolts_[i] = netlist_.voltageSources()[i].volts;

    capVolts_.resize(netlist_.capacitors().size());
    capAmps_.assign(netlist_.capacitors().size(), 0.0);
    for (std::size_t i = 0; i < capVolts_.size(); ++i)
        capVolts_[i] = netlist_.capacitors()[i].initialVolts;
    indAmps_.resize(netlist_.inductors().size());
    indVolts_.assign(netlist_.inductors().size(), 0.0);
    for (std::size_t i = 0; i < indAmps_.size(); ++i)
        indAmps_[i] = netlist_.inductors()[i].initialAmps;
}

void
TransientSim::setCurrent(int sourceIdx, double amps)
{
    panicIfNot(sourceIdx >= 0 &&
               sourceIdx < static_cast<int>(sourceAmps_.size()),
               "bad current source index ", sourceIdx);
    VSGPU_CHECK_FINITE(amps);
    sourceAmps_[static_cast<std::size_t>(sourceIdx)] = amps;
}

void
TransientSim::setSwitch(int switchIdx, bool closed)
{
    panicIfNot(switchIdx >= 0 &&
               switchIdx < static_cast<int>(switchClosed_.size()),
               "bad switch index ", switchIdx);
    switchClosed_[static_cast<std::size_t>(switchIdx)] = closed;
}

void
TransientSim::setSourceVolts(int vsrcIdx, double volts)
{
    panicIfNot(vsrcIdx >= 0 &&
               vsrcIdx < static_cast<int>(sourceVolts_.size()),
               "bad voltage source index ", vsrcIdx);
    VSGPU_CHECK_FINITE(volts);
    sourceVolts_[static_cast<std::size_t>(vsrcIdx)] = volts;
}

void
TransientSim::initToDc()
{
    initFromDc(solveDc(netlist_, sourceAmps_, switchClosed_, solver_,
                       pattern_));
}

std::size_t
TransientSim::patternNnz() const
{
    return pattern_ ? pattern_->csc->nnz() : 0;
}

void
TransientSim::initFromDc(const std::vector<double> &dc)
{
    panicIfNot(dc.size() ==
               static_cast<std::size_t>(numNodes_) + 1,
               "DC solution size mismatch");
    for (int n = 1; n <= numNodes_; ++n)
        solution_[static_cast<std::size_t>(n - 1)] =
            dc[static_cast<std::size_t>(n)];

    const auto &caps = netlist_.capacitors();
    for (std::size_t i = 0; i < caps.size(); ++i) {
        capVolts_[i] = dc[static_cast<std::size_t>(caps[i].a)] -
                       dc[static_cast<std::size_t>(caps[i].b)];
        capAmps_[i] = 0.0;
    }
    const auto &inds = netlist_.inductors();
    for (std::size_t i = 0; i < inds.size(); ++i) {
        const double va = dc[static_cast<std::size_t>(inds[i].a)];
        const double vb = dc[static_cast<std::size_t>(inds[i].b)];
        indAmps_[i] = (va - vb) / dcInductorOhms;
        indVolts_[i] = 0.0;
    }
}

void
TransientSim::stampConductance(Matrix &g, NodeId a, NodeId b,
                               double siemens)
{
    if (a > 0)
        g(static_cast<std::size_t>(a - 1),
          static_cast<std::size_t>(a - 1)) += siemens;
    if (b > 0)
        g(static_cast<std::size_t>(b - 1),
          static_cast<std::size_t>(b - 1)) += siemens;
    if (a > 0 && b > 0) {
        g(static_cast<std::size_t>(a - 1),
          static_cast<std::size_t>(b - 1)) -= siemens;
        g(static_cast<std::size_t>(b - 1),
          static_cast<std::size_t>(a - 1)) -= siemens;
    }
}

void
TransientSim::stampEqualizer(Matrix &g, const Netlist::Equalizer &e)
{
    const NodeId nodes[3] = {e.top, e.mid, e.bottom};
    const double coeff[3] = {1.0, -2.0, 1.0};
    const double gEff = 1.0 / e.effOhms;
    for (int i = 0; i < 3; ++i) {
        if (nodes[i] <= 0)
            continue;
        for (int j = 0; j < 3; ++j) {
            if (nodes[j] <= 0)
                continue;
            g(static_cast<std::size_t>(nodes[i] - 1),
              static_cast<std::size_t>(nodes[j] - 1)) +=
                coeff[i] * coeff[j] * gEff;
        }
    }
}

std::uint64_t
TransientSim::switchKey() const
{
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < switchClosed_.size(); ++i)
        if (switchClosed_[i])
            key |= (1ull << i);
    return key;
}

const LuFactor<double> &
TransientSim::factorFor(std::uint64_t key)
{
    auto it = luCache_.find(key);
    if (it != luCache_.end())
        return *it->second;
    ++luBuilds_;

    const std::size_t n = static_cast<std::size_t>(numUnknowns_);
    Matrix g(n, n);

    for (const auto &r : netlist_.resistors())
        stampConductance(g, r.a, r.b, 1.0 / r.ohms);

    const auto &switches = netlist_.switches();
    for (std::size_t i = 0; i < switches.size(); ++i) {
        const bool closed = (key >> i) & 1ull;
        const double ohms =
            closed ? switches[i].onOhms : switches[i].offOhms;
        stampConductance(g, switches[i].a, switches[i].b, 1.0 / ohms);
    }

    for (const auto &c : netlist_.capacitors())
        stampConductance(g, c.a, c.b, 2.0 * c.farads / dt_);

    for (const auto &l : netlist_.inductors())
        stampConductance(g, l.a, l.b, dt_ / (2.0 * l.henries));

    for (const auto &e : netlist_.equalizers())
        stampEqualizer(g, e);

    const auto &vsrc = netlist_.voltageSources();
    for (std::size_t k = 0; k < vsrc.size(); ++k) {
        const std::size_t row =
            static_cast<std::size_t>(numNodes_) + k;
        if (vsrc[k].plus > 0) {
            const auto p = static_cast<std::size_t>(vsrc[k].plus - 1);
            g(p, row) += 1.0;
            g(row, p) += 1.0;
        }
        if (vsrc[k].minus > 0) {
            const auto m = static_cast<std::size_t>(vsrc[k].minus - 1);
            g(m, row) -= 1.0;
            g(row, m) -= 1.0;
        }
    }

    auto lu = std::make_unique<LuFactor<double>>(std::move(g));
    const auto &ref = *lu;
    luCache_.emplace(key, std::move(lu));
    return ref;
}

const SparseLu &
TransientSim::sparseFor(std::uint64_t key)
{
    auto it = sparseCache_.find(key);
    if (it != sparseCache_.end())
        return *it->second;
    ++luBuilds_;
    ++refactorizations_;

    // Same element order and floating-point expressions as the dense
    // factorFor above; see circuit/stamping.hh.
    assembler_->beginStep();
    assembler_->stampResistors(netlist_);
    assembler_->stampSwitches(netlist_, [key](std::size_t i) {
        return ((key >> i) & 1ull) != 0;
    });
    assembler_->stampCapacitorsTrapezoidal(netlist_, dt_);
    assembler_->stampInductorsTrapezoidal(netlist_, dt_);
    assembler_->stampEqualizersScaled(netlist_);
    assembler_->stampVoltageSources(netlist_);

    auto lu = std::make_unique<SparseLu>(pattern_->csc);
    lu->factor(assembler_->commitStep());
    const auto &ref = *lu;
    sparseCache_.emplace(key, std::move(lu));
    return ref;
}

void
TransientSim::step()
{
    obs::Profile *prof =
        profiler_ != nullptr ? profiler_->sampling() : nullptr;
    std::int64_t tMark = prof != nullptr ? obs::profileNowNs() : 0;
    const auto subMark = [&](int stage) {
        if (prof == nullptr)
            return;
        const std::int64_t now = obs::profileNowNs();
        prof->stages[static_cast<std::size_t>(stage)].add(
            static_cast<std::uint64_t>(now - tMark));
        tMark = now;
    };

    std::vector<double> &rhs = rhs_;
    std::fill(rhs.begin(), rhs.end(), 0.0);

    const auto inject = [&](NodeId node, double amps) {
        if (node > 0)
            rhs[static_cast<std::size_t>(node - 1)] += amps;
    };

    // Load current sources: draw from 'from', return at 'to'.
    const auto &isrc = netlist_.currentSources();
    for (std::size_t i = 0; i < isrc.size(); ++i) {
        inject(isrc[i].from, -sourceAmps_[i]);
        inject(isrc[i].to, sourceAmps_[i]);
    }

    // Capacitor companions.
    const auto &caps = netlist_.capacitors();
    for (std::size_t i = 0; i < caps.size(); ++i) {
        const double geq = 2.0 * caps[i].farads / dt_;
        const double ieq = geq * capVolts_[i] + capAmps_[i];
        inject(caps[i].a, ieq);
        inject(caps[i].b, -ieq);
    }

    // Inductor companions.
    const auto &inds = netlist_.inductors();
    for (std::size_t i = 0; i < inds.size(); ++i) {
        const double geq = dt_ / (2.0 * inds[i].henries);
        const double ieq = indAmps_[i] + geq * indVolts_[i];
        inject(inds[i].a, -ieq);
        inject(inds[i].b, ieq);
    }

    // Voltage source constraint rows (runtime setpoints).
    for (std::size_t k = 0; k < sourceVolts_.size(); ++k)
        rhs[static_cast<std::size_t>(numNodes_) + k] =
            sourceVolts_[k];

    subMark(obs::StageCircuitAssemble);
    const std::uint64_t buildsBefore = luBuilds_;
    if (solver_ == SolverKind::Sparse)
        sparseFor(switchKey()).solve(rhs, solution_);
    else
        solution_ = factorFor(switchKey()).solve(rhs);
    subMark(buildsBefore != luBuilds_ ? obs::StageCircuitRefactor
                                      : obs::StageCircuitSolve);

    // Poisoning-NaN detection: a single corrupt setpoint or element
    // turns the whole solution vector non-finite within one step, so
    // this is where corruption is caught closest to its source.
    VSGPU_CHECK_ALL_FINITE(solution_, "transient MNA solution");

    // Update reactive element states from the new node voltages.
    const auto nodeV = [&](NodeId node) {
        return node > 0 ? solution_[static_cast<std::size_t>(node - 1)]
                        : 0.0;
    };
    for (std::size_t i = 0; i < caps.size(); ++i) {
        const double geq = 2.0 * caps[i].farads / dt_;
        const double ieqPrev = geq * capVolts_[i] + capAmps_[i];
        const double vNew = nodeV(caps[i].a) - nodeV(caps[i].b);
        capAmps_[i] = geq * vNew - ieqPrev;
        capVolts_[i] = vNew;
    }
    for (std::size_t i = 0; i < inds.size(); ++i) {
        const double geq = dt_ / (2.0 * inds[i].henries);
        const double ieqPrev = indAmps_[i] + geq * indVolts_[i];
        const double vNew = nodeV(inds[i].a) - nodeV(inds[i].b);
        indAmps_[i] = geq * vNew + ieqPrev;
        indVolts_[i] = vNew;
    }

    subMark(obs::StageCircuitUpdate);

    time_ += dt_;
    ++stepCount_;
}

double
TransientSim::nodeVoltage(NodeId node) const
{
    panicIfNot(node >= 0 && node <= numNodes_, "bad node id ", node);
    return node > 0 ? solution_[static_cast<std::size_t>(node - 1)]
                    : 0.0;
}

double
TransientSim::sourceCurrent(int vsrcIdx) const
{
    panicIfNot(vsrcIdx >= 0 && vsrcIdx < numVsrc_,
               "bad voltage source index ", vsrcIdx);
    // MNA branch current flows plus -> minus inside the source; the
    // current delivered to the circuit from the plus terminal is the
    // negation.
    return -solution_[static_cast<std::size_t>(numNodes_ + vsrcIdx)];
}

double
TransientSim::resistorCurrent(int resIdx) const
{
    const auto &rs = netlist_.resistors();
    panicIfNot(resIdx >= 0 && resIdx < static_cast<int>(rs.size()),
               "bad resistor index ", resIdx);
    const auto &r = rs[static_cast<std::size_t>(resIdx)];
    return (nodeVoltage(r.a) - nodeVoltage(r.b)) / r.ohms;
}

double
TransientSim::totalResistivePower() const
{
    double watts = 0.0;
    for (const auto &r : netlist_.resistors()) {
        const double v = nodeVoltage(r.a) - nodeVoltage(r.b);
        watts += v * v / r.ohms;
    }
    return watts;
}

double
TransientSim::totalSwitchPower() const
{
    double watts = 0.0;
    const auto &switches = netlist_.switches();
    for (std::size_t i = 0; i < switches.size(); ++i) {
        const double ohms = switchClosed_[i] ? switches[i].onOhms
                                             : switches[i].offOhms;
        const double v = nodeVoltage(switches[i].a) -
                         nodeVoltage(switches[i].b);
        watts += v * v / ohms;
    }
    return watts;
}

double
TransientSim::totalSourcePower() const
{
    double watts = 0.0;
    for (int k = 0; k < numVsrc_; ++k)
        watts += sourceVolts_[static_cast<std::size_t>(k)] *
                 sourceCurrent(k);
    return watts;
}

double
TransientSim::inductorCurrent(int indIdx) const
{
    panicIfNot(indIdx >= 0 &&
               indIdx < static_cast<int>(indAmps_.size()),
               "bad inductor index ", indIdx);
    return indAmps_[static_cast<std::size_t>(indIdx)];
}

double
TransientSim::equalizerCurrent(int eqIdx) const
{
    const auto &eqs = netlist_.equalizers();
    panicIfNot(eqIdx >= 0 && eqIdx < static_cast<int>(eqs.size()),
               "bad equalizer index ", eqIdx);
    const auto &e = eqs[static_cast<std::size_t>(eqIdx)];
    return (nodeVoltage(e.top) - 2.0 * nodeVoltage(e.mid) +
            nodeVoltage(e.bottom)) / e.effOhms;
}

double
TransientSim::equalizerPower(int eqIdx) const
{
    const auto &eqs = netlist_.equalizers();
    panicIfNot(eqIdx >= 0 && eqIdx < static_cast<int>(eqs.size()),
               "bad equalizer index ", eqIdx);
    const double ix = equalizerCurrent(eqIdx);
    return eqs[static_cast<std::size_t>(eqIdx)].effOhms * ix * ix;
}

double
TransientSim::totalEqualizerPower() const
{
    double watts = 0.0;
    const int n = static_cast<int>(netlist_.equalizers().size());
    for (int i = 0; i < n; ++i)
        watts += equalizerPower(i);
    return watts;
}

namespace
{

/** Shared DC right-hand side: load injections + vsrc setpoints. */
std::vector<double>
dcRhs(const Netlist &netlist, const std::vector<double> &sourceAmps,
      std::size_t n)
{
    std::vector<double> rhs(n, 0.0);
    const int numNodes = netlist.numNodes();
    const auto &isrc = netlist.currentSources();
    for (std::size_t i = 0; i < isrc.size(); ++i) {
        if (isrc[i].from > 0)
            rhs[static_cast<std::size_t>(isrc[i].from - 1)] -=
                sourceAmps[i];
        if (isrc[i].to > 0)
            rhs[static_cast<std::size_t>(isrc[i].to - 1)] +=
                sourceAmps[i];
    }
    const auto &vsrc = netlist.voltageSources();
    for (std::size_t k = 0; k < vsrc.size(); ++k)
        rhs[static_cast<std::size_t>(numNodes) + k] = vsrc[k].volts;
    return rhs;
}

/** Fold the raw MNA solution into ground-prefixed node voltages. */
std::vector<double>
dcNodeVolts(const std::vector<double> &x, int numNodes)
{
    VSGPU_CHECK_ALL_FINITE(x, "DC operating-point solution");
    std::vector<double> volts(static_cast<std::size_t>(numNodes) + 1,
                              0.0);
    for (int i = 1; i <= numNodes; ++i)
        volts[static_cast<std::size_t>(i)] =
            x[static_cast<std::size_t>(i - 1)];
    return volts;
}

} // namespace

std::vector<double>
solveDc(const Netlist &netlist, const std::vector<double> &sourceAmps,
        const std::vector<bool> &switchClosed, SolverKind solver,
        std::shared_ptr<const MnaPattern> pattern)
{
    const int numNodes = netlist.numNodes();
    const int numVsrc =
        static_cast<int>(netlist.voltageSources().size());
    const std::size_t n = static_cast<std::size_t>(numNodes + numVsrc);
    panicIfNot(sourceAmps.size() == netlist.currentSources().size(),
               "solveDc: source setpoint count mismatch");

    const auto &allSwitches = netlist.switches();
    const auto closedAt = [&](std::size_t i) {
        return i < switchClosed.size()
                   ? static_cast<bool>(switchClosed[i])
                   : allSwitches[i].initiallyClosed;
    };

    if (solver == SolverKind::Sparse) {
        // Same element order and floating-point expressions as the
        // dense assembly below; see circuit/stamping.hh.
        if (!pattern)
            pattern = MnaPattern::build(netlist);
        panicIfNot(pattern->numUnknowns == numNodes + numVsrc,
                   "assembly pattern does not match the netlist");
        MnaAssembler stamper(pattern);
        stamper.beginStep();
        stamper.stampResistors(netlist);
        stamper.stampInductorsDc(netlist);
        stamper.stampEqualizersDivided(netlist);
        stamper.stampSwitches(netlist, closedAt);
        stamper.stampNodeLeak();
        stamper.stampVoltageSources(netlist);
        SparseLu lu(pattern->csc);
        lu.factor(stamper.commitStep());
        return dcNodeVolts(lu.solve(dcRhs(netlist, sourceAmps, n)),
                           numNodes);
    }

    Matrix g(n, n);

    const auto stamp = [&](NodeId a, NodeId b, double siemens) {
        if (a > 0)
            g(static_cast<std::size_t>(a - 1),
              static_cast<std::size_t>(a - 1)) += siemens;
        if (b > 0)
            g(static_cast<std::size_t>(b - 1),
              static_cast<std::size_t>(b - 1)) += siemens;
        if (a > 0 && b > 0) {
            g(static_cast<std::size_t>(a - 1),
              static_cast<std::size_t>(b - 1)) -= siemens;
            g(static_cast<std::size_t>(b - 1),
              static_cast<std::size_t>(a - 1)) -= siemens;
        }
    };

    for (const auto &r : netlist.resistors())
        stamp(r.a, r.b, 1.0 / r.ohms);
    for (const auto &l : netlist.inductors())
        stamp(l.a, l.b, 1.0 / dcInductorOhms);

    for (const auto &e : netlist.equalizers()) {
        const NodeId nodes[3] = {e.top, e.mid, e.bottom};
        const double coeff[3] = {1.0, -2.0, 1.0};
        for (int i = 0; i < 3; ++i) {
            if (nodes[i] <= 0)
                continue;
            for (int j = 0; j < 3; ++j) {
                if (nodes[j] <= 0)
                    continue;
                g(static_cast<std::size_t>(nodes[i] - 1),
                  static_cast<std::size_t>(nodes[j] - 1)) +=
                    coeff[i] * coeff[j] / e.effOhms;
            }
        }
    }

    const auto &switches = netlist.switches();
    for (std::size_t i = 0; i < switches.size(); ++i) {
        stamp(switches[i].a, switches[i].b,
              1.0 / (closedAt(i) ? switches[i].onOhms
                                 : switches[i].offOhms));
    }

    // Keep capacitor-only nodes from floating.
    for (int i = 0; i < numNodes; ++i)
        g(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) +=
            kDcLeakSiemens;

    const auto &vsrc = netlist.voltageSources();
    for (std::size_t k = 0; k < vsrc.size(); ++k) {
        const std::size_t row = static_cast<std::size_t>(numNodes) + k;
        if (vsrc[k].plus > 0) {
            const auto p = static_cast<std::size_t>(vsrc[k].plus - 1);
            g(p, row) += 1.0;
            g(row, p) += 1.0;
        }
        if (vsrc[k].minus > 0) {
            const auto m = static_cast<std::size_t>(vsrc[k].minus - 1);
            g(m, row) -= 1.0;
            g(row, m) -= 1.0;
        }
    }

    return dcNodeVolts(
        solveLinear(g, dcRhs(netlist, sourceAmps, n)), numNodes);
}

} // namespace vsgpu
