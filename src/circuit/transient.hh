/**
 * @file
 * Fixed-step transient simulation of a Netlist.
 *
 * Uses trapezoidal companion models for reactive elements and modified
 * nodal analysis with the voltage-source branch currents as extra
 * unknowns.  Because the PDN topology and timestep are fixed during a
 * run, the system matrix only changes when a switch toggles; the LU
 * factorization is cached per switch-state so the per-step cost is a
 * right-hand-side build plus one back-substitution.
 *
 * Two interchangeable linear-solver backends exist (circuit/solver.hh):
 * the default sparse engine assembles through an MnaPattern (symbolic
 * factorization context, cacheable across runs via sim::PdsSetup) and
 * refactorizes numerically per switch state; the dense engine is the
 * historical path kept as a differential-testing oracle.  Both
 * produce bitwise-identical solutions.
 */

#ifndef VSGPU_CIRCUIT_TRANSIENT_HH
#define VSGPU_CIRCUIT_TRANSIENT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "circuit/netlist.hh"
#include "circuit/solver.hh"
#include "circuit/stamping.hh"
#include "numeric/matrix.hh"
#include "numeric/sparse.hh"
#include "obs/profile.hh"

namespace vsgpu
{

/**
 * Trapezoidal-integration transient engine.
 */
class TransientSim
{
  public:
    /**
     * @param netlist the circuit (must outlive the simulator).
     * @param dt      fixed timestep in seconds.
     * @param solver  linear-solver backend (defaults to the
     *                process-wide selection, normally sparse).
     * @param pattern pre-built sparse assembly pattern for this
     *                netlist's topology (nullptr = build one here).
     *                Sweep engines pass the pattern cached in
     *                sim::PdsSetup so the symbolic work happens once
     *                per configuration.
     */
    TransientSim(const Netlist &netlist, double dt,
                 SolverKind solver = defaultSolver(),
                 std::shared_ptr<const MnaPattern> pattern = nullptr);

    /** Set a current source's value for subsequent steps (amps). */
    void setCurrent(int sourceIdx, double amps); // vsgpu-lint: raw-ok(dimension-erased MNA solver boundary)

    /** Open or close a switch for subsequent steps. */
    void setSwitch(int switchIdx, bool closed);

    /**
     * Change a voltage source's setpoint for subsequent steps (only
     * the right-hand side changes, so the cached factorization stays
     * valid).  Used e.g. for VRM load-line regulation.
     */
    void setSourceVolts(int vsrcIdx, double volts); // vsgpu-lint: raw-ok(dimension-erased MNA solver boundary)

    /**
     * Initialize states to the DC operating point implied by the
     * current source setpoints (inductors shorted, capacitors open).
     */
    void initToDc();

    /**
     * Initialize states from a precomputed DC operating point, as
     * returned by solveDc() on this netlist with the same source
     * setpoints and switch states.  Bitwise-equivalent to
     * initToDc(), but lets sweep engines solve the operating point
     * once per configuration and share it across runs
     * (exec::SetupCache).
     */
    void initFromDc(const std::vector<double> &dcNodeVolts);

    /** Advance the simulation by one timestep. */
    void step();

    /** @return simulated time (s). */
    double time() const { return time_; }

    /** @return number of steps taken. */
    std::uint64_t steps() const { return stepCount_; }

    /** @return LU factorizations built (cache misses on the
     *  switch-state key); the fixed-step linear solver's analogue of
     *  a variable-step engine's Newton iteration count. */
    std::uint64_t luBuilds() const { return luBuilds_; }

    /** @return the solver backend this instance runs on. */
    SolverKind solver() const { return solver_; }

    /** @return structural nonzeros of the sparse assembly pattern
     *  (0 on the dense backend). */
    std::size_t patternNnz() const;

    /** @return sparse numeric refactorizations performed (equals
     *  luBuilds() on the sparse backend, 0 on dense). */
    std::uint64_t refactorizations() const
    {
        return refactorizations_;
    }

    /** @return true when the symbolic pattern was supplied by the
     *  caller (i.e. reused from a setup cache) rather than built by
     *  this instance. */
    bool usedCachedPattern() const { return usedCachedPattern_; }

    /** @return voltage at a node (ground = 0 V). */
    double nodeVoltage(NodeId node) const;

    /**
     * @return index of a node's voltage in solution(), or -1 for
     * ground.  Lets waveform samplers stream straight from the state
     * vector without per-sample bounds checks.
     */
    int
    solutionIndex(NodeId node) const
    {
        panicIfNot(node >= 0 && node <= numNodes_,
                   "bad node id ", node);
        return node - 1;
    }

    /** @return the raw MNA solution vector: node voltages (node id
     *  - 1) followed by voltage-source branch currents. */
    const std::vector<double> &solution() const { return solution_; }

    /** @return current through voltage source (plus -> external). */
    double sourceCurrent(int vsrcIdx) const;

    /** @return current a -> b through a resistor. */
    double resistorCurrent(int resIdx) const;

    /** @return instantaneous power dissipated in all resistors (W). */
    double totalResistivePower() const;

    /** @return instantaneous power dissipated in closed switches. */
    double totalSwitchPower() const;

    /**
     * @return instantaneous power delivered by all voltage sources,
     * positive when sourcing (W).
     */
    double totalSourcePower() const;

    /** @return current through an inductor (a -> b, amps). */
    double inductorCurrent(int indIdx) const;

    /** @return equalizer average transfer current Ix (amps). */
    double equalizerCurrent(int eqIdx) const;

    /**
     * @return intrinsic charge-transfer loss of an equalizer,
     * Reff * Ix^2 (W).
     */
    double equalizerPower(int eqIdx) const;

    /** @return summed charge-transfer loss of all equalizers (W). */
    double totalEqualizerPower() const;

    /**
     * Attach the cosim's stage timer so step() can split its cost
     * into assemble / solve / refactor / update sub-phases on the
     * cycles the timer samples.  Null (the default) keeps step()
     * instrumentation-free apart from one pointer test.
     */
    void attachProfiler(obs::StageTimer *timer)
    {
        profiler_ = timer;
    }

  private:
    /** Build and factor the dense MNA matrix for a switch state. */
    const LuFactor<double> &factorFor(std::uint64_t key);

    /** Assemble and refactor the sparse system for a switch state. */
    const SparseLu &sparseFor(std::uint64_t key);

    /** Stamp a conductance into the MNA matrix. */
    static void stampConductance(Matrix &g, NodeId a, NodeId b,
                                 double siemens); // vsgpu-lint: raw-ok(dimension-erased MNA solver boundary)

    /** Stamp an averaged charge-recycling equalizer. */
    static void stampEqualizer(Matrix &g, const Netlist::Equalizer &e);

    std::uint64_t switchKey() const;

    const Netlist &netlist_;
    double dt_;
    double time_ = 0.0;
    std::uint64_t stepCount_ = 0;
    std::uint64_t luBuilds_ = 0;
    std::uint64_t refactorizations_ = 0;

    SolverKind solver_;
    bool usedCachedPattern_ = false;
    obs::StageTimer *profiler_ = nullptr;

    int numNodes_;
    int numVsrc_;
    int numUnknowns_;

    std::vector<double> solution_;    ///< node voltages + vsrc currents
    std::vector<double> rhs_;         ///< per-step right-hand side
    std::vector<double> sourceAmps_;  ///< current-source setpoints
    std::vector<double> sourceVolts_; ///< voltage-source setpoints
    std::vector<bool> switchClosed_;

    // Reactive element states.
    std::vector<double> capVolts_;    ///< v across each capacitor
    std::vector<double> capAmps_;     ///< i through each capacitor
    std::vector<double> indAmps_;     ///< i through each inductor
    std::vector<double> indVolts_;    ///< v across each inductor

    // Sparse backend: shared symbolic pattern, reusable stamping
    // assembler, factors keyed by switch-state bitmask.
    std::shared_ptr<const MnaPattern> pattern_;
    std::unique_ptr<MnaAssembler> assembler_;
    std::map<std::uint64_t, std::unique_ptr<SparseLu>> sparseCache_;

    // Dense backend: factorizations keyed by switch-state bitmask.
    std::map<std::uint64_t, std::unique_ptr<LuFactor<double>>> luCache_;
};

/**
 * DC operating-point solve: inductors become tiny resistances,
 * capacitors are open, current sources at the supplied setpoints.
 *
 * @param solver  linear-solver backend (defaults to the process-wide
 *                selection).
 * @param pattern optional pre-built assembly pattern (sparse only).
 * @return node voltages indexed by node id (index 0 = ground = 0 V).
 */
std::vector<double>
solveDc(const Netlist &netlist, const std::vector<double> &sourceAmps,
        const std::vector<bool> &switchClosed = {},
        SolverKind solver = defaultSolver(),
        std::shared_ptr<const MnaPattern> pattern = nullptr);

} // namespace vsgpu

#endif // VSGPU_CIRCUIT_TRANSIENT_HH
