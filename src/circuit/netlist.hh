/**
 * @file
 * Circuit netlist description for the power-delivery-network models.
 *
 * The netlist is a passive RLC network plus ideal voltage sources,
 * time-varying current loads, and ideal switches (used by the detailed
 * switched-capacitor CR-IVR model).  It is consumed by two engines:
 * the transient simulator (trapezoidal integration, one GPU clock per
 * step) and the AC analyzer (complex phasor solve for the effective
 * impedance methodology of paper Section III-B).
 */

#ifndef VSGPU_CIRCUIT_NETLIST_HH
#define VSGPU_CIRCUIT_NETLIST_HH

#include <string>
#include <vector>

#include "common/quantity.hh"

namespace vsgpu
{

/** Node index type; node 0 is ground. */
using NodeId = int;

/**
 * Builder and container for circuit elements.
 *
 * Conventions: two-terminal elements connect (a, b); positive element
 * current flows from a to b through the element.  Current sources
 * model loads: a positive setpoint draws current from node a and
 * returns it at node b.
 *
 * The add* builders take dimensioned quantities so a unit mixup at a
 * call site is a compile error; the element structs store the raw SI
 * values because they are the solver engines' hot-loop inputs.
 */
class Netlist
{
  public:
    /** The ground node. */
    static constexpr NodeId ground = 0;

    /** A linear resistor. */
    struct Resistor
    {
        NodeId a;
        NodeId b;
        double ohms; // check_units:allow: solver hot-loop storage
        std::string name;
    };

    /** A linear capacitor. */
    struct Capacitor
    {
        NodeId a;
        NodeId b;
        double farads; // check_units:allow: solver hot-loop storage
        /// initial voltage across (a - b)
        double initialVolts; // check_units:allow: solver storage
    };

    /** A linear inductor. */
    struct Inductor
    {
        NodeId a;
        NodeId b;
        double henries; // check_units:allow: solver hot-loop storage
        /// initial current a -> b
        double initialAmps; // check_units:allow: solver storage
    };

    /** An ideal DC voltage source (a is +). */
    struct VoltageSource
    {
        NodeId plus;
        NodeId minus;
        double volts; // check_units:allow: solver hot-loop storage
    };

    /** A time-varying load current source (value set per step). */
    struct CurrentSource
    {
        NodeId from;
        NodeId to;
        /// default / initial value
        double amps; // check_units:allow: solver storage
        std::string name;
    };

    /** An ideal switch modeled as Ron/Roff resistor. */
    struct Switch
    {
        NodeId a;
        NodeId b;
        double onOhms; // check_units:allow: solver hot-loop storage
        double offOhms; // check_units:allow: solver hot-loop storage
        bool initiallyClosed;
    };

    /**
     * Averaged model of a two-phase switched-capacitor charge-recycling
     * cell spanning two series-stacked layers (top, mid) and (mid,
     * bottom).  The cell moves average current
     *   Ix = (Vt - 2 Vm + Vb) / Reff,     Reff = 1 / (fsw * Cfly),
     * out of the top and bottom nodes and into the middle node, which
     * equalizes the two layer voltages.  Its MNA stamp is the
     * symmetric positive-semidefinite rank-one form (1/Reff) v v^T
     * with v = (1, -2, 1) over (top, mid, bottom); the power it
     * dissipates equals the intrinsic SC charge-transfer loss
     * Reff * Ix^2.
     */
    struct Equalizer
    {
        NodeId top;
        NodeId mid;
        NodeId bottom;
        double effOhms; // check_units:allow: solver hot-loop storage
        std::string name;
    };

    /** Allocate a new circuit node. @return its id (>= 1). */
    NodeId allocNode(const std::string &label = "");

    /** @return number of non-ground nodes. */
    int numNodes() const { return numNodes_; }

    /** @return the label given to a node at allocation ("" for none). */
    const std::string &nodeLabel(NodeId node) const;

    /** Add a resistor. @return its index. */
    int addResistor(NodeId a, NodeId b, Ohms resistance,
                    const std::string &name = "");

    /** Add a capacitor with optional initial voltage. @return index. */
    int addCapacitor(NodeId a, NodeId b, Farads capacitance,
                     Volts initialVoltage = Volts{});

    /** Add an inductor with optional initial current. @return index. */
    int addInductor(NodeId a, NodeId b, Henries inductance,
                    Amps initialCurrent = Amps{});

    /** Add an ideal voltage source. @return its index. */
    int addVoltageSource(NodeId plus, NodeId minus, Volts voltage);

    /** Add a controllable load current source. @return its index. */
    int addCurrentSource(NodeId from, NodeId to, Amps current = Amps{},
                         const std::string &name = "");

    /** Add an ideal switch. @return its index. */
    int addSwitch(NodeId a, NodeId b, Ohms onResistance = Ohms{1e-3},
                  Ohms offResistance = Ohms{1e9},
                  bool initiallyClosed = false);

    /** Add an averaged charge-recycling equalizer. @return index. */
    int addEqualizer(NodeId top, NodeId mid, NodeId bottom,
                     Ohms effResistance, const std::string &name = "");

    /**
     * Renumber the non-ground nodes into a fill-reducing greedy
     * minimum-degree elimination order (ties broken by lowest old
     * id, so the result is deterministic).  MNA elimination follows
     * node numbering, so builders should call this once after the
     * last element is added: on the stacked PDN it cuts LU fill by
     * ~7x, which both the sparse and the dense solver benefit from.
     * Element indices are unchanged; only node ids move.
     *
     * @return the old-id -> new-id map (size numNodes()+1, ground
     * fixed at 0) so callers can remap any cached NodeIds.
     */
    std::vector<NodeId> renumberMinDegree();

    // Element accessors used by the engines.
    const std::vector<Resistor> &resistors() const { return resistors_; }
    const std::vector<Capacitor> &capacitors() const { return caps_; }
    const std::vector<Inductor> &inductors() const { return inductors_; }
    const std::vector<VoltageSource> &voltageSources() const
    {
        return vsources_;
    }
    const std::vector<CurrentSource> &currentSources() const
    {
        return isources_;
    }
    const std::vector<Switch> &switches() const { return switches_; }
    const std::vector<Equalizer> &equalizers() const
    {
        return equalizers_;
    }

  private:
    void checkNode(NodeId n) const;

    int numNodes_ = 0;
    std::vector<std::string> labels_{""}; // index 0 = ground
    std::vector<Resistor> resistors_;
    std::vector<Capacitor> caps_;
    std::vector<Inductor> inductors_;
    std::vector<VoltageSource> vsources_;
    std::vector<CurrentSource> isources_;
    std::vector<Switch> switches_;
    std::vector<Equalizer> equalizers_;
};

} // namespace vsgpu

#endif // VSGPU_CIRCUIT_NETLIST_HH
