/**
 * @file
 * Linear-solver selection for the MNA circuit engines.
 *
 * The sparse engine (numeric/sparse.hh + circuit/stamping.hh) is the
 * production default; the dense engine is kept behind `--solver
 * dense` as an escape hatch and as the oracle for the sparse-vs-dense
 * differential suite.  The two produce bitwise-identical results (see
 * numeric/sparse.hh), so switching solvers never changes simulation
 * output — only speed.
 *
 * The default is process-global so one `--solver` flag reaches every
 * consumer, including DC operating-point solves performed inside
 * sim::buildPdsSetup behind the exec::SetupCache.  Because results
 * are bit-identical the solver choice is deliberately *not* part of
 * pdsSetupKey: cached setups remain valid across a solver change.
 */

#ifndef VSGPU_CIRCUIT_SOLVER_HH
#define VSGPU_CIRCUIT_SOLVER_HH

#include <atomic>
#include <string>

namespace vsgpu
{

/** Which linear-solver backend an MNA engine uses. */
enum class SolverKind
{
    Sparse, ///< CSC assembly + cached-symbolic sparse LU (default)
    Dense,  ///< dense Matrix + LuFactor (escape hatch / test oracle)
};

namespace detail
{
inline std::atomic<SolverKind> defaultSolverKind{SolverKind::Sparse};
} // namespace detail

/** @return the process-wide default solver backend. */
inline SolverKind
defaultSolver()
{
    return detail::defaultSolverKind.load(std::memory_order_relaxed);
}

/** Set the process-wide default solver backend (CLI `--solver`). */
inline void
setDefaultSolver(SolverKind kind)
{
    detail::defaultSolverKind.store(kind, std::memory_order_relaxed);
}

/** @return "sparse" or "dense". */
inline const char *
solverName(SolverKind kind)
{
    return kind == SolverKind::Sparse ? "sparse" : "dense";
}

/**
 * Parse a `--solver` flag value.
 *
 * @return true and set @p out on "sparse"/"dense"; false otherwise.
 */
inline bool
parseSolverKind(const std::string &text, SolverKind &out)
{
    if (text == "sparse") {
        out = SolverKind::Sparse;
        return true;
    }
    if (text == "dense") {
        out = SolverKind::Dense;
        return true;
    }
    return false;
}

} // namespace vsgpu

#endif // VSGPU_CIRCUIT_SOLVER_HH
