/**
 * @file
 * Small-signal AC (phasor) analysis of a Netlist.
 *
 * Implements the effective-impedance methodology of paper Section
 * III-B: inject sinusoidal current stimuli at chosen nodes and observe
 * the complex voltage response.  DC voltage sources are shorted (AC
 * value zero) and load current sources are open, as in standard
 * small-signal analysis.
 */

#ifndef VSGPU_CIRCUIT_AC_HH
#define VSGPU_CIRCUIT_AC_HH

#include <memory>
#include <utility>
#include <vector>

#include "circuit/netlist.hh"
#include "circuit/solver.hh"
#include "circuit/stamping.hh"
#include "numeric/matrix.hh"

namespace vsgpu
{

/** One AC current injection: node and complex amplitude (amps). */
struct AcInjection
{
    NodeId node;
    Complex amps;
};

/**
 * AC analyzer over a fixed netlist.  Each solve() builds the complex
 * MNA system at the requested frequency; this is cheap relative to the
 * frequency sweep sizes used by the impedance benches.
 */
class AcAnalysis
{
  public:
    /**
     * @param netlist the circuit (must outlive the analyzer).
     * @param switchClosed switch states to assume (defaults to each
     *        switch's initial state).
     * @param solver  linear-solver backend (defaults to the
     *        process-wide selection, normally sparse).
     * @param pattern pre-built assembly pattern for this netlist
     *        (nullptr = build one here when sparse).
     */
    explicit AcAnalysis(
        const Netlist &netlist,
        std::vector<bool> switchClosed = {},
        SolverKind solver = defaultSolver(),
        std::shared_ptr<const MnaPattern> pattern = nullptr);

    /**
     * Solve the phasor system at one frequency.
     *
     * @param freqHz    stimulus frequency (> 0).
     * @param injections current injections (positive = current pushed
     *                   into the node).
     * @return complex node voltages indexed by node id (0 = ground).
     */
    std::vector<Complex>
    // vsgpu-lint: raw-ok(dimension-erased MNA solver boundary)
    solve(double freqHz, const std::vector<AcInjection> &injections) const;

    /**
     * Solve several injection patterns at one frequency, building
     * and factoring the complex MNA system exactly once and reusing
     * the factorization for every right-hand side.  The effective-
     * impedance methodology needs four stimulus patterns per
     * frequency point; sharing the factorization makes a sweep point
     * one LU plus four back-substitutions instead of four LUs.
     *
     * @return per-pattern node voltages, in pattern order.
     */
    std::vector<std::vector<Complex>>
    solveMany(double freqHz, // vsgpu-lint: raw-ok(dimension-erased MNA solver boundary)
              const std::vector<std::vector<AcInjection>> &patterns)
        const;

    /**
     * Convenience: impedance seen between a node and ground, i.e. the
     * voltage response at @p node to a unit current injected there.
     */
    Complex impedanceAt(double freqHz, NodeId node) const; // vsgpu-lint: raw-ok(dimension-erased MNA solver boundary)

  private:
    const Netlist &netlist_;
    std::vector<bool> switchClosed_;
    SolverKind solver_;
    std::shared_ptr<const MnaPattern> pattern_;
};

} // namespace vsgpu

#endif // VSGPU_CIRCUIT_AC_HH
