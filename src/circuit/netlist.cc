#include "circuit/netlist.hh"

#include "common/check.hh"
#include "common/logging.hh"

namespace vsgpu
{

NodeId
Netlist::allocNode(const std::string &label)
{
    ++numNodes_;
    labels_.push_back(label);
    return numNodes_;
}

const std::string &
Netlist::nodeLabel(NodeId node) const
{
    panicIfNot(node >= 0 && node <= numNodes_, "bad node id ", node);
    return labels_[static_cast<std::size_t>(node)];
}

void
Netlist::checkNode(NodeId n) const
{
    panicIfNot(n >= 0 && n <= numNodes_,
               "element references unknown node ", n);
}

int
Netlist::addResistor(NodeId a, NodeId b, Ohms resistance,
                     const std::string &name)
{
    checkNode(a);
    checkNode(b);
    panicIfNot(resistance.raw() > 0.0,
               "resistor must have positive resistance");
    VSGPU_CHECK_FINITE(resistance);
    resistors_.push_back({a, b, resistance.raw(), name});
    return static_cast<int>(resistors_.size()) - 1;
}

int
Netlist::addCapacitor(NodeId a, NodeId b, Farads capacitance,
                      Volts initialVoltage)
{
    checkNode(a);
    checkNode(b);
    panicIfNot(capacitance.raw() > 0.0,
               "capacitor must have positive capacitance");
    VSGPU_CHECK_FINITE(capacitance);
    VSGPU_CHECK_FINITE(initialVoltage);
    caps_.push_back({a, b, capacitance.raw(), initialVoltage.raw()});
    return static_cast<int>(caps_.size()) - 1;
}

int
Netlist::addInductor(NodeId a, NodeId b, Henries inductance,
                     Amps initialCurrent)
{
    checkNode(a);
    checkNode(b);
    panicIfNot(inductance.raw() > 0.0,
               "inductor must have positive inductance");
    VSGPU_CHECK_FINITE(inductance);
    VSGPU_CHECK_FINITE(initialCurrent);
    inductors_.push_back({a, b, inductance.raw(), initialCurrent.raw()});
    return static_cast<int>(inductors_.size()) - 1;
}

int
Netlist::addVoltageSource(NodeId plus, NodeId minus, Volts voltage)
{
    checkNode(plus);
    checkNode(minus);
    VSGPU_CHECK_FINITE(voltage);
    vsources_.push_back({plus, minus, voltage.raw()});
    return static_cast<int>(vsources_.size()) - 1;
}

int
Netlist::addCurrentSource(NodeId from, NodeId to, Amps current,
                          const std::string &name)
{
    checkNode(from);
    checkNode(to);
    isources_.push_back({from, to, current.raw(), name});
    return static_cast<int>(isources_.size()) - 1;
}

int
Netlist::addSwitch(NodeId a, NodeId b, Ohms onResistance,
                   Ohms offResistance, bool initiallyClosed)
{
    checkNode(a);
    checkNode(b);
    panicIfNot(onResistance.raw() > 0.0 &&
               offResistance.raw() > onResistance.raw(),
               "switch needs 0 < Ron < Roff");
    switches_.push_back({a, b, onResistance.raw(), offResistance.raw(),
                         initiallyClosed});
    return static_cast<int>(switches_.size()) - 1;
}

int
Netlist::addEqualizer(NodeId top, NodeId mid, NodeId bottom,
                      Ohms effResistance, const std::string &name)
{
    checkNode(top);
    checkNode(mid);
    checkNode(bottom);
    panicIfNot(effResistance.raw() > 0.0,
               "equalizer must have positive effective resistance");
    VSGPU_CHECK_FINITE(effResistance);
    equalizers_.push_back({top, mid, bottom, effResistance.raw(), name});
    return static_cast<int>(equalizers_.size()) - 1;
}

} // namespace vsgpu
