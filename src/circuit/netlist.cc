#include "circuit/netlist.hh"

#include <set>
#include <utility>

#include "common/check.hh"
#include "common/logging.hh"

namespace vsgpu
{

NodeId
Netlist::allocNode(const std::string &label)
{
    ++numNodes_;
    labels_.push_back(label);
    return numNodes_;
}

const std::string &
Netlist::nodeLabel(NodeId node) const
{
    panicIfNot(node >= 0 && node <= numNodes_, "bad node id ", node);
    return labels_[static_cast<std::size_t>(node)];
}

void
Netlist::checkNode(NodeId n) const
{
    panicIfNot(n >= 0 && n <= numNodes_,
               "element references unknown node ", n);
}

int
Netlist::addResistor(NodeId a, NodeId b, Ohms resistance,
                     const std::string &name)
{
    checkNode(a);
    checkNode(b);
    panicIfNot(resistance.raw() > 0.0,
               "resistor must have positive resistance");
    VSGPU_CHECK_FINITE(resistance);
    resistors_.push_back({a, b, resistance.raw(), name});
    return static_cast<int>(resistors_.size()) - 1;
}

int
Netlist::addCapacitor(NodeId a, NodeId b, Farads capacitance,
                      Volts initialVoltage)
{
    checkNode(a);
    checkNode(b);
    panicIfNot(capacitance.raw() > 0.0,
               "capacitor must have positive capacitance");
    VSGPU_CHECK_FINITE(capacitance);
    VSGPU_CHECK_FINITE(initialVoltage);
    caps_.push_back({a, b, capacitance.raw(), initialVoltage.raw()});
    return static_cast<int>(caps_.size()) - 1;
}

int
Netlist::addInductor(NodeId a, NodeId b, Henries inductance,
                     Amps initialCurrent)
{
    checkNode(a);
    checkNode(b);
    panicIfNot(inductance.raw() > 0.0,
               "inductor must have positive inductance");
    VSGPU_CHECK_FINITE(inductance);
    VSGPU_CHECK_FINITE(initialCurrent);
    inductors_.push_back({a, b, inductance.raw(), initialCurrent.raw()});
    return static_cast<int>(inductors_.size()) - 1;
}

int
Netlist::addVoltageSource(NodeId plus, NodeId minus, Volts voltage)
{
    checkNode(plus);
    checkNode(minus);
    VSGPU_CHECK_FINITE(voltage);
    vsources_.push_back({plus, minus, voltage.raw()});
    return static_cast<int>(vsources_.size()) - 1;
}

int
Netlist::addCurrentSource(NodeId from, NodeId to, Amps current,
                          const std::string &name)
{
    checkNode(from);
    checkNode(to);
    isources_.push_back({from, to, current.raw(), name});
    return static_cast<int>(isources_.size()) - 1;
}

int
Netlist::addSwitch(NodeId a, NodeId b, Ohms onResistance,
                   Ohms offResistance, bool initiallyClosed)
{
    checkNode(a);
    checkNode(b);
    panicIfNot(onResistance.raw() > 0.0 &&
               offResistance.raw() > onResistance.raw(),
               "switch needs 0 < Ron < Roff");
    switches_.push_back({a, b, onResistance.raw(), offResistance.raw(),
                         initiallyClosed});
    return static_cast<int>(switches_.size()) - 1;
}

int
Netlist::addEqualizer(NodeId top, NodeId mid, NodeId bottom,
                      Ohms effResistance, const std::string &name)
{
    checkNode(top);
    checkNode(mid);
    checkNode(bottom);
    panicIfNot(effResistance.raw() > 0.0,
               "equalizer must have positive effective resistance");
    VSGPU_CHECK_FINITE(effResistance);
    equalizers_.push_back({top, mid, bottom, effResistance.raw(), name});
    return static_cast<int>(equalizers_.size()) - 1;
}

std::vector<NodeId>
Netlist::renumberMinDegree()
{
    // Vertices of the elimination graph: non-ground nodes first (the
    // ones being ordered), then one vertex per voltage source (its
    // MNA constraint row; always eliminated after all nodes, but its
    // edges contribute to node degrees).
    const int numVsrc = static_cast<int>(vsources_.size());
    const std::size_t nVerts =
        static_cast<std::size_t>(numNodes_ + numVsrc);
    std::vector<std::set<int>> adj(nVerts);
    const auto vertexOf = [this](NodeId node, int vsrcIdx) {
        return node != ground ? node - 1 : numNodes_ + vsrcIdx;
    };
    const auto link = [&adj](int u, int v) {
        if (u == v)
            return;
        adj[static_cast<std::size_t>(u)].insert(v);
        adj[static_cast<std::size_t>(v)].insert(u);
    };
    const auto linkPair = [&](NodeId a, NodeId b) {
        if (a != ground && b != ground)
            link(a - 1, b - 1);
    };
    for (const Resistor &r : resistors_)
        linkPair(r.a, r.b);
    for (const Capacitor &c : caps_)
        linkPair(c.a, c.b);
    for (const Inductor &l : inductors_)
        linkPair(l.a, l.b);
    for (const Switch &s : switches_)
        linkPair(s.a, s.b);
    for (const Equalizer &e : equalizers_) {
        linkPair(e.top, e.mid);
        linkPair(e.mid, e.bottom);
        linkPair(e.top, e.bottom);
    }
    for (int k = 0; k < numVsrc; ++k) {
        const VoltageSource &v =
            vsources_[static_cast<std::size_t>(k)];
        if (v.plus != ground)
            link(v.plus - 1, numNodes_ + k);
        if (v.minus != ground)
            link(v.minus - 1, numNodes_ + k);
    }

    // Greedy minimum degree over the node vertices: repeatedly
    // eliminate the lowest-degree node (lowest old id on ties) and
    // turn its remaining neighbourhood into a clique, exactly
    // mirroring the fill Gaussian elimination would create.
    std::vector<bool> eliminated(nVerts, false);
    std::vector<NodeId> oldToNew(
        static_cast<std::size_t>(numNodes_) + 1, ground);
    for (int step = 0; step < numNodes_; ++step) {
        int bestV = -1;
        std::size_t bestDeg = nVerts + 1;
        for (int v = 0; v < numNodes_; ++v) {
            if (eliminated[static_cast<std::size_t>(v)])
                continue;
            const std::size_t deg =
                adj[static_cast<std::size_t>(v)].size();
            if (deg < bestDeg) {
                bestDeg = deg;
                bestV = v;
            }
        }
        oldToNew[static_cast<std::size_t>(bestV) + 1] = step + 1;
        eliminated[static_cast<std::size_t>(bestV)] = true;
        const std::set<int> &nbrSet =
            adj[static_cast<std::size_t>(bestV)];
        const std::vector<int> nbr(nbrSet.begin(), nbrSet.end());
        for (int u : nbr)
            adj[static_cast<std::size_t>(u)].erase(bestV);
        for (std::size_t i = 0; i < nbr.size(); ++i) {
            if (eliminated[static_cast<std::size_t>(nbr[i])])
                continue;
            for (std::size_t j = i + 1; j < nbr.size(); ++j) {
                if (eliminated[static_cast<std::size_t>(nbr[j])])
                    continue;
                link(nbr[i], nbr[j]);
            }
        }
    }

    // Remap every element's node references and the node labels.
    const auto remap = [&oldToNew](NodeId &node) {
        node = oldToNew[static_cast<std::size_t>(node)];
    };
    for (Resistor &r : resistors_) {
        remap(r.a);
        remap(r.b);
    }
    for (Capacitor &c : caps_) {
        remap(c.a);
        remap(c.b);
    }
    for (Inductor &l : inductors_) {
        remap(l.a);
        remap(l.b);
    }
    for (VoltageSource &v : vsources_) {
        remap(v.plus);
        remap(v.minus);
    }
    for (CurrentSource &i : isources_) {
        remap(i.from);
        remap(i.to);
    }
    for (Switch &s : switches_) {
        remap(s.a);
        remap(s.b);
    }
    for (Equalizer &e : equalizers_) {
        remap(e.top);
        remap(e.mid);
        remap(e.bottom);
    }
    std::vector<std::string> labels(labels_.size());
    for (std::size_t old = 0; old < labels_.size(); ++old)
        labels[static_cast<std::size_t>(
            oldToNew[old])] = std::move(labels_[old]);
    labels_ = std::move(labels);
    return oldToNew;
}

} // namespace vsgpu
