#include "circuit/netlist.hh"

#include "common/logging.hh"

namespace vsgpu
{

NodeId
Netlist::allocNode(const std::string &label)
{
    ++numNodes_;
    labels_.push_back(label);
    return numNodes_;
}

const std::string &
Netlist::nodeLabel(NodeId node) const
{
    panicIfNot(node >= 0 && node <= numNodes_, "bad node id ", node);
    return labels_[static_cast<std::size_t>(node)];
}

void
Netlist::checkNode(NodeId n) const
{
    panicIfNot(n >= 0 && n <= numNodes_,
               "element references unknown node ", n);
}

int
Netlist::addResistor(NodeId a, NodeId b, double ohms,
                     const std::string &name)
{
    checkNode(a);
    checkNode(b);
    panicIfNot(ohms > 0.0, "resistor must have positive resistance");
    resistors_.push_back({a, b, ohms, name});
    return static_cast<int>(resistors_.size()) - 1;
}

int
Netlist::addCapacitor(NodeId a, NodeId b, double farads,
                      double initialVolts)
{
    checkNode(a);
    checkNode(b);
    panicIfNot(farads > 0.0, "capacitor must have positive capacitance");
    caps_.push_back({a, b, farads, initialVolts});
    return static_cast<int>(caps_.size()) - 1;
}

int
Netlist::addInductor(NodeId a, NodeId b, double henries,
                     double initialAmps)
{
    checkNode(a);
    checkNode(b);
    panicIfNot(henries > 0.0, "inductor must have positive inductance");
    inductors_.push_back({a, b, henries, initialAmps});
    return static_cast<int>(inductors_.size()) - 1;
}

int
Netlist::addVoltageSource(NodeId plus, NodeId minus, double volts)
{
    checkNode(plus);
    checkNode(minus);
    vsources_.push_back({plus, minus, volts});
    return static_cast<int>(vsources_.size()) - 1;
}

int
Netlist::addCurrentSource(NodeId from, NodeId to, double amps,
                          const std::string &name)
{
    checkNode(from);
    checkNode(to);
    isources_.push_back({from, to, amps, name});
    return static_cast<int>(isources_.size()) - 1;
}

int
Netlist::addSwitch(NodeId a, NodeId b, double onOhms, double offOhms,
                   bool initiallyClosed)
{
    checkNode(a);
    checkNode(b);
    panicIfNot(onOhms > 0.0 && offOhms > onOhms,
               "switch needs 0 < Ron < Roff");
    switches_.push_back({a, b, onOhms, offOhms, initiallyClosed});
    return static_cast<int>(switches_.size()) - 1;
}

int
Netlist::addEqualizer(NodeId top, NodeId mid, NodeId bottom,
                      double effOhms, const std::string &name)
{
    checkNode(top);
    checkNode(mid);
    checkNode(bottom);
    panicIfNot(effOhms > 0.0,
               "equalizer must have positive effective resistance");
    equalizers_.push_back({top, mid, bottom, effOhms, name});
    return static_cast<int>(equalizers_.size()) - 1;
}

} // namespace vsgpu
