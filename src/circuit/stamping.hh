/**
 * @file
 * Sparse MNA assembly: per-netlist sparsity pattern plus a stamping
 * assembler with a beginStep()/commitStep() split.
 *
 * The MnaPattern is the *symbolic* half of the sparse engine: the
 * union sparsity pattern of every matrix the three engines (transient
 * trapezoidal, DC operating point, AC phasor) ever assemble for one
 * Netlist, with every element's value-slots resolved up front.  It is
 * built once per topology and shared — sim::PdsSetup carries one, so
 * the exec::SetupCache (keyed off pdsSetupKey) makes it once per
 * electrical configuration and every run, sweep point and engine
 * reuses it.
 *
 * The MnaAssemblerT stamps element values into a slot-indexed value
 * vector between beginStep() (clear) and commitStep() (finalize +
 * hand the values to the numeric factorization).  Each family method
 * reproduces the corresponding dense engine's stamping loop with the
 * *same* floating-point expressions and the same accumulation order,
 * so the assembled values — and therefore the factorizations and
 * solutions (see numeric/sparse.hh) — are bitwise identical to the
 * dense path.  Notably the transient equalizer stamp multiplies by a
 * precomputed 1/Reff while the DC/AC stamps divide by Reff directly;
 * the two can differ by an ulp, so both forms are preserved
 * (stampEqualizersScaled vs stampEqualizersDivided).
 */

#ifndef VSGPU_CIRCUIT_STAMPING_HH
#define VSGPU_CIRCUIT_STAMPING_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "circuit/netlist.hh"
#include "common/logging.hh"
#include "numeric/sparse.hh"

namespace vsgpu
{

/** Inductor replacement resistance for DC operating-point solves. */
constexpr double kDcInductorOhms = 1e-6; // vsgpu-lint: raw-ok(dimension-erased MNA solver boundary)

/** Tiny diagonal conductance keeping DC solves non-singular when a
 *  node is only reachable through capacitors. */
constexpr double kDcLeakSiemens = 1e-12; // vsgpu-lint: raw-ok(dimension-erased MNA solver boundary)

/**
 * Union MNA sparsity pattern of a Netlist with per-element slot
 * tables.  Unknown ordering matches the dense engines: node voltages
 * (node id - 1) first, then one branch-current row per voltage
 * source.  Slots of entries on a grounded terminal are -1 (the dense
 * stamp skips them too).
 */
struct MnaPattern
{
    /** Slots of a two-terminal conductance stamp. */
    struct PairSlots
    {
        std::int32_t aa = -1; ///< (a, a) diagonal
        std::int32_t bb = -1; ///< (b, b) diagonal
        std::int32_t ab = -1; ///< (a, b) off-diagonal
        std::int32_t ba = -1; ///< (b, a) off-diagonal
    };

    /** Slots of a voltage-source constraint stamp. */
    struct VsrcSlots
    {
        std::int32_t pr = -1; ///< (plus, row)
        std::int32_t rp = -1; ///< (row, plus)
        std::int32_t mr = -1; ///< (minus, row)
        std::int32_t rm = -1; ///< (row, minus)
    };

    int numNodes = 0;
    int numVsrc = 0;
    int numUnknowns = 0;

    /** The compiled CSC pattern shared with SparseLuT. */
    std::shared_ptr<const CscPattern> csc;

    std::vector<PairSlots> resistors;
    std::vector<PairSlots> switches;
    std::vector<PairSlots> capacitors;
    std::vector<PairSlots> inductors;
    /** Row-major 3x3 slots over (top, mid, bottom). */
    std::vector<std::array<std::int32_t, 9>> equalizers;
    std::vector<VsrcSlots> vsrcs;
    /** Diagonal slot of every node row (DC leak stamp). */
    std::vector<std::int32_t> nodeDiag;

    /** Build the union pattern for a netlist (once per topology). */
    static std::shared_ptr<const MnaPattern>
    build(const Netlist &netlist);
};

/**
 * Stamps one matrix' values over an MnaPattern.
 *
 * Lifecycle per assembled matrix: beginStep(), one family-stamp call
 * sequence (in the owning engine's historical order), commitStep().
 * The assembler owns the value vector and reuses it across steps, so
 * a refactorization allocates nothing.
 */
template <typename T>
class MnaAssemblerT
{
  public:
    explicit MnaAssemblerT(std::shared_ptr<const MnaPattern> pattern)
        : pat_(std::move(pattern))
    {
        panicIfNot(pat_ != nullptr, "assembler needs a pattern");
        values_.assign(pat_->csc->nnz(), T{});
    }

    /** Start assembling a matrix: clear every slot. */
    void
    beginStep()
    {
        panicIfNot(!open_, "beginStep while assembly open");
        std::fill(values_.begin(), values_.end(), T{});
        open_ = true;
    }

    /** Finish assembling; the values stay valid until beginStep(). */
    const std::vector<T> &
    commitStep()
    {
        panicIfNot(open_, "commitStep without beginStep");
        open_ = false;
        return values_;
    }

    /** @return the bound pattern. */
    const MnaPattern &pattern() const { return *pat_; }

    // --- family stamps -------------------------------------------
    // Each mirrors one dense engine loop; see the file comment for
    // the bit-compatibility contract.

    /** Resistor conductances (all engines). */
    void
    stampResistors(const Netlist &nl)
    {
        const auto &rs = nl.resistors();
        for (std::size_t i = 0; i < rs.size(); ++i)
            addPair(pat_->resistors[i], T(1.0 / rs[i].ohms));
    }

    /**
     * Switch on/off conductances.  @p closedAt maps switch index to
     * its closed state (engines differ: bitmask key, explicit
     * vector, or vector-with-initial-state fallback).
     */
    template <typename ClosedAt>
    void
    stampSwitches(const Netlist &nl, const ClosedAt &closedAt)
    {
        const auto &sw = nl.switches();
        for (std::size_t i = 0; i < sw.size(); ++i) {
            const double ohms = // vsgpu-lint: raw-ok(dimension-erased MNA solver boundary)
                closedAt(i) ? sw[i].onOhms : sw[i].offOhms;
            addPair(pat_->switches[i], T(1.0 / ohms));
        }
    }

    /** Trapezoidal capacitor companions, geq = 2C/dt (transient). */
    void
    stampCapacitorsTrapezoidal(const Netlist &nl, double dt)
    {
        const auto &cs = nl.capacitors();
        for (std::size_t i = 0; i < cs.size(); ++i)
            addPair(pat_->capacitors[i],
                    T(2.0 * cs[i].farads / dt));
    }

    /** Trapezoidal inductor companions, geq = dt/2L (transient). */
    void
    stampInductorsTrapezoidal(const Netlist &nl, double dt)
    {
        const auto &ls = nl.inductors();
        for (std::size_t i = 0; i < ls.size(); ++i)
            addPair(pat_->inductors[i],
                    T(dt / (2.0 * ls[i].henries)));
    }

    /** DC inductor shorts, 1/kDcInductorOhms (DC solve). */
    void
    stampInductorsDc(const Netlist &nl)
    {
        const auto &ls = nl.inductors();
        for (std::size_t i = 0; i < ls.size(); ++i)
            addPair(pat_->inductors[i], T(1.0 / kDcInductorOhms));
    }

    /** AC capacitor admittances +jwC (phasor solve). */
    void
    stampCapacitorsAc(const Netlist &nl, double omega)
    {
        const auto &cs = nl.capacitors();
        for (std::size_t i = 0; i < cs.size(); ++i)
            addPair(pat_->capacitors[i],
                    T{0.0, omega * cs[i].farads});
    }

    /** AC inductor admittances -j/(wL) (phasor solve). */
    void
    stampInductorsAc(const Netlist &nl, double omega)
    {
        const auto &ls = nl.inductors();
        for (std::size_t i = 0; i < ls.size(); ++i)
            addPair(pat_->inductors[i],
                    T{0.0, -1.0 / (omega * ls[i].henries)});
    }

    /**
     * Equalizer rank-one stamps, coeff_i * coeff_j * (1/Reff) with
     * the reciprocal precomputed (transient engine's form).
     */
    void
    stampEqualizersScaled(const Netlist &nl)
    {
        const auto &eqs = nl.equalizers();
        for (std::size_t i = 0; i < eqs.size(); ++i) {
            const double gEff = 1.0 / eqs[i].effOhms;
            stampEqualizerCell(i, [&](double ci, double cj) {
                return T(ci * cj * gEff);
            });
        }
    }

    /**
     * Equalizer rank-one stamps, coeff_i * coeff_j / Reff with the
     * division inline (DC and AC engines' form; can differ from the
     * scaled form by an ulp).
     */
    void
    stampEqualizersDivided(const Netlist &nl)
    {
        const auto &eqs = nl.equalizers();
        for (std::size_t i = 0; i < eqs.size(); ++i) {
            const double effOhms = eqs[i].effOhms; // vsgpu-lint: raw-ok(dimension-erased MNA solver boundary)
            stampEqualizerCell(i, [&](double ci, double cj) {
                return T(ci * cj / effOhms);
            });
        }
    }

    /** Voltage-source constraint rows (+/-1 couplings). */
    void
    stampVoltageSources(const Netlist &nl)
    {
        const auto &vs = nl.voltageSources();
        for (std::size_t k = 0; k < vs.size(); ++k) {
            const MnaPattern::VsrcSlots &s = pat_->vsrcs[k];
            if (s.pr >= 0)
                values_[static_cast<std::size_t>(s.pr)] += T(1.0);
            if (s.rp >= 0)
                values_[static_cast<std::size_t>(s.rp)] += T(1.0);
            if (s.mr >= 0)
                values_[static_cast<std::size_t>(s.mr)] -= T(1.0);
            if (s.rm >= 0)
                values_[static_cast<std::size_t>(s.rm)] -= T(1.0);
        }
    }

    /** DC leak on every node diagonal (keeps DC non-singular). */
    void
    stampNodeLeak()
    {
        for (std::int32_t slot : pat_->nodeDiag)
            values_[static_cast<std::size_t>(slot)] +=
                T(kDcLeakSiemens);
    }

  private:
    /** Two-terminal conductance stamp (aa, bb, ab, ba order). */
    void
    addPair(const MnaPattern::PairSlots &s, T g)
    {
        if (s.aa >= 0)
            values_[static_cast<std::size_t>(s.aa)] += g;
        if (s.bb >= 0)
            values_[static_cast<std::size_t>(s.bb)] += g;
        if (s.ab >= 0)
            values_[static_cast<std::size_t>(s.ab)] -= g;
        if (s.ba >= 0)
            values_[static_cast<std::size_t>(s.ba)] -= g;
    }

    /** 3x3 equalizer stamp in dense (i outer, j inner) order. */
    template <typename Term>
    void
    stampEqualizerCell(std::size_t eqIdx, const Term &term)
    {
        static constexpr double coeff[3] = {1.0, -2.0, 1.0};
        const std::array<std::int32_t, 9> &slots =
            pat_->equalizers[eqIdx];
        for (int i = 0; i < 3; ++i) {
            for (int j = 0; j < 3; ++j) {
                const std::int32_t slot =
                    slots[static_cast<std::size_t>(i * 3 + j)];
                if (slot < 0)
                    continue;
                values_[static_cast<std::size_t>(slot)] +=
                    term(coeff[i], coeff[j]);
            }
        }
    }

    std::shared_ptr<const MnaPattern> pat_;
    std::vector<T> values_;
    bool open_ = false;
};

using MnaAssembler = MnaAssemblerT<double>;
using CMnaAssembler = MnaAssemblerT<Complex>;

} // namespace vsgpu

#endif // VSGPU_CIRCUIT_STAMPING_HH
