#include "circuit/wave_writer.hh"

#include <cmath>
#include <iomanip>

#include "common/logging.hh"

namespace vsgpu
{

std::string
vcdSafeName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), 's');
    return out;
}

WaveWriter::WaveWriter(const TransientSim &sim, int stride)
    : sim_(sim), stride_(stride)
{
    panicIfNot(stride_ > 0, "wave stride must be positive");
}

int
WaveWriter::addSignal(const std::string &name, NodeId node)
{
    return addSignal(name, node, Netlist::ground);
}

int
WaveWriter::addSignal(const std::string &name, NodeId plus,
                      NodeId minus)
{
    panicIfNot(times_.empty(),
               "signals must be registered before sampling starts");
    // One printable-ASCII VCD identifier per signal.
    panicIfNot(signals_.size() < 90,
               "WaveWriter supports at most 90 signals");
    signals_.push_back({name, plus, minus,
                        sim_.solutionIndex(plus),
                        sim_.solutionIndex(minus)});
    return static_cast<int>(signals_.size()) - 1;
}

void
WaveWriter::sample()
{
    if (++sinceSample_ < stride_)
        return;
    sinceSample_ = 0;
    times_.push_back(sim_.time());
    // Stream straight from the solver's state vector (the node-id
    // checks already happened at addSignal); identical values to
    // nodeVoltage() subtraction, dense or sparse backend alike.
    const std::vector<double> &x = sim_.solution();
    for (const auto &s : signals_) {
        const double vp =
            s.plusIdx >= 0 ? x[static_cast<std::size_t>(s.plusIdx)]
                           : 0.0;
        const double vm =
            s.minusIdx >= 0 ? x[static_cast<std::size_t>(s.minusIdx)]
                            : 0.0;
        values_.push_back(vp - vm);
    }
}

double
WaveWriter::value(std::size_t sampleIdx, std::size_t signalIdx) const
{
    panicIfNot(sampleIdx < times_.size(), "sample index out of range");
    panicIfNot(signalIdx < signals_.size(),
               "signal index out of range");
    return values_[sampleIdx * signals_.size() + signalIdx];
}

double
WaveWriter::timeAt(std::size_t sampleIdx) const
{
    panicIfNot(sampleIdx < times_.size(), "sample index out of range");
    return times_[sampleIdx];
}

void
WaveWriter::writeVcd(std::ostream &os,
                     const std::string &moduleName) const
{
    os << "$timescale 1ps $end\n";
    os << "$scope module " << vcdSafeName(moduleName) << " $end\n";
    // VCD short identifiers: printable ASCII starting at '!'.
    for (std::size_t i = 0; i < signals_.size(); ++i) {
        os << "$var real 64 " << static_cast<char>('!' + i) << " "
           << vcdSafeName(signals_[i].name) << " $end\n";
    }
    os << "$upscope $end\n$enddefinitions $end\n";

    os << std::setprecision(9);
    for (std::size_t row = 0; row < times_.size(); ++row) {
        const auto ps =
            static_cast<long long>(std::llround(times_[row] * 1e12));
        os << "#" << ps << "\n";
        for (std::size_t i = 0; i < signals_.size(); ++i) {
            os << "r" << value(row, i) << " "
               << static_cast<char>('!' + i) << "\n";
        }
    }
}

void
WaveWriter::writeCsv(std::ostream &os) const
{
    os << "time_s";
    for (const auto &s : signals_)
        os << "," << s.name;
    os << "\n";
    os << std::setprecision(9);
    for (std::size_t row = 0; row < times_.size(); ++row) {
        os << times_[row];
        for (std::size_t i = 0; i < signals_.size(); ++i)
            os << "," << value(row, i);
        os << "\n";
    }
}

void
WaveWriter::clear()
{
    times_.clear();
    values_.clear();
    sinceSample_ = 0;
}

} // namespace vsgpu
