#include "circuit/ac.hh"

#include <cmath>

#include "common/logging.hh"

namespace vsgpu
{

namespace
{

/** Per-pattern right-hand-side build + solve + node-voltage fold,
 *  shared by the sparse and dense backends. */
template <typename Lu>
std::vector<std::vector<Complex>>
backSubstitute(const Lu &lu,
               const std::vector<std::vector<AcInjection>> &patterns,
               int numNodes, std::size_t n)
{
    std::vector<std::vector<Complex>> results;
    results.reserve(patterns.size());
    for (const auto &injections : patterns) {
        std::vector<Complex> rhs(n, Complex{});
        for (const auto &inj : injections) {
            panicIfNot(inj.node >= 0 && inj.node <= numNodes,
                       "AC injection at unknown node");
            if (inj.node > 0)
                rhs[static_cast<std::size_t>(inj.node - 1)] +=
                    inj.amps;
        }
        const std::vector<Complex> x = lu.solve(rhs);
        std::vector<Complex> volts(
            static_cast<std::size_t>(numNodes) + 1, Complex{});
        for (int i = 1; i <= numNodes; ++i)
            volts[static_cast<std::size_t>(i)] =
                x[static_cast<std::size_t>(i - 1)];
        results.push_back(std::move(volts));
    }
    return results;
}

} // namespace

AcAnalysis::AcAnalysis(const Netlist &netlist,
                       std::vector<bool> switchClosed,
                       SolverKind solver,
                       std::shared_ptr<const MnaPattern> pattern)
    : netlist_(netlist), switchClosed_(std::move(switchClosed)),
      solver_(solver), pattern_(std::move(pattern))
{
    const auto &switches = netlist_.switches();
    if (switchClosed_.empty()) {
        switchClosed_.resize(switches.size());
        for (std::size_t i = 0; i < switches.size(); ++i)
            switchClosed_[i] = switches[i].initiallyClosed;
    }
    panicIfNot(switchClosed_.size() == switches.size(),
               "AC switch-state size mismatch");
    if (solver_ == SolverKind::Sparse) {
        if (!pattern_)
            pattern_ = MnaPattern::build(netlist_);
        panicIfNot(pattern_->numUnknowns ==
                       netlist_.numNodes() +
                           static_cast<int>(
                               netlist_.voltageSources().size()),
                   "assembly pattern does not match the netlist");
    }
}

std::vector<Complex>
AcAnalysis::solve(double freqHz,
                  const std::vector<AcInjection> &injections) const
{
    return solveMany(freqHz, {injections}).front();
}

std::vector<std::vector<Complex>>
AcAnalysis::solveMany(
    double freqHz,
    const std::vector<std::vector<AcInjection>> &patterns) const
{
    panicIfNot(freqHz > 0.0, "AC analysis requires positive frequency");
    const int numNodes = netlist_.numNodes();
    const int numVsrc =
        static_cast<int>(netlist_.voltageSources().size());
    const std::size_t n = static_cast<std::size_t>(numNodes + numVsrc);
    const double w = 2.0 * M_PI * freqHz;

    if (solver_ == SolverKind::Sparse) {
        // Same element order and floating-point expressions as the
        // dense assembly below; see circuit/stamping.hh.
        CMnaAssembler stamper(pattern_);
        stamper.beginStep();
        stamper.stampResistors(netlist_);
        stamper.stampSwitches(netlist_, [this](std::size_t i) {
            return static_cast<bool>(switchClosed_[i]);
        });
        stamper.stampCapacitorsAc(netlist_, w);
        stamper.stampInductorsAc(netlist_, w);
        stamper.stampEqualizersDivided(netlist_);
        stamper.stampVoltageSources(netlist_);
        CSparseLu lu(pattern_->csc);
        lu.factor(stamper.commitStep());
        return backSubstitute(lu, patterns, numNodes, n);
    }

    CMatrix y(n, n);

    const auto stamp = [&](NodeId a, NodeId b, Complex admittance) {
        if (a > 0)
            y(static_cast<std::size_t>(a - 1),
              static_cast<std::size_t>(a - 1)) += admittance;
        if (b > 0)
            y(static_cast<std::size_t>(b - 1),
              static_cast<std::size_t>(b - 1)) += admittance;
        if (a > 0 && b > 0) {
            y(static_cast<std::size_t>(a - 1),
              static_cast<std::size_t>(b - 1)) -= admittance;
            y(static_cast<std::size_t>(b - 1),
              static_cast<std::size_t>(a - 1)) -= admittance;
        }
    };

    for (const auto &r : netlist_.resistors())
        stamp(r.a, r.b, Complex{1.0 / r.ohms, 0.0});

    const auto &switches = netlist_.switches();
    for (std::size_t i = 0; i < switches.size(); ++i) {
        const double ohms = switchClosed_[i] ? switches[i].onOhms
                                             : switches[i].offOhms;
        stamp(switches[i].a, switches[i].b, Complex{1.0 / ohms, 0.0});
    }

    for (const auto &c : netlist_.capacitors())
        stamp(c.a, c.b, Complex{0.0, w * c.farads});

    for (const auto &l : netlist_.inductors())
        stamp(l.a, l.b, Complex{0.0, -1.0 / (w * l.henries)});

    for (const auto &e : netlist_.equalizers()) {
        const NodeId nodes[3] = {e.top, e.mid, e.bottom};
        const double coeff[3] = {1.0, -2.0, 1.0};
        for (int i = 0; i < 3; ++i) {
            if (nodes[i] <= 0)
                continue;
            for (int j = 0; j < 3; ++j) {
                if (nodes[j] <= 0)
                    continue;
                y(static_cast<std::size_t>(nodes[i] - 1),
                  static_cast<std::size_t>(nodes[j] - 1)) +=
                    Complex{coeff[i] * coeff[j] / e.effOhms, 0.0};
            }
        }
    }

    // DC sources short for small-signal analysis (AC value 0).
    const auto &vsrc = netlist_.voltageSources();
    for (std::size_t k = 0; k < vsrc.size(); ++k) {
        const std::size_t row = static_cast<std::size_t>(numNodes) + k;
        if (vsrc[k].plus > 0) {
            const auto p = static_cast<std::size_t>(vsrc[k].plus - 1);
            y(p, row) += Complex{1.0, 0.0};
            y(row, p) += Complex{1.0, 0.0};
        }
        if (vsrc[k].minus > 0) {
            const auto m = static_cast<std::size_t>(vsrc[k].minus - 1);
            y(m, row) -= Complex{1.0, 0.0};
            y(row, m) -= Complex{1.0, 0.0};
        }
        // rhs rows for sources stay zero: AC short.
    }

    // One factorization, one back-substitution per pattern.
    return backSubstitute(LuFactor<Complex>(y), patterns, numNodes,
                          n);
}

Complex
AcAnalysis::impedanceAt(double freqHz, NodeId node) const
{
    const auto volts = solve(freqHz, {{node, Complex{1.0, 0.0}}});
    return volts[static_cast<std::size_t>(node)];
}

} // namespace vsgpu
