/**
 * @file
 * Waveform capture for transient simulations.
 *
 * Records selected node voltages every N steps and can emit them as a
 * VCD (value change dump, viewable in GTKWave) or as CSV.  Used to
 * inspect PDN transients — e.g. the Fig. 9 worst-case waveforms — at
 * full per-node resolution rather than through summary statistics.
 */

#ifndef VSGPU_CIRCUIT_WAVE_WRITER_HH
#define VSGPU_CIRCUIT_WAVE_WRITER_HH

#include <ostream>
#include <string>
#include <vector>

#include "circuit/transient.hh"

namespace vsgpu
{

/**
 * Collects voltage samples of named signals from a TransientSim.
 */
class WaveWriter
{
  public:
    /**
     * @param sim    the simulator to observe (must outlive the
     *               writer).
     * @param stride record every stride-th step.
     */
    explicit WaveWriter(const TransientSim &sim, int stride = 1);

    /**
     * Register a single-node signal (voltage to ground).
     * @return signal index.
     */
    int addSignal(const std::string &name, NodeId node);

    /**
     * Register a differential signal (voltage between two nodes),
     * e.g. an SM's layer rail.
     * @return signal index.
     */
    int addSignal(const std::string &name, NodeId plus, NodeId minus);

    /** Sample the simulator (honours the stride). Call once per
     *  sim.step(). */
    void sample();

    /** @return number of stored sample rows. */
    std::size_t numSamples() const { return times_.size(); }

    /** @return number of registered signals. */
    std::size_t numSignals() const { return signals_.size(); }

    /** @return the recorded value of a signal at a sample row. */
    double value(std::size_t sampleIdx, std::size_t signalIdx) const;

    /** @return the time of a sample row (s). */
    double timeAt(std::size_t sampleIdx) const;

    /**
     * Emit a VCD file: one real-valued variable per signal, with a
     * 1 ps timescale.
     */
    void writeVcd(std::ostream &os,
                  const std::string &moduleName = "vsgpu") const;

    /** Emit CSV: time column plus one column per signal. */
    void writeCsv(std::ostream &os) const;

    /** Drop all recorded samples (signals stay registered). */
    void clear();

  private:
    struct Signal
    {
        std::string name;
        NodeId plus;
        NodeId minus; ///< 0 (ground) for single-ended signals
        /// Solution-vector indices resolved once at registration
        /// (-1 = ground), so sample() streams straight from the
        /// solver's state vector — no per-sample node lookups or
        /// bounds checks, and no densified voltage copy.
        int plusIdx;
        int minusIdx;
    };

    const TransientSim &sim_;
    int stride_;
    int sinceSample_ = 0;
    std::vector<Signal> signals_;
    std::vector<double> times_;
    std::vector<double> values_; ///< row-major: sample x signal
};

/** Sanitize an arbitrary label into a VCD identifier-safe name. */
std::string vcdSafeName(const std::string &name);

} // namespace vsgpu

#endif // VSGPU_CIRCUIT_WAVE_WRITER_HH
