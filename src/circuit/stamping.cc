#include "circuit/stamping.hh"

namespace vsgpu
{

namespace
{

/** Matrix index of a node's voltage unknown (node 1 -> 0). */
inline int
nodeRow(NodeId node)
{
    return node - 1;
}

} // namespace

std::shared_ptr<const MnaPattern>
MnaPattern::build(const Netlist &netlist)
{
    auto pat = std::make_shared<MnaPattern>();
    pat->numNodes = netlist.numNodes();
    pat->numVsrc =
        static_cast<int>(netlist.voltageSources().size());
    pat->numUnknowns = pat->numNodes + pat->numVsrc;
    panicIfNot(pat->numNodes > 0,
               "cannot build a pattern for an empty netlist");

    CscPatternBuilder builder(pat->numUnknowns);

    const auto addPairEntries = [&](NodeId a, NodeId b) {
        if (a > 0)
            builder.add(nodeRow(a), nodeRow(a));
        if (b > 0)
            builder.add(nodeRow(b), nodeRow(b));
        if (a > 0 && b > 0) {
            builder.add(nodeRow(a), nodeRow(b));
            builder.add(nodeRow(b), nodeRow(a));
        }
    };

    for (const auto &r : netlist.resistors())
        addPairEntries(r.a, r.b);
    for (const auto &s : netlist.switches())
        addPairEntries(s.a, s.b);
    for (const auto &c : netlist.capacitors())
        addPairEntries(c.a, c.b);
    for (const auto &l : netlist.inductors())
        addPairEntries(l.a, l.b);

    for (const auto &e : netlist.equalizers()) {
        const NodeId nodes[3] = {e.top, e.mid, e.bottom};
        for (int i = 0; i < 3; ++i) {
            if (nodes[i] <= 0)
                continue;
            for (int j = 0; j < 3; ++j) {
                if (nodes[j] <= 0)
                    continue;
                builder.add(nodeRow(nodes[i]), nodeRow(nodes[j]));
            }
        }
    }

    const auto &vsrc = netlist.voltageSources();
    for (std::size_t k = 0; k < vsrc.size(); ++k) {
        const int row =
            pat->numNodes + static_cast<int>(k);
        if (vsrc[k].plus > 0) {
            builder.add(nodeRow(vsrc[k].plus), row);
            builder.add(row, nodeRow(vsrc[k].plus));
        }
        if (vsrc[k].minus > 0) {
            builder.add(nodeRow(vsrc[k].minus), row);
            builder.add(row, nodeRow(vsrc[k].minus));
        }
    }

    // Full node diagonal: the DC leak stamp touches every node, and
    // having the diagonal structural for all engines keeps one
    // pattern valid for transient, DC and AC alike.
    for (int i = 0; i < pat->numNodes; ++i)
        builder.add(i, i);

    pat->csc =
        std::make_shared<const CscPattern>(builder.compile());
    const CscPattern &csc = *pat->csc;

    const auto pairSlots = [&](NodeId a, NodeId b) {
        PairSlots s;
        if (a > 0)
            s.aa = csc.slot(nodeRow(a), nodeRow(a));
        if (b > 0)
            s.bb = csc.slot(nodeRow(b), nodeRow(b));
        if (a > 0 && b > 0) {
            s.ab = csc.slot(nodeRow(a), nodeRow(b));
            s.ba = csc.slot(nodeRow(b), nodeRow(a));
        }
        return s;
    };

    for (const auto &r : netlist.resistors())
        pat->resistors.push_back(pairSlots(r.a, r.b));
    for (const auto &s : netlist.switches())
        pat->switches.push_back(pairSlots(s.a, s.b));
    for (const auto &c : netlist.capacitors())
        pat->capacitors.push_back(pairSlots(c.a, c.b));
    for (const auto &l : netlist.inductors())
        pat->inductors.push_back(pairSlots(l.a, l.b));

    for (const auto &e : netlist.equalizers()) {
        const NodeId nodes[3] = {e.top, e.mid, e.bottom};
        std::array<std::int32_t, 9> slots;
        slots.fill(-1);
        for (int i = 0; i < 3; ++i) {
            if (nodes[i] <= 0)
                continue;
            for (int j = 0; j < 3; ++j) {
                if (nodes[j] <= 0)
                    continue;
                slots[static_cast<std::size_t>(i * 3 + j)] =
                    csc.slot(nodeRow(nodes[i]),
                             nodeRow(nodes[j]));
            }
        }
        pat->equalizers.push_back(slots);
    }

    for (std::size_t k = 0; k < vsrc.size(); ++k) {
        const int row =
            pat->numNodes + static_cast<int>(k);
        VsrcSlots s;
        if (vsrc[k].plus > 0) {
            s.pr = csc.slot(nodeRow(vsrc[k].plus), row);
            s.rp = csc.slot(row, nodeRow(vsrc[k].plus));
        }
        if (vsrc[k].minus > 0) {
            s.mr = csc.slot(nodeRow(vsrc[k].minus), row);
            s.rm = csc.slot(row, nodeRow(vsrc[k].minus));
        }
        pat->vsrcs.push_back(s);
    }

    pat->nodeDiag.resize(static_cast<std::size_t>(pat->numNodes));
    for (int i = 0; i < pat->numNodes; ++i)
        pat->nodeDiag[static_cast<std::size_t>(i)] =
            csc.slot(i, i);

    return pat;
}

} // namespace vsgpu
