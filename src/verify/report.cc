#include "verify/verify.hh"

#include <sstream>

namespace vsgpu::verify
{

std::string_view
severityName(Severity severity)
{
    switch (severity)
    {
    case Severity::Warning:
        return "warning";
    case Severity::Error:
        return "error";
    }
    return "unknown";
}

void
Report::add(std::string id, Severity severity, std::string subject,
            std::string message)
{
    diags.push_back(Diagnostic{std::move(id), severity, std::move(subject),
                               std::move(message)});
}

void
Report::merge(const Report &other)
{
    diags.insert(diags.end(), other.diags.begin(), other.diags.end());
}

std::size_t
Report::errorCount() const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diags)
        if (d.severity == Severity::Error)
            ++n;
    return n;
}

bool
Report::has(std::string_view id) const
{
    return count(id) > 0;
}

std::size_t
Report::count(std::string_view id) const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diags)
        if (d.id == id)
            ++n;
    return n;
}

std::string
formatReport(const Report &report)
{
    std::ostringstream os;
    for (const Diagnostic &d : report.diags)
    {
        os << d.id << " [" << severityName(d.severity) << "] " << d.subject
           << ": " << d.message << '\n';
    }
    return os.str();
}

} // namespace vsgpu::verify
