/**
 * @file
 * Numeric conditioning audit: factorability and condition estimate of
 * the full MNA system the transient engine will solve, and the
 * configured timestep against the dominant PDN resonance found by AC
 * analysis (sampling accuracy + trapezoidal ringing risk).
 */

#include <cmath>
#include <sstream>
#include <vector>

#include "circuit/ac.hh"
#include "numeric/matrix.hh"
#include "verify/verify.hh"

namespace vsgpu::verify
{
namespace
{

/**
 * Non-panicking inverse via partial-pivot Gauss-Jordan.  The solver's
 * own LuFactor panics on a singular matrix (a programming-error
 * contract); the verifier must instead turn singularity into a
 * diagnostic, so it carries its own elimination.
 *
 * @return false when a pivot vanishes (singular matrix).
 */
bool
tryInverse(Matrix a, Matrix &inv)
{
    const std::size_t n = a.rows();
    inv = Matrix::identity(n);
    for (std::size_t k = 0; k < n; ++k)
    {
        std::size_t pivot = k;
        double best = std::fabs(a(k, k));
        for (std::size_t i = k + 1; i < n; ++i)
        {
            const double cand = std::fabs(a(i, k));
            if (cand > best)
            {
                best = cand;
                pivot = i;
            }
        }
        if (!(best > 0.0) || !std::isfinite(best))
            return false;
        if (pivot != k)
        {
            for (std::size_t j = 0; j < n; ++j)
            {
                std::swap(a(k, j), a(pivot, j));
                std::swap(inv(k, j), inv(pivot, j));
            }
        }
        const double diag = a(k, k);
        for (std::size_t j = 0; j < n; ++j)
        {
            a(k, j) /= diag;
            inv(k, j) /= diag;
        }
        for (std::size_t i = 0; i < n; ++i)
        {
            if (i == k)
                continue;
            const double factor = a(i, k);
            if (factor == 0.0)
                continue;
            for (std::size_t j = 0; j < n; ++j)
            {
                a(i, j) -= factor * a(k, j);
                inv(i, j) -= factor * inv(k, j);
            }
        }
    }
    return true;
}

} // namespace

Report
numericAudit(const Netlist &net, const NumericAuditOptions &opts)
{
    Report report;
    const int numNodes = net.numNodes();
    if (numNodes == 0)
        return report;
    const double dt = opts.dt.raw(); // vsgpu-lint: raw-ok(companion assembly boundary)
    if (!(dt > 0.0) || !std::isfinite(dt))
    {
        report.add("num.nonpositive-dt", Severity::Error, "timestep",
                   "transient dt must be positive and finite");
        return report;
    }

    // Full MNA system at one trapezoidal step: node conductances (with
    // Norton companion terms for C and L) plus one branch row per
    // ideal voltage source.  Assembled here independently of the
    // transient engine's stamping code.
    const std::size_t nodeCount = static_cast<std::size_t>(numNodes);
    const std::size_t order = nodeCount + net.voltageSources().size();
    Matrix a(order, order);
    const auto ix = [](NodeId n) { return static_cast<std::size_t>(n - 1); };
    const auto stamp = [&a, &ix](NodeId p, NodeId q, double cond) {
        if (p != Netlist::ground)
            a(ix(p), ix(p)) += cond;
        if (q != Netlist::ground)
            a(ix(q), ix(q)) += cond;
        if (p != Netlist::ground && q != Netlist::ground)
        {
            a(ix(p), ix(q)) -= cond;
            a(ix(q), ix(p)) -= cond;
        }
    };
    for (const auto &r : net.resistors())
        stamp(r.a, r.b, 1.0 / r.ohms);
    for (const auto &sw : net.switches())
        stamp(sw.a, sw.b,
              1.0 / (sw.initiallyClosed ? sw.onOhms : sw.offOhms));
    for (const auto &c : net.capacitors())
        stamp(c.a, c.b, 2.0 * c.farads / dt);
    for (const auto &l : net.inductors())
        stamp(l.a, l.b, dt / (2.0 * l.henries));
    for (const auto &eq : net.equalizers())
    {
        const double cond = 1.0 / eq.effOhms;
        const NodeId nodes[3] = {eq.top, eq.mid, eq.bottom};
        const double weights[3] = {1.0, -2.0, 1.0};
        for (int i = 0; i < 3; ++i)
        {
            if (nodes[i] == Netlist::ground)
                continue;
            for (int j = 0; j < 3; ++j)
            {
                if (nodes[j] == Netlist::ground)
                    continue;
                a(ix(nodes[i]), ix(nodes[j])) +=
                    cond * weights[i] * weights[j];
            }
        }
    }
    for (std::size_t k = 0; k < net.voltageSources().size(); ++k)
    {
        const auto &v = net.voltageSources()[k];
        const std::size_t row = nodeCount + k;
        if (v.plus != Netlist::ground)
        {
            a(row, ix(v.plus)) += 1.0;
            a(ix(v.plus), row) += 1.0;
        }
        if (v.minus != Netlist::ground)
        {
            a(row, ix(v.minus)) -= 1.0;
            a(ix(v.minus), row) -= 1.0;
        }
    }

    Matrix inv;
    if (!tryInverse(a, inv))
    {
        report.add("num.mna-singular", Severity::Error, "MNA system",
                   "full MNA matrix (conductances + source rows) does "
                   "not factor; the transient solve would fail");
        return report;
    }
    const double cond = a.normInf() * inv.normInf();
    if (!std::isfinite(cond) || cond > opts.conditionLimit)
    {
        std::ostringstream os;
        os << "infinity-norm condition estimate " << cond
           << " exceeds the limit " << opts.conditionLimit
           << "; expect heavy round-off in the transient solve";
        report.add("num.ill-conditioned", Severity::Warning, "MNA system",
                   os.str());
    }

    // Dominant resonance vs timestep.  Scan |Z(f)| at the probe node
    // over a log grid and compare the resonance frequency against dt.
    // The scan range is a property of the circuit, not of dt, so an
    // oversized step is measured against the real pole rather than
    // against its own Nyquist limit.  Only an *interior* local
    // maximum counts as a resonance: PDN impedance rises
    // monotonically toward the package-inductance asymptote at the
    // high end of the scan, and that edge slope is not a pole the
    // transient step must resolve.
    if (opts.probeNode > 0 && opts.probeNode <= numNodes &&
        opts.scanPoints >= 3)
    {
        const AcAnalysis ac(net);
        const double lo = opts.scanLoHz.raw(); // vsgpu-lint: raw-ok(AC solver boundary)
        const double hi = opts.scanHiHz.raw(); // vsgpu-lint: raw-ok(AC solver boundary)
        const double ratio = hi / lo;
        std::vector<double> freqs(
            static_cast<std::size_t>(opts.scanPoints));
        std::vector<double> mags(
            static_cast<std::size_t>(opts.scanPoints));
        for (int i = 0; i < opts.scanPoints; ++i)
        {
            const double t = static_cast<double>(i) /
                             static_cast<double>(opts.scanPoints - 1);
            const std::size_t k = static_cast<std::size_t>(i);
            freqs[k] = lo * std::pow(ratio, t);
            mags[k] =
                std::abs(ac.impedanceAt(freqs[k], opts.probeNode));
        }
        double peakHz = 0.0;
        double peakOhms = -1.0;
        for (int i = 1; i + 1 < opts.scanPoints; ++i)
        {
            const std::size_t k = static_cast<std::size_t>(i);
            if (mags[k] >= mags[k - 1] && mags[k] >= mags[k + 1] &&
                mags[k] > peakOhms)
            {
                peakOhms = mags[k];
                peakHz = freqs[k];
            }
        }
        if (peakHz > 0.0)
        {
            const double samplesPerPeriod = 1.0 / (dt * peakHz);
            std::ostringstream os;
            os << "dominant resonance " << peakHz / 1e6 << " MHz ("
               << peakOhms << " ohm peak) sampled " << samplesPerPeriod
               << "x per period at dt = " << dt * 1e9 << " ns";
            if (samplesPerPeriod < 2.0)
                report.add("num.dt-undersamples-pole", Severity::Error,
                           "timestep",
                           os.str() + "; below the Nyquist floor of 2, "
                                      "the step cannot represent the "
                                      "pole");
            else if (samplesPerPeriod < opts.minSamplesPerPeriod)
            {
                std::ostringstream floor;
                floor << "; accuracy floor is "
                      << opts.minSamplesPerPeriod;
                report.add("num.dt-undersamples-pole",
                           Severity::Warning, "timestep",
                           os.str() + floor.str());
            }
            const double halfOmegaDt = M_PI * peakHz * dt;
            if (halfOmegaDt > 1.0)
            {
                std::ostringstream ring;
                ring << "omega*dt/2 = " << halfOmegaDt
                     << " at the dominant resonance: the trapezoidal "
                        "rule maps it to a negative-real discrete pole "
                        "(step-to-step ringing)";
                report.add("num.trapezoidal-ringing", Severity::Warning,
                           "timestep", ring.str());
            }
        }
    }

    return report;
}

} // namespace vsgpu::verify
