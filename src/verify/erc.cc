/**
 * @file
 * Electrical rule check (ERC) over a constructed netlist.
 *
 * The checks are deliberately independent of the transient and AC
 * engines: connectivity is computed with a union-find over DC-path
 * elements, and the passivity/SPD check re-assembles the trapezoidal
 * MNA conductance block from the element lists instead of reusing the
 * solver's stamping code, so a stamping bug in either place shows up
 * as a disagreement.
 */

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <sstream>
#include <vector>

#include "numeric/matrix.hh"
#include "verify/verify.hh"

namespace vsgpu::verify
{
namespace
{

/** Positive, finite element value? (zero/negative/NaN/Inf all fail) */
bool
validValue(double v)
{
    return std::isfinite(v) && v > 0.0;
}

std::string
nodeName(const Netlist &net, NodeId n)
{
    if (n == Netlist::ground)
        return "ground";
    const std::string &label = net.nodeLabel(n);
    std::ostringstream os;
    os << "node#" << n;
    if (!label.empty())
        os << " (" << label << ")";
    return os.str();
}

/** Union-find over node ids 0..numNodes (0 = ground). */
class UnionFind
{
  public:
    explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n))
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    int
    find(int x)
    {
        while (parent_[static_cast<std::size_t>(x)] != x)
        {
            parent_[static_cast<std::size_t>(x)] =
                parent_[static_cast<std::size_t>(
                    parent_[static_cast<std::size_t>(x)])];
            x = parent_[static_cast<std::size_t>(x)];
        }
        return x;
    }

    void
    unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a != b)
            parent_[static_cast<std::size_t>(a)] = b;
    }

  private:
    std::vector<int> parent_;
};

std::string
pairName(const Netlist &net, NodeId a, NodeId b)
{
    return nodeName(net, a) + " -- " + nodeName(net, b);
}

/** Attempt an in-place Cholesky factorization; true on success. */
bool
choleskySpd(Matrix &m)
{
    const std::size_t n = m.rows();
    for (std::size_t j = 0; j < n; ++j)
    {
        double d = m(j, j);
        for (std::size_t k = 0; k < j; ++k)
            d -= m(j, k) * m(j, k);
        if (!(d > 0.0) || !std::isfinite(d))
            return false;
        const double root = std::sqrt(d);
        m(j, j) = root;
        for (std::size_t i = j + 1; i < n; ++i)
        {
            double s = m(i, j);
            for (std::size_t k = 0; k < j; ++k)
                s -= m(i, k) * m(j, k);
            m(i, j) = s / root;
        }
    }
    return true;
}

} // namespace

Report
ercAudit(const Netlist &net, const ErcOptions &opts)
{
    Report report;
    const int numNodes = net.numNodes();
    // Terminal count per node (all element kinds).
    std::vector<int> degree(static_cast<std::size_t>(numNodes) + 1, 0);
    const auto touch = [&degree](NodeId n) {
        degree[static_cast<std::size_t>(n)] += 1;
    };
    // DC connectivity: elements that carry DC current.  Capacitors are
    // DC-open and current sources enforce no potential, so neither
    // rescues a node from floating.
    UnionFind dc(numNodes + 1);

    bool valueError = false;
    const auto badValue = [&](const std::string &id,
                              const std::string &subject, double value,
                              const char *what) {
        std::ostringstream os;
        os << what << " value " << value
           << " must be positive and finite";
        report.add(id, Severity::Error, subject, os.str());
        valueError = true;
    };

    // Duplicate stamps: identical element type across the same
    // unordered node pair.  (Parallel resistors are a legal circuit,
    // but this model builds each physical element exactly once, so a
    // repeat is almost always a double-stamp bug.)
    std::map<std::tuple<char, NodeId, NodeId>, int> stampCount;
    const auto countStamp = [&stampCount](char kind, NodeId a, NodeId b) {
        const auto key = std::make_tuple(kind, std::min(a, b),
                                         std::max(a, b));
        return ++stampCount[key];
    };

    for (std::size_t i = 0; i < net.resistors().size(); ++i)
    {
        const auto &r = net.resistors()[i];
        const std::string subject =
            r.name.empty() ? "R#" + std::to_string(i) : "R " + r.name;
        touch(r.a);
        touch(r.b);
        if (!validValue(r.ohms))
            badValue("erc.nonpositive-resistance", subject, r.ohms,
                     "resistance");
        if (r.a == r.b)
            report.add("erc.self-loop", Severity::Warning, subject,
                       "both terminals on " + nodeName(net, r.a));
        else
        {
            dc.unite(r.a, r.b);
            if (countStamp('R', r.a, r.b) == 2)
                report.add("erc.duplicate-element", Severity::Warning,
                           subject,
                           "repeated resistor stamp across " +
                               pairName(net, r.a, r.b));
        }
    }

    for (std::size_t i = 0; i < net.capacitors().size(); ++i)
    {
        const auto &c = net.capacitors()[i];
        const std::string subject = "C#" + std::to_string(i);
        touch(c.a);
        touch(c.b);
        if (!validValue(c.farads))
            badValue("erc.nonpositive-capacitance", subject, c.farads,
                     "capacitance");
        if (c.a == c.b)
            report.add("erc.self-loop", Severity::Warning, subject,
                       "both terminals on " + nodeName(net, c.a));
        else if (countStamp('C', c.a, c.b) == 2)
            report.add("erc.duplicate-element", Severity::Warning, subject,
                       "repeated capacitor stamp across " +
                           pairName(net, c.a, c.b));
    }

    for (std::size_t i = 0; i < net.inductors().size(); ++i)
    {
        const auto &l = net.inductors()[i];
        const std::string subject = "L#" + std::to_string(i);
        touch(l.a);
        touch(l.b);
        if (!validValue(l.henries))
            badValue("erc.nonpositive-inductance", subject, l.henries,
                     "inductance");
        if (l.a == l.b)
            report.add("erc.self-loop", Severity::Warning, subject,
                       "both terminals on " + nodeName(net, l.a));
        else
        {
            dc.unite(l.a, l.b);
            if (countStamp('L', l.a, l.b) == 2)
                report.add("erc.duplicate-element", Severity::Warning,
                           subject,
                           "repeated inductor stamp across " +
                               pairName(net, l.a, l.b));
        }
    }

    std::map<std::pair<NodeId, NodeId>, int> vsourcePairs;
    for (std::size_t i = 0; i < net.voltageSources().size(); ++i)
    {
        const auto &v = net.voltageSources()[i];
        const std::string subject = "V#" + std::to_string(i);
        touch(v.plus);
        touch(v.minus);
        if (!std::isfinite(v.volts))
        {
            badValue("erc.nonfinite-source", subject, v.volts, "source");
        }
        if (v.plus == v.minus)
        {
            // The branch constraint degenerates to 0 = volts: singular
            // MNA even for volts == 0.
            report.add("erc.shorted-voltage-source", Severity::Error,
                       subject,
                       "both terminals on " + nodeName(net, v.plus));
            continue;
        }
        dc.unite(v.plus, v.minus);
        const auto key = std::make_pair(std::min(v.plus, v.minus),
                                        std::max(v.plus, v.minus));
        if (++vsourcePairs[key] == 2)
            report.add("erc.parallel-voltage-sources", Severity::Error,
                       subject,
                       "second ideal source across " +
                           pairName(net, v.plus, v.minus) +
                           " over-constrains the MNA system");
    }

    for (std::size_t i = 0; i < net.currentSources().size(); ++i)
    {
        const auto &s = net.currentSources()[i];
        const std::string subject =
            s.name.empty() ? "I#" + std::to_string(i) : "I " + s.name;
        touch(s.from);
        touch(s.to);
        if (!std::isfinite(s.amps))
            badValue("erc.nonfinite-source", subject, s.amps, "source");
        if (s.from == s.to)
            report.add("erc.self-loop", Severity::Warning, subject,
                       "both terminals on " + nodeName(net, s.from));
    }

    for (std::size_t i = 0; i < net.switches().size(); ++i)
    {
        const auto &sw = net.switches()[i];
        const std::string subject = "SW#" + std::to_string(i);
        touch(sw.a);
        touch(sw.b);
        if (!validValue(sw.onOhms) || !validValue(sw.offOhms))
            badValue("erc.nonpositive-switch-resistance", subject,
                     validValue(sw.onOhms) ? sw.offOhms : sw.onOhms,
                     "switch resistance");
        if (sw.a == sw.b)
            report.add("erc.self-loop", Severity::Warning, subject,
                       "both terminals on " + nodeName(net, sw.a));
        else
            // Both switch states are finite resistances, so a switch is
            // always a DC path.
            dc.unite(sw.a, sw.b);
    }

    for (std::size_t i = 0; i < net.equalizers().size(); ++i)
    {
        const auto &eq = net.equalizers()[i];
        const std::string subject =
            eq.name.empty() ? "EQ#" + std::to_string(i) : "EQ " + eq.name;
        touch(eq.top);
        touch(eq.mid);
        touch(eq.bottom);
        if (!validValue(eq.effOhms))
            badValue("erc.nonpositive-equalizer-resistance", subject,
                     eq.effOhms, "equalizer effective resistance");
        if (eq.top == eq.mid || eq.mid == eq.bottom ||
            eq.top == eq.bottom)
            report.add("erc.self-loop", Severity::Warning, subject,
                       "coincident terminals " +
                           nodeName(net, eq.top) + ", " +
                           nodeName(net, eq.mid) + ", " +
                           nodeName(net, eq.bottom));
        dc.unite(eq.top, eq.mid);
        dc.unite(eq.mid, eq.bottom);
    }

    // Connectivity findings per node.
    const int groundRoot = dc.find(Netlist::ground);
    for (NodeId n = 1; n <= numNodes; ++n)
    {
        const int deg = degree[static_cast<std::size_t>(n)];
        if (deg == 0)
        {
            report.add("erc.unused-node", Severity::Warning,
                       nodeName(net, n),
                       "allocated but no element terminal touches it");
            continue;
        }
        if (deg == 1)
            report.add("erc.dangling-node", Severity::Warning,
                       nodeName(net, n),
                       "only one element terminal touches it");
        if (dc.find(n) != groundRoot)
            report.add("erc.floating-node", Severity::Error,
                       nodeName(net, n),
                       "no DC path (resistor/inductor/voltage source/"
                       "switch/equalizer) to ground; the DC operating "
                       "point is singular");
    }

    // Passivity / SPD of the node-conductance block, assembled
    // independently with trapezoidal companion conductances.  Skipped
    // when an element value is already bad (the Cholesky failure would
    // only restate the nonpositive-value error) or a node floats (the
    // block is structurally singular, already reported).
    if (!valueError && !report.has("erc.floating-node") && numNodes > 0)
    {
        const double dt = opts.dt.raw(); // vsgpu-lint: raw-ok(companion assembly boundary)
        const auto ix = [](NodeId n) {
            return static_cast<std::size_t>(n - 1);
        };
        Matrix g(static_cast<std::size_t>(numNodes),
                 static_cast<std::size_t>(numNodes));
        const auto stamp = [&g, &ix](NodeId a, NodeId b, double cond) {
            if (a != Netlist::ground)
                g(ix(a), ix(a)) += cond;
            if (b != Netlist::ground)
                g(ix(b), ix(b)) += cond;
            if (a != Netlist::ground && b != Netlist::ground)
            {
                g(ix(a), ix(b)) -= cond;
                g(ix(b), ix(a)) -= cond;
            }
        };
        for (const auto &r : net.resistors())
            stamp(r.a, r.b, 1.0 / r.ohms);
        for (const auto &sw : net.switches())
            stamp(sw.a, sw.b,
                  1.0 / (sw.initiallyClosed ? sw.onOhms : sw.offOhms));
        for (const auto &c : net.capacitors())
            stamp(c.a, c.b, 2.0 * c.farads / dt);
        for (const auto &l : net.inductors())
            stamp(l.a, l.b, dt / (2.0 * l.henries));
        for (const auto &eq : net.equalizers())
        {
            // Rank-one stamp (1/Reff) v v^T with v = (1, -2, 1) over
            // (top, mid, bottom); symmetric positive semidefinite.
            const double cond = 1.0 / eq.effOhms;
            const NodeId nodes[3] = {eq.top, eq.mid, eq.bottom};
            const double weights[3] = {1.0, -2.0, 1.0};
            for (int i = 0; i < 3; ++i)
            {
                if (nodes[i] == Netlist::ground)
                    continue;
                for (int j = 0; j < 3; ++j)
                {
                    if (nodes[j] == Netlist::ground)
                        continue;
                    g(ix(nodes[i]), ix(nodes[j])) +=
                        cond * weights[i] * weights[j];
                }
            }
        }
        if (!choleskySpd(g))
            report.add("erc.mna-not-spd", Severity::Error,
                       "MNA conductance block",
                       "re-assembled trapezoidal conductance matrix is "
                       "not symmetric positive definite: some stamp "
                       "injects energy (non-passive model)");
    }

    return report;
}

} // namespace vsgpu::verify
