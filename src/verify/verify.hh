/**
 * @file
 * vsgpu model verification — static analysis of a constructed
 * electrical/control model, run before any transient simulation.
 *
 * Three diagnostic families, in the SPICE-ERC / design-rule-check
 * tradition:
 *
 *   erc.*   electrical rule checks over a Netlist: ground
 *           reachability, dangling nodes, zero/negative or non-finite
 *           element values, duplicate stamps, and symmetric positive
 *           definiteness of the independently re-assembled MNA
 *           conductance block (passivity).
 *   num.*   numeric conditioning of the transient solve: MNA
 *           singularity and condition-number estimate, and the
 *           dominant PDN resonance from AC analysis against the
 *           configured timestep (sampling accuracy and trapezoidal
 *           ringing risk).
 *   ctl.*   discrete-time health of the smoothing loop: Jury
 *           stability test of the per-mode closed loop at the
 *           configured sample period and latency, gain/phase-margin
 *           floors, and the detector-resolution dead-band check.
 *
 * Every diagnostic carries a stable dotted id (e.g.
 * "erc.floating-node") that tests and the vsgpu_verify baseline key
 * on, a severity, and a message with the offending numbers.
 * Severity::Error marks a model that is malformed (the solve would
 * panic or silently produce garbage); Severity::Warning marks a
 * suspicious-but-runnable model, including the paper-faithful
 * operating points that exceed the linear stability bound on purpose
 * (frozen in tools/verify/verify_baseline.txt with rationale).
 *
 * The audits are read-only: running them never changes simulation
 * results.  See docs/model_verification.md for the catalog.
 */

#ifndef VSGPU_VERIFY_VERIFY_HH
#define VSGPU_VERIFY_VERIFY_HH

#include <string>
#include <string_view>
#include <vector>

#include "circuit/netlist.hh"
#include "common/units.hh"
#include "control/controller.hh"

namespace vsgpu::verify
{

/** How bad a finding is; Error gates a run, Warning is reported. */
enum class Severity
{
    Warning, ///< suspicious but runnable (CLI red unless baselined)
    Error,   ///< malformed model; the simulation must not start
};

/** @return printable severity name. */
std::string_view severityName(Severity severity);

/** One verifier finding. */
struct Diagnostic
{
    std::string id; ///< stable dotted id, e.g. "erc.floating-node"
    Severity severity = Severity::Warning;
    std::string subject; ///< node / element / config the finding is on
    std::string message; ///< detail with the offending numbers
};

/** Ordered collection of findings from one or more audits. */
struct Report
{
    std::vector<Diagnostic> diags;

    /** Append one finding. */
    void add(std::string id, Severity severity, std::string subject,
             std::string message);

    /** Append every finding of @p other. */
    void merge(const Report &other);

    /** @return number of Error-severity findings. */
    std::size_t errorCount() const;

    /** @return true when any finding is an Error. */
    bool hasErrors() const { return errorCount() > 0; }

    /** @return true when any finding carries @p id. */
    bool has(std::string_view id) const;

    /** @return count of findings carrying @p id. */
    std::size_t count(std::string_view id) const;
};

/** Multi-line human-readable rendering ("id [severity] subject: ..."). */
std::string formatReport(const Report &report);

// ---------------------------------------------------------------------
// ERC family.

/** Knobs of the electrical rule check. */
struct ErcOptions
{
    /** Timestep for the trapezoidal companion conductances used in
     *  the SPD/passivity check of the MNA conductance block. */
    Seconds dt = config::clockPeriod;
};

/**
 * Electrical rule check over a constructed netlist.  Emits:
 *   erc.floating-node        no DC path (R/L/source/switch/equalizer)
 *                            from the node to ground            [Error]
 *   erc.unused-node          allocated node with no terminals  [Warning]
 *   erc.dangling-node        node with exactly one terminal    [Warning]
 *   erc.nonpositive-resistance / -capacitance / -inductance /
 *   erc.nonpositive-switch-resistance /
 *   erc.nonpositive-equalizer-resistance
 *                            zero, negative, or non-finite value [Error]
 *   erc.shorted-voltage-source  both terminals on one node       [Error]
 *   erc.parallel-voltage-sources  two sources across one pair    [Error]
 *   erc.self-loop            passive element with a == b        [Warning]
 *   erc.duplicate-element    identical-type stamp repeated
 *                            across the same node pair          [Warning]
 *   erc.mna-not-spd          independently re-assembled MNA
 *                            conductance block (with trapezoidal
 *                            companion terms) fails Cholesky     [Error]
 */
Report ercAudit(const Netlist &net, const ErcOptions &opts = {});

// ---------------------------------------------------------------------
// Numeric family.

/** Knobs of the numeric audit. */
struct NumericAuditOptions
{
    /** Configured transient timestep. */
    Seconds dt = config::clockPeriod;

    /** Node probed for the impedance scan; < 0 disables the scan. */
    NodeId probeNode = -1;

    /** Condition-number estimate above this is flagged. */
    double conditionLimit = 1e12;

    /** Accuracy floor: samples per dominant-resonance period. */
    double minSamplesPerPeriod = 8.0;

    /** Impedance scan range (log grid). */
    Hertz scanLoHz = 1.0_MHz;
    Hertz scanHiHz = 10.0_GHz;
    int scanPoints = 40;
};

/**
 * Numeric conditioning audit.  Emits:
 *   num.mna-singular         the full MNA matrix (conductances +
 *                            source rows) does not factor          [Error]
 *   num.ill-conditioned      condition estimate above the limit  [Warning]
 *   num.dt-undersamples-pole fewer than minSamplesPerPeriod steps
 *                            per dominant-resonance period
 *                            (Error when below 2 — the step cannot
 *                            represent the pole at all)
 *   num.trapezoidal-ringing  omega * dt / 2 > 1 at the dominant
 *                            resonance: the trapezoidal companion
 *                            maps the pole to a negative-real
 *                            discrete pole (cycle-level ringing) [Warning]
 */
Report numericAudit(const Netlist &net,
                    const NumericAuditOptions &opts = {});

// ---------------------------------------------------------------------
// Control family.

/** Inputs to the control-loop audit. */
struct ControlAuditInputs
{
    /** The smoothing-controller configuration to audit. */
    ControllerConfig controller;

    /** Per-layer boundary-rail capacitance (decap + CR-IVR fly). */
    Farads boundaryCap = Farads{4.0 * 100e-9};

    /** Stacking geometry (gain/capacitance aggregation). */
    int numLayers = config::numLayers;
    int smsPerLayer = config::smsPerLayer;

    /** Margin floors (linear gain factor / degrees). */
    double gainMarginFloor = 2.0;
    double phaseMarginFloorDeg = 30.0;
};

/**
 * Discrete-time audit of the smoothing loop.  Emits:
 *   ctl.nonpositive-period   control period of zero cycles        [Error]
 *   ctl.deadband             detector resolution coarser than the
 *                            nominal-to-threshold actuation band  [Error]
 *   ctl.latency-order        detector latency exceeds the total
 *                            loop latency                       [Warning]
 *   ctl.jury-unstable        a Laplacian mode of the delayed
 *                            discrete PI loop fails the Jury
 *                            stability test                     [Warning]
 *   ctl.margin-low           Jury-stable but gain or phase margin
 *                            below the configured floor         [Warning]
 */
Report controlAudit(const ControlAuditInputs &in);

/**
 * Jury stability test: true iff every root of
 *   a[0] z^n + a[1] z^(n-1) + ... + a[n]
 * lies strictly inside the unit circle (marginal roots count as
 * unstable).  Exposed for direct testing against the companion-matrix
 * eigenvalue route.
 */
bool juryStable(const std::vector<double> &coeffs);

} // namespace vsgpu::verify

#endif // VSGPU_VERIFY_VERIFY_HH
