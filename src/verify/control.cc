/**
 * @file
 * Discrete-time audit of the voltage-smoothing loop.
 *
 * The boundary-rail dynamics decouple along the eigenvectors of the
 * 1-D Dirichlet Laplacian (three boundary rails for a four-layer
 * stack), so the delayed sampled PI loop reduces per mode to the
 * scalar recurrence
 *
 *   v[n+1] = v[n] - g v[n-d] - h a[n-d],   a[n+1] = a[n] + v[n],
 *
 * with loop gain g = T k mu / (C Vnom) (and h the integral analog),
 * sample period T, per-layer aggregate gain k, boundary capacitance C,
 * and d whole periods of actuation delay.  Its characteristic
 * polynomial
 *
 *   z^d (z - 1)^2 + g (z - 1) + h = 0
 *
 * is checked per mode with the Jury (Schur-Cohn) test; when every
 * mode is stable the loop transfer L(z) = z^-d (g (z-1) + h)/(z-1)^2
 * is swept below Nyquist for gain/phase margins.
 */

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <sstream>
#include <vector>

#include "verify/verify.hh"

namespace vsgpu::verify
{
namespace
{

/** Evaluate the polynomial at a real point (coeffs highest first). */
double
polyAt(const std::vector<double> &a, double x)
{
    double acc = 0.0;
    for (const double c : a)
        acc = acc * x + c;
    return acc;
}

/**
 * Characteristic polynomial of one delayed PI mode, coefficients
 * highest-degree first.  h == 0 drops the integrator state.
 */
std::vector<double>
modePolynomial(double g, double h, int delayPeriods)
{
    const std::size_t d = static_cast<std::size_t>(delayPeriods);
    if (h == 0.0)
    {
        // z^(d+1) - z^d + g
        std::vector<double> a(d + 2, 0.0);
        a[0] = 1.0;
        a[1] = -1.0;
        a[d + 1] = g;
        return a;
    }
    // z^(d+2) - 2 z^(d+1) + z^d + g z + (h - g)
    std::vector<double> a(d + 3, 0.0);
    a[0] = 1.0;
    a[1] = -2.0;
    a[2] = 1.0;
    a[d + 1] += g;
    a[d + 2] += h - g;
    return a;
}

/** Gain/phase margins of one mode's loop transfer below Nyquist. */
struct Margins
{
    double gain = std::numeric_limits<double>::infinity();
    double phaseDeg = std::numeric_limits<double>::infinity();
};

Margins
loopMargins(double g, double h, int delayPeriods)
{
    Margins m;
    const int points = 720;
    double prevMag = 0.0;
    double prevPhase = 0.0;
    bool first = true;
    for (int i = 1; i < points; ++i)
    {
        const double theta =
            M_PI * static_cast<double>(i) / static_cast<double>(points);
        const std::complex<double> z = std::polar(1.0, theta);
        const std::complex<double> zm1 = z - 1.0;
        const std::complex<double> loop =
            std::polar(1.0, -theta * static_cast<double>(delayPeriods)) *
            (g * zm1 + h) / (zm1 * zm1);
        const double mag = std::abs(loop);
        double phase = std::arg(loop);
        if (!first)
        {
            // Unwrap: keep the phase continuous with the previous
            // grid point so crossing detection sees no fake jumps.
            while (phase - prevPhase > M_PI)
                phase -= 2.0 * M_PI;
            while (phase - prevPhase < -M_PI)
                phase += 2.0 * M_PI;
            // Phase crossover (-180 deg): gain margin 1/|L|.
            const double prevRel = prevPhase + M_PI;
            const double rel = phase + M_PI;
            if ((prevRel > 0.0) != (rel > 0.0) && prevRel != rel)
            {
                const double t = prevRel / (prevRel - rel);
                const double magAt = prevMag + t * (mag - prevMag);
                if (magAt > 0.0)
                    m.gain = std::min(m.gain, 1.0 / magAt);
            }
            // Gain crossover (|L| = 1): phase margin 180 + arg.
            if ((prevMag > 1.0) != (mag > 1.0) && prevMag != mag)
            {
                const double t = (prevMag - 1.0) / (prevMag - mag);
                const double phaseAt =
                    prevPhase + t * (phase - prevPhase);
                m.phaseDeg = std::min(
                    m.phaseDeg, 180.0 + phaseAt * 180.0 / M_PI);
            }
        }
        prevMag = mag;
        prevPhase = phase;
        first = false;
    }
    return m;
}

} // namespace

bool
juryStable(const std::vector<double> &coeffs)
{
    std::vector<double> a = coeffs;
    while (!a.empty() && a.front() == 0.0)
        a.erase(a.begin());
    if (a.size() <= 1)
        return true; // constant: no roots at all
    for (const double c : a)
        if (!std::isfinite(c))
            return false;
    if (a.front() < 0.0)
        for (double &c : a)
            c = -c;

    // Quick necessary conditions: a(1) > 0 and (-1)^n a(-1) > 0.
    const std::size_t n = a.size() - 1;
    if (polyAt(a, 1.0) <= 0.0)
        return false;
    const double atMinus = polyAt(a, -1.0);
    if (((n % 2 == 0) ? atMinus : -atMinus) <= 0.0)
        return false;

    // Schur-Cohn reduction: a(z) is stable iff |a_n| < a_0 and the
    // reduced polynomial b_k = a_0 a_k - a_n a_{n-k} (degree n-1) is
    // stable.  Marginal roots (equality) count as unstable.
    while (a.size() > 1)
    {
        const std::size_t deg = a.size() - 1;
        const double lead = a.front();
        const double tail = a.back();
        if (std::fabs(tail) >= std::fabs(lead))
            return false;
        std::vector<double> b(deg);
        for (std::size_t k = 0; k < deg; ++k)
            b[k] = lead * a[k] - tail * a[deg - k];
        a = std::move(b);
    }
    return true;
}

Report
controlAudit(const ControlAuditInputs &in)
{
    Report report;
    const ControllerConfig &c = in.controller;

    if (c.period == 0)
    {
        report.add("ctl.nonpositive-period", Severity::Error,
                   "controller.period",
                   "control decision period must be at least one cycle");
        return report;
    }

    // Dead band: the detector must be able to resolve the distance
    // from nominal to the trigger threshold, else the loop either
    // never triggers or chatters on quantization noise.
    const Volts band = c.vNominal - c.vThreshold;
    if (c.detector.resolutionVolts > band)
    {
        std::ostringstream os;
        os << "detector resolution " << c.detector.resolutionVolts.raw()
           << " V is coarser than the nominal-to-threshold band "
           << band.raw() << " V; the trigger condition is inside one "
           << "quantization step";
        report.add("ctl.deadband", Severity::Error, "controller.detector",
                   os.str());
    }

    if (c.detector.latency > c.loopLatency)
    {
        std::ostringstream os;
        os << "detector latency " << c.detector.latency
           << " cycles exceeds the configured total loop latency "
           << c.loopLatency << " cycles";
        report.add("ctl.latency-order", Severity::Warning,
                   "controller.detector", os.str());
    }

    const double kP = c.gainWattsPerVolt.raw();
    const double kI = c.integralGainWattsPerVolt.raw();
    if (kP <= 0.0 && kI <= 0.0)
        return report; // open loop: nothing to destabilize

    // Per-mode scalar loop gains.  Gain and capacitance aggregate per
    // layer (the column SMs act on the same boundary rail in the
    // Laplacian model).
    const Seconds period =
        static_cast<double>(c.period) * config::clockPeriod;
    const double sms = static_cast<double>(in.smsPerLayer);
    // Dimensions cancel fully: s * (W/V) / (F * V) = 1.
    const double gUnit = period * (c.gainWattsPerVolt * sms) /
                         (in.boundaryCap * c.vNominal);
    const double hUnit = period * (c.integralGainWattsPerVolt * sms) /
                         (in.boundaryCap * c.vNominal);
    const Cycle truePeriods =
        std::max<Cycle>(1, (c.loopLatency + c.period - 1) / c.period);

    // The Jury reduction below is O(d^2) in the actuation delay and
    // the mode polynomial holds d+3 coefficients, so a pathological
    // latency (fault-injection configs use 2^30 cycles) must not
    // reach it.  Beyond the cap the answer is known analytically: the
    // largest stable proportional gain of z^(d+1) - z^d + g decays as
    // 2 sin(pi / (2 (2d+1))) ~ pi / (2d), so any practical gain is
    // unstable and the loop survives only on its nonlinearities.
    constexpr Cycle kMaxJuryDelayPeriods = 4096;
    if (truePeriods > kMaxJuryDelayPeriods)
    {
        const double bound =
            2.0 * std::sin(M_PI /
                           (2.0 * (2.0 * static_cast<double>(
                                             truePeriods) +
                                   1.0)));
        const double stiffest =
            2.0 - 2.0 * std::cos(M_PI *
                                 static_cast<double>(in.numLayers - 1) /
                                 static_cast<double>(in.numLayers));
        std::ostringstream os;
        os << "actuation delay of " << truePeriods
           << " control periods caps the Jury-stable proportional "
              "loop gain at g = "
           << bound << ", below any practical setting (g = "
           << gUnit * stiffest
           << " at the stiffest mode); the loop relies on threshold "
              "gating, slew smoothing, and actuator saturation to "
              "stay bounded";
        report.add("ctl.jury-unstable", Severity::Warning,
                   "controller.gain", os.str());
        return report;
    }
    const int delayPeriods = static_cast<int>(truePeriods);

    bool allStable = true;
    double worstMode = 0.0;
    double worstG = 0.0;
    double worstH = 0.0;
    const int rails = in.numLayers - 1;
    for (int k = 1; k <= rails; ++k)
    {
        const double mode =
            2.0 - 2.0 * std::cos(M_PI * static_cast<double>(k) /
                                 static_cast<double>(in.numLayers));
        const double g = gUnit * mode;
        const double h = hUnit * mode;
        if (!juryStable(modePolynomial(g, h, delayPeriods)))
        {
            allStable = false;
            if (mode > worstMode)
            {
                worstMode = mode;
                worstG = g;
                worstH = h;
            }
        }
    }

    if (!allStable)
    {
        // Bisect the largest Jury-stable proportional loop gain of the
        // worst mode so the message states how far outside the linear
        // region the configuration sits.
        double lo = 0.0;
        double hi = worstG;
        for (int i = 0; i < 60; ++i)
        {
            const double mid = 0.5 * (lo + hi);
            if (juryStable(modePolynomial(mid, 0.0, delayPeriods)))
                lo = mid;
            else
                hi = mid;
        }
        std::ostringstream os;
        os << "stiffest Laplacian mode mu = " << worstMode
           << ": loop gain g = " << worstG;
        if (worstH != 0.0)
            os << " (integral h = " << worstH << ")";
        os << " with " << delayPeriods
           << "-period actuation delay fails the Jury test; the "
              "largest Jury-stable proportional gain is g = "
           << lo
           << ".  The loop relies on threshold gating, slew "
              "smoothing, and actuator saturation to stay bounded";
        report.add("ctl.jury-unstable", Severity::Warning,
                   "controller.gain", os.str());
        return report;
    }

    // Margins, only meaningful once linearly stable.
    Margins worst;
    for (int k = 1; k <= rails; ++k)
    {
        const double mode =
            2.0 - 2.0 * std::cos(M_PI * static_cast<double>(k) /
                                 static_cast<double>(in.numLayers));
        const Margins m =
            loopMargins(gUnit * mode, hUnit * mode, delayPeriods);
        worst.gain = std::min(worst.gain, m.gain);
        worst.phaseDeg = std::min(worst.phaseDeg, m.phaseDeg);
    }
    if (worst.gain < in.gainMarginFloor ||
        worst.phaseDeg < in.phaseMarginFloorDeg)
    {
        std::ostringstream os;
        os << "gain margin " << worst.gain << "x (floor "
           << in.gainMarginFloor << "x), phase margin "
           << worst.phaseDeg << " deg (floor "
           << in.phaseMarginFloorDeg
           << " deg): small parameter drift can destabilize the loop";
        report.add("ctl.margin-low", Severity::Warning,
                   "controller.gain", os.str());
    }

    return report;
}

} // namespace vsgpu::verify
