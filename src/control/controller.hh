/**
 * @file
 * The boundary-triggered proportional voltage-smoothing controller
 * (paper Algorithm 1) and the weighted actuation split of eq. (9).
 *
 * Every control period the controller reads the detected per-SM layer
 * voltages; for each SM whose voltage fell below the threshold it
 * computes a proportional correction and splits it across the three
 * actuators by the configured weights:
 *
 *   - DIWS on the droopy SM itself (reduce its power),
 *   - FII on the vertically adjacent SM of the same column (raise the
 *     neighbouring layer's power),
 *   - DCC alongside that neighbour (current-DAC compensation).
 *
 * The full sensing-computation-actuation loop latency is modeled with
 * a command delay line.
 */

#ifndef VSGPU_CONTROL_CONTROLLER_HH
#define VSGPU_CONTROL_CONTROLLER_HH

#include <array>
#include <deque>
#include <vector>

#include "common/units.hh"
#include "control/dcc.hh"
#include "control/detector.hh"

namespace vsgpu
{

/** Per-SM actuation command. */
struct SmCommand
{
    double issueWidth = static_cast<double>(config::maxIssueWidth);
    double fakeRate = 0.0;
    Amps dccAmps{};
};

/** Commands for all SMs. */
using CommandSet = std::array<SmCommand, config::numSMs>;

/** Controller configuration (paper Algorithm 1 + eq. (9)). */
struct ControllerConfig
{
    /** Trigger threshold: smoothing engages below this voltage. */
    Volts vThreshold = config::defaultVThreshold;

    /** Nominal layer voltage. */
    Volts vNominal = config::smVoltage;

    /** Actuation weights for DIWS / FII / DCC (sum need not be 1). */
    double w1 = 1.0;
    double w2 = 0.0;
    double w3 = 0.0;

    /**
     * Proportional gain: watts of per-SM power correction per volt
     * of deviation from nominal.  k1/k2/k3 of Algorithm 1 are this
     * gain expressed in each actuator's native unit.
     */
    WattsPerVolt gainWattsPerVolt{12.0};

    /**
     * Integral gain (watts per volt-period of accumulated
     * deviation), extending the paper's proportional controller to
     * PI.  Zero (the paper's configuration) disables the integral
     * path.  The integrator only accumulates while the SM is below
     * threshold and is clamped (anti-windup) so releases stay
     * bounded.
     */
    WattsPerVolt integralGainWattsPerVolt{};

    /** Anti-windup clamp on the integral correction. */
    Watts integralClampWatts = 6.0_W;

    /** Average dynamic power of one issue-width unit. */
    Watts powerPerIssueWidth = 2.2_W;

    /** Average power of one fake instruction per cycle. */
    Watts powerPerFakeRate = 1.4_W;

    /** Control decision period (cycles). */
    Cycle period = 30;

    /**
     * Per-cycle exponential approach rates of the applied command
     * toward the latest decision.  Onset (more throttling / more
     * injection) is fast so droops are caught quickly; release is
     * slow so warps accumulated during a throttle window do not
     * burst out at full width and re-trigger the droop (a
     * relaxation oscillation otherwise).
     */
    double onsetSmoothing = 0.30;
    double releaseSmoothing = 0.05;

    /**
     * End-to-end loop latency in cycles (sensing + computation +
     * communication + actuation); commands take effect this many
     * cycles after the voltages they respond to (paper default 60).
     */
    Cycle loopLatency = config::defaultControlLatency;

    /** Detector implementation (latency is part of loopLatency). */
    DetectorSpec detector = {};

    /** DCC current-DAC design. */
    DccDac dcc = {};
};

/**
 * The voltage-smoothing controller for the 16-SM array.
 */
class SmoothingController
{
  public:
    explicit SmoothingController(const ControllerConfig &cfg = {});

    /**
     * Advance one cycle.
     *
     * @param railVolts actual per-SM layer voltages this cycle.
     * @return the command set to apply THIS cycle (reflecting
     *         decisions made loopLatency cycles ago).
     */
    const CommandSet &step(
        const std::array<double, config::numSMs> &railVolts);

    /** @return configuration. */
    const ControllerConfig &config() const { return cfg_; }

    /** @return detector power of the whole array. */
    Watts detectorPower() const;

    /** @return instantaneous DCC power drawn by current commands. */
    Watts dccPower(const CommandSet &commands) const;

    /** @return how many decisions triggered smoothing so far. */
    std::uint64_t triggeredDecisions() const { return triggered_; }

    /** @return total decisions so far. */
    std::uint64_t totalDecisions() const { return decisions_; }

    /** @return per-SM below-threshold detections (trips). */
    std::uint64_t detectorTrips() const { return detectorTrips_; }

    /** @return decisions that engaged DIWS on some SM. */
    std::uint64_t diwsEngagements() const { return diws_; }

    /** @return decisions that engaged FII on some SM. */
    std::uint64_t fiiEngagements() const { return fii_; }

    /** @return decisions that engaged DCC on some SM. */
    std::uint64_t dccEngagements() const { return dcc_; }

    /** Reset all state to nominal. */
    void reset();

  private:
    /** Run Algorithm 1 on detected voltages, producing a command. */
    CommandSet decide(
        const std::array<Volts, config::numSMs> &detected);

    ControllerConfig cfg_;
    std::vector<VoltageDetector> detectors_;
    std::array<Volts, config::numSMs> lastDetected_{};
    std::array<Volts, config::numSMs> periodAccum_{};
    int periodFill_ = 0;

    /** Pending commands: decided, waiting out the loop latency. */
    std::deque<std::pair<Cycle, CommandSet>> pending_;
    CommandSet active_{};
    CommandSet applied_{};
    Cycle now_ = 0;

    /** PI integrator state per SM (volt-periods of deviation). */
    std::array<Volts, config::numSMs> integral_{};

    std::uint64_t decisions_ = 0;
    std::uint64_t triggered_ = 0;
    std::uint64_t detectorTrips_ = 0;
    std::uint64_t diws_ = 0;
    std::uint64_t fii_ = 0;
    std::uint64_t dcc_ = 0;
};

} // namespace vsgpu

#endif // VSGPU_CONTROL_CONTROLLER_HH
