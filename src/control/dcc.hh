/**
 * @file
 * Dynamic current compensation (DCC) hardware model: a binary-
 * weighted current-ladder DAC per SM position, digitally controlled
 * at single-cycle granularity (paper Section IV-C).
 */

#ifndef VSGPU_CONTROL_DCC_HH
#define VSGPU_CONTROL_DCC_HH

#include "common/units.hh"

namespace vsgpu
{

/**
 * Binary-weighted current DAC.
 */
struct DccDac
{
    /** DAC resolution (bits). */
    int bits = 6;

    /** Full-scale compensation current. */
    Amps fullScaleAmps = 3.0_A;

    /** Static leakage of one DAC macro. */
    Watts leakageWatts = 0.015_W;

    /** Die area of one DAC macro. */
    Area area = 0.12_mm2;

    /** @return LSB current step. */
    Amps
    lsbAmps() const
    {
        return fullScaleAmps / static_cast<double>((1 << bits) - 1);
    }

    /** @return unit power of the LSB at the layer voltage,
     *  the Pd0 of paper eq. (9). */
    Watts
    lsbPowerWatts(Volts layerVolts = config::smVoltage) const
    {
        return lsbAmps() * layerVolts;
    }

    /** @return the requested current quantized to the DAC grid and
     *  clamped to [0, full scale]. */
    Amps quantize(Amps amps) const;
};

} // namespace vsgpu

#endif // VSGPU_CONTROL_DCC_HH
