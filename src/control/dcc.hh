/**
 * @file
 * Dynamic current compensation (DCC) hardware model: a binary-
 * weighted current-ladder DAC per SM position, digitally controlled
 * at single-cycle granularity (paper Section IV-C).
 */

#ifndef VSGPU_CONTROL_DCC_HH
#define VSGPU_CONTROL_DCC_HH

#include "common/units.hh"

namespace vsgpu
{

/**
 * Binary-weighted current DAC.
 */
struct DccDac
{
    /** DAC resolution (bits). */
    int bits = 6;

    /** Full-scale compensation current (A). */
    double fullScaleAmps = 3.0;

    /** Static leakage of one DAC macro (W). */
    double leakageWatts = 0.015;

    /** Die area of one DAC macro (mm^2). */
    double areaMm2 = 0.12;

    /** @return LSB current step (A). */
    double
    lsbAmps() const
    {
        return fullScaleAmps / static_cast<double>((1 << bits) - 1);
    }

    /** @return unit power of the LSB at the layer voltage (W),
     *  the Pd0 of paper eq. (9). */
    double
    lsbPowerWatts(double layerVolts = config::smVoltage.raw()) const
    {
        return lsbAmps() * layerVolts;
    }

    /** @return the requested current quantized to the DAC grid and
     *  clamped to [0, full scale]. */
    double quantize(double amps) const;
};

} // namespace vsgpu

#endif // VSGPU_CONTROL_DCC_HH
