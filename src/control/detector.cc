#include "control/detector.hh"

#include <cmath>

#include "common/logging.hh"

namespace vsgpu
{

DetectorSpec
detectorSpec(DetectorKind kind)
{
    switch (kind) {
      case DetectorKind::Oddd:
        return {DetectorKind::Oddd, 2, 0.005_W, 0.015_V};
      case DetectorKind::Cpm:
        return {DetectorKind::Cpm, 40, 0.045_W, 0.050_V};
      case DetectorKind::Adc:
        return {DetectorKind::Adc, 4, 0.020_W, Volts{1.0 / 128.0}};
    }
    panic("unknown detector kind");
}

VoltageDetector::VoltageDetector(const DetectorSpec &spec,
                                 Hertz cutoffHz)
    : spec_(spec)
{
    panicIfNot(cutoffHz > Hertz{}, "filter cutoff must be positive");
    // First-order IIR equivalent of the RC filter at the core clock.
    const Seconds rc = 1.0 / (2.0 * M_PI * cutoffHz);
    alpha_ = config::clockPeriod / (rc + config::clockPeriod);
    reset(config::smVoltage);
}

void
VoltageDetector::reset(Volts volts)
{
    filtered_ = volts;
    lastOutput_ = volts;
    delayLine_.assign(static_cast<std::size_t>(spec_.latency) + 1,
                      volts);
    head_ = 0;
}

Volts
VoltageDetector::sample(Volts actualVolts)
{
    if (spec_.stuckAtVolts >= Volts{}) {
        lastOutput_ = spec_.stuckAtVolts;
        return lastOutput_;
    }
    filtered_ += alpha_ * (actualVolts - filtered_);

    delayLine_[head_] = filtered_;
    head_ = (head_ + 1) % delayLine_.size();
    const Volts delayed = delayLine_[head_];

    const Volts q = spec_.resolutionVolts;
    lastOutput_ =
        q > Volts{} ? std::round(delayed / q) * q : delayed;
    return lastOutput_;
}

} // namespace vsgpu
