#include "control/detector.hh"

#include <cmath>

#include "common/logging.hh"

namespace vsgpu
{

DetectorSpec
detectorSpec(DetectorKind kind)
{
    switch (kind) {
      case DetectorKind::Oddd:
        return {DetectorKind::Oddd, 2, 0.005, 0.015};
      case DetectorKind::Cpm:
        return {DetectorKind::Cpm, 40, 0.045, 0.050};
      case DetectorKind::Adc:
        return {DetectorKind::Adc, 4, 0.020, 1.0 / 128.0};
    }
    panic("unknown detector kind");
}

VoltageDetector::VoltageDetector(const DetectorSpec &spec,
                                 double cutoffHz)
    : spec_(spec)
{
    panicIfNot(cutoffHz > 0.0, "filter cutoff must be positive");
    // First-order IIR equivalent of the RC filter at the core clock.
    const double rc = 1.0 / (2.0 * M_PI * cutoffHz);
    alpha_ = config::clockPeriod.raw() /
             (rc + config::clockPeriod.raw());
    reset(config::smVoltage.raw());
}

void
VoltageDetector::reset(double volts)
{
    filtered_ = volts;
    lastOutput_ = volts;
    delayLine_.assign(static_cast<std::size_t>(spec_.latency) + 1,
                      volts);
    head_ = 0;
}

double
VoltageDetector::sample(double actualVolts)
{
    if (spec_.stuckAtVolts >= 0.0) {
        lastOutput_ = spec_.stuckAtVolts;
        return lastOutput_;
    }
    filtered_ += alpha_ * (actualVolts - filtered_);

    delayLine_[head_] = filtered_;
    head_ = (head_ + 1) % delayLine_.size();
    const double delayed = delayLine_[head_];

    const double q = spec_.resolutionVolts;
    lastOutput_ = q > 0.0 ? std::round(delayed / q) * q : delayed;
    return lastOutput_;
}

} // namespace vsgpu
