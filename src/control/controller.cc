#include "control/controller.hh"

#include <algorithm>

#include "common/logging.hh"
#include "pdn/vs_pdn.hh"

namespace vsgpu
{

SmoothingController::SmoothingController(const ControllerConfig &cfg)
    : cfg_(cfg)
{
    panicIfNot(cfg_.period > 0, "control period must be positive");
    detectors_.reserve(static_cast<std::size_t>(config::numSMs));
    for (int i = 0; i < config::numSMs; ++i)
        detectors_.emplace_back(cfg_.detector);
    reset();
}

void
SmoothingController::reset()
{
    for (auto &d : detectors_)
        d.reset(cfg_.vNominal);
    lastDetected_.fill(cfg_.vNominal);
    integral_.fill(Volts{});
    periodAccum_.fill(Volts{});
    periodFill_ = 0;
    pending_.clear();
    active_ = CommandSet{};
    applied_ = CommandSet{};
    now_ = 0;
    decisions_ = 0;
    triggered_ = 0;
    detectorTrips_ = 0;
    diws_ = 0;
    fii_ = 0;
    dcc_ = 0;
}

CommandSet
SmoothingController::decide(
    const std::array<Volts, config::numSMs> &detected)
{
    CommandSet commands{};
    bool anyActive = false;

    for (int sm = 0; sm < config::numSMs; ++sm) {
        const Volts v = detected[static_cast<std::size_t>(sm)];
        if (v >= cfg_.vThreshold) {
            // Bleed the integrator once the rail is healthy so old
            // droop history does not keep throttling.
            integral_[static_cast<std::size_t>(sm)] *= 0.8;
            continue;
        }
        anyActive = true;
        ++detectorTrips_;

        // Proportional power correction for the deviation from
        // nominal (Algorithm 1's (1 - V_SM) term), plus an optional
        // integral term that removes steady-state error under
        // sustained imbalance (PI extension of the paper's P-only
        // controller).
        const Volts deviation = cfg_.vNominal - v;
        Watts correction = cfg_.gainWattsPerVolt * deviation;
        if (cfg_.integralGainWattsPerVolt > WattsPerVolt{}) {
            auto &acc = integral_[static_cast<std::size_t>(sm)];
            acc += deviation;
            Watts integralW = cfg_.integralGainWattsPerVolt * acc;
            if (integralW > cfg_.integralClampWatts) {
                integralW = cfg_.integralClampWatts;
                acc = integralW / cfg_.integralGainWattsPerVolt;
            }
            correction += integralW;
        }

        // DIWS on the droopy SM itself.
        auto &self = commands[static_cast<std::size_t>(sm)];
        const double issueCut =
            cfg_.w1 * correction / cfg_.powerPerIssueWidth;
        if (issueCut > 0.0)
            ++diws_;
        self.issueWidth = std::clamp(
            static_cast<double>(config::maxIssueWidth) - issueCut,
            0.0, static_cast<double>(config::maxIssueWidth));

        // FII and DCC on the vertically adjacent SM of the same
        // column (raise the neighbouring layer's draw).
        const int layer = VsPdn::smLayer(sm);
        const int column = VsPdn::smColumn(sm);
        const int neighbour =
            VsPdn::smAt((layer + 1) % config::numLayers, column);
        auto &other = commands[static_cast<std::size_t>(neighbour)];

        const double fakeAdd =
            cfg_.w2 * correction / cfg_.powerPerFakeRate;
        if (fakeAdd > 0.0)
            ++fii_;
        other.fakeRate = std::clamp(
            other.fakeRate + fakeAdd, 0.0,
            static_cast<double>(config::maxIssueWidth));

        const Amps dccAdd = cfg_.w3 * correction / cfg_.vNominal;
        if (dccAdd > Amps{})
            ++dcc_;
        other.dccAmps =
            cfg_.dcc.quantize(other.dccAmps + dccAdd);
    }

    ++decisions_;
    if (anyActive)
        ++triggered_;
    return commands;
}

const CommandSet &
SmoothingController::step(
    const std::array<double, config::numSMs> &railVolts)
{
    // Detectors run every cycle (their latency is internal to the
    // delay line; the remaining loop latency is applied to commands).
    // Decisions act on the mean detected voltage over the decision
    // period: the architecture loop owns sub-Nyquist content only,
    // and deciding on instantaneous samples would alias ripple the
    // loop cannot correct into the commands.
    for (int sm = 0; sm < config::numSMs; ++sm) {
        const auto idx = static_cast<std::size_t>(sm);
        lastDetected_[idx] =
            detectors_[idx].sample(Volts{railVolts[idx]});
        periodAccum_[idx] += lastDetected_[idx];
    }
    ++periodFill_;

    if (now_ % cfg_.period == 0 && periodFill_ > 0) {
        std::array<Volts, config::numSMs> meanDetected{};
        for (int sm = 0; sm < config::numSMs; ++sm) {
            meanDetected[static_cast<std::size_t>(sm)] =
                periodAccum_[static_cast<std::size_t>(sm)] /
                static_cast<double>(periodFill_);
        }
        periodAccum_.fill(Volts{});
        periodFill_ = 0;
        const Cycle detectorLatency = cfg_.detector.latency;
        const Cycle rest = cfg_.loopLatency > detectorLatency
                               ? cfg_.loopLatency - detectorLatency
                               : 0;
        pending_.emplace_back(now_ + rest, decide(meanDetected));
    }

    while (!pending_.empty() && pending_.front().first <= now_) {
        active_ = pending_.front().second;
        pending_.pop_front();
    }

    // Slew the applied command toward the active decision: fast when
    // engaging actuation, slow when releasing it.  Generic over the
    // value type so dimensioned commands slew like raw ones.
    const auto slew = [&](auto applied, auto target,
                          bool onsetIsDecrease) {
        const bool onset = onsetIsDecrease ? target < applied
                                           : target > applied;
        const double a =
            onset ? cfg_.onsetSmoothing : cfg_.releaseSmoothing;
        return applied + a * (target - applied);
    };
    for (int sm = 0; sm < config::numSMs; ++sm) {
        const auto idx = static_cast<std::size_t>(sm);
        applied_[idx].issueWidth = slew(
            applied_[idx].issueWidth, active_[idx].issueWidth, true);
        applied_[idx].fakeRate = slew(
            applied_[idx].fakeRate, active_[idx].fakeRate, false);
        applied_[idx].dccAmps = cfg_.dcc.quantize(slew(
            applied_[idx].dccAmps, active_[idx].dccAmps, false));
    }

    ++now_;
    return applied_;
}

Watts
SmoothingController::detectorPower() const
{
    return cfg_.detector.powerWatts *
           static_cast<double>(config::numSMs);
}

Watts
SmoothingController::dccPower(const CommandSet &commands) const
{
    Watts watts{};
    for (const auto &cmd : commands)
        watts += cmd.dccAmps * cfg_.vNominal;
    // Static leakage of the DAC macros is always present.
    watts += cfg_.dcc.leakageWatts *
             static_cast<double>(config::numSMs);
    return watts;
}

} // namespace vsgpu
