#include "control/designer.hh"

#include <cmath>

#include "common/logging.hh"
#include "numeric/eigen.hh"

namespace vsgpu
{

Volts
ControlDesign::worstDroopVolts(Amps imbalanceAmps) const
{
    // A sinusoidal imbalance current I at the boundary contributes a
    // per-period state disturbance of amplitude I * T / C; the droop
    // is that amplitude times the closed loop's peak gain.
    return peakDisturbanceGain * imbalanceAmps * samplePeriodSec /
           boundaryCapF;
}

ControlDesign
designController(const ControlDesignSpec &spec)
{
    panicIfNot(spec.boundaryCapF > Farads{},
               "capacitance must be positive");
    panicIfNot(spec.loopLatencyCycles > 0, "latency must be positive");

    ControlDesign d;
    d.samplePeriodSec =
        static_cast<double>(spec.loopLatencyCycles) *
        config::clockPeriod;
    d.boundaryCapF = spec.boundaryCapF;

    // The state-space matrices are the dimension-erased boundary to
    // the numeric library.
    const double invC = (1.0 / spec.boundaryCapF).raw(); // vsgpu-lint: raw-escape-ok(state-space assembly boundary)

    // Plant: x = [V1 V2 V3]; u = [P1 P2 P3 P4] (layer powers).
    d.plant.a = Matrix(3, 3);
    d.plant.b = Matrix(3, 4);
    for (std::size_t i = 0; i < 3; ++i) {
        d.plant.b(i, i) = -invC;
        d.plant.b(i, i + 1) = invC;
    }

    // Feedback: P_i = k * (V_i - V_{i-1}) with V0 = 0 and V4 held by
    // the supply (its deviation is zero in the linearized model).
    const double k = spec.gainWattsPerVolt.raw(); // vsgpu-lint: raw-escape-ok(state-space assembly boundary)
    d.feedback = Matrix(4, 3);
    d.feedback(0, 0) = k;
    d.feedback(1, 0) = -k;
    d.feedback(1, 1) = k;
    d.feedback(2, 1) = -k;
    d.feedback(2, 2) = k;
    d.feedback(3, 2) = -k;

    // ZOH discretization at the loop period; the command applied over
    // period n is computed from the sample at period n-1, giving the
    // augmented delayed closed loop.
    const DiscreteStateSpace dss =
        discretizeZoh(d.plant, d.samplePeriodSec.raw()); // vsgpu-lint: raw-escape-ok(state-space assembly boundary)
    const Matrix bdk = dss.bd * d.feedback;

    d.augmented = Matrix(6, 6);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            d.augmented(i, j) = dss.ad(i, j);
            d.augmented(i, j + 3) = bdk(i, j);
        }
        d.augmented(i + 3, i) = 1.0;
    }

    d.spectralRadius = spectralRadius(d.augmented);
    d.stable = d.spectralRadius < 1.0;
    d.peakDisturbanceGain =
        peakDisturbanceGain(d.augmented, d.samplePeriodSec.raw()); // vsgpu-lint: raw-escape-ok(state-space assembly boundary)
    return d;
}

WattsPerVolt
maxStableGain(Farads boundaryCapF, Cycle loopLatencyCycles)
{
    ControlDesignSpec spec;
    spec.boundaryCapF = boundaryCapF;
    spec.loopLatencyCycles = loopLatencyCycles;

    WattsPerVolt lo{};
    WattsPerVolt hi{1.0};
    // Grow hi until unstable (or absurdly large).
    for (int i = 0; i < 60; ++i) {
        spec.gainWattsPerVolt = hi;
        if (!designController(spec).stable)
            break;
        lo = hi;
        hi *= 2.0;
        if (hi > WattsPerVolt{1e9})
            return lo;
    }
    for (int i = 0; i < 50; ++i) {
        const WattsPerVolt mid = 0.5 * (lo + hi);
        spec.gainWattsPerVolt = mid;
        if (designController(spec).stable)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace vsgpu
