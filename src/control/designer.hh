/**
 * @file
 * Control-theoretic design and verification of the voltage-smoothing
 * loop (paper Section IV-A/B).
 *
 * The boundary-rail dynamics of one stacking column reduce to
 *   Vdot_i = (P_{i+1} - P_i) / C + dI_i / C,   i = 1..3
 * (eq. (4) linearized around the evenly divided equilibrium).  The
 * proportional layer-voltage feedback P_i = P_nom + k (L_i - L_nom)
 * with layer voltage L_i = V_i - V_{i-1} yields the closed loop
 *   Vdot = (k/C) Lap V + dI / C
 * where Lap is the 1-D Laplacian — stable for every k > 0 in
 * continuous time.  The real limit is the loop delay: commands are
 * computed from samples one control period old.  We model the delayed
 * discrete loop exactly with the augmented system
 *   [x[n+1]; x[n]] = [[Ad, BdK], [I, 0]] [x[n]; x[n-1]]
 * and verify (a) spectral radius < 1 and (b) the peak
 * disturbance-to-state gain over frequencies below Nyquist, which
 * bounds the worst droop for disturbances the architecture loop is
 * responsible for (paper's Bode-plot argument).
 */

#ifndef VSGPU_CONTROL_DESIGNER_HH
#define VSGPU_CONTROL_DESIGNER_HH

#include "common/units.hh"
#include "numeric/statespace.hh"

namespace vsgpu
{

/** Inputs to the control design. */
struct ControlDesignSpec
{
    /** Per-boundary-rail capacitance: layer decap plus CR-IVR
     *  flying-cap contribution. */
    Farads boundaryCapF = Farads{4.0 * 100e-9};

    /** Proportional gain (power correction per volt of layer-voltage
     *  deviation), aggregated per layer. */
    WattsPerVolt gainWattsPerVolt{160.0};

    /** Full control-loop latency = sampling period (cycles). */
    Cycle loopLatencyCycles = config::defaultControlLatency;
};

/** Result of a control design evaluation. */
struct ControlDesign
{
    StateSpace plant;       ///< continuous A (3x3 zeros) and B (3x4)
    Matrix feedback;        ///< K (4x3)
    Matrix augmented;       ///< delayed closed-loop matrix (6x6)
    Seconds samplePeriodSec{};
    Farads boundaryCapF = 1.0_F; ///< capacitance the design assumed
    double spectralRadius = 0.0;
    bool stable = false;

    /** Peak gain from a per-period state disturbance (volts of droop
     *  per volt-equivalent of disturbance) below Nyquist. */
    double peakDisturbanceGain = 0.0;

    /**
     * @return worst steady droop for a sinusoidal imbalance current
     * of the given amplitude below the Nyquist frequency.
     */
    Volts worstDroopVolts(Amps imbalanceAmps) const;
};

/** Evaluate a candidate design. */
ControlDesign designController(const ControlDesignSpec &spec);

/**
 * @return the largest stable gain for the given capacitance and
 * latency, found by bisection on the spectral radius.
 */
WattsPerVolt maxStableGain(Farads boundaryCapF,
                           Cycle loopLatencyCycles);

} // namespace vsgpu

#endif // VSGPU_CONTROL_DESIGNER_HH
