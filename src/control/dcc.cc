#include "control/dcc.hh"

#include <algorithm>
#include <cmath>

namespace vsgpu
{

Amps
DccDac::quantize(Amps amps) const
{
    const Amps lsb = lsbAmps();
    const Amps clamped = std::clamp(amps, Amps{}, fullScaleAmps);
    return std::round(clamped / lsb) * lsb;
}

} // namespace vsgpu
