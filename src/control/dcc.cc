#include "control/dcc.hh"

#include <algorithm>
#include <cmath>

namespace vsgpu
{

double
DccDac::quantize(double amps) const
{
    const double lsb = lsbAmps();
    const double clamped = std::clamp(amps, 0.0, fullScaleAmps);
    return std::round(clamped / lsb) * lsb;
}

} // namespace vsgpu
