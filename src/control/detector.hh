/**
 * @file
 * Front-end voltage detectors (paper Table II and Section IV-D1).
 *
 * Each SM's rail is observed through an RC low-pass filter (cutoff
 * 50 MHz, filtering switching noise the architecture loop cannot act
 * on) followed by a detector with kind-specific latency, power, and
 * resolution: on-die droop detector (ODDD), critical path monitor
 * (CPM), or ADC.
 */

#ifndef VSGPU_CONTROL_DETECTOR_HH
#define VSGPU_CONTROL_DETECTOR_HH

#include <vector>

#include "common/units.hh"

namespace vsgpu
{

/** Detector implementation choices (paper Table II). */
enum class DetectorKind
{
    Oddd, ///< on-die droop detector: 1-2 cycles, 10-20 mV
    Cpm,  ///< critical path monitor: 10-100 cycles, coarse
    Adc,  ///< analog-to-digital converter: 1-10 cycles, 2^-N V
};

/** Static properties of a detector implementation. */
struct DetectorSpec
{
    DetectorKind kind = DetectorKind::Adc;
    Cycle latency = 4;             ///< sensing latency (cycles)
    Watts powerWatts = 0.03_W;     ///< static power
    Volts resolutionVolts = Volts{1.0 / 128.0}; ///< quantization step

    /**
     * Fault injection: when non-negative the detector output is
     * stuck at this value regardless of the rail (models a failed
     * sensor for reliability studies).  Negative disables the fault.
     */
    Volts stuckAtVolts = -1.0_V;
};

/** @return the paper's Table II representative numbers. */
DetectorSpec detectorSpec(DetectorKind kind);

/**
 * Behavioural detector: RC low-pass filter + delay line +
 * quantization.
 */
class VoltageDetector
{
  public:
    /**
     * @param spec     detector implementation.
     * @param cutoffHz RC filter cutoff (paper: 50 MHz).
     */
    explicit VoltageDetector(const DetectorSpec &spec = {},
                             Hertz cutoffHz = 50.0_MHz);

    /**
     * Push this cycle's actual rail voltage; @return the detector
     * output visible to the controller this cycle (filtered, delayed
     * by the sensing latency, quantized).
     */
    Volts sample(Volts actualVolts);

    /** @return last output without pushing a new sample. */
    Volts output() const { return lastOutput_; }

    /** @return the spec. */
    const DetectorSpec &spec() const { return spec_; }

    /** Reset filter/delay state to a given operating point. */
    void reset(Volts volts);

  private:
    DetectorSpec spec_;
    double alpha_;            ///< IIR coefficient from the RC cutoff
    Volts filtered_;
    std::vector<Volts> delayLine_;
    std::size_t head_ = 0;
    Volts lastOutput_;
};

} // namespace vsgpu

#endif // VSGPU_CONTROL_DETECTOR_HH
