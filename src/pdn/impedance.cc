#include "pdn/impedance.hh"

#include <cmath>

#include "circuit/ac.hh"
#include "common/logging.hh"

namespace vsgpu
{

namespace
{

/** Global pattern: every SM draws 1 A (per-amp-of-SM-load axis). */
std::vector<double>
globalLoadPattern(const VsPdn &pdn)
{
    return std::vector<double>(
        static_cast<std::size_t>(pdn.numSms()), 1.0);
}

/** Stack pattern for one column: +(1 - 1/M) on the column, -1/M
 *  elsewhere (global component removed). */
std::vector<double>
stackLoadPattern(const VsPdn &pdn, int column)
{
    std::vector<double> loads(
        static_cast<std::size_t>(pdn.numSms()), 0.0);
    const double inCol =
        1.0 - 1.0 / static_cast<double>(pdn.columns());
    const double outCol =
        -1.0 / static_cast<double>(pdn.columns());
    for (int sm = 0; sm < pdn.numSms(); ++sm) {
        loads[static_cast<std::size_t>(sm)] =
            pdn.columnOf(sm) == column ? inCol : outCol;
    }
    return loads;
}

/** Residual pattern: +(1 - 1/N) at (layer 0, column 0), -1/N at the
 *  other layers of column 0. */
std::vector<double>
residualLoadPattern(const VsPdn &pdn)
{
    std::vector<double> loads(
        static_cast<std::size_t>(pdn.numSms()), 0.0);
    for (int layer = 0; layer < pdn.layers(); ++layer) {
        const int sm = pdn.smIndexAt(layer, 0);
        loads[static_cast<std::size_t>(sm)] =
            layer == 0
                ? 1.0 - 1.0 / static_cast<double>(pdn.layers())
                : -1.0 / static_cast<double>(pdn.layers());
    }
    return loads;
}

/** Translate per-SM load amplitudes into AC current injections. */
std::vector<AcInjection>
injectionsFor(const VsPdn &pdn, const std::vector<double> &smLoadAmps)
{
    std::vector<AcInjection> injections;
    injections.reserve(smLoadAmps.size() * 2);
    for (int sm = 0; sm < pdn.numSms(); ++sm) {
        const double amps = smLoadAmps[static_cast<std::size_t>(sm)];
        if (amps == 0.0)
            continue;
        // A load drawing current pulls it out of the SM's top node
        // and returns it at the bottom node.
        injections.push_back(
            {pdn.smTopNode(sm), Complex{-amps, 0.0}});
        injections.push_back(
            {pdn.smBottomNode(sm), Complex{amps, 0.0}});
    }
    return injections;
}

/** |layer-voltage response| at one SM from a solved node vector. */
Ohms
observeAt(const VsPdn &pdn, const std::vector<Complex> &volts, int sm)
{
    const Complex dv =
        volts[static_cast<std::size_t>(pdn.smTopNode(sm))] -
        volts[static_cast<std::size_t>(pdn.smBottomNode(sm))];
    return Ohms{std::abs(dv)};
}

} // namespace

ImpedanceAnalyzer::ImpedanceAnalyzer(const VsPdn &pdn)
    : pdn_(pdn)
{
}

Ohms
ImpedanceAnalyzer::respond(const std::vector<double> &smLoadAmps,
                           int observeSm, Hertz freq) const
{
    panicIfNot(smLoadAmps.size() ==
               static_cast<std::size_t>(pdn_.numSms()),
               "per-SM load vector size mismatch");

    AcAnalysis ac(pdn_.netlist());
    const auto volts = // vsgpu-lint: raw-escape-ok(AC solver boundary)
        ac.solve(freq.raw(), injectionsFor(pdn_, smLoadAmps));
    return observeAt(pdn_, volts, observeSm);
}

Ohms
ImpedanceAnalyzer::globalImpedance(Hertz freq) const
{
    // Per-amp-of-SM-load convention: every SM draws 1 A and we report
    // the layer-voltage deviation at one of them, so all four
    // impedance flavours relate the *per-SM* current deviation to the
    // local rail response and can share one axis (paper Fig. 3).
    return respond(globalLoadPattern(pdn_), pdn_.smIndexAt(0, 0),
                   freq);
}

Ohms
ImpedanceAnalyzer::stackImpedance(Hertz freq, int column) const
{
    panicIfNot(column >= 0 && column < pdn_.columns(),
               "bad stack column ", column);
    // Stack pattern: every SM of the column draws 1 A, with the
    // global component removed (orthogonal decomposition), i.e.
    // +(1 - 1/M) on the column and -1/M elsewhere.
    return respond(stackLoadPattern(pdn_, column),
                   pdn_.smIndexAt(0, column), freq);
}

Ohms
ImpedanceAnalyzer::residualImpedance(Hertz freq, bool sameLayer) const
{
    // Unit extra load at SM (layer 0, column 0); residual component
    // is +(1 - 1/N) there and -1/N at the other layers of column 0.
    const int observe =
        sameLayer ? pdn_.smIndexAt(0, 0)
                  : pdn_.smIndexAt(pdn_.layers() / 2, 0);
    return respond(residualLoadPattern(pdn_), observe, freq);
}

ImpedancePoint
ImpedanceAnalyzer::sweepPoint(Hertz freq) const
{
    // Three stimulus patterns (the two residual flavours share one),
    // solved against a single factorization.
    AcAnalysis ac(pdn_.netlist());
    const std::vector<std::vector<AcInjection>> patterns = {
        injectionsFor(pdn_, globalLoadPattern(pdn_)),
        injectionsFor(pdn_, stackLoadPattern(pdn_, 0)),
        injectionsFor(pdn_, residualLoadPattern(pdn_)),
    };
    const auto volts = ac.solveMany(freq.raw(), patterns); // vsgpu-lint: raw-escape-ok(AC solver boundary)

    ImpedancePoint p;
    p.freq = freq;
    p.zGlobal = observeAt(pdn_, volts[0], pdn_.smIndexAt(0, 0));
    p.zStack = observeAt(pdn_, volts[1], pdn_.smIndexAt(0, 0));
    p.zResidualSameLayer =
        observeAt(pdn_, volts[2], pdn_.smIndexAt(0, 0));
    p.zResidualDiffLayer = observeAt(
        pdn_, volts[2], pdn_.smIndexAt(pdn_.layers() / 2, 0));
    return p;
}

std::vector<ImpedancePoint>
ImpedanceAnalyzer::sweep(const std::vector<Hertz> &freqs) const
{
    std::vector<ImpedancePoint> points;
    points.reserve(freqs.size());
    for (Hertz f : freqs)
        points.push_back(sweepPoint(f));
    return points;
}

Ohms
ImpedanceAnalyzer::peakImpedance(Hertz freq) const
{
    const ImpedancePoint p = sweepPoint(freq);
    Ohms z = p.zGlobal;
    z = std::max(z, p.zStack);
    z = std::max(z, p.zResidualSameLayer);
    z = std::max(z, p.zResidualDiffLayer);
    return z;
}

std::vector<Hertz>
logFrequencyGrid(Hertz lo, Hertz hi, int n)
{
    panicIfNot(lo > Hertz{} && hi > lo && n >= 2,
               "bad frequency grid parameters");
    std::vector<Hertz> freqs;
    freqs.reserve(static_cast<std::size_t>(n));
    const double ratio = std::log(hi / lo);
    for (int i = 0; i < n; ++i) {
        const double frac =
            static_cast<double>(i) / static_cast<double>(n - 1);
        freqs.push_back(lo * std::exp(ratio * frac));
    }
    return freqs;
}

} // namespace vsgpu
