#include "pdn/impedance.hh"

#include <cmath>

#include "circuit/ac.hh"
#include "common/logging.hh"

namespace vsgpu
{

ImpedanceAnalyzer::ImpedanceAnalyzer(const VsPdn &pdn)
    : pdn_(pdn)
{
}

Ohms
ImpedanceAnalyzer::respond(const std::vector<double> &smLoadAmps,
                           int observeSm, Hertz freq) const
{
    panicIfNot(smLoadAmps.size() ==
               static_cast<std::size_t>(pdn_.numSms()),
               "per-SM load vector size mismatch");

    AcAnalysis ac(pdn_.netlist());
    std::vector<AcInjection> injections;
    injections.reserve(smLoadAmps.size() * 2);
    for (int sm = 0; sm < pdn_.numSms(); ++sm) {
        const double amps = smLoadAmps[static_cast<std::size_t>(sm)];
        if (amps == 0.0)
            continue;
        // A load drawing current pulls it out of the SM's top node and
        // returns it at the bottom node.
        injections.push_back({pdn_.smTopNode(sm), Complex{-amps, 0.0}});
        injections.push_back({pdn_.smBottomNode(sm), Complex{amps, 0.0}});
    }

    const auto volts = ac.solve(freq.raw(), injections);
    const Complex dv =
        volts[static_cast<std::size_t>(pdn_.smTopNode(observeSm))] -
        volts[static_cast<std::size_t>(pdn_.smBottomNode(observeSm))];
    return Ohms{std::abs(dv)};
}

Ohms
ImpedanceAnalyzer::globalImpedance(Hertz freq) const
{
    // Per-amp-of-SM-load convention: every SM draws 1 A and we report
    // the layer-voltage deviation at one of them, so all four
    // impedance flavours relate the *per-SM* current deviation to the
    // local rail response and can share one axis (paper Fig. 3).
    std::vector<double> loads(
        static_cast<std::size_t>(pdn_.numSms()), 1.0);
    return respond(loads, pdn_.smIndexAt(0, 0), freq);
}

Ohms
ImpedanceAnalyzer::stackImpedance(Hertz freq, int column) const
{
    panicIfNot(column >= 0 && column < pdn_.columns(),
               "bad stack column ", column);
    // Stack pattern: every SM of the column draws 1 A, with the
    // global component removed (orthogonal decomposition), i.e.
    // +(1 - 1/M) on the column and -1/M elsewhere.
    std::vector<double> loads(
        static_cast<std::size_t>(pdn_.numSms()), 0.0);
    const double inCol =
        1.0 - 1.0 / static_cast<double>(pdn_.columns());
    const double outCol =
        -1.0 / static_cast<double>(pdn_.columns());
    for (int sm = 0; sm < pdn_.numSms(); ++sm) {
        loads[static_cast<std::size_t>(sm)] =
            pdn_.columnOf(sm) == column ? inCol : outCol;
    }
    return respond(loads, pdn_.smIndexAt(0, column), freq);
}

Ohms
ImpedanceAnalyzer::residualImpedance(Hertz freq, bool sameLayer) const
{
    // Unit extra load at SM (layer 0, column 0); residual component
    // is +(1 - 1/N) there and -1/N at the other layers of column 0.
    const int column = 0;
    const int loadedLayer = 0;
    std::vector<double> loads(
        static_cast<std::size_t>(pdn_.numSms()), 0.0);
    for (int layer = 0; layer < pdn_.layers(); ++layer) {
        const int sm = pdn_.smIndexAt(layer, column);
        loads[static_cast<std::size_t>(sm)] =
            layer == loadedLayer
                ? 1.0 - 1.0 / static_cast<double>(pdn_.layers())
                : -1.0 / static_cast<double>(pdn_.layers());
    }
    const int observe =
        sameLayer ? pdn_.smIndexAt(loadedLayer, column)
                  : pdn_.smIndexAt(pdn_.layers() / 2, column);
    return respond(loads, observe, freq);
}

std::vector<ImpedancePoint>
ImpedanceAnalyzer::sweep(const std::vector<Hertz> &freqs) const
{
    std::vector<ImpedancePoint> points;
    points.reserve(freqs.size());
    for (Hertz f : freqs) {
        ImpedancePoint p;
        p.freq = f;
        p.zGlobal = globalImpedance(f);
        p.zStack = stackImpedance(f);
        p.zResidualSameLayer = residualImpedance(f, true);
        p.zResidualDiffLayer = residualImpedance(f, false);
        points.push_back(p);
    }
    return points;
}

Ohms
ImpedanceAnalyzer::peakImpedance(Hertz freq) const
{
    Ohms z = globalImpedance(freq);
    z = std::max(z, stackImpedance(freq));
    z = std::max(z, residualImpedance(freq, true));
    z = std::max(z, residualImpedance(freq, false));
    return z;
}

std::vector<Hertz>
logFrequencyGrid(Hertz lo, Hertz hi, int n)
{
    panicIfNot(lo > Hertz{} && hi > lo && n >= 2,
               "bad frequency grid parameters");
    std::vector<Hertz> freqs;
    freqs.reserve(static_cast<std::size_t>(n));
    const double ratio = std::log(hi / lo);
    for (int i = 0; i < n; ++i) {
        const double frac =
            static_cast<double>(i) / static_cast<double>(n - 1);
        freqs.push_back(lo * std::exp(ratio * frac));
    }
    return freqs;
}

} // namespace vsgpu
