/**
 * @file
 * Effective impedance analysis of the voltage-stacked PDN (paper
 * Section III-B and Fig. 3).
 *
 * Any SM load-current vector decomposes into three orthogonal
 * components:
 *   - global:   the mean over all 16 SMs (flows top-to-bottom through
 *               the whole stack),
 *   - stack:    the per-column mean after removing the global part,
 *   - residual: what remains — vertical imbalance inside a column,
 *               the component that disturbs the boundary rails.
 *
 * For each component we inject the corresponding AC current pattern
 * and report the magnitude of the layer-voltage response per amp of
 * SM load:
 *   - Z_G:        response at a loaded SM to the global pattern,
 *   - Z_ST:       response within the loaded stack to the stack
 *                 pattern,
 *   - Z_R (same layer):      response at the over-loaded SM itself,
 *   - Z_R (different layer): response at another layer of the same
 *                 column.
 */

#ifndef VSGPU_PDN_IMPEDANCE_HH
#define VSGPU_PDN_IMPEDANCE_HH

#include <vector>

#include "pdn/vs_pdn.hh"

namespace vsgpu
{

/** One row of the effective-impedance sweep. */
struct ImpedancePoint
{
    double freqHz = 0.0;
    double zGlobal = 0.0;
    double zStack = 0.0;
    double zResidualSameLayer = 0.0;
    double zResidualDiffLayer = 0.0;
};

/**
 * Effective impedance analyzer over a voltage-stacked PDN.
 */
class ImpedanceAnalyzer
{
  public:
    /** @param pdn the PDN to analyze (must outlive the analyzer). */
    explicit ImpedanceAnalyzer(const VsPdn &pdn);

    /** @return Z_G at one frequency (ohms). */
    double globalImpedance(double freqHz) const;

    /** @return Z_ST for the given column at one frequency. */
    double stackImpedance(double freqHz, int column = 0) const;

    /**
     * @return Z_R at one frequency.
     * @param sameLayer measure at the over-loaded SM itself when
     *        true; at a different layer of the same column otherwise.
     */
    double residualImpedance(double freqHz, bool sameLayer) const;

    /** Sweep all four impedances over a frequency list. */
    std::vector<ImpedancePoint>
    sweep(const std::vector<double> &freqsHz) const;

    /** @return the maximum of the four impedances at one frequency. */
    double peakImpedance(double freqHz) const;

  private:
    /**
     * Solve with per-SM load amplitudes and return |ΔV| of the layer
     * voltage at the observed SM per amp of stimulus normalization.
     */
    double respond(const std::vector<double> &smLoadAmps,
                   int observeSm, double freqHz) const;

    const VsPdn &pdn_;
};

/** Logarithmically spaced frequency grid [lo, hi], n points. */
std::vector<double> logFrequencyGrid(double loHz, double hiHz, int n);

} // namespace vsgpu

#endif // VSGPU_PDN_IMPEDANCE_HH
