/**
 * @file
 * Effective impedance analysis of the voltage-stacked PDN (paper
 * Section III-B and Fig. 3).
 *
 * Any SM load-current vector decomposes into three orthogonal
 * components:
 *   - global:   the mean over all 16 SMs (flows top-to-bottom through
 *               the whole stack),
 *   - stack:    the per-column mean after removing the global part,
 *   - residual: what remains — vertical imbalance inside a column,
 *               the component that disturbs the boundary rails.
 *
 * For each component we inject the corresponding AC current pattern
 * and report the magnitude of the layer-voltage response per amp of
 * SM load:
 *   - Z_G:        response at a loaded SM to the global pattern,
 *   - Z_ST:       response within the loaded stack to the stack
 *                 pattern,
 *   - Z_R (same layer):      response at the over-loaded SM itself,
 *   - Z_R (different layer): response at another layer of the same
 *                 column.
 */

#ifndef VSGPU_PDN_IMPEDANCE_HH
#define VSGPU_PDN_IMPEDANCE_HH

#include <vector>

#include "pdn/vs_pdn.hh"

namespace vsgpu
{

/** One row of the effective-impedance sweep. */
struct ImpedancePoint
{
    Hertz freq{};
    Ohms zGlobal{};
    Ohms zStack{};
    Ohms zResidualSameLayer{};
    Ohms zResidualDiffLayer{};
};

/**
 * Effective impedance analyzer over a voltage-stacked PDN.
 */
class ImpedanceAnalyzer
{
  public:
    /** @param pdn the PDN to analyze (must outlive the analyzer). */
    explicit ImpedanceAnalyzer(const VsPdn &pdn);

    /** @return Z_G at one frequency. */
    Ohms globalImpedance(Hertz freq) const;

    /** @return Z_ST for the given column at one frequency. */
    Ohms stackImpedance(Hertz freq, int column = 0) const;

    /**
     * @return Z_R at one frequency.
     * @param sameLayer measure at the over-loaded SM itself when
     *        true; at a different layer of the same column otherwise.
     */
    Ohms residualImpedance(Hertz freq, bool sameLayer) const;

    /**
     * All four impedances at one frequency.  Builds and factors the
     * complex MNA system once and back-substitutes the four stimulus
     * patterns against it (AcAnalysis::solveMany), so one sweep
     * point costs one factorization instead of four.
     */
    ImpedancePoint sweepPoint(Hertz freq) const;

    /** Sweep all four impedances over a frequency list. */
    std::vector<ImpedancePoint>
    sweep(const std::vector<Hertz> &freqs) const;

    /** @return the maximum of the four impedances at one frequency. */
    Ohms peakImpedance(Hertz freq) const;

  private:
    /**
     * Solve with per-SM load amplitudes and return |ΔV| of the layer
     * voltage at the observed SM per amp of stimulus normalization.
     */
    Ohms respond(const std::vector<double> &smLoadAmps,
                 int observeSm, Hertz freq) const;

    const VsPdn &pdn_;
};

/** Logarithmically spaced frequency grid [lo, hi], n points. */
std::vector<Hertz> logFrequencyGrid(Hertz lo, Hertz hi, int n);

} // namespace vsgpu

#endif // VSGPU_PDN_IMPEDANCE_HH
