/**
 * @file
 * Power-delivery-network parameters.
 *
 * Values follow the GPUvolt/EmerGPU modeling convention the paper
 * cites: board and package RL parasitics, C4/grid resistance, and
 * per-SM on-die decoupling capacitance, tuned so that the unregulated
 * voltage-stacked global impedance peaks near 70 MHz (paper Fig. 3(a))
 * and the DC residual plateau sits near 0.25 ohm.
 */

#ifndef VSGPU_PDN_PARAMS_HH
#define VSGPU_PDN_PARAMS_HH

#include "common/units.hh"

namespace vsgpu
{

/**
 * Electrical parameters shared by all PDS configurations.
 * Dimensioned quantities; mixing a field into the wrong slot of a
 * netlist builder is a compile error.
 */
struct PdnParams
{
    // Board (PCB trace + connector) per supply rail.
    Ohms boardR = 0.25_mOhm;
    Henries boardL = 40.0_pH;

    // Bulk decoupling on the board.
    Farads bulkC = 300.0_uF;
    Ohms bulkEsr = 0.3_mOhm;

    // Package (socket bumps + package planes) per rail.
    Ohms packageR = 0.35_mOhm;
    Henries packageL = 65.0_pH;

    // Package-level decoupling.
    Farads packageC = 2.2_uF;
    Ohms packageEsr = 0.8_mOhm;

    // C4 bump + top-metal connection, per stacking column.  The
    // voltage-stacked configuration re-routes the top metal between
    // the C4 bumps and the boundary rails, so this term includes the
    // re-routing inductance (paper Section III-A).
    Ohms c4R = 1.2_mOhm;
    Henries c4L = 100.0_pH;

    // On-chip horizontal grid resistance between adjacent columns at
    // one boundary level.
    Ohms gridR = 80.0_mOhm;

    // On-die decoupling per SM (across its local rail pair) and its
    // effective series resistance.
    Farads smDecapC = 100.0_nF;
    Ohms smDecapEsr = 1.0_mOhm;

    // Linearized SM load conductance.  GPU load current has only a
    // weak voltage dependence around the operating point (clock and
    // activity are externally set), modeled as I ~ V^alpha with
    // alpha << 1, giving an incremental load resistance
    // R_load = V / (alpha * I) = V^2 / (alpha * P).
    Watts smNominalPower = 7.0_W;
    Volts smNominalVoltage = config::smVoltage;
    double smLoadAlpha = 0.15;

    /** @return linearized per-SM load resistance. */
    Ohms
    smLoadOhms() const
    {
        return smNominalVoltage * smNominalVoltage /
               (smLoadAlpha * smNominalPower);
    }
};

/** @return the default parameter set used across the evaluation. */
PdnParams defaultPdnParams();

} // namespace vsgpu

#endif // VSGPU_PDN_PARAMS_HH
