/**
 * @file
 * Power-delivery-network parameters.
 *
 * Values follow the GPUvolt/EmerGPU modeling convention the paper
 * cites: board and package RL parasitics, C4/grid resistance, and
 * per-SM on-die decoupling capacitance, tuned so that the unregulated
 * voltage-stacked global impedance peaks near 70 MHz (paper Fig. 3(a))
 * and the DC residual plateau sits near 0.25 ohm.
 */

#ifndef VSGPU_PDN_PARAMS_HH
#define VSGPU_PDN_PARAMS_HH

#include "common/units.hh"

namespace vsgpu
{

/**
 * Electrical parameters shared by all PDS configurations.
 * All values SI (ohms, henries, farads).
 */
struct PdnParams
{
    // Board (PCB trace + connector) per supply rail.
    double boardR = 0.25e-3;
    double boardL = 40e-12;

    // Bulk decoupling on the board.
    double bulkC = 300e-6;
    double bulkEsr = 0.3e-3;

    // Package (socket bumps + package planes) per rail.
    double packageR = 0.35e-3;
    double packageL = 65e-12;

    // Package-level decoupling.
    double packageC = 2.2e-6;
    double packageEsr = 0.8e-3;

    // C4 bump + top-metal connection, per stacking column.  The
    // voltage-stacked configuration re-routes the top metal between
    // the C4 bumps and the boundary rails, so this term includes the
    // re-routing inductance (paper Section III-A).
    double c4R = 1.2e-3;
    double c4L = 100e-12;

    // On-chip horizontal grid resistance between adjacent columns at
    // one boundary level.
    double gridR = 80e-3;

    // On-die decoupling per SM (across its local rail pair) and its
    // effective series resistance.
    double smDecapC = 100e-9;
    double smDecapEsr = 1.0e-3;

    // Linearized SM load conductance.  GPU load current has only a
    // weak voltage dependence around the operating point (clock and
    // activity are externally set), modeled as I ~ V^alpha with
    // alpha << 1, giving an incremental load resistance
    // R_load = V / (alpha * I) = V^2 / (alpha * P).
    double smNominalPower = 7.0;
    double smNominalVoltage = config::smVoltage;
    double smLoadAlpha = 0.15;

    /** @return linearized per-SM load resistance (ohms). */
    double
    smLoadOhms() const
    {
        return smNominalVoltage * smNominalVoltage /
               (smLoadAlpha * smNominalPower);
    }
};

/** @return the default parameter set used across the evaluation. */
PdnParams defaultPdnParams();

} // namespace vsgpu

#endif // VSGPU_PDN_PARAMS_HH
