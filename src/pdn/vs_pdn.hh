/**
 * @file
 * The 4x4 voltage-stacked power-delivery network (paper Fig. 1(c)).
 *
 * Sixteen SMs are arranged as four series-stacked voltage layers of
 * four columns each.  A single 4.1 V board supply feeds the top
 * boundary rail; the bottom boundary rail returns to ground.  Boundary
 * rails between layers exist only on chip.  Each SM is modeled as a
 * time-varying current source in parallel with a linearized load
 * resistance and a local decoupling capacitor.  Optional distributed
 * charge-recycling IVRs (averaged model) equalize adjacent layers in
 * every column.
 *
 * Layer indexing follows the paper: layer 0 is the top domain
 * (VDD to 3/4 VDD) holding SM0-3; layer 3 is the bottom domain
 * (1/4 VDD to GND) holding SM12-15.  SM index s maps to
 * layer = s / 4, column = s % 4.
 */

#ifndef VSGPU_PDN_VS_PDN_HH
#define VSGPU_PDN_VS_PDN_HH

#include <vector>

#include "circuit/netlist.hh"
#include "circuit/transient.hh"
#include "common/check.hh"
#include "common/units.hh"
#include "pdn/params.hh"

namespace vsgpu
{

/** Build-time options for the voltage-stacked PDN. */
struct VsPdnOptions
{
    PdnParams params = defaultPdnParams();

    /**
     * Stacking geometry.  The paper's system is 4 layers x 4 columns
     * of one SM each; other geometries (2x8, 8x2) are supported for
     * design-space ablations.  numLayers * numColumns SMs total.
     */
    int numLayers = config::numLayers;
    int numColumns = config::smsPerLayer;

    /**
     * Effective resistance of each distributed CR-IVR equalizer cell
     * (1 / (fsw * Cfly)); non-positive disables on-chip regulation.
     */
    Ohms crIvrEffOhms{};

    /**
     * Flying capacitance of each CR-IVR cell.  The flying caps
     * spend half of every switching period across each adjacent
     * layer, so they additionally act as Cfly/2 of decoupling on both
     * layers — this is what suppresses the global resonance peak in
     * paper Fig. 3(b).  Non-positive omits the effect.
     */
    Farads crIvrFlyCapF{};

    /** Include the linearized per-SM load resistor. */
    bool includeLoadResistors = true;

    /** Board supply voltage. */
    Volts supplyVolts = config::pcbVoltage;
};

/**
 * Owner of the voltage-stacked netlist plus the index maps needed to
 * drive and observe it.
 */
class VsPdn
{
  public:
    explicit VsPdn(const VsPdnOptions &options = {});

    /** @return the underlying netlist. */
    const Netlist &netlist() const { return net_; }

    /** @return build options. */
    const VsPdnOptions &options() const { return options_; }

    /** @return stacking layer count of this instance. */
    int layers() const { return options_.numLayers; }

    /** @return stacking column count of this instance. */
    int columns() const { return options_.numColumns; }

    /** @return total SM count of this instance. */
    int numSms() const { return layers() * columns(); }

    /** @return this instance's layer of an SM (0 = top domain). */
    int layerOf(int sm) const { return sm / columns(); }

    /** @return this instance's column of an SM. */
    int columnOf(int sm) const { return sm % columns(); }

    /** @return SM index for a (layer, column) pair (instance). */
    int
    smIndexAt(int layer, int column) const
    {
        return layer * columns() + column;
    }

    /** @return boundary-rail node at level (0..layers) and column. */
    NodeId boundaryNode(int level, int column) const;

    /** @return the SM's upper supply node. */
    NodeId smTopNode(int sm) const;

    /** @return the SM's lower supply node. */
    NodeId smBottomNode(int sm) const;

    /** @return current-source index driving the SM's load. */
    int smCurrentSource(int sm) const;

    /** @return stacking layer of an SM (0 = top domain). */
    VSGPU_CONTRACT static int
    smLayer(int sm)
    {
        VSGPU_REQUIRES(sm >= 0, "negative SM index ", sm);
        return sm / config::smsPerLayer;
    }

    /** @return stacking column of an SM. */
    VSGPU_CONTRACT static int
    smColumn(int sm)
    {
        VSGPU_REQUIRES(sm >= 0, "negative SM index ", sm);
        return sm % config::smsPerLayer;
    }

    /** @return SM index for a (layer, column) pair. */
    static int
    smAt(int layer, int column)
    {
        return layer * config::smsPerLayer + column;
    }

    /** @return the SM's local rail voltage in a transient sim. */
    Volts smVoltage(const TransientSim &sim, int sm) const;

    /** @return index of the board supply voltage source. */
    int supplySource() const { return supplyIdx_; }

    /** @return equalizer element indices (empty without CR-IVR). */
    const std::vector<int> &equalizerIndices() const
    {
        return equalizerIdx_;
    }

    /** @return indices of the linearized per-SM load resistors (their
     *  dissipation is load power, not PDN loss). */
    const std::vector<int> &loadResistorIndices() const
    {
        return loadResIdx_;
    }

    /** @return nominal per-layer voltage (supply / layers). */
    Volts
    nominalLayerVolts() const
    {
        return options_.supplyVolts /
               static_cast<double>(options_.numLayers);
    }

  private:
    void build();

    VsPdnOptions options_;
    Netlist net_;
    // boundary_[level][column], level 0 (chip ground rail) .. 4 (VDD).
    std::vector<std::vector<NodeId>> boundary_;
    std::vector<int> smSource_;
    std::vector<int> loadResIdx_;
    std::vector<int> equalizerIdx_;
    int supplyIdx_ = -1;
};

} // namespace vsgpu

#endif // VSGPU_PDN_VS_PDN_HH
