/**
 * @file
 * Single-layer (non-stacked) power-delivery networks used as the
 * paper's comparison baselines:
 *
 *   - Conventional PDS: a board-level VRM regulates down to 1 V and
 *     the full load current crosses board, package, and C4 parasitics.
 *     The on-chip ground return is folded into doubled supply-side
 *     parasitics (standard single-rail simplification), and the VRM
 *     conversion loss is accounted analytically in the efficiency
 *     models (src/ivr/efficiency.hh).
 *
 *   - Single-layer IVR PDS: an on-die switched-capacitor regulator
 *     converts at the point of load, so the regulated rail sees only
 *     package-local parasitics; board-side transport happens at 2 V
 *     and is again accounted analytically.
 */

#ifndef VSGPU_PDN_SINGLE_LAYER_HH
#define VSGPU_PDN_SINGLE_LAYER_HH

#include <vector>

#include "circuit/netlist.hh"
#include "circuit/transient.hh"
#include "common/units.hh"
#include "pdn/params.hh"

namespace vsgpu
{

/** Build-time options for a single-layer PDN. */
struct SingleLayerOptions
{
    PdnParams params = defaultPdnParams();

    /** Regulated rail voltage delivered to the chip. */
    Volts supplyVolts = config::smVoltage;

    /**
     * Place the regulated source at the package (true for the
     * single-layer IVR configuration; false routes through board and
     * package parasitics as in the conventional VRM configuration).
     */
    bool supplyAtPackage = false;

    /** Include the linearized per-SM load resistor. */
    bool includeLoadResistors = true;
};

/**
 * Owner of the single-layer netlist plus index maps.  SMs form a
 * 4-row x 4-column on-chip grid; column heads attach to the package
 * via C4.
 */
class SingleLayerPdn
{
  public:
    explicit SingleLayerPdn(const SingleLayerOptions &options = {});

    /** @return the underlying netlist. */
    const Netlist &netlist() const { return net_; }

    /** @return build options. */
    const SingleLayerOptions &options() const { return options_; }

    /** @return supply node of an SM. */
    NodeId smNode(int sm) const;

    /** @return current-source index driving the SM's load. */
    int smCurrentSource(int sm) const;

    /** @return the SM's rail voltage in a transient sim. */
    Volts smVoltage(const TransientSim &sim, int sm) const;

    /** @return index of the supply voltage source. */
    int supplySource() const { return supplyIdx_; }

    /** @return indices of the linearized per-SM load resistors. */
    const std::vector<int> &loadResistorIndices() const
    {
        return loadResIdx_;
    }

  private:
    void build();

    SingleLayerOptions options_;
    Netlist net_;
    std::vector<NodeId> smNode_;
    std::vector<int> smSource_;
    std::vector<int> loadResIdx_;
    int supplyIdx_ = -1;
};

} // namespace vsgpu

#endif // VSGPU_PDN_SINGLE_LAYER_HH
