#include "pdn/single_layer.hh"

#include <string>

#include "common/logging.hh"

namespace vsgpu
{

SingleLayerPdn::SingleLayerPdn(const SingleLayerOptions &options)
    : options_(options)
{
    build();
}

void
SingleLayerPdn::build()
{
    const PdnParams &p = options_.params;
    const int rows = config::numLayers;     // 4x4 physical grid
    const int cols = config::smsPerLayer;

    const NodeId srcNode = net_.allocNode("vdd_src");
    supplyIdx_ = net_.addVoltageSource(srcNode, Netlist::ground,
                                       options_.supplyVolts);

    NodeId pkgNode;
    if (options_.supplyAtPackage) {
        // IVR at the point of load: regulated rail appears at the
        // package node through a small output impedance.
        pkgNode = net_.allocNode("vdd_pkg");
        net_.addResistor(srcNode, pkgNode, 0.1_mOhm, "r_ivr_out");
    } else {
        // Conventional: board + package parasitics; the ground return
        // is modeled as ideal (its parasitics are folded into the
        // supply-side values).
        const NodeId boardMid = net_.allocNode("vdd_board_rl");
        const NodeId boardNode = net_.allocNode("vdd_board");
        net_.addResistor(srcNode, boardMid, p.boardR, "r_board");
        net_.addInductor(boardMid, boardNode, p.boardL);

        const NodeId bulkMid = net_.allocNode("bulk_esr");
        net_.addCapacitor(boardNode, bulkMid, p.bulkC,
                          options_.supplyVolts);
        net_.addResistor(bulkMid, Netlist::ground, p.bulkEsr,
                         "r_bulk_esr");

        const NodeId pkgMid = net_.allocNode("vdd_pkg_rl");
        pkgNode = net_.allocNode("vdd_pkg");
        net_.addResistor(boardNode, pkgMid, p.packageR, "r_pkg");
        net_.addInductor(pkgMid, pkgNode, p.packageL);

        const NodeId pkgCapMid = net_.allocNode("pkgcap_esr");
        net_.addCapacitor(pkgNode, pkgCapMid, p.packageC,
                          options_.supplyVolts);
        net_.addResistor(pkgCapMid, Netlist::ground, p.packageEsr,
                         "r_pkgcap_esr");
    }

    // On-chip grid: 4x4 SM nodes; C4 feeds each column head.
    smNode_.resize(static_cast<std::size_t>(config::numSMs));
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            smNode_[static_cast<std::size_t>(r * cols + c)] =
                net_.allocNode("sm" + std::to_string(r * cols + c));
        }
    }
    // Every SM tile sits under its own C4 bumps; per-tile values are
    // scaled so a column's parallel combination matches the
    // per-column budget used by the stacked topology.
    for (int sm = 0; sm < config::numSMs; ++sm) {
        const NodeId mid = net_.allocNode("c4_rl");
        net_.addResistor(pkgNode, mid,
                         p.c4R * 2.5, "r_c4");
        net_.addInductor(mid, smNode(sm),
                         p.c4L * static_cast<double>(rows));
    }
    // Vertical grid within each column, horizontal grid within rows.
    for (int r = 0; r + 1 < rows; ++r)
        for (int c = 0; c < cols; ++c)
            net_.addResistor(smNode(r * cols + c),
                             smNode((r + 1) * cols + c), p.gridR,
                             "r_grid_v");
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c + 1 < cols; ++c)
            net_.addResistor(smNode(r * cols + c),
                             smNode(r * cols + c + 1), p.gridR,
                             "r_grid_h");

    // Loads.
    smSource_.resize(static_cast<std::size_t>(config::numSMs));
    for (int sm = 0; sm < config::numSMs; ++sm) {
        const NodeId node = smNode(sm);
        smSource_[static_cast<std::size_t>(sm)] = net_.addCurrentSource(
            node, Netlist::ground, Amps{},
            "i_sm" + std::to_string(sm));
        if (options_.includeLoadResistors) {
            // The linearization point scales with the rail voltage.
            const Ohms loadOhms =
                options_.supplyVolts * options_.supplyVolts /
                (p.smLoadAlpha * p.smNominalPower);
            loadResIdx_.push_back(net_.addResistor(
                node, Netlist::ground, loadOhms,
                "r_sm" + std::to_string(sm)));
        }
        const NodeId capMid =
            net_.allocNode("decap" + std::to_string(sm));
        net_.addCapacitor(node, capMid, p.smDecapC,
                          options_.supplyVolts);
        net_.addResistor(capMid, Netlist::ground, p.smDecapEsr,
                         "r_decap_esr");
    }

    // Renumber into a fill-reducing elimination order and remap the
    // cached SM rail ids (element indices are unaffected).
    const std::vector<NodeId> oldToNew = net_.renumberMinDegree();
    for (NodeId &node : smNode_)
        node = oldToNew[static_cast<std::size_t>(node)];
}

NodeId
SingleLayerPdn::smNode(int sm) const
{
    panicIfNot(sm >= 0 && sm < config::numSMs, "bad SM index ", sm);
    return smNode_[static_cast<std::size_t>(sm)];
}

int
SingleLayerPdn::smCurrentSource(int sm) const
{
    panicIfNot(sm >= 0 && sm < config::numSMs, "bad SM index ", sm);
    return smSource_[static_cast<std::size_t>(sm)];
}

Volts
SingleLayerPdn::smVoltage(const TransientSim &sim, int sm) const
{
    return Volts{sim.nodeVoltage(smNode(sm))};
}

} // namespace vsgpu
