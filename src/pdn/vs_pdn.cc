#include "pdn/vs_pdn.hh"

#include <string>

#include "common/logging.hh"

namespace vsgpu
{

VsPdn::VsPdn(const VsPdnOptions &options)
    : options_(options)
{
    build();
}

void
VsPdn::build()
{
    const PdnParams &p = options_.params;
    const int layers = options_.numLayers;
    const int cols = options_.numColumns;
    panicIfNot(layers >= 2 && cols >= 1,
               "stacking needs >= 2 layers and >= 1 column");

    // Supply path: source -> board RL -> package RL -> per-column C4
    // into the top boundary rail; mirrored return path from the bottom
    // boundary rail to ground.
    const NodeId srcTop = net_.allocNode("vdd_src");
    const NodeId boardTop = net_.allocNode("vdd_board");
    const NodeId boardMidTop = net_.allocNode("vdd_board_rl");
    const NodeId pkgTop = net_.allocNode("vdd_pkg");
    const NodeId pkgMidTop = net_.allocNode("vdd_pkg_rl");

    const NodeId boardGnd = net_.allocNode("gnd_board");
    const NodeId boardMidGnd = net_.allocNode("gnd_board_rl");
    const NodeId pkgGnd = net_.allocNode("gnd_pkg");
    const NodeId pkgMidGnd = net_.allocNode("gnd_pkg_rl");

    supplyIdx_ = net_.addVoltageSource(srcTop, Netlist::ground,
                                       options_.supplyVolts);

    // VDD side board and package parasitics.
    net_.addResistor(srcTop, boardMidTop, p.boardR, "r_board_vdd");
    net_.addInductor(boardMidTop, boardTop, p.boardL);
    net_.addResistor(boardTop, pkgMidTop, p.packageR, "r_pkg_vdd");
    net_.addInductor(pkgMidTop, pkgTop, p.packageL);

    // Ground-return board and package parasitics.
    net_.addResistor(pkgGnd, pkgMidGnd, p.packageR, "r_pkg_gnd");
    net_.addInductor(pkgMidGnd, boardGnd, p.packageL);
    net_.addResistor(boardGnd, boardMidGnd, p.boardR, "r_board_gnd");
    net_.addInductor(boardMidGnd, Netlist::ground, p.boardL);

    // Bulk decap across the board rails, package decap across the
    // package rails, each with series ESR via an internal node.
    const NodeId bulkMid = net_.allocNode("bulk_esr");
    net_.addCapacitor(boardTop, bulkMid, p.bulkC, options_.supplyVolts);
    net_.addResistor(bulkMid, boardGnd, p.bulkEsr, "r_bulk_esr");

    const NodeId pkgCapMid = net_.allocNode("pkgcap_esr");
    net_.addCapacitor(pkgTop, pkgCapMid, p.packageC,
                      options_.supplyVolts);
    net_.addResistor(pkgCapMid, pkgGnd, p.packageEsr, "r_pkgcap_esr");

    // Boundary rails: level 0 = chip ground rail .. level 4 = VDD rail.
    boundary_.assign(static_cast<std::size_t>(layers + 1),
                     std::vector<NodeId>(static_cast<std::size_t>(cols)));
    for (int level = 0; level <= layers; ++level) {
        for (int c = 0; c < cols; ++c) {
            boundary_[static_cast<std::size_t>(level)]
                     [static_cast<std::size_t>(c)] =
                net_.allocNode("b" + std::to_string(level) + "_" +
                               std::to_string(c));
        }
    }

    // C4 + top-metal connection per column at the top and bottom.
    for (int c = 0; c < cols; ++c) {
        const NodeId midT = net_.allocNode("c4t_rl");
        net_.addResistor(pkgTop, midT, p.c4R, "r_c4_vdd");
        net_.addInductor(midT, boundaryNode(layers, c), p.c4L);

        const NodeId midB = net_.allocNode("c4b_rl");
        net_.addResistor(boundaryNode(0, c), midB, p.c4R, "r_c4_gnd");
        net_.addInductor(midB, pkgGnd, p.c4L);
    }

    // Horizontal on-chip grid: adjacent columns chained at each level.
    for (int level = 0; level <= layers; ++level) {
        for (int c = 0; c + 1 < cols; ++c) {
            net_.addResistor(boundaryNode(level, c),
                             boundaryNode(level, c + 1), p.gridR,
                             "r_grid");
        }
    }

    // SM loads: current source + linearized load resistor + decap.
    const Volts layerVolts = nominalLayerVolts();
    smSource_.resize(static_cast<std::size_t>(numSms()));
    for (int sm = 0; sm < numSms(); ++sm) {
        const NodeId top = smTopNode(sm);
        const NodeId bottom = smBottomNode(sm);
        const Amps nominalAmps =
            p.smNominalPower / p.smNominalVoltage;

        smSource_[static_cast<std::size_t>(sm)] = net_.addCurrentSource(
            top, bottom,
            options_.includeLoadResistors ? Amps{} : nominalAmps,
            "i_sm" + std::to_string(sm));

        if (options_.includeLoadResistors) {
            loadResIdx_.push_back(net_.addResistor(
                top, bottom, p.smLoadOhms(),
                "r_sm" + std::to_string(sm)));
        }

        const NodeId capMid =
            net_.allocNode("decap" + std::to_string(sm));
        net_.addCapacitor(top, capMid, p.smDecapC, layerVolts);
        net_.addResistor(capMid, bottom, p.smDecapEsr, "r_decap_esr");
    }

    // Distributed CR-IVR (averaged): three equalizer cells per column
    // spanning each adjacent layer pair.
    if (options_.crIvrEffOhms > Ohms{}) {
        for (int c = 0; c < cols; ++c) {
            for (int level = layers; level >= 2; --level) {
                equalizerIdx_.push_back(net_.addEqualizer(
                    boundaryNode(level, c), boundaryNode(level - 1, c),
                    boundaryNode(level - 2, c), options_.crIvrEffOhms,
                    "crivr_c" + std::to_string(c)));
                if (options_.crIvrFlyCapF > Farads{}) {
                    // Flying caps double as Cfly/2 of decoupling on
                    // each of the two layers the cell spans.
                    const Farads half = options_.crIvrFlyCapF / 2.0;
                    const NodeId mid1 = net_.allocNode("fly_esr");
                    net_.addCapacitor(boundaryNode(level, c), mid1,
                                      half, layerVolts);
                    net_.addResistor(mid1, boundaryNode(level - 1, c),
                                     p.smDecapEsr, "r_fly_esr");
                    const NodeId mid2 = net_.allocNode("fly_esr");
                    net_.addCapacitor(boundaryNode(level - 1, c), mid2,
                                      half, layerVolts);
                    net_.addResistor(mid2, boundaryNode(level - 2, c),
                                     p.smDecapEsr, "r_fly_esr");
                }
            }
        }
    }

    // Topology is final: renumber into a fill-reducing elimination
    // order (allocation order above follows the supply path, which
    // is near-pessimal for LU fill) and remap the cached rail ids.
    const std::vector<NodeId> oldToNew = net_.renumberMinDegree();
    for (auto &level : boundary_)
        for (NodeId &node : level)
            node = oldToNew[static_cast<std::size_t>(node)];
}

NodeId
VsPdn::boundaryNode(int level, int column) const
{
    panicIfNot(level >= 0 && level <= layers(),
               "bad boundary level ", level);
    panicIfNot(column >= 0 && column < columns(),
               "bad boundary column ", column);
    return boundary_[static_cast<std::size_t>(level)]
                    [static_cast<std::size_t>(column)];
}

NodeId
VsPdn::smTopNode(int sm) const
{
    panicIfNot(sm >= 0 && sm < numSms(), "bad SM index ", sm);
    return boundaryNode(layers() - layerOf(sm), columnOf(sm));
}

NodeId
VsPdn::smBottomNode(int sm) const
{
    panicIfNot(sm >= 0 && sm < numSms(), "bad SM index ", sm);
    return boundaryNode(layers() - 1 - layerOf(sm), columnOf(sm));
}

int
VsPdn::smCurrentSource(int sm) const
{
    panicIfNot(sm >= 0 && sm < numSms(), "bad SM index ", sm);
    return smSource_[static_cast<std::size_t>(sm)];
}

Volts
VsPdn::smVoltage(const TransientSim &sim, int sm) const
{
    return Volts{sim.nodeVoltage(smTopNode(sm)) -
                 sim.nodeVoltage(smBottomNode(sm))};
}

} // namespace vsgpu
