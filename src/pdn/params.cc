#include "pdn/params.hh"

namespace vsgpu
{

PdnParams
defaultPdnParams()
{
    return PdnParams{};
}

} // namespace vsgpu
