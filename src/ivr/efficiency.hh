/**
 * @file
 * Conversion-efficiency models for the non-stacked baselines and the
 * fixed per-configuration overheads used in the PDE accounting
 * (paper Table III and Fig. 8).
 */

#ifndef VSGPU_IVR_EFFICIENCY_HH
#define VSGPU_IVR_EFFICIENCY_HH

#include "common/units.hh"

namespace vsgpu
{

/**
 * Board-level multi-phase buck VRM (the conventional baseline,
 * paper ref [68]).  Efficiency peaks at mid load and degrades toward
 * light and peak load.
 */
class VrmModel
{
  public:
    /**
     * @param peakEfficiency best-case conversion efficiency.
     * @param ratedWatts     output power at which the curve is
     *                       centered.
     */
    explicit VrmModel(double peakEfficiency = 0.885,
                      double ratedWatts = 130.0);

    /** @return conversion efficiency at the given output power. */
    double efficiency(double outputWatts) const;

    /** @return input power needed to deliver the given output (W). */
    double inputPower(double outputWatts) const;

    /** @return conversion loss at the given output power (W). */
    double conversionLoss(double outputWatts) const;

  private:
    double peak_;
    double rated_;
};

/**
 * On-die switched-capacitor IVR for the single-layer IVR baseline
 * (paper ref [69], FIVR-style).  2:1 conversion from a 2 V input rail.
 */
class SingleIvrModel
{
  public:
    explicit SingleIvrModel(double peakEfficiency = 0.905,
                            double ratedWatts = 140.0);

    /** @return conversion efficiency at the given output power. */
    double efficiency(double outputWatts) const;

    /** @return input power needed to deliver the given output (W). */
    double inputPower(double outputWatts) const;

    /** @return board-side rail voltage (V). */
    double inputVolts() const { return 2.0; }

    /**
     * Die area of the single-layer IVR sized for the full GPU load
     * (paper Table III: 172.3 mm^2 = 0.33 x GPU die).
     */
    static double areaMm2() { return 172.3; }

  private:
    double peak_;
    double rated_;
};

/**
 * Fixed overheads of the voltage-stacked configurations.
 */
struct VsOverheads
{
    /**
     * Level-shifted interface power at the L2/memory-controller
     * boundary, as a fraction of SM power crossing domains (paper
     * Section III-A: switched-capacitor level shifters, < 6% of
     * memory-interface transistors).
     */
    double levelShifterFraction = 0.016;

    /** Voltage-smoothing controller + issue adjusters (W, paper:
     *  1.634 mW at 700 MHz — negligible but accounted). */
    double controllerWatts = 1.634e-3;

    /** Controller + adjusters area (mm^2, paper: 3084 um^2). */
    double controllerAreaMm2 = 3084e-6;

    /** RC low-pass filter area per SM (mm^2, paper: 1120 um^2). */
    double filterAreaMm2 = 1120e-6;
};

} // namespace vsgpu

#endif // VSGPU_IVR_EFFICIENCY_HH
