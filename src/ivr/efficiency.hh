/**
 * @file
 * Conversion-efficiency models for the non-stacked baselines and the
 * fixed per-configuration overheads used in the PDE accounting
 * (paper Table III and Fig. 8).
 */

#ifndef VSGPU_IVR_EFFICIENCY_HH
#define VSGPU_IVR_EFFICIENCY_HH

#include "common/units.hh"

namespace vsgpu
{

/**
 * Board-level multi-phase buck VRM (the conventional baseline,
 * paper ref [68]).  Efficiency peaks at mid load and degrades toward
 * light and peak load.
 */
class VrmModel
{
  public:
    /**
     * @param peakEfficiency best-case conversion efficiency.
     * @param rated          output power at which the curve is
     *                       centered.
     */
    explicit VrmModel(double peakEfficiency = 0.885,
                      Watts rated = 130.0_W);

    /** @return conversion efficiency at the given output power. */
    double efficiency(Watts output) const;

    /** @return input power needed to deliver the given output. */
    Watts inputPower(Watts output) const;

    /** @return conversion loss at the given output power. */
    Watts conversionLoss(Watts output) const;

  private:
    double peak_;
    Watts rated_;
};

/**
 * On-die switched-capacitor IVR for the single-layer IVR baseline
 * (paper ref [69], FIVR-style).  2:1 conversion from a 2 V input rail.
 */
class SingleIvrModel
{
  public:
    explicit SingleIvrModel(double peakEfficiency = 0.905,
                            Watts rated = 140.0_W);

    /** @return conversion efficiency at the given output power. */
    double efficiency(Watts output) const;

    /** @return input power needed to deliver the given output. */
    Watts inputPower(Watts output) const;

    /** @return board-side rail voltage. */
    Volts inputVolts() const { return 2.0_V; }

    /**
     * Die area of the single-layer IVR sized for the full GPU load
     * (paper Table III: 172.3 mm^2 = 0.33 x GPU die).
     */
    static Area area() { return 172.3_mm2; }

  private:
    double peak_;
    Watts rated_;
};

/**
 * Fixed overheads of the voltage-stacked configurations.
 */
struct VsOverheads
{
    /**
     * Level-shifted interface power at the L2/memory-controller
     * boundary, as a fraction of SM power crossing domains (paper
     * Section III-A: switched-capacitor level shifters, < 6% of
     * memory-interface transistors).
     */
    double levelShifterFraction = 0.016;

    /** Voltage-smoothing controller + issue adjusters (paper:
     *  1.634 mW at 700 MHz — negligible but accounted). */
    Watts controllerPower = 1.634_mW;

    /** Controller + adjusters area (paper: 3084 um^2). */
    Area controllerArea = 3084.0_um2;

    /** RC low-pass filter area per SM (paper: 1120 um^2). */
    Area filterArea = 1120.0_um2;
};

} // namespace vsgpu

#endif // VSGPU_IVR_EFFICIENCY_HH
