#include "ivr/cr_ivr.hh"

#include "common/logging.hh"

namespace vsgpu
{

CrIvrDesign::CrIvrDesign(double areaMm2, CrIvrTech tech)
    : areaMm2_(areaMm2), tech_(tech)
{
    panicIfNot(areaMm2_ > 0.0, "CR-IVR area must be positive");
    panicIfNot(tech_.numCells > 0, "CR-IVR needs at least one cell");
}

double
CrIvrDesign::totalFlyCapF() const
{
    return areaMm2_ * tech_.capAreaFraction * tech_.capDensityPerMm2;
}

double
CrIvrDesign::flyCapPerCellF() const
{
    return totalFlyCapF() / static_cast<double>(tech_.numCells);
}

double
CrIvrDesign::effOhmsPerCell() const
{
    return 1.0 / (tech_.switchingHz * flyCapPerCellF());
}

double
CrIvrDesign::switchingLoss(double transferredWatts) const
{
    return tech_.switchingLossFraction * transferredWatts;
}

double
CrIvrDesign::areaForEffOhms(double effOhms, CrIvrTech tech)
{
    panicIfNot(effOhms > 0.0, "target Reff must be positive");
    const double capPerCell = 1.0 / (tech.switchingHz * effOhms);
    const double totalCap =
        capPerCell * static_cast<double>(tech.numCells);
    return totalCap / (tech.capAreaFraction * tech.capDensityPerMm2);
}

} // namespace vsgpu
