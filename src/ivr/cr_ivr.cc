#include "ivr/cr_ivr.hh"

#include "common/logging.hh"

namespace vsgpu
{

CrIvrDesign::CrIvrDesign(Area area, CrIvrTech tech)
    : area_(area), tech_(tech)
{
    panicIfNot(area_ > Area{}, "CR-IVR area must be positive");
    panicIfNot(tech_.numCells > 0, "CR-IVR needs at least one cell");
}

Farads
CrIvrDesign::totalFlyCap() const
{
    return area_ * tech_.capAreaFraction * tech_.capDensity;
}

Farads
CrIvrDesign::flyCapPerCell() const
{
    return totalFlyCap() / static_cast<double>(tech_.numCells);
}

Ohms
CrIvrDesign::effOhmsPerCell() const
{
    return 1.0 / (tech_.switchingHz * flyCapPerCell());
}

Watts
CrIvrDesign::switchingLoss(Watts transferred) const
{
    return tech_.switchingLossFraction * transferred;
}

Area
CrIvrDesign::areaForEffOhms(Ohms effOhms, CrIvrTech tech)
{
    panicIfNot(effOhms > Ohms{}, "target Reff must be positive");
    const Farads capPerCell = 1.0 / (tech.switchingHz * effOhms);
    const Farads totalCap =
        capPerCell * static_cast<double>(tech.numCells);
    return totalCap / (tech.capAreaFraction * tech.capDensity);
}

} // namespace vsgpu
