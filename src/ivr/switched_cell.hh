/**
 * @file
 * Detailed two-phase switched-capacitor charge-recycling cell.
 *
 * This is the cycle-accurate counterpart of the averaged Equalizer
 * element: a flying capacitor alternately connected across the upper
 * layer (top, mid) and the lower layer (mid, bottom) through ideal
 * switches.  It exists to validate the averaged model (DESIGN.md
 * decision 1) and is exercised by the ivr unit tests; long benchmark
 * runs use the averaged model.
 */

#ifndef VSGPU_IVR_SWITCHED_CELL_HH
#define VSGPU_IVR_SWITCHED_CELL_HH

#include "circuit/netlist.hh"
#include "circuit/transient.hh"

namespace vsgpu
{

/**
 * Handle to a detailed switched-capacitor cell added to a netlist.
 */
struct SwitchedCell
{
    int swTopPlus = -1;  ///< top   -> cap+ (phase A)
    int swTopMinus = -1; ///< cap-  -> mid  (phase A)
    int swBotPlus = -1;  ///< mid   -> cap+ (phase B)
    int swBotMinus = -1; ///< cap-  -> bottom (phase B)
    int capIdx = -1;     ///< flying capacitor element index

    /**
     * Drive the switches for one phase.
     * @param phaseA cap across (top, mid) when true; across
     *        (mid, bottom) when false.
     */
    void setPhase(TransientSim &sim, bool phaseA) const;
};

/**
 * Add a detailed switched-capacitor cell to a netlist.
 *
 * @param net     target netlist.
 * @param top     upper-layer top rail.
 * @param mid     shared middle rail.
 * @param bottom  lower-layer bottom rail.
 * @param flyCap  flying capacitance.
 * @param onRes   switch on-resistance.
 * @param initialCapVoltage initial flying-cap voltage.
 */
SwitchedCell addSwitchedCell(Netlist &net, NodeId top, NodeId mid,
                             NodeId bottom, Farads flyCap,
                             Ohms onRes = 5.0_mOhm,
                             Volts initialCapVoltage = 1.0_V);

} // namespace vsgpu

#endif // VSGPU_IVR_SWITCHED_CELL_HH
