/**
 * @file
 * Charge-recycling integrated voltage regulator (CR-IVR) design model.
 *
 * Maps a silicon-area budget to the electrical strength of the
 * distributed CR-IVR (paper Fig. 2): area -> flying capacitance ->
 * per-cell effective resistance Reff = 1 / (fsw * Cfly).  The model
 * follows the symmetric-ladder switched-capacitor topology of the VS
 * prototypes the paper builds on (Lee et al., Tong et al.): a MIM/MOS
 * capacitor bank dominates the area, and regulation strength scales
 * directly with capacitance and switching frequency.
 */

#ifndef VSGPU_IVR_CR_IVR_HH
#define VSGPU_IVR_CR_IVR_HH

#include "common/units.hh"

namespace vsgpu
{

/**
 * Physical/technology constants of the CR-IVR implementation.
 */
struct CrIvrTech
{
    /** On-die capacitor density (40 nm MIM+MOS stack). */
    FaradsPerArea capDensity = 8.0_nF / 1.0_mm2;

    /** Fraction of the IVR macro area occupied by flying caps. */
    double capAreaFraction = 0.7;

    /** Switching frequency of the ladder. */
    Hertz switchingHz = 200.0_MHz;

    /**
     * Parasitic switching overhead: fraction of transferred power
     * lost to gate drive and bottom-plate parasitics.
     */
    double switchingLossFraction = 0.06;

    /**
     * Efficiency of processing shuffled (inter-layer imbalance)
     * power, beyond the conduction loss the averaged Reff already
     * models: switching, bottom-plate, and control losses of the SC
     * ladder.  The paper's observation that the CR-IVR "only needs to
     * shuffle the imbalanced load, usually less than 20% of the layer
     * power" makes this the dominant VS loss term.
     */
    double shuffleEfficiency = 0.45;

    /** Number of equalizer cells (4 columns x 3 adjacent pairs). */
    int numCells = 12;
};

/**
 * A sized CR-IVR instance.
 */
class CrIvrDesign
{
  public:
    /**
     * @param area total CR-IVR macro area.
     * @param tech technology constants.
     */
    explicit CrIvrDesign(Area area, CrIvrTech tech = {});

    /** @return total macro area. */
    Area area() const { return area_; }

    /** @return area as a fraction of the GPU die. */
    double
    areaFractionOfGpu() const
    {
        return area_ / config::gpuDieArea;
    }

    /** @return total flying capacitance. */
    Farads totalFlyCap() const;

    /** @return flying capacitance per equalizer cell. */
    Farads flyCapPerCell() const;

    /** @return per-cell effective resistance Reff. */
    Ohms effOhmsPerCell() const;

    /** @return switching-overhead loss for transferred power. */
    Watts switchingLoss(Watts transferred) const;

    /** @return technology constants. */
    const CrIvrTech &tech() const { return tech_; }

    /**
     * @return the area needed for a target per-cell Reff;
     * inverse of effOhmsPerCell() for sizing studies.
     */
    static Area areaForEffOhms(Ohms effOhms, CrIvrTech tech = {});

  private:
    Area area_;
    CrIvrTech tech_;
};

} // namespace vsgpu

#endif // VSGPU_IVR_CR_IVR_HH
