#include "ivr/switched_cell.hh"

namespace vsgpu
{

void
SwitchedCell::setPhase(TransientSim &sim, bool phaseA) const
{
    sim.setSwitch(swTopPlus, phaseA);
    sim.setSwitch(swTopMinus, phaseA);
    sim.setSwitch(swBotPlus, !phaseA);
    sim.setSwitch(swBotMinus, !phaseA);
}

SwitchedCell
addSwitchedCell(Netlist &net, NodeId top, NodeId mid, NodeId bottom,
                Farads flyCap, Ohms onRes, Volts initialCapVoltage)
{
    constexpr Ohms offRes{1e9};
    SwitchedCell cell;
    const NodeId capPlus = net.allocNode("fly_p");
    const NodeId capMinus = net.allocNode("fly_n");
    cell.capIdx =
        net.addCapacitor(capPlus, capMinus, flyCap, initialCapVoltage);
    cell.swTopPlus = net.addSwitch(top, capPlus, onRes, offRes, true);
    cell.swTopMinus = net.addSwitch(capMinus, mid, onRes, offRes, true);
    cell.swBotPlus = net.addSwitch(mid, capPlus, onRes, offRes, false);
    cell.swBotMinus =
        net.addSwitch(capMinus, bottom, onRes, offRes, false);
    return cell;
}

} // namespace vsgpu
