#include "ivr/switched_cell.hh"

namespace vsgpu
{

void
SwitchedCell::setPhase(TransientSim &sim, bool phaseA) const
{
    sim.setSwitch(swTopPlus, phaseA);
    sim.setSwitch(swTopMinus, phaseA);
    sim.setSwitch(swBotPlus, !phaseA);
    sim.setSwitch(swBotMinus, !phaseA);
}

SwitchedCell
addSwitchedCell(Netlist &net, NodeId top, NodeId mid, NodeId bottom,
                double flyCapF, double onOhms, double initialCapVolts)
{
    SwitchedCell cell;
    const NodeId capPlus = net.allocNode("fly_p");
    const NodeId capMinus = net.allocNode("fly_n");
    cell.capIdx =
        net.addCapacitor(capPlus, capMinus, flyCapF, initialCapVolts);
    cell.swTopPlus = net.addSwitch(top, capPlus, onOhms, 1e9, true);
    cell.swTopMinus = net.addSwitch(capMinus, mid, onOhms, 1e9, true);
    cell.swBotPlus = net.addSwitch(mid, capPlus, onOhms, 1e9, false);
    cell.swBotMinus =
        net.addSwitch(capMinus, bottom, onOhms, 1e9, false);
    return cell;
}

} // namespace vsgpu
