#include "ivr/efficiency.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vsgpu
{

namespace
{

/**
 * Shared efficiency curve: peak efficiency at ~60% of rated power,
 * with quadratic degradation toward light load (fixed switching
 * losses dominate) and overload (conduction losses dominate).
 */
double
curve(double peak, double rated, double outputWatts)
{
    if (outputWatts <= 0.0)
        return peak * 0.5;
    const double x = outputWatts / rated;
    const double eff = peak - 0.08 * (x - 0.6) * (x - 0.6);
    return std::clamp(eff, 0.5, peak);
}

} // namespace

VrmModel::VrmModel(double peakEfficiency, double ratedWatts)
    : peak_(peakEfficiency), rated_(ratedWatts)
{
    panicIfNot(peak_ > 0.0 && peak_ < 1.0, "VRM efficiency in (0,1)");
    panicIfNot(rated_ > 0.0, "VRM rated power must be positive");
}

double
VrmModel::efficiency(double outputWatts) const
{
    return curve(peak_, rated_, outputWatts);
}

double
VrmModel::inputPower(double outputWatts) const
{
    return outputWatts / efficiency(outputWatts);
}

double
VrmModel::conversionLoss(double outputWatts) const
{
    return inputPower(outputWatts) - outputWatts;
}

SingleIvrModel::SingleIvrModel(double peakEfficiency, double ratedWatts)
    : peak_(peakEfficiency), rated_(ratedWatts)
{
    panicIfNot(peak_ > 0.0 && peak_ < 1.0, "IVR efficiency in (0,1)");
    panicIfNot(rated_ > 0.0, "IVR rated power must be positive");
}

double
SingleIvrModel::efficiency(double outputWatts) const
{
    return curve(peak_, rated_, outputWatts);
}

double
SingleIvrModel::inputPower(double outputWatts) const
{
    return outputWatts / efficiency(outputWatts);
}

} // namespace vsgpu
