#include "ivr/efficiency.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"
#include "common/logging.hh"

namespace vsgpu
{

namespace
{

/**
 * Shared efficiency curve: peak efficiency at ~60% of rated power,
 * with quadratic degradation toward light load (fixed switching
 * losses dominate) and overload (conduction losses dominate).
 */
double
curve(double peak, Watts rated, Watts output)
{
    if (output <= Watts{})
        return peak * 0.5;
    const double x = output / rated;
    const double eff = peak - 0.08 * (x - 0.6) * (x - 0.6);
    return std::clamp(eff, 0.5, peak);
}

} // namespace

VSGPU_CONTRACT
VrmModel::VrmModel(double peakEfficiency, Watts rated)
    : peak_(peakEfficiency), rated_(rated)
{
    VSGPU_REQUIRES(peak_ > 0.0 && peak_ < 1.0,
                   "VRM efficiency in (0,1)");
    VSGPU_REQUIRES(rated_ > Watts{}, "VRM rated power must be positive");
}

double
VrmModel::efficiency(Watts output) const
{
    return curve(peak_, rated_, output);
}

Watts
VrmModel::inputPower(Watts output) const
{
    return output / efficiency(output);
}

Watts
VrmModel::conversionLoss(Watts output) const
{
    return inputPower(output) - output;
}

VSGPU_CONTRACT
SingleIvrModel::SingleIvrModel(double peakEfficiency, Watts rated)
    : peak_(peakEfficiency), rated_(rated)
{
    VSGPU_REQUIRES(peak_ > 0.0 && peak_ < 1.0,
                   "IVR efficiency in (0,1)");
    VSGPU_REQUIRES(rated_ > Watts{}, "IVR rated power must be positive");
}

double
SingleIvrModel::efficiency(Watts output) const
{
    return curve(peak_, rated_, output);
}

Watts
SingleIvrModel::inputPower(Watts output) const
{
    return output / efficiency(output);
}

} // namespace vsgpu
