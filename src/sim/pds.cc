#include "sim/pds.hh"

#include "common/check.hh"
#include "common/logging.hh"
#include "ivr/efficiency.hh"

namespace vsgpu
{

const char *
pdsName(PdsKind kind)
{
    switch (kind) {
      case PdsKind::ConventionalVrm: return "single-layer VRM";
      case PdsKind::SingleLayerIvr:  return "single-layer IVR";
      case PdsKind::VsCircuitOnly:   return "VS circuit-only";
      case PdsKind::VsCrossLayer:    return "VS cross-layer";
    }
    return "?";
}

bool
isVoltageStacked(PdsKind kind)
{
    return kind == PdsKind::VsCircuitOnly ||
           kind == PdsKind::VsCrossLayer;
}

PdsOptions
defaultPds(PdsKind kind)
{
    PdsOptions options;
    options.kind = kind;
    switch (kind) {
      case PdsKind::ConventionalVrm:
      case PdsKind::SingleLayerIvr:
        options.ivrAreaFraction = 0.0;
        break;
      case PdsKind::VsCircuitOnly:
        // Sized for a worst-case guarantee without architectural
        // help (paper: 912 mm^2 = 1.72 x GPU die).
        options.ivrAreaFraction =
            config::circuitOnlyIvrArea / config::gpuDieArea;
        break;
      case PdsKind::VsCrossLayer:
        options.ivrAreaFraction = config::defaultIvrAreaFraction;
        options.smoothingEnabled = true;
        break;
    }
    return options;
}

VSGPU_CONTRACT Area
pdsAreaOverhead(const PdsOptions &options)
{
    const Area overhead = [&options]() -> Area {
        switch (options.kind) {
          case PdsKind::ConventionalVrm:
            return Area{}; // board-level, no die area
          case PdsKind::SingleLayerIvr:
            return SingleIvrModel::area();
          case PdsKind::VsCircuitOnly:
            return options.ivrArea();
          case PdsKind::VsCrossLayer: {
            const VsOverheads ov;
            return options.ivrArea() + ov.controllerArea +
                   ov.filterArea * static_cast<double>(config::numSMs) +
                   options.controller.dcc.area *
                       static_cast<double>(config::numSMs);
          }
        }
        panic("unknown PDS kind");
    }();
    VSGPU_ENSURES(overhead >= Area{}, "negative PDS area overhead");
    return overhead;
}

} // namespace vsgpu
