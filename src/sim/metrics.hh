/**
 * @file
 * Result records of a co-simulation run: the quantities every paper
 * table and figure is built from.
 */

#ifndef VSGPU_SIM_METRICS_HH
#define VSGPU_SIM_METRICS_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"

namespace vsgpu
{

class TransientSim;
class WaveWriter;
struct PdsSetup;

namespace obs
{
struct Profile;
struct TimeSeriesRun;
} // namespace obs

/**
 * Schedule-independent event counts of one run, for the obs stats
 * registry.  All integers: cross-task aggregation (add()) is exact,
 * commutative and associative, so a sweep's summed counters are
 * bitwise identical for --jobs 1 and --jobs N regardless of pool
 * scheduling (docs/parallel_exec.md).
 */
struct CosimCounters
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t fakeInstructions = 0;
    std::uint64_t throttledCycles = 0;
    std::uint64_t kernelLaunches = 0;

    // Memory system.
    std::uint64_t memAccesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t dramAccesses = 0;

    // Circuit engine (fixed-step linear solver: timesteps and LU
    // factorization builds are its cost counters).
    std::uint64_t timesteps = 0;
    std::uint64_t luFactorizations = 0;

    // Sparse MNA engine (docs/sparse_solver.md): structural nonzeros
    // of the assembly pattern, runs that reused a cached symbolic
    // pattern, and numeric refactorizations performed.
    std::uint64_t sparseNnz = 0;
    std::uint64_t sparseSymbolicReuses = 0;
    std::uint64_t sparseRefactorizations = 0;

    // Smoothing controller.
    std::uint64_t ctlDecisions = 0;
    std::uint64_t ctlTriggered = 0;
    std::uint64_t detectorTrips = 0;
    std::uint64_t diwsEngagements = 0;
    std::uint64_t fiiEngagements = 0;
    std::uint64_t dccEngagements = 0;

    // Hypervisor-level power management.
    std::uint64_t dfsTransitions = 0;
    std::uint64_t pgGateRequests = 0;
    std::uint64_t pgVetoSkips = 0;
    std::uint64_t gateEvents = 0;
    std::uint64_t hvFreqRemaps = 0;
    std::uint64_t hvGatingDenials = 0;

    /** Element-wise accumulate (exact integer sums). */
    void
    add(const CosimCounters &o)
    {
        cycles += o.cycles;
        instructions += o.instructions;
        fakeInstructions += o.fakeInstructions;
        throttledCycles += o.throttledCycles;
        kernelLaunches += o.kernelLaunches;
        memAccesses += o.memAccesses;
        l1Hits += o.l1Hits;
        l2Hits += o.l2Hits;
        dramAccesses += o.dramAccesses;
        timesteps += o.timesteps;
        luFactorizations += o.luFactorizations;
        sparseNnz += o.sparseNnz;
        sparseSymbolicReuses += o.sparseSymbolicReuses;
        sparseRefactorizations += o.sparseRefactorizations;
        ctlDecisions += o.ctlDecisions;
        ctlTriggered += o.ctlTriggered;
        detectorTrips += o.detectorTrips;
        diwsEngagements += o.diwsEngagements;
        fiiEngagements += o.fiiEngagements;
        dccEngagements += o.dccEngagements;
        dfsTransitions += o.dfsTransitions;
        pgGateRequests += o.pgGateRequests;
        pgVetoSkips += o.pgVetoSkips;
        gateEvents += o.gateEvents;
        hvFreqRemaps += o.hvFreqRemaps;
        hvGatingDenials += o.hvGatingDenials;
    }
};

/** Energy breakdown of one run (J). */
struct EnergyBreakdown
{
    double load = 0.0;       ///< delivered to SM loads (incl. fake)
    double fake = 0.0;       ///< part of load spent on FII
    double pdn = 0.0;        ///< resistive PDN loss
    double conversion = 0.0; ///< VRM / single-layer IVR loss
    double crIvr = 0.0;      ///< CR-IVR charge-transfer + switching
    double overhead = 0.0;   ///< detectors, controller, DCC, shifters
    double wall = 0.0;       ///< total drawn from the board supply

    /** @return power delivery efficiency: load / wall. */
    double
    pde() const
    {
        return wall > 0.0 ? load / wall : 0.0;
    }

    /** @return total PDS loss (everything that is not load). */
    double
    pdsLoss() const
    {
        return wall - load;
    }
};

/** One voltage-trace sample (for Fig. 9-style waveforms). */
struct TraceSample
{
    Seconds timeSec{};
    Volts minSmVolts{};
    Volts maxSmVolts{};
    std::array<double, config::numLayers> layerVolts{};
};

/** Complete result of a co-simulation run. */
struct CosimResult
{
    Cycle cycles = 0;               ///< execution time (core cycles)
    std::uint64_t instructions = 0; ///< real instructions retired
    bool finished = false;          ///< workload drained before cap

    EnergyBreakdown energy;

    /** Per-SM rail-voltage distribution (box data for Fig. 11). */
    std::array<BoxStats, config::numSMs> smNoise{};

    /** Pooled min/typical voltage stats across SMs. */
    double minVoltage = 0.0;
    double meanVoltage = 0.0;

    /** Fraction of cycles DIWS throttling was in effect. */
    double throttleRate = 0.0;

    /** Fraction of control decisions that triggered smoothing. */
    double triggerRate = 0.0;

    /** Vertical-pair current-imbalance distribution (Fig. 17 bins:
     *  0-10%, 10-20%, 20-40%, >40% of peak SM current). */
    std::array<double, 4> imbalanceBins{};

    /** Optional voltage trace (when tracing was enabled). */
    std::vector<TraceSample> trace;

    /** Event counts for the obs stats registry. */
    CosimCounters counters;

    /**
     * Optional full-resolution waveform capture (cfg.waveStride > 0):
     * per-SM rail voltages, dumpable as VCD or CSV.  The writer
     * observes the run's TransientSim, so the result keeps the sim
     * and its setup alive alongside it.
     */
    std::shared_ptr<WaveWriter> wave;
    std::shared_ptr<TransientSim> waveSim;
    std::shared_ptr<const PdsSetup> waveSetup;

    /**
     * Optional windowed time-series telemetry (cfg.sampleEvery > 0);
     * the label is assigned by the sweep frontend.  Deterministic:
     * identical across --jobs counts by construction.
     */
    std::shared_ptr<obs::TimeSeriesRun> timeSeries;

    /** Optional stage-cost profile (obs::profilingEnabled() during
     *  the run).  Wall-clock derived — never determinism-gated. */
    std::shared_ptr<obs::Profile> profile;

    /** @return average load power over the run (W). */
    double
    avgLoadPower() const
    {
        const double t = static_cast<double>(cycles) *
                         config::clockPeriod.raw(); // vsgpu-lint: raw-escape-ok(plain-double stats surface)
        return t > 0.0 ? energy.load / t : 0.0;
    }
};

} // namespace vsgpu

#endif // VSGPU_SIM_METRICS_HH
