/**
 * @file
 * Result records of a co-simulation run: the quantities every paper
 * table and figure is built from.
 */

#ifndef VSGPU_SIM_METRICS_HH
#define VSGPU_SIM_METRICS_HH

#include <array>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"

namespace vsgpu
{

/** Energy breakdown of one run (J). */
struct EnergyBreakdown
{
    double load = 0.0;       ///< delivered to SM loads (incl. fake)
    double fake = 0.0;       ///< part of load spent on FII
    double pdn = 0.0;        ///< resistive PDN loss
    double conversion = 0.0; ///< VRM / single-layer IVR loss
    double crIvr = 0.0;      ///< CR-IVR charge-transfer + switching
    double overhead = 0.0;   ///< detectors, controller, DCC, shifters
    double wall = 0.0;       ///< total drawn from the board supply

    /** @return power delivery efficiency: load / wall. */
    double
    pde() const
    {
        return wall > 0.0 ? load / wall : 0.0;
    }

    /** @return total PDS loss (everything that is not load). */
    double
    pdsLoss() const
    {
        return wall - load;
    }
};

/** One voltage-trace sample (for Fig. 9-style waveforms). */
struct TraceSample
{
    Seconds timeSec{};
    Volts minSmVolts{};
    Volts maxSmVolts{};
    std::array<double, config::numLayers> layerVolts{};
};

/** Complete result of a co-simulation run. */
struct CosimResult
{
    Cycle cycles = 0;               ///< execution time (core cycles)
    std::uint64_t instructions = 0; ///< real instructions retired
    bool finished = false;          ///< workload drained before cap

    EnergyBreakdown energy;

    /** Per-SM rail-voltage distribution (box data for Fig. 11). */
    std::array<BoxStats, config::numSMs> smNoise{};

    /** Pooled min/typical voltage stats across SMs. */
    double minVoltage = 0.0;
    double meanVoltage = 0.0;

    /** Fraction of cycles DIWS throttling was in effect. */
    double throttleRate = 0.0;

    /** Fraction of control decisions that triggered smoothing. */
    double triggerRate = 0.0;

    /** Vertical-pair current-imbalance distribution (Fig. 17 bins:
     *  0-10%, 10-20%, 20-40%, >40% of peak SM current). */
    std::array<double, 4> imbalanceBins{};

    /** Optional voltage trace (when tracing was enabled). */
    std::vector<TraceSample> trace;

    /** @return average load power over the run (W). */
    double
    avgLoadPower() const
    {
        const double t = static_cast<double>(cycles) *
                         config::clockPeriod.raw(); // vsgpu-lint: raw-escape-ok(plain-double stats surface)
        return t > 0.0 ? energy.load / t : 0.0;
    }
};

} // namespace vsgpu

#endif // VSGPU_SIM_METRICS_HH
