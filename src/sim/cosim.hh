/**
 * @file
 * The integrated hybrid co-simulator (paper Section V): the GPU
 * timing model produces a per-SM power trace every clock cycle, the
 * circuit engine advances the PDS netlist one clock period with those
 * loads, and (in the cross-layer configuration) the smoothing
 * controller closes the loop by reconfiguring issue width, fake
 * injection, and DCC currents with the modeled loop latency.
 */

#ifndef VSGPU_SIM_COSIM_HH
#define VSGPU_SIM_COSIM_HH

#include <memory>
#include <vector>

#include "gpu/gpu.hh"
#include "pdn/params.hh"
#include "hypervisor/dfs.hh"
#include "hypervisor/pg.hh"
#include "hypervisor/vs_hypervisor.hh"
#include "power/power_model.hh"
#include "sim/metrics.hh"
#include "sim/pds.hh"
#include "workloads/generator.hh"

namespace vsgpu
{

struct PdsSetup;

/** Co-simulation configuration. */
struct CosimConfig
{
    PdsOptions pds = defaultPds(PdsKind::VsCrossLayer);
    GpuConfig gpu;
    EnergyParams energy;
    PdnParams pdn = defaultPdnParams();

    /** Hard cap on simulated cycles. */
    Cycle maxCycles = 200000;

    /** Record a TraceSample every this many cycles (0 = off). */
    int traceStride = 0;

    /**
     * Capture per-SM rail-voltage waveforms every this many cycles
     * into result.wave (0 = off; see circuit/wave_writer.hh and the
     * vsgpu_cli --wave-out flag).  Observability only: not part of
     * pdsSetupKey() and never feeds back into the run.
     */
    int waveStride = 0;

    /**
     * Sample windowed time-series telemetry every this many
     * *simulated* seconds into result.timeSeries (<= 0 disables; see
     * obs/timeseries.hh).  The cadence derives from simulated time
     * only, so dumps are bitwise identical across --jobs counts.
     * Observability only: not part of pdsSetupKey() and never feeds
     * back into the run.
     */
    Seconds sampleEvery{0.0};

    /** Worst-case scenario: halt one layer's SMs ("manually turn
     *  off", paper Fig. 9, at 3 us) from this time on (< 0 disables).
     *  Halted SMs stop issuing but keep clock-tree and leakage power,
     *  like an SM idled by the driver. */
    Seconds gateLayerAtSec{-1.0};
    int gatedLayer = 0;
    Watts gatedLayerWatts{2.6};

    /** Averaging window for the imbalance histogram (cycles).
     *  Short enough to see burst imbalance, long enough to skip
     *  single-cycle issue jitter the decaps absorb entirely. */
    int imbalanceWindow = 16;

    /**
     * Remote-sense / load-line regulation for the single-layer
     * configurations: the VRM slowly servos its output so the mean
     * die rail sits at the nominal 1 V across load levels (adaptive
     * voltage positioning; paper Section II-C's answer to static
     * IR drop).  Disabled for the voltage-stacked configurations,
     * which have no per-layer regulator to servo.
     */
    bool vrmRemoteSense = true;

    /** Remote-sense integrator gain (volts per volt-cycle). */
    double remoteSenseGain = 0.002;

    /**
     * Run the static model verifier (netlist ERC + numeric audit
     * before the DC solve, control-loop audit before closing the
     * smoothing loop) and fail fast on any Error-severity finding.
     * The vsgpu_cli --no-verify flag clears this; fault-injection
     * studies that build deliberately broken models should too.
     * Not part of pdsSetupKey(): verification never changes results.
     */
    bool verifyModel = true;

    /**
     * Optional shared electrical setup (pre-built PDN + DC operating
     * point, see sim/pds_setup.hh).  When set it must have been
     * built for an electrically identical configuration
     * (pdsSetupKey() match is enforced); when null the simulator
     * builds its own.  Results are bitwise-identical either way —
     * sharing only removes redundant setup work from sweeps.
     */
    std::shared_ptr<const PdsSetup> setup;
};

/**
 * Runs workloads against one PDS configuration.
 */
class CoSimulator
{
  public:
    explicit CoSimulator(const CosimConfig &cfg = {});

    /** Attach an optional DFS governor (non-owning). */
    void attachDfs(DfsGovernor *dfs) { dfs_ = dfs; }

    /** Attach an optional PG governor (non-owning).  Remember to set
     *  cfg.gpu.sm.scheduler = SchedulerKind::Gates for GATES. */
    void attachPg(PgGovernor *pg) { pg_ = pg; }

    /** Attach the VS-aware hypervisor (non-owning; filters DFS/PG on
     *  voltage-stacked configurations). */
    void attachHypervisor(VsAwareHypervisor *hv) { hypervisor_ = hv; }

    /** Run a workload described by a spec (builds the factory and
     *  applies its L1 hit rate). */
    CosimResult run(const WorkloadSpec &workload);

    /** Run with an explicit program factory. */
    CosimResult run(const ProgramFactory &factory, double l1HitRate);

    /**
     * Run a sequence of kernels back to back on one PDS instance.
     * Each kernel launch naturally resynchronizes the SMs (all SMs
     * drain before the next launch), exactly like successive kernel
     * launches on a real GPU; electrical and controller state carry
     * across the boundaries.  Metrics aggregate over the sequence.
     */
    CosimResult runSequence(const std::vector<WorkloadSpec> &kernels);

    /** @return the configuration. */
    const CosimConfig &config() const { return cfg_; }

  private:
    CosimResult runImpl(
        const std::vector<const ProgramFactory *> &kernels,
        const std::vector<double> &l1HitRates);

    CosimConfig cfg_;
    DfsGovernor *dfs_ = nullptr;
    PgGovernor *pg_ = nullptr;
    VsAwareHypervisor *hypervisor_ = nullptr;
};

} // namespace vsgpu

#endif // VSGPU_SIM_COSIM_HH
