/**
 * @file
 * Bridges simulation results into the obs::StatsRegistry: one place
 * defines the canonical stat names, units, and descriptions for the
 * gpu / sim / control / hypervisor / exec hierarchies, so every tool
 * (vsgpu_cli, the scenario benches) dumps the same schema.
 */

#ifndef VSGPU_SIM_STATS_EXPORT_HH
#define VSGPU_SIM_STATS_EXPORT_HH

#include <cstdint>

#include "obs/stats_registry.hh"
#include "sim/metrics.hh"

namespace vsgpu
{

/**
 * Register the schedule-independent event counters of one run (or
 * the exact integer sum over a sweep's runs) under the gpu / sim /
 * control / hypervisor prefixes.
 */
void registerCounters(obs::StatsRegistry &registry,
                      const CosimCounters &counters);

/**
 * Register counters plus the derived scalar metrics (voltages,
 * rates, energy breakdown) of one complete run.
 */
void registerRunStats(obs::StatsRegistry &registry,
                      const CosimResult &result);

/**
 * Register the exec-layer stats (pool + setup cache).  Steal counts
 * are schedule-dependent by nature and are registered as such, so
 * they stay out of default dumps (jobs-1-vs-N bitwise contract).
 */
void registerExecStats(obs::StatsRegistry &registry,
                       std::uint64_t poolTasksRun,
                       std::uint64_t poolSteals,
                       std::uint64_t setupsBuilt,
                       std::uint64_t setupHits);

/**
 * Register the trace-ring occupancy stats (retained and evicted
 * event counts).  Both depend on wall-clock rate limiting and worker
 * interleaving, so they are schedule-dependent like pool.steals.
 */
void registerTraceStats(obs::StatsRegistry &registry,
                        std::uint64_t traceEvents,
                        std::uint64_t traceDropped);

} // namespace vsgpu

#endif // VSGPU_SIM_STATS_EXPORT_HH
