/**
 * @file
 * Shared, immutable per-configuration setup of a co-simulation run:
 * the built PDN netlist plus its DC operating point.
 *
 * Building a PDS means sizing the CR-IVR, assembling the netlist,
 * and LU-solving the DC operating point — work that depends only on
 * the electrical configuration, not on the workload or the
 * controller.  A sweep that runs many points against one PDN/IVR
 * configuration (threshold sweeps, workload sweeps, Monte Carlo
 * seeds) therefore does that work once and shares the result.
 *
 * PdsSetup is deeply immutable after construction, so one instance
 * can back any number of concurrent CoSimulator runs (each run has
 * its own TransientSim over the shared netlist).  exec::SetupCache
 * memoizes instances keyed by pdsSetupKey().
 */

#ifndef VSGPU_SIM_PDS_SETUP_HH
#define VSGPU_SIM_PDS_SETUP_HH

#include <memory>
#include <string>
#include <vector>

#include "circuit/stamping.hh"
#include "pdn/single_layer.hh"
#include "pdn/vs_pdn.hh"
#include "sim/cosim.hh"

namespace vsgpu
{

/**
 * Immutable electrical setup shared across runs of one
 * configuration.  Exactly one of vs / sl is set, matching whether
 * the configuration is voltage-stacked.
 */
struct PdsSetup
{
    bool stacked = false;
    std::shared_ptr<const VsPdn> vs;
    std::shared_ptr<const SingleLayerPdn> sl;

    /**
     * DC operating point of the netlist with the default (zero)
     * load currents and initial switch states, as returned by
     * solveDc(); feeds TransientSim::initFromDc().
     */
    std::vector<double> dcNodeVolts;

    /**
     * Symbolic sparse-assembly pattern of the netlist (the union
     * sparsity structure of the transient, DC and AC MNA systems and
     * every element's value slots).  Built once per configuration;
     * every TransientSim / AcAnalysis over this setup shares it, so
     * the symbolic work is memoized by the exec::SetupCache along
     * with everything else keyed off pdsSetupKey().  Always set,
     * even when a run selects the dense solver (the pattern is
     * solver-independent topology data).
     */
    std::shared_ptr<const MnaPattern> mnaPattern;

    /** Exact configuration key this setup was built for. */
    std::string key;

    /** @return the shared netlist. */
    const Netlist &
    netlist() const
    {
        return stacked ? vs->netlist() : sl->netlist();
    }
};

/**
 * Exact-bytes key of every configuration field that shapes the
 * netlist or its DC operating point (PDS kind, CR-IVR area and
 * technology, PDN parasitics).  Two configs with equal keys build
 * bitwise-identical setups; controller and workload fields are
 * deliberately excluded.
 */
std::string pdsSetupKey(const CosimConfig &cfg);

/** Build the shared setup for a configuration (netlist + DC LU). */
std::shared_ptr<const PdsSetup> buildPdsSetup(const CosimConfig &cfg);

} // namespace vsgpu

#endif // VSGPU_SIM_PDS_SETUP_HH
