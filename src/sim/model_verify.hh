/**
 * @file
 * Orchestration of the static model verifier (src/verify) over a
 * co-simulation configuration: which netlist to audit, which node to
 * probe, and how the per-layer boundary capacitance seen by the
 * control loop is derived from the PDN and CR-IVR sizing.
 *
 * Two call sites gate on these audits (fail-fast on Error findings,
 * CosimConfig::verifyModel to bypass):
 *   - buildPdsSetup() runs verifyPdsModel() before the DC solve;
 *   - CoSimulator::runImpl() runs verifyControlModel() before
 *     closing the smoothing loop.
 * tools/vsgpu_verify runs both over every bench scenario and golden
 * configuration and diffs the findings against a frozen baseline.
 */

#ifndef VSGPU_SIM_MODEL_VERIFY_HH
#define VSGPU_SIM_MODEL_VERIFY_HH

#include "sim/cosim.hh"
#include "sim/pds_setup.hh"
#include "verify/verify.hh"

namespace vsgpu
{

/**
 * @return the per-column boundary-rail capacitance the control audit
 * assumes: the layer's SM decaps plus (for stacked configurations
 * with CR-IVR) the flying-cap decoupling contribution.  Conservative:
 * edge layers only see half a cell's flying cap, and that lower
 * bound is used for every layer.
 */
Farads controlBoundaryCap(const CosimConfig &cfg);

/**
 * ERC + numeric audit of a built PDS (paper's netlist layer), plus
 * the cross-layer current-rating sanity check:
 *   erc.crivr-undersized  worst-case single-SM imbalance current
 *                         through the CR-IVR equalizer Reff droops
 *                         more than the voltage margin and no
 *                         smoothing controller is enabled   [Warning]
 * The impedance scan probes SM0's supply rail.
 */
verify::Report verifyPdsModel(const PdsSetup &setup,
                              const CosimConfig &cfg);

/**
 * Control-loop audit of the configuration's smoothing controller
 * (only meaningful for cross-layer configurations, but runnable on
 * any: the controller config is audited as-is).
 */
verify::Report verifyControlModel(const CosimConfig &cfg);

/**
 * Full static verification of a configuration, as run by
 * tools/vsgpu_verify: builds the PDS (without the fail-fast gate,
 * so every finding is collected) and merges the PDS and control
 * audits.
 */
verify::Report verifyModel(const CosimConfig &cfg);

} // namespace vsgpu

#endif // VSGPU_SIM_MODEL_VERIFY_HH
