#include "sim/model_verify.hh"

#include <algorithm>
#include <sstream>

#include "ivr/cr_ivr.hh"

namespace vsgpu
{

Farads
controlBoundaryCap(const CosimConfig &cfg)
{
    Farads cap =
        cfg.pdn.smDecapC * static_cast<double>(config::smsPerLayer);
    if (isVoltageStacked(cfg.pds.kind) &&
        cfg.pds.ivrAreaFraction > 0.0) {
        const CrIvrDesign design(cfg.pds.ivrArea(), cfg.pds.ivrTech);
        cap += design.flyCapPerCell() / 2.0 *
               static_cast<double>(config::smsPerLayer);
    }
    return cap;
}

verify::Report
verifyPdsModel(const PdsSetup &setup, const CosimConfig &cfg)
{
    verify::ErcOptions ercOpts;
    ercOpts.dt = config::clockPeriod;
    verify::Report report = verify::ercAudit(setup.netlist(), ercOpts);

    verify::NumericAuditOptions numOpts;
    numOpts.dt = config::clockPeriod;
    numOpts.probeNode = setup.stacked ? setup.vs->smTopNode(0)
                                      : setup.sl->smNode(0);
    report.merge(verify::numericAudit(setup.netlist(), numOpts));

    // Current-rating sanity of the averaged CR-IVR: a worst-case
    // single-SM imbalance (one SM at peak power above an idle
    // neighbour layer) pushes its whole load current through the
    // column's equalizer Reff.  Without architectural smoothing the
    // resulting droop must fit inside the voltage margin — this is
    // exactly the sizing argument behind the paper's 912 mm^2
    // circuit-only design point.
    const bool smoothed = cfg.pds.kind == PdsKind::VsCrossLayer &&
                          cfg.pds.smoothingEnabled;
    if (setup.stacked && !smoothed &&
        !setup.vs->equalizerIndices().empty()) {
        double worstOhms = 0.0;
        for (int e : setup.vs->equalizerIndices()) {
            worstOhms = std::max(
                worstOhms,
                setup.netlist()
                    .equalizers()[static_cast<std::size_t>(e)]
                    .effOhms);
        }
        const Amps imbalance = config::peakSmPower / config::smVoltage;
        const Volts droop = imbalance * Ohms{worstOhms};
        if (droop > config::voltageMargin) {
            std::ostringstream oss;
            // vsgpu-lint: raw-escape-ok(diagnostic message text)
            oss << "worst single-SM imbalance of " << imbalance.raw()
                << " A through equalizer Reff = " << worstOhms
                << " ohm droops " << droop.raw() // vsgpu-lint: raw-escape-ok(diagnostic message text)
                << " V, above the " << config::voltageMargin.raw()
                << " V margin, and no smoothing controller is "
                   "enabled";
            report.add("erc.crivr-undersized",
                       verify::Severity::Warning, "CR-IVR equalizers",
                       oss.str());
        }
    }
    return report;
}

verify::Report
verifyControlModel(const CosimConfig &cfg)
{
    verify::ControlAuditInputs in;
    in.controller = cfg.pds.controller;
    in.boundaryCap = controlBoundaryCap(cfg);
    in.numLayers = config::numLayers;
    in.smsPerLayer = config::smsPerLayer;
    return verify::controlAudit(in);
}

verify::Report
verifyModel(const CosimConfig &cfg)
{
    CosimConfig plain = cfg;
    plain.verifyModel = false; // collect findings, do not fail-fast
    plain.setup.reset();
    const std::shared_ptr<const PdsSetup> setup = buildPdsSetup(plain);
    verify::Report report = verifyPdsModel(*setup, plain);
    if (plain.pds.kind == PdsKind::VsCrossLayer &&
        plain.pds.smoothingEnabled) {
        report.merge(verifyControlModel(plain));
    }
    return report;
}

} // namespace vsgpu
