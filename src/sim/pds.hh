/**
 * @file
 * Power-delivery-subsystem configuration presets: the four PDS
 * flavours the paper compares (Table III).
 */

#ifndef VSGPU_SIM_PDS_HH
#define VSGPU_SIM_PDS_HH

#include <string>

#include "common/units.hh"
#include "control/controller.hh"
#include "ivr/cr_ivr.hh"

namespace vsgpu
{

/** The four compared PDS configurations. */
enum class PdsKind
{
    ConventionalVrm, ///< board-level VRM, single layer
    SingleLayerIvr,  ///< on-die switched-capacitor IVR, single layer
    VsCircuitOnly,   ///< 4x4 voltage stacking, CR-IVR only
    VsCrossLayer,    ///< 4x4 voltage stacking, CR-IVR + smoothing
};

/** @return printable configuration name (Table III rows). */
const char *pdsName(PdsKind kind);

/** @return true for the two voltage-stacked configurations. */
bool isVoltageStacked(PdsKind kind);

/** Options of one PDS instantiation. */
struct PdsOptions
{
    PdsKind kind = PdsKind::VsCrossLayer;

    /** CR-IVR area as a fraction of the GPU die (VS kinds only). */
    double ivrAreaFraction = config::defaultIvrAreaFraction;

    /** Architecture-level smoothing on (VsCrossLayer only). */
    bool smoothingEnabled = false;

    /** Smoothing controller configuration. */
    ControllerConfig controller = {};

    /** CR-IVR technology constants. */
    CrIvrTech ivrTech = {};

    /** @return the CR-IVR die area. */
    Area
    ivrArea() const
    {
        return ivrAreaFraction * config::gpuDieArea;
    }
};

/** @return the paper's default options for each configuration. */
PdsOptions defaultPds(PdsKind kind);

/** @return die-area overhead of a configuration's PDS
 *  (Table III column 3). */
Area pdsAreaOverhead(const PdsOptions &options);

} // namespace vsgpu

#endif // VSGPU_SIM_PDS_HH
