#include "sim/cosim.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "circuit/wave_writer.hh"
#include "common/check.hh"
#include "common/logging.hh"
#include "control/controller.hh"
#include "ivr/efficiency.hh"
#include "obs/flight_recorder.hh"
#include "obs/manifest.hh"
#include "obs/profile.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "pdn/single_layer.hh"
#include "pdn/vs_pdn.hh"
#include "sim/model_verify.hh"
#include "sim/pds_setup.hh"

namespace vsgpu
{

namespace
{

/** Clamp a measured rail voltage used in the P -> I conversion. */
double
usableVolts(double v)
{
    return std::clamp(v, 0.35, 1.6);
}

} // namespace

CoSimulator::CoSimulator(const CosimConfig &cfg)
    : cfg_(cfg)
{
}

CosimResult
CoSimulator::run(const WorkloadSpec &workload)
{
    WorkloadFactory factory(workload);
    return run(factory, workload.l1HitRate);
}

CosimResult
CoSimulator::run(const ProgramFactory &factory, double l1HitRate)
{
    return runImpl({&factory}, {l1HitRate});
}

CosimResult
CoSimulator::runSequence(const std::vector<WorkloadSpec> &kernels)
{
    panicIfNot(!kernels.empty(), "empty kernel sequence");
    std::vector<WorkloadFactory> factories;
    factories.reserve(kernels.size());
    std::vector<const ProgramFactory *> ptrs;
    std::vector<double> rates;
    for (const auto &kernel : kernels) {
        factories.emplace_back(kernel);
        rates.push_back(kernel.l1HitRate);
    }
    for (const auto &factory : factories)
        ptrs.push_back(&factory);
    return runImpl(ptrs, rates);
}

CosimResult
CoSimulator::runImpl(
    const std::vector<const ProgramFactory *> &kernels,
    const std::vector<double> &l1HitRates)
{
    panicIfNot(kernels.size() == l1HitRates.size() &&
               !kernels.empty(),
               "kernel/l1-rate size mismatch");
    const bool stacked = isVoltageStacked(cfg_.pds.kind);
    const bool smoothing = cfg_.pds.kind == PdsKind::VsCrossLayer &&
                           cfg_.pds.smoothingEnabled;

    VSGPU_TRACE_SCOPE(obs::CatPhase, "cosim.run");
    obs::ScopedSpan setupSpan(obs::CatPhase, "cosim.setup");

    // --- stage-cost profiling (obs/profile.hh; off by default) ---
    std::shared_ptr<obs::Profile> profile;
    std::int64_t runStartNs = 0;
    if (obs::profilingEnabled()) {
        profile = std::make_shared<obs::Profile>();
        profile->runs = 1;
        profile->strideCycles = obs::profilingStride();
        runStartNs = obs::profileNowNs();
    }
    obs::StageTimer stageTimer(
        profile.get(), profile ? profile->strideCycles : 1);
    const std::int64_t setupStartNs =
        profile ? obs::profileNowNs() : 0;

    // --- build the device and the PDS ---
    Gpu gpu(cfg_.gpu);

    SmPowerModel powerModel(cfg_.energy);
    const double peakSmPower = powerModel.peakPower().raw();

    // Shared electrical setup: use the caller's (sweep engines build
    // one per configuration and share it across points) or build our
    // own.  Either way the netlist is immutable and the DC operating
    // point comes from the same solveDc() path, so results do not
    // depend on which branch was taken.
    std::shared_ptr<const PdsSetup> setup = cfg_.setup;
    if (setup) {
        panicIfNot(setup->key == pdsSetupKey(cfg_),
                   "shared PDS setup built for a different "
                   "electrical configuration");
    } else {
        setup = buildPdsSetup(cfg_);
    }
    // Flight recorder: arm the crash dump with this run's identity
    // before anything downstream (verify gate, DC audit, solver) can
    // abort the process.
    obs::FlightRecorder &flight = obs::FlightRecorder::instance();
    if (obs::flightRecorderEnabled()) {
        obs::installFlightRecorderCrashDump();
        flight.beginRun(pdsName(cfg_.pds.kind),
                        obs::fnv1a64Hex(setup->key));
    }

    const VsPdn *vsPdn = setup->vs.get();
    const SingleLayerPdn *slPdn = setup->sl.get();
    auto tr = std::make_shared<TransientSim>(
        setup->netlist(), config::clockPeriod.raw(),
        defaultSolver(), setup->mnaPattern);
    if (profile)
        tr->attachProfiler(&stageTimer);
    const std::vector<int> &loadResistors =
        stacked ? vsPdn->loadResistorIndices()
                : slPdn->loadResistorIndices();
    tr->initFromDc(setup->dcNodeVolts);

    // Per-SM rail voltage reader (raw volts for the loop math).
    const auto railVolts = [&](int sm) {
        return (stacked ? vsPdn->smVoltage(*tr, sm)
                        : slPdn->smVoltage(*tr, sm))
            .raw();
    };
    const auto smSource = [&](int sm) {
        return stacked ? vsPdn->smCurrentSource(sm)
                       : slPdn->smCurrentSource(sm);
    };

    // --- controller (cross-layer only) ---
    std::unique_ptr<SmoothingController> controller;
    if (smoothing) {
        // Static control-loop audit before closing the loop: reject
        // configurations whose discrete PI loop cannot work at all
        // (dead-band wider than the trigger margin, non-positive
        // period).  Stability *warnings* are expected for the paper's
        // nonlinear gain and are reviewed via tools/vsgpu_verify.
        if (cfg_.verifyModel) {
            const verify::Report report = verifyControlModel(cfg_);
            if (report.hasErrors()) {
                fatal("control-model verification failed (run "
                      "tools/vsgpu_verify, or set verifyModel = "
                      "false to bypass):\n",
                      verify::formatReport(report));
            }
        }
        controller =
            std::make_unique<SmoothingController>(cfg_.pds.controller);
    }

    // --- loss models ---
    const VrmModel vrm;
    const SingleIvrModel singleIvr;
    const VsOverheads overheads;
    const CrIvrTech ivrTech = cfg_.pds.ivrTech;

    // --- accumulators ---
    CosimResult result;
    const double dt = config::clockPeriod.raw();
    std::array<ReservoirSampler, config::numSMs> noise{};
    RunningStats pooledVolts;
    double minVoltage = 1e9;

    Histogram imbalance({0.0, 0.10, 0.20, 0.40, 10.0});
    std::array<double, config::numSMs> windowPower{};
    int windowFill = 0;

    const double loadOhms =
        loadResistors.empty()
            ? cfg_.pdn.smLoadOhms().raw()
            : (stacked ? vsPdn->netlist() : slPdn->netlist())
                  .resistors()[static_cast<std::size_t>(
                      loadResistors.front())]
                  .ohms;
    std::array<double, config::numSMs> dccAmps{};
    std::array<double, config::numSMs> smPower{};

    // Slow-filtered rail voltage used in the P -> I conversion: a
    // load is constant-power only on thermal/architectural
    // timescales; at nanosecond scale its current tracks voltage
    // (the +1/R conductance).  Using the instantaneous voltage here
    // would create a -P/V^2 negative conductance at the package
    // resonance and destabilize the PDN, which is unphysical.
    std::array<double, config::numSMs> vSlow{};
    const double nominalRail =
        (stacked ? vsPdn->nominalLayerVolts() : config::smVoltage)
            .raw();
    vSlow.fill(nominalRail);
    const double vSlowBeta = 0.01; // ~100-cycle time constant

    // Remote-sense VRM regulation state (single-layer configs).
    double vrmSetVolts =
        stacked ? 0.0 : slPdn->options().supplyVolts.raw();

    // Hypervisor/PG interplay bookkeeping.
    Cycle lastHvUpdate = 0;
    std::uint64_t lastThrottled = 0;

    // Governor counter baselines: attached governors are long-lived
    // and may serve several runs, so this run's counters are deltas.
    const std::uint64_t dfsBase = dfs_ ? dfs_->transitions() : 0;
    const std::uint64_t pgReqBase = pg_ ? pg_->gateRequests() : 0;
    const std::uint64_t pgVetoBase = pg_ ? pg_->vetoSkips() : 0;
    const std::uint64_t hvFreqBase =
        hypervisor_ ? hypervisor_->freqRemaps() : 0;
    const std::uint64_t hvGateBase =
        hypervisor_ ? hypervisor_->gatingDenials() : 0;

    // --- waveform capture (observability only) ---
    std::shared_ptr<WaveWriter> wave;
    if (cfg_.waveStride > 0) {
        wave = std::make_shared<WaveWriter>(*tr, cfg_.waveStride);
        for (int sm = 0; sm < config::numSMs; ++sm) {
            const std::string name = "sm" + std::to_string(sm) +
                                     "_rail";
            if (stacked) {
                wave->addSignal(name, vsPdn->smTopNode(sm),
                                vsPdn->smBottomNode(sm));
            } else {
                wave->addSignal(name, slPdn->smNode(sm));
            }
        }
    }

    // --- time-series telemetry (observability only) ---
    std::unique_ptr<obs::TimeSeriesRecorder> series;
    struct SeriesChannels
    {
        std::array<int, config::numSMs> railSm{};
        int railMin = -1;
        int railMax = -1;
        int powerLoad = -1;
        int luBuilds = -1;
        int ctlMargin = -1;
        int ctlTriggered = -1;
        int dfsFreq = -1;
        int pgGated = -1;
        int wallUs = -1;
    } chans;
    if (cfg_.sampleEvery.raw() > 0.0) {
        series = std::make_unique<obs::TimeSeriesRecorder>(
            config::clockPeriod.raw(), cfg_.sampleEvery.raw());
        // Dense channels (recorded every cycle from values the loop
        // already computes).
        chans.railMin = series->addChannel(
            "rail.min", "V", "minimum SM rail voltage this cycle");
        chans.railMax = series->addChannel(
            "rail.max", "V", "maximum SM rail voltage this cycle");
        // Strided channels (recorded on the recorder's deterministic
        // sampling stride).
        for (int sm = 0; sm < config::numSMs; ++sm) {
            chans.railSm[static_cast<std::size_t>(sm)] =
                series->addChannel(
                    "rail.sm" + std::to_string(sm), "V",
                    "rail voltage of SM " + std::to_string(sm));
        }
        chans.powerLoad = series->addChannel(
            "power.load", "W", "total SM load power");
        chans.luBuilds = series->addChannel(
            "circuit.lu_builds", "count",
            "cumulative LU factorizations built");
        if (smoothing) {
            chans.ctlMargin = series->addChannel(
                "ctl.margin", "V",
                "min rail voltage minus trigger threshold");
            chans.ctlTriggered = series->addChannel(
                "ctl.triggered", "count",
                "cumulative triggered control decisions");
        }
        if (dfs_) {
            chans.dfsFreq = series->addChannel(
                "hv.dfs_freq", "frac",
                "mean requested SM frequency fraction");
        }
        if (pg_) {
            chans.pgGated = series->addChannel(
                "hv.gated_units", "units",
                "execution units currently power-gated");
        }
        // Wall-clock channel: marked schedule-dependent, so default
        // dumps (and the jobs=1 vs jobs=N determinism gate) exclude
        // it, following the exec.pool.steals precedent.
        chans.wallUs = series->addChannel(
            "wall.sample_us", "us",
            "wall microseconds per sampled cycle",
            /*scheduleDependent=*/true);
    }

    setupSpan.end();
    if (profile)
        profile->stages[obs::StageSetup].add(
            static_cast<std::uint64_t>(obs::profileNowNs() -
                                       setupStartNs));

    const Cycle gateLayerAt =
        cfg_.gateLayerAtSec >= Seconds{}
            ? static_cast<Cycle>(cfg_.gateLayerAtSec.raw() / dt)
            : std::numeric_limits<Cycle>::max();

    // ================= main loop =================
    std::size_t kernelsLaunched = 0;
    bool budgetExhausted = false;
    std::int64_t lastSampleWallNs =
        series ? obs::profileNowNs() : 0;
    for (std::size_t k = 0; k < kernels.size() && !budgetExhausted;
         ++k) {
        // Kernel-boundary resynchronization: the previous kernel has
        // fully drained every SM before this launch.
        gpu.memory().setL1HitRate(l1HitRates[k]);
        gpu.launch(*kernels[k]);
        ++kernelsLaunched;
        if (obs::flightRecorderEnabled())
            flight.record("kernel.launch", tr->time(), gpu.cycle(),
                          static_cast<double>(k), 0.0);

        obs::ScopedSpan kernelSpan(obs::CatPhase, "cosim.kernel");
        if (kernelSpan.live())
            kernelSpan.setArg("kernel", std::to_string(k));

        // Transient work is traced as fixed-size chunks so long runs
        // show up as a sequence of spans rather than one opaque box.
        const bool tracePhases =
            obs::Tracer::enabledFor(obs::CatPhase);
        constexpr Cycle chunkCycles = 16384;
        Cycle chunkStartCycle = gpu.cycle();
        double chunkStartUs =
            tracePhases ? obs::Tracer::instance().nowUs() : 0.0;
        const auto emitChunk = [&](Cycle upTo) {
            obs::Tracer &tracer = obs::Tracer::instance();
            const double nowUs = tracer.nowUs();
            tracer.complete(
                obs::CatPhase, "cosim.transient_chunk",
                chunkStartUs, nowUs - chunkStartUs,
                {{"start_cycle", std::to_string(chunkStartCycle)},
                 {"cycles",
                  std::to_string(upTo - chunkStartCycle)}});
            chunkStartUs = nowUs;
            chunkStartCycle = upTo;
        };

    while (!gpu.done() && gpu.cycle() < cfg_.maxCycles) {
        const Cycle now = gpu.cycle();
        if (tracePhases && now - chunkStartCycle >= chunkCycles)
            emitChunk(now);

        stageTimer.beginCycle();

        // 1. GPU timing step.
        gpu.step();
        stageTimer.mark(obs::StageGpu);

        // 2. Per-SM power from the event trace.
        double totalLoadPower = 0.0;
        double fakePower = 0.0;
        for (int sm = 0; sm < config::numSMs; ++sm) {
            const auto &events = gpu.smEvents(sm);
            double watts =
                powerModel.cyclePower(events, gpu.sm(sm), now).raw();
            if (now >= gateLayerAt &&
                VsPdn::smLayer(sm) == cfg_.gatedLayer) {
                watts = cfg_.gatedLayerWatts.raw();
            }
            smPower[static_cast<std::size_t>(sm)] = watts;
            totalLoadPower += watts;
            fakePower += static_cast<double>(events.fakeIssued) *
                         cfg_.energy.fakeEnergy.raw() / dt;
        }

        // 3. Convert power to load currents and advance the PDS.
        // Following the paper, each SM is a time-varying ideal
        // current source: I = P(t) / V_nominal.  The linearized load
        // conductance already in the netlist supplies the small
        // positive dI/dV; the source covers the remainder.  Below the
        // brown-out knee the current folds back linearly (logic stops
        // switching), so a collapsed rail cannot demand unbounded
        // current in worst-case studies.
        double electricalLoadWatts = 0.0;
        double dccDrawnWatts = 0.0;
        for (int sm = 0; sm < config::numSMs; ++sm) {
            const auto idx = static_cast<std::size_t>(sm);
            const double rail = railVolts(sm);
            vSlow[idx] += vSlowBeta * (rail - vSlow[idx]);
            const double v = usableVolts(vSlow[idx]);
            const double knee = 0.6 * config::smVoltage.raw();
            const double foldback =
                std::clamp(v / knee, 0.0, 1.0);
            const double loadAmps =
                smPower[idx] / nominalRail * foldback - v / loadOhms;
            tr->setCurrent(smSource(sm), loadAmps + dccAmps[idx]);
            // Book what the load actually draws electrically (source
            // plus linearized conductance), so load + losses = wall.
            electricalLoadWatts +=
                rail * (loadAmps + rail / loadOhms);
            dccDrawnWatts += rail * dccAmps[idx];
        }
        stageTimer.mark(obs::StagePower);
        tr->step();
        if (wave)
            wave->sample();

        // 3b. Remote-sense load-line regulation: servo the VRM
        // output so the average die rail tracks nominal.
        if (!stacked && cfg_.vrmRemoteSense) {
            double railAvg = 0.0;
            for (int sm = 0; sm < config::numSMs; ++sm)
                railAvg += vSlow[static_cast<std::size_t>(sm)];
            railAvg /= static_cast<double>(config::numSMs);
            vrmSetVolts += cfg_.remoteSenseGain *
                           (config::smVoltage.raw() - railAvg);
            vrmSetVolts = std::clamp(vrmSetVolts, 0.95, 1.15);
            tr->setSourceVolts(slPdn->supplySource(), vrmSetVolts);
        }
        stageTimer.mark(obs::StageCircuit);

        // 4. Observability: noise statistics and traces.
        double cycleMin = 1e9;
        double cycleMax = -1e9;
        double railSum = 0.0;
        std::array<double, config::numSMs> railNow;
        for (int sm = 0; sm < config::numSMs; ++sm) {
            const double v = railVolts(sm);
            // A non-finite rail voltage here means the PDS solve has
            // already gone unstable; fail fast in debug builds.
            VSGPU_CHECK_FINITE(v);
            railSum += v;
            railNow[static_cast<std::size_t>(sm)] = v;
            noise[static_cast<std::size_t>(sm)].add(v);
            pooledVolts.add(v);
            cycleMin = std::min(cycleMin, v);
            cycleMax = std::max(cycleMax, v);
        }
        // Always-on solver/NaN guard (min/max comparisons let NaN
        // slip through, a finite sum cannot): abort the run instead
        // of integrating garbage, with the flight recorder dumping
        // the recent history from the crash hook.
        if (!std::isfinite(railSum)) {
            panic("PDS solve produced a non-finite rail voltage at "
                  "cycle ", now, " (t = ", tr->time(),
                  " s); flight-recorder dump of recent history "
                  "follows");
        }
        minVoltage = std::min(minVoltage, cycleMin);
        if (obs::flightRecorderEnabled())
            flight.record("rail", tr->time(), now, cycleMin,
                          cycleMax);

        if (cfg_.traceStride > 0 &&
            now % static_cast<Cycle>(cfg_.traceStride) == 0) {
            TraceSample sample;
            sample.timeSec = Seconds{tr->time()};
            sample.minSmVolts = Volts{cycleMin};
            sample.maxSmVolts = Volts{cycleMax};
            for (int layer = 0; layer < config::numLayers; ++layer)
                sample.layerVolts[static_cast<std::size_t>(layer)] =
                    railVolts(VsPdn::smAt(layer, 0));
            result.trace.push_back(sample);
        }

        if (series) {
            // Dense channels come from values this loop already
            // computed; everything else records on the recorder's
            // deterministic stride to bound the overhead.
            series->recordDense(chans.railMin, cycleMin);
            series->recordDense(chans.railMax, cycleMax);
            if (series->sampleThisCycle()) {
                for (int sm = 0; sm < config::numSMs; ++sm) {
                    const auto idx = static_cast<std::size_t>(sm);
                    series->record(chans.railSm[idx], railNow[idx]);
                }
                series->record(chans.powerLoad, totalLoadPower);
                series->record(
                    chans.luBuilds,
                    static_cast<double>(tr->luBuilds()));
                if (chans.ctlMargin >= 0) {
                    series->record(
                        chans.ctlMargin,
                        cycleMin -
                            cfg_.pds.controller.vThreshold.raw());
                }
                if (chans.ctlTriggered >= 0) {
                    series->record(
                        chans.ctlTriggered,
                        static_cast<double>(
                            controller->triggeredDecisions()));
                }
                if (chans.dfsFreq >= 0) {
                    const auto &request = dfs_->requested();
                    double frac = 0.0;
                    for (int sm = 0; sm < config::numSMs; ++sm)
                        frac +=
                            request[static_cast<std::size_t>(sm)] /
                            config::smClockHz;
                    series->record(
                        chans.dfsFreq,
                        frac / static_cast<double>(config::numSMs));
                }
                if (chans.pgGated >= 0) {
                    int gated = 0;
                    for (int sm = 0; sm < config::numSMs; ++sm) {
                        for (int u = 0; u < numExecUnits; ++u) {
                            const auto kind =
                                static_cast<ExecUnitKind>(u);
                            if (gpu.sm(sm).unit(kind).gated(now))
                                ++gated;
                        }
                    }
                    series->record(chans.pgGated,
                                   static_cast<double>(gated));
                }
                // Wall cost per sampled cycle, amortized over the
                // stride (schedule-dependent channel).
                const std::int64_t wallNowNs = obs::profileNowNs();
                series->record(
                    chans.wallUs,
                    static_cast<double>(wallNowNs -
                                        lastSampleWallNs) *
                        1e-3 /
                        static_cast<double>(series->sampleStride()));
                lastSampleWallNs = wallNowNs;
            }
        }

        // 5. Imbalance histogram over an averaging window.
        for (int sm = 0; sm < config::numSMs; ++sm)
            windowPower[static_cast<std::size_t>(sm)] +=
                smPower[static_cast<std::size_t>(sm)];
        if (++windowFill >= cfg_.imbalanceWindow) {
            const double norm =
                static_cast<double>(cfg_.imbalanceWindow) *
                peakSmPower;
            for (int c = 0; c < config::smsPerLayer; ++c) {
                for (int l = 0; l + 1 < config::numLayers; ++l) {
                    const double a = windowPower[static_cast<
                        std::size_t>(VsPdn::smAt(l, c))];
                    const double b = windowPower[static_cast<
                        std::size_t>(VsPdn::smAt(l + 1, c))];
                    imbalance.add(std::abs(a - b) / norm);
                }
            }
            windowPower.fill(0.0);
            windowFill = 0;
        }
        stageTimer.mark(obs::StageObserve);

        // 6. Voltage-smoothing control loop.
        if (controller) {
            std::array<double, config::numSMs> volts{};
            for (int sm = 0; sm < config::numSMs; ++sm)
                volts[static_cast<std::size_t>(sm)] = railVolts(sm);
            const std::uint64_t trippedBefore =
                obs::Tracer::enabledFor(obs::CatCtl)
                    ? controller->triggeredDecisions()
                    : 0;
            const CommandSet &commands = controller->step(volts);
            if (obs::Tracer::enabledFor(obs::CatCtl) &&
                controller->triggeredDecisions() > trippedBefore) {
                VSGPU_TRACE_INSTANT(obs::CatCtl, "ctl.trigger");
            }
            for (int sm = 0; sm < config::numSMs; ++sm) {
                const auto idx = static_cast<std::size_t>(sm);
                gpu.sm(sm).setIssueWidthLimit(
                    commands[idx].issueWidth);
                gpu.sm(sm).setFakeInjectRate(commands[idx].fakeRate);
                dccAmps[idx] = commands[idx].dccAmps.raw();
            }
        }
        stageTimer.mark(obs::StageControl);

        // 7. Higher-level power management.
        if (dfs_) {
            const std::uint64_t dfsBefore =
                obs::Tracer::enabledFor(obs::CatHv)
                    ? dfs_->transitions()
                    : 0;
            dfs_->step(gpu);
            if (obs::Tracer::enabledFor(obs::CatHv) &&
                dfs_->transitions() > dfsBefore) {
                VSGPU_TRACE_INSTANT(obs::CatHv, "dfs.transition");
            }
            auto request = dfs_->requested();
            if (hypervisor_ && stacked)
                request = hypervisor_->filterFrequencies(request);
            for (int sm = 0; sm < config::numSMs; ++sm)
                gpu.setSmFrequencyFraction(
                    sm, request[static_cast<std::size_t>(sm)] /
                            config::smClockHz);
        }
        if (pg_) {
            if (hypervisor_ && stacked &&
                now - lastHvUpdate >= 512) {
                lastHvUpdate = now;
                // Build the gating wish list: currently gated blocks
                // plus blocks idle beyond the detect window.
                GatingPlan wish{};
                for (int sm = 0; sm < config::numSMs; ++sm) {
                    for (int u = 0; u < numExecUnits; ++u) {
                        const auto kind =
                            static_cast<ExecUnitKind>(u);
                        const auto &unit = gpu.sm(sm).unit(kind);
                        wish[static_cast<std::size_t>(sm)]
                            [static_cast<std::size_t>(u)] =
                            unit.gated(now) ||
                            unit.idleCycles(now) >=
                                pg_->config().idleDetect;
                    }
                }
                const std::uint64_t denialsBefore =
                    obs::Tracer::enabledFor(obs::CatHv)
                        ? hypervisor_->gatingDenials()
                        : 0;
                const GatingPlan plan = hypervisor_->filterGating(
                    wish, cfg_.energy.unitLeakage);
                if (obs::Tracer::enabledFor(obs::CatHv) &&
                    hypervisor_->gatingDenials() > denialsBefore) {
                    VSGPU_TRACE_INSTANT(obs::CatHv,
                                        "hv.gating_denial");
                }
                for (int sm = 0; sm < config::numSMs; ++sm) {
                    for (int u = 0; u < numExecUnits; ++u) {
                        const auto kind =
                            static_cast<ExecUnitKind>(u);
                        const bool wanted =
                            wish[static_cast<std::size_t>(sm)]
                                [static_cast<std::size_t>(u)];
                        const bool allowed =
                            plan[static_cast<std::size_t>(sm)]
                                [static_cast<std::size_t>(u)];
                        pg_->setVeto(sm, kind, wanted && !allowed);
                        auto &unit = gpu.sm(sm).unit(kind);
                        if (wanted && !allowed && unit.gated(now) &&
                            unit.gateRequested()) {
                            unit.ungate(now,
                                        cfg_.gpu.sm.pgWakeLatency);
                        }
                    }
                }
            }
            pg_->step(gpu, now);
        }
        if (hypervisor_ && stacked && (now & 0xfff) == 0 &&
            now > 0) {
            std::uint64_t throttled = 0;
            for (int sm = 0; sm < config::numSMs; ++sm)
                throttled += gpu.sm(sm).throttledCycles();
            const double rate =
                static_cast<double>(throttled - lastThrottled) /
                (4096.0 * config::numSMs);
            lastThrottled = throttled;
            hypervisor_->feedback(std::clamp(rate, 0.0, 1.0));
        }
        stageTimer.mark(obs::StageHypervisor);

        // 8. Energy bookkeeping.
        result.energy.load += electricalLoadWatts * dt;
        result.energy.fake += fakePower * dt;

        // PDN resistive loss excludes the linearized load resistors.
        const Netlist &net =
            stacked ? vsPdn->netlist() : slPdn->netlist();
        double loadResWatts = 0.0;
        for (int i : loadResistors) {
            const double amps = tr->resistorCurrent(i);
            loadResWatts +=
                amps * amps *
                net.resistors()[static_cast<std::size_t>(i)].ohms;
        }
        const double pdnWatts =
            std::max(0.0, tr->totalResistivePower() +
                              tr->totalSwitchPower() - loadResWatts);

        double overheadWatts = 0.0;
        double crIvrWatts = 0.0;
        double wallWatts = 0.0;
        double conversionWatts = 0.0;

        if (stacked) {
            const double eqWatts = tr->totalEqualizerPower();
            // Switching overhead proportional to transferred power.
            double transferWatts = 0.0;
            const int numEq =
                static_cast<int>(vsPdn->equalizerIndices().size());
            for (int e = 0; e < numEq; ++e)
                transferWatts +=
                    std::abs(tr->equalizerCurrent(e)) *
                    config::smVoltage.raw();

            // Shuffle tax: inter-layer imbalance power is processed
            // by the SC ladder at its shuffle efficiency; the
            // averaged Reff only models the conduction part.
            double layerPower[config::numLayers] = {};
            for (int sm = 0; sm < config::numSMs; ++sm)
                layerPower[VsPdn::smLayer(sm)] +=
                    smPower[static_cast<std::size_t>(sm)];
            const double avgLayer = totalLoadPower /
                                    static_cast<double>(
                                        config::numLayers);
            double shuffleWatts = 0.0;
            for (double lp : layerPower)
                shuffleWatts += std::abs(lp - avgLayer);

            crIvrWatts = eqWatts +
                         ivrTech.switchingLossFraction * transferWatts +
                         (1.0 - ivrTech.shuffleEfficiency) *
                             shuffleWatts;

            overheadWatts +=
                overheads.levelShifterFraction * totalLoadPower;
            if (controller) {
                overheadWatts += overheads.controllerPower.raw() +
                                 controller->detectorPower().raw();
                overheadWatts +=
                    cfg_.pds.controller.dcc.leakageWatts.raw() *
                    static_cast<double>(config::numSMs);
            }
            // DCC compensation currents flow through the netlist and
            // are part of the measured source power; book them as
            // overhead, not load.
            overheadWatts += dccDrawnWatts;

            const double sourceWatts = tr->totalSourcePower();
            wallWatts = sourceWatts + crIvrWatts -
                        tr->totalEqualizerPower() + overheadWatts;
        } else if (cfg_.pds.kind == PdsKind::ConventionalVrm) {
            const double chipWatts = tr->totalSourcePower();
            wallWatts = vrm.inputPower(Watts{chipWatts}).raw();
            conversionWatts = wallWatts - chipWatts;
        } else { // SingleLayerIvr
            const double chipWatts = tr->totalSourcePower();
            const double ivrInWatts =
                singleIvr.inputPower(Watts{chipWatts}).raw();
            conversionWatts = ivrInWatts - chipWatts;
            // Board transport at 2 V to the on-die regulator.
            const double boardAmps =
                ivrInWatts / singleIvr.inputVolts().raw();
            const double boardLossWatts =
                boardAmps * boardAmps *
                (cfg_.pdn.boardR + cfg_.pdn.packageR).raw();
            wallWatts = ivrInWatts + boardLossWatts;
            conversionWatts += boardLossWatts;
        }

        result.energy.pdn += pdnWatts * dt;
        result.energy.conversion += conversionWatts * dt;
        result.energy.crIvr += crIvrWatts * dt;
        result.energy.overhead += overheadWatts * dt;
        result.energy.wall += wallWatts * dt;
        stageTimer.mark(obs::StageBookkeeping);
        stageTimer.endCycle();
        if (series)
            series->endCycle();
    }

        if (tracePhases && gpu.cycle() > chunkStartCycle)
            emitChunk(gpu.cycle());
        if (gpu.cycle() >= cfg_.maxCycles)
            budgetExhausted = true;
    }
    // ================= end main loop =================

    result.cycles = gpu.cycle();
    result.finished =
        gpu.done() && kernelsLaunched == kernels.size();
    std::uint64_t instructions = 0;
    std::uint64_t throttled = 0;
    for (int sm = 0; sm < config::numSMs; ++sm) {
        instructions += gpu.sm(sm).retired();
        throttled += gpu.sm(sm).throttledCycles();
        result.smNoise[static_cast<std::size_t>(sm)] =
            noise[static_cast<std::size_t>(sm)].box();
    }
    result.instructions = instructions;
    result.minVoltage = minVoltage;
    result.meanVoltage = pooledVolts.mean();
    result.throttleRate =
        result.cycles > 0
            ? static_cast<double>(throttled) /
                  (static_cast<double>(result.cycles) *
                   config::numSMs)
            : 0.0;
    if (controller && controller->totalDecisions() > 0) {
        result.triggerRate =
            static_cast<double>(controller->triggeredDecisions()) /
            static_cast<double>(controller->totalDecisions());
    }
    for (std::size_t b = 0; b < 4; ++b)
        result.imbalanceBins[b] = imbalance.fraction(b);

    // --- event counters for the obs stats registry ---
    CosimCounters &ctr = result.counters;
    ctr.cycles = result.cycles;
    ctr.instructions = instructions;
    ctr.throttledCycles = throttled;
    ctr.kernelLaunches = kernelsLaunched;
    for (int sm = 0; sm < config::numSMs; ++sm) {
        ctr.fakeInstructions += gpu.sm(sm).fakeIssuedTotal();
        const SmStats smStats = gpu.sm(sm).stats();
        for (std::uint64_t events : smStats.gateEvents)
            ctr.gateEvents += events;
    }
    ctr.memAccesses = gpu.memory().accesses();
    ctr.l1Hits = gpu.memory().l1Hits();
    ctr.l2Hits = gpu.memory().l2Hits();
    ctr.dramAccesses = gpu.memory().dramAccesses();
    ctr.timesteps = tr->steps();
    ctr.luFactorizations = tr->luBuilds();
    ctr.sparseNnz = tr->patternNnz();
    ctr.sparseSymbolicReuses = tr->usedCachedPattern() ? 1 : 0;
    ctr.sparseRefactorizations = tr->refactorizations();
    if (controller) {
        ctr.ctlDecisions = controller->totalDecisions();
        ctr.ctlTriggered = controller->triggeredDecisions();
        ctr.detectorTrips = controller->detectorTrips();
        ctr.diwsEngagements = controller->diwsEngagements();
        ctr.fiiEngagements = controller->fiiEngagements();
        ctr.dccEngagements = controller->dccEngagements();
    }
    if (dfs_)
        ctr.dfsTransitions = dfs_->transitions() - dfsBase;
    if (pg_) {
        ctr.pgGateRequests = pg_->gateRequests() - pgReqBase;
        ctr.pgVetoSkips = pg_->vetoSkips() - pgVetoBase;
    }
    if (hypervisor_) {
        ctr.hvFreqRemaps = hypervisor_->freqRemaps() - hvFreqBase;
        ctr.hvGatingDenials =
            hypervisor_->gatingDenials() - hvGateBase;
    }

    if (wave) {
        result.wave = wave;
        result.waveSim = tr;
        result.waveSetup = setup;
    }
    if (series)
        result.timeSeries = series->finish();
    if (profile) {
        profile->wallNs += static_cast<std::uint64_t>(
            obs::profileNowNs() - runStartNs);
        result.profile = profile;
    }
    return result;
}

} // namespace vsgpu
