#include "sim/stats_export.hh"

namespace vsgpu
{

void
registerCounters(obs::StatsRegistry &registry,
                 const CosimCounters &counters)
{
    obs::StatsGroup gpu = registry.group("gpu");
    gpu.counter("cycles", "cycles", "simulated core cycles")
        .set(counters.cycles);
    gpu.counter("instructions", "insts",
                "real instructions retired")
        .set(counters.instructions);
    gpu.counter("fake_instructions", "insts",
                "fake instructions injected (FII)")
        .set(counters.fakeInstructions);
    gpu.counter("throttled_cycles", "cycles",
                "SM-cycles under DIWS throttling")
        .set(counters.throttledCycles);
    gpu.counter("kernel_launches", "kernels",
                "kernels launched on the device")
        .set(counters.kernelLaunches);
    gpu.counter("gate_events", "events",
                "execution-unit power-gate engagements")
        .set(counters.gateEvents);

    obs::StatsGroup mem = gpu.group("mem");
    mem.counter("accesses", "accesses",
                "memory requests issued by LSUs")
        .set(counters.memAccesses);
    mem.counter("l1_hits", "accesses", "requests served by L1")
        .set(counters.l1Hits);
    mem.counter("l2_hits", "accesses", "requests served by L2")
        .set(counters.l2Hits);
    mem.counter("dram_accesses", "accesses",
                "requests served by DRAM")
        .set(counters.dramAccesses);

    obs::StatsGroup sim = registry.group("sim");
    sim.counter("transient.timesteps", "steps",
                "fixed-step transient solver steps")
        .set(counters.timesteps);
    sim.counter("transient.lu_factorizations", "factorizations",
                "MNA LU factorizations built (switch-state cache "
                "misses)")
        .set(counters.luFactorizations);

    obs::StatsGroup circuit = registry.group("circuit");
    circuit.counter("sparse.nnz", "entries",
                    "structural nonzeros of the sparse MNA assembly "
                    "patterns (summed across runs)")
        .set(counters.sparseNnz);
    circuit.counter("sparse.symbolic_reuses", "runs",
                    "runs that reused a SetupCache-shared symbolic "
                    "pattern instead of rebuilding it")
        .set(counters.sparseSymbolicReuses);
    circuit.counter("sparse.refactorizations", "factorizations",
                    "sparse numeric refactorizations over a cached "
                    "symbolic pattern")
        .set(counters.sparseRefactorizations);

    obs::StatsGroup control = registry.group("control");
    control.counter("decisions", "decisions",
                    "smoothing-controller decision periods")
        .set(counters.ctlDecisions);
    control.counter("triggered", "decisions",
                    "decisions that engaged smoothing")
        .set(counters.ctlTriggered);
    control.counter("detector_trips", "trips",
                    "per-SM below-threshold voltage detections")
        .set(counters.detectorTrips);
    control.counter("diws_engagements", "engagements",
                    "issue-width throttle actuations (DIWS)")
        .set(counters.diwsEngagements);
    control.counter("fii_engagements", "engagements",
                    "fake-instruction injection actuations (FII)")
        .set(counters.fiiEngagements);
    control.counter("dcc_engagements", "engagements",
                    "current-DAC compensation actuations (DCC)")
        .set(counters.dccEngagements);

    obs::StatsGroup hv = registry.group("hypervisor");
    hv.counter("dfs_transitions", "transitions",
               "per-SM DFS frequency-step changes")
        .set(counters.dfsTransitions);
    hv.counter("pg_gate_requests", "requests",
               "power-gate requests issued to SMs")
        .set(counters.pgGateRequests);
    hv.counter("pg_veto_skips", "skips",
               "PG policy evaluations skipped by a veto")
        .set(counters.pgVetoSkips);
    hv.counter("freq_remaps", "remaps",
               "DFS requests pulled up to the column budget")
        .set(counters.hvFreqRemaps);
    hv.counter("gating_denials", "denials",
               "gating requests denied by the imbalance budget")
        .set(counters.hvGatingDenials);
}

void
registerRunStats(obs::StatsRegistry &registry,
                 const CosimResult &result)
{
    registerCounters(registry, result.counters);

    obs::StatsGroup gpu = registry.group("gpu");
    gpu.scalar("min_voltage", obs::unitName<Volts>(),
               "worst per-SM rail voltage over the run")
        .set(result.minVoltage);
    gpu.scalar("mean_voltage", obs::unitName<Volts>(),
               "mean per-SM rail voltage over the run")
        .set(result.meanVoltage);
    gpu.scalar("throttle_rate", "",
               "fraction of SM-cycles under DIWS throttling")
        .set(result.throttleRate);
    gpu.scalar("trigger_rate", "",
               "fraction of control decisions that triggered")
        .set(result.triggerRate);
    gpu.scalar("avg_load_power", obs::unitName<Watts>(),
               "average SM load power over the run")
        .set(result.avgLoadPower());

    obs::StatsGroup energy = registry.group("energy");
    const char *joules = obs::unitName<Joules>();
    energy.scalar("load", joules, "energy delivered to SM loads")
        .set(result.energy.load);
    energy.scalar("fake", joules, "load energy spent on FII")
        .set(result.energy.fake);
    energy.scalar("pdn", joules, "resistive PDN loss")
        .set(result.energy.pdn);
    energy
        .scalar("conversion", joules,
                "VRM / single-layer IVR conversion loss")
        .set(result.energy.conversion);
    energy
        .scalar("cr_ivr", joules,
                "CR-IVR charge-transfer and switching loss")
        .set(result.energy.crIvr);
    energy
        .scalar("overhead", joules,
                "detector, controller, DCC, shifter overheads")
        .set(result.energy.overhead);
    energy.scalar("wall", joules, "total board-supply energy")
        .set(result.energy.wall);
    energy
        .formula("pde", "",
                 "power delivery efficiency (load / wall)",
                 [load = result.energy.load,
                  wall = result.energy.wall] {
                     return wall > 0.0 ? load / wall : 0.0;
                 })
        .value();
}

void
registerExecStats(obs::StatsRegistry &registry,
                  std::uint64_t poolTasksRun,
                  std::uint64_t poolSteals,
                  std::uint64_t setupsBuilt,
                  std::uint64_t setupHits)
{
    obs::StatsGroup exec = registry.group("exec");
    exec.counter("pool.tasks_run", "tasks",
                 "pool tasks executed to completion")
        .set(poolTasksRun);
    exec.counter("pool.steals", "steals",
                 "tasks taken from another worker's queue "
                 "(schedule-dependent; excluded from default dumps)",
                 /*scheduleDependent=*/true)
        .set(poolSteals);
    exec.counter("setup_cache.built", "setups",
                 "electrical setups built (cache misses)")
        .set(setupsBuilt);
    exec.counter("setup_cache.hits", "setups",
                 "setup requests answered from the cache")
        .set(setupHits);
}

void
registerTraceStats(obs::StatsRegistry &registry,
                   std::uint64_t traceEvents,
                   std::uint64_t traceDropped)
{
    obs::StatsGroup obsGroup = registry.group("obs");
    obsGroup
        .counter("trace.events", "events",
                 "trace events retained in the in-memory ring "
                 "(schedule-dependent; excluded from default dumps)",
                 /*scheduleDependent=*/true)
        .set(traceEvents);
    obsGroup
        .counter("trace.dropped_events", "events",
                 "oldest trace events evicted by ring wraparound "
                 "(schedule-dependent; excluded from default dumps)",
                 /*scheduleDependent=*/true)
        .set(traceDropped);
}

} // namespace vsgpu
