#include "sim/pds_setup.hh"

#include <cstring>

#include "common/logging.hh"
#include "obs/trace.hh"
#include "sim/model_verify.hh"

namespace vsgpu
{

namespace
{

/** Append a raw double's bytes to the key (exact, not hashed). */
void
appendBits(std::string &key, double value)
{
    char bytes[sizeof(double)];
    std::memcpy(bytes, &value, sizeof(double));
    key.append(bytes, sizeof(double));
}

void
appendBits(std::string &key, int value)
{
    char bytes[sizeof(int)];
    std::memcpy(bytes, &value, sizeof(int));
    key.append(bytes, sizeof(int));
}

} // namespace

std::string
pdsSetupKey(const CosimConfig &cfg)
{
    std::string key;
    key.reserve(192);
    appendBits(key, static_cast<int>(cfg.pds.kind));
    appendBits(key, cfg.pds.ivrAreaFraction);

    // CR-IVR technology (sizes the equalizers).
    const CrIvrTech &tech = cfg.pds.ivrTech;
    appendBits(key, tech.capDensity.raw());
    appendBits(key, tech.capAreaFraction);
    appendBits(key, tech.switchingHz.raw());
    appendBits(key, tech.switchingLossFraction);
    appendBits(key, tech.shuffleEfficiency);
    appendBits(key, tech.numCells);

    // PDN parasitics (shape the netlist and the DC point).
    const PdnParams &p = cfg.pdn;
    appendBits(key, p.boardR.raw());
    appendBits(key, p.boardL.raw());
    appendBits(key, p.bulkC.raw());
    appendBits(key, p.bulkEsr.raw());
    appendBits(key, p.packageR.raw());
    appendBits(key, p.packageL.raw());
    appendBits(key, p.packageC.raw());
    appendBits(key, p.packageEsr.raw());
    appendBits(key, p.c4R.raw());
    appendBits(key, p.c4L.raw());
    appendBits(key, p.gridR.raw());
    appendBits(key, p.smDecapC.raw());
    appendBits(key, p.smDecapEsr.raw());
    appendBits(key, p.smNominalPower.raw());
    appendBits(key, p.smNominalVoltage.raw());
    appendBits(key, p.smLoadAlpha);
    return key;
}

std::shared_ptr<const PdsSetup>
buildPdsSetup(const CosimConfig &cfg)
{
    auto setup = std::make_shared<PdsSetup>();
    setup->stacked = isVoltageStacked(cfg.pds.kind);
    setup->key = pdsSetupKey(cfg);

    if (setup->stacked) {
        VsPdnOptions options;
        options.params = cfg.pdn;
        if (cfg.pds.ivrAreaFraction > 0.0) {
            const CrIvrDesign design(cfg.pds.ivrArea(),
                                     cfg.pds.ivrTech);
            options.crIvrEffOhms = design.effOhmsPerCell();
            options.crIvrFlyCapF = design.flyCapPerCell();
        }
        setup->vs = std::make_shared<const VsPdn>(options);
    } else {
        SingleLayerOptions options;
        options.params = cfg.pdn;
        options.supplyAtPackage =
            cfg.pds.kind == PdsKind::SingleLayerIvr;
        // Load-line compensation: the regulator output is set above
        // nominal so the rail stays near 1 V under the average IR
        // drop (further from the load = more compensation).
        options.supplyVolts =
            options.supplyAtPackage ? 1.03_V : 1.06_V;
        setup->sl = std::make_shared<const SingleLayerPdn>(options);
    }

    // Static model verification (ERC + numeric audit) before the DC
    // solve: a malformed netlist would otherwise surface as a panic
    // deep inside the LU factorization with no hint of which element
    // caused it.
    if (cfg.verifyModel) {
        const verify::Report report = verifyPdsModel(*setup, cfg);
        if (report.hasErrors()) {
            fatal("PDS model verification failed for ",
                  pdsName(cfg.pds.kind), " (run tools/vsgpu_verify, "
                  "or set verifyModel = false to bypass):\n",
                  verify::formatReport(report));
        }
    }

    // DC operating point at the netlist's default source setpoints
    // and initial switch states — exactly what a fresh TransientSim
    // would compute in initToDc(), solved once per configuration.
    const Netlist &net = setup->netlist();
    {
        VSGPU_TRACE_SCOPE(obs::CatPhase, "pds.symbolic");
        setup->mnaPattern = MnaPattern::build(net);
    }
    std::vector<double> amps;
    amps.reserve(net.currentSources().size());
    for (const auto &src : net.currentSources())
        amps.push_back(src.amps);
    std::vector<bool> closed;
    closed.reserve(net.switches().size());
    for (const auto &sw : net.switches())
        closed.push_back(sw.initiallyClosed);
    {
        VSGPU_TRACE_SCOPE(obs::CatPhase, "pds.dc_solve");
        setup->dcNodeVolts = solveDc(net, amps, closed,
                                     defaultSolver(),
                                     setup->mnaPattern);
    }
    return setup;
}

} // namespace vsgpu
