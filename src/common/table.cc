#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace vsgpu
{

Table::Table(std::string title)
    : title_(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    panicIfNot(header_.empty() || row.size() == header_.size(),
               "table row width ", row.size(), " != header width ",
               header_.size());
    rows_.push_back(std::move(row));
}

Table &
Table::beginRow()
{
    panicIfNot(!building_, "beginRow while a row is being built");
    building_ = true;
    pending_.clear();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    panicIfNot(building_, "cell() outside beginRow/endRow");
    pending_.push_back(text);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatFixed(value, precision));
}

Table &
Table::cell(long long value)
{
    return cell(std::to_string(value));
}

Table &
Table::endRow()
{
    panicIfNot(building_, "endRow without beginRow");
    building_ = false;
    addRow(pending_);
    pending_.clear();
    return *this;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    const auto grow = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    const auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << row[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    const auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
formatFixed(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
formatPercent(double ratio, int precision)
{
    return formatFixed(ratio * 100.0, precision) + "%";
}

} // namespace vsgpu
