#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hh"
#include "common/logging.hh"

namespace vsgpu
{

void
RunningStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double nTotal = na + nb;
    mean_ += delta * nb / nTotal;
    m2_ += other.m2_ + delta * delta * na * nb / nTotal;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

VSGPU_CONTRACT double
quantile(std::vector<double> samples, double q)
{
    VSGPU_REQUIRES(!samples.empty(), "quantile of empty sample set");
    VSGPU_REQUIRES(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
    std::sort(samples.begin(), samples.end());
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

BoxStats
boxStats(const std::vector<double> &samples)
{
    BoxStats b;
    if (samples.empty())
        return b;
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&](double q) {
        const double pos = q * static_cast<double>(sorted.size() - 1);
        const std::size_t lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
    };
    b.min = sorted.front();
    b.q1 = at(0.25);
    b.median = at(0.5);
    b.q3 = at(0.75);
    b.max = sorted.back();
    double sum = 0.0;
    for (double x : sorted)
        sum += x;
    b.mean = sum / static_cast<double>(sorted.size());
    b.count = sorted.size();
    return b;
}

ReservoirSampler::ReservoirSampler(std::size_t capacity)
    : capacity_(capacity), state_(0x853c49e6748fea9bull)
{
    panicIfNot(capacity_ > 0, "reservoir capacity must be positive");
    samples_.reserve(capacity_);
}

void
ReservoirSampler::add(double x)
{
    ++seen_;
    if (samples_.size() < capacity_) {
        samples_.push_back(x);
        return;
    }
    // xorshift64 for the replacement index; determinism matters more
    // than statistical perfection here.
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    const std::size_t idx = static_cast<std::size_t>(state_ % seen_);
    if (idx < capacity_)
        samples_[idx] = x;
}

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges))
{
    panicIfNot(edges_.size() >= 2, "histogram needs at least 2 edges");
    for (std::size_t i = 1; i < edges_.size(); ++i)
        panicIfNot(edges_[i] > edges_[i - 1],
                   "histogram edges must be ascending");
    counts_.assign(edges_.size() - 1, 0);
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < edges_.front()) {
        ++counts_.front();
        return;
    }
    if (x >= edges_.back()) {
        ++counts_.back();
        return;
    }
    const auto it =
        std::upper_bound(edges_.begin(), edges_.end(), x);
    const std::size_t bin =
        static_cast<std::size_t>(it - edges_.begin()) - 1;
    ++counts_[std::min(bin, counts_.size() - 1)];
}

double
Histogram::fraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) /
           static_cast<double>(total_);
}

std::string
Histogram::binLabel(std::size_t i) const
{
    std::ostringstream oss;
    oss << edges_.at(i) << "-" << edges_.at(i + 1);
    return oss.str();
}

} // namespace vsgpu
