#include "common/logging.hh"

#include <atomic>
#include <cctype>
#include <mutex>

namespace vsgpu
{

namespace
{

std::atomic<bool> quietFlag{false};

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

std::mutex sinkMutex;
LogSink userSink; // guarded by sinkMutex; empty = default stderr

/** Threshold below which inform/warn are dropped.  -1 = not yet
 *  resolved from VSGPU_LOG_LEVEL / setLogThreshold(). */
std::atomic<int> thresholdLevel{-1};

int
parseEnvThreshold()
{
    const char *env = std::getenv("VSGPU_LOG_LEVEL");
    if (env == nullptr)
        return static_cast<int>(LogLevel::Inform);
    std::string value;
    for (const char *p = env; *p; ++p)
        value += static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p)));
    if (value == "info" || value == "inform" || value.empty())
        return static_cast<int>(LogLevel::Inform);
    if (value == "warn" || value == "warning")
        return static_cast<int>(LogLevel::Warn);
    if (value == "fatal" || value == "error")
        return static_cast<int>(LogLevel::Fatal);
    if (value == "none" || value == "quiet")
        return static_cast<int>(LogLevel::Panic) + 1;
    // Unknown value: keep everything visible rather than hiding the
    // user's output behind a typo.
    return static_cast<int>(LogLevel::Inform);
}

int
threshold()
{
    int level = thresholdLevel.load();
    if (level < 0) {
        level = parseEnvThreshold();
        thresholdLevel.store(level);
    }
    return level;
}

} // namespace

void
setLogQuiet(bool quiet)
{
    quietFlag.store(quiet);
}

bool
logQuiet()
{
    return quietFlag.load();
}

void
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    userSink = std::move(sink);
}

void
setLogThreshold(LogLevel level)
{
    thresholdLevel.store(static_cast<int>(level));
}

namespace
{

std::atomic<CrashHook> crashHook{nullptr};
std::atomic<bool> crashHookRan{false};

} // namespace

void
setCrashHook(CrashHook hook)
{
    crashHook.store(hook);
    crashHookRan.store(false);
}

namespace detail
{

void
emitLog(LogLevel level, const std::string &msg)
{
    const bool suppressible =
        level == LogLevel::Inform || level == LogLevel::Warn;
    if (suppressible && quietFlag.load())
        return;
    if (suppressible && static_cast<int>(level) < threshold())
        return;
    {
        std::lock_guard<std::mutex> lock(sinkMutex);
        if (userSink)
            userSink(level, msg);
        else
            std::cerr << levelTag(level) << ": " << msg << "\n";
    }
    // The crash hook fires once, after the message reached the sink
    // and outside sinkMutex so the hook may log on its own.
    if (level == LogLevel::Fatal || level == LogLevel::Panic) {
        CrashHook hook = crashHook.load();
        if (hook != nullptr && !crashHookRan.exchange(true))
            hook(level, msg);
    }
}

} // namespace detail

} // namespace vsgpu
