#include "common/logging.hh"

#include <atomic>

namespace vsgpu
{

namespace
{

std::atomic<bool> quietFlag{false};

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
setLogQuiet(bool quiet)
{
    quietFlag.store(quiet);
}

bool
logQuiet()
{
    return quietFlag.load();
}

namespace detail
{

void
emitLog(LogLevel level, const std::string &msg)
{
    const bool suppressible =
        level == LogLevel::Inform || level == LogLevel::Warn;
    if (suppressible && quietFlag.load())
        return;
    std::cerr << levelTag(level) << ": " << msg << "\n";
}

} // namespace detail

} // namespace vsgpu
