#include "common/random.hh"

#include "common/logging.hh"

namespace vsgpu
{

namespace
{

/** splitmix64 step used to expand the seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // Guard against the all-zero state, which is a fixed point.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1); the shifted value fits a
    // double mantissa exactly, so the conversion is lossless.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    panicIfNot(hi >= lo, "uniformInt: hi < lo");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<int>(next() % span);
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586;
    spare_ = mag * std::sin(two_pi * u2);
    hasSpare_ = true;
    return mag * std::cos(two_pi * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

int
Rng::geometric(double p)
{
    panicIfNot(p > 0.0 && p <= 1.0, "geometric: p out of (0, 1]");
    if (p >= 1.0)
        return 1;
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    const int trials = 1 + static_cast<int>(std::log(u) / std::log1p(-p));
    return trials < 1 ? 1 : trials;
}

} // namespace vsgpu
