/**
 * @file
 * Physical units, constants, and system-wide configuration values for
 * the voltage-stacked GPU model (paper Table I).
 *
 * All internal quantities are SI: volts, amps, ohms, farads, henries,
 * seconds, watts, hertz, square metres unless a suffix says otherwise.
 */

#ifndef VSGPU_COMMON_UNITS_HH
#define VSGPU_COMMON_UNITS_HH

#include <cstdint>

#include "common/quantity.hh"

namespace vsgpu
{

/** A simulation cycle count. */
using Cycle = std::uint64_t;

namespace units
{

// Multipliers for readable literals: value * units::milli etc.
inline constexpr double tera  = 1e12;
inline constexpr double giga  = 1e9;
inline constexpr double mega  = 1e6;
inline constexpr double kilo  = 1e3;
inline constexpr double milli = 1e-3;
inline constexpr double micro = 1e-6;
inline constexpr double nano  = 1e-9;
inline constexpr double pico  = 1e-12;
inline constexpr double femto = 1e-15;

} // namespace units

/**
 * Fixed parameters of the modeled system (paper Table I and Section
 * III).  These mirror the NVIDIA Fermi-class configuration the paper
 * evaluates and are shared by every subsystem.
 */
namespace config
{

/** Board-level input supply for the voltage-stacked PDS. */
inline constexpr Volts pcbVoltage = 4.1_V;

/** Nominal per-layer (per-SM) supply voltage. */
inline constexpr Volts smVoltage = 1.0_V;

/** Number of streaming multiprocessors. */
inline constexpr int numSMs = 16;

/** Number of series-stacked voltage layers. */
inline constexpr int numLayers = 4;

/** SMs per layer (= columns of the 4x4 stacking array). */
inline constexpr int smsPerLayer = numSMs / numLayers;

/** SM core clock. */
inline constexpr Hertz smClockHz = 700.0_MHz;

/** One GPU clock period. */
inline constexpr Seconds clockPeriod = 1.0 / smClockHz;

/** Maximum warps issued per SM per cycle (Fermi dual issue). */
inline constexpr int maxIssueWidth = 2;

/** Threads per warp. */
inline constexpr int threadsPerWarp = 32;

/** Maximum resident threads per SM. */
inline constexpr int threadsPerSM = 1536;

/** Maximum resident warps per SM. */
inline constexpr int warpsPerSM = threadsPerSM / threadsPerWarp;

/** Voltage guardband used by commercial GPUs (paper: 0.2 V). */
inline constexpr Volts voltageMargin = 0.2_V;

/** Minimum acceptable SM rail voltage (= smVoltage - margin). */
inline constexpr Volts minSafeVoltage = smVoltage - voltageMargin;

/** Default voltage-smoothing controller trigger threshold. */
inline constexpr Volts defaultVThreshold = 0.9_V;

/** GPU die area (Fermi GF100-class, paper Section III-C). */
inline constexpr Area gpuDieArea = 529.0_mm2;

/** CR-IVR area needed for a circuit-only guarantee (paper: 912 mm^2). */
inline constexpr Area circuitOnlyIvrArea = 912.0_mm2;

/** Default cross-layer CR-IVR area budget (0.2 x GPU area). */
inline constexpr double defaultIvrAreaFraction = 0.2;

/** Default end-to-end control-loop latency in cycles (paper: 60). */
inline constexpr int defaultControlLatency = 60;

/** Peak SM power used for normalization. */
inline constexpr Watts peakSmPower = 14.0_W;

} // namespace config

} // namespace vsgpu

#endif // VSGPU_COMMON_UNITS_HH
