/**
 * @file
 * Physical units, constants, and system-wide configuration values for
 * the voltage-stacked GPU model (paper Table I).
 *
 * All internal quantities are SI: volts, amps, ohms, farads, henries,
 * seconds, watts, hertz, square metres unless a suffix says otherwise.
 */

#ifndef VSGPU_COMMON_UNITS_HH
#define VSGPU_COMMON_UNITS_HH

#include <cstdint>

namespace vsgpu
{

/** A simulation cycle count. */
using Cycle = std::uint64_t;

namespace units
{

// Multipliers for readable literals: value * units::milli etc.
inline constexpr double tera  = 1e12;
inline constexpr double giga  = 1e9;
inline constexpr double mega  = 1e6;
inline constexpr double kilo  = 1e3;
inline constexpr double milli = 1e-3;
inline constexpr double micro = 1e-6;
inline constexpr double nano  = 1e-9;
inline constexpr double pico  = 1e-12;
inline constexpr double femto = 1e-15;

} // namespace units

/**
 * Fixed parameters of the modeled system (paper Table I and Section
 * III).  These mirror the NVIDIA Fermi-class configuration the paper
 * evaluates and are shared by every subsystem.
 */
namespace config
{

/** Board-level input supply for the voltage-stacked PDS. */
inline constexpr double pcbVoltage = 4.1;

/** Nominal per-layer (per-SM) supply voltage. */
inline constexpr double smVoltage = 1.0;

/** Number of streaming multiprocessors. */
inline constexpr int numSMs = 16;

/** Number of series-stacked voltage layers. */
inline constexpr int numLayers = 4;

/** SMs per layer (= columns of the 4x4 stacking array). */
inline constexpr int smsPerLayer = numSMs / numLayers;

/** SM core clock (Hz). */
inline constexpr double smClockHz = 700e6;

/** One GPU clock period (s). */
inline constexpr double clockPeriod = 1.0 / smClockHz;

/** Maximum warps issued per SM per cycle (Fermi dual issue). */
inline constexpr int maxIssueWidth = 2;

/** Threads per warp. */
inline constexpr int threadsPerWarp = 32;

/** Maximum resident threads per SM. */
inline constexpr int threadsPerSM = 1536;

/** Maximum resident warps per SM. */
inline constexpr int warpsPerSM = threadsPerSM / threadsPerWarp;

/** Voltage guardband used by commercial GPUs (paper: 0.2 V). */
inline constexpr double voltageMargin = 0.2;

/** Minimum acceptable SM rail voltage (= smVoltage - margin). */
inline constexpr double minSafeVoltage = smVoltage - voltageMargin;

/** Default voltage-smoothing controller trigger threshold (V). */
inline constexpr double defaultVThreshold = 0.9;

/** GPU die area in mm^2 (Fermi GF100-class, paper Section III-C). */
inline constexpr double gpuDieAreaMm2 = 529.0;

/** CR-IVR area needed for a circuit-only guarantee (paper: 912 mm^2). */
inline constexpr double circuitOnlyIvrAreaMm2 = 912.0;

/** Default cross-layer CR-IVR area budget (0.2 x GPU area). */
inline constexpr double defaultIvrAreaFraction = 0.2;

/** Default end-to-end control-loop latency in cycles (paper: 60). */
inline constexpr int defaultControlLatency = 60;

/** Peak SM power used for normalization (W). */
inline constexpr double peakSmPower = 14.0;

} // namespace config

} // namespace vsgpu

#endif // VSGPU_COMMON_UNITS_HH
