/**
 * @file
 * Console table and CSV emitters used by the benchmark harnesses to
 * print the rows/series that correspond to the paper's tables and
 * figures.
 */

#ifndef VSGPU_COMMON_TABLE_HH
#define VSGPU_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace vsgpu
{

/**
 * A simple aligned-text table.  Cells are strings; numeric helpers
 * format with fixed precision.  Rendered with a header rule so bench
 * output is directly readable next to the paper.
 */
class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title = "");

    // The fluent builder keeps state in the table; copying a table
    // mid-build silently detaches the builder, so forbid copies.
    Table(const Table &) = delete;
    Table &operator=(const Table &) = delete;
    Table(Table &&) = default;
    Table &operator=(Table &&) = default;

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a preformatted row (must match the column count). */
    void addRow(std::vector<std::string> row);

    /** Begin building a row cell by cell. */
    Table &beginRow();

    /** Append a string cell to the row being built. */
    Table &cell(const std::string &text);

    /** Append a numeric cell with fixed precision. */
    Table &cell(double value, int precision = 3);

    /** Append an integer cell. */
    Table &cell(long long value);

    /** Finish the row being built. */
    Table &endRow();

    /** Render to a stream as aligned text. */
    void print(std::ostream &os) const;

    /** Render to a stream as CSV. */
    void printCsv(std::ostream &os) const;

    /** @return number of data rows. */
    std::size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> pending_;
    bool building_ = false;
};

/** Format a double with fixed precision into a string. */
std::string formatFixed(double value, int precision);

/** Format a ratio as a percentage string, e.g. 0.923 -> "92.3%". */
std::string formatPercent(double ratio, int precision = 1);

} // namespace vsgpu

#endif // VSGPU_COMMON_TABLE_HH
