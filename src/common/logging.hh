/**
 * @file
 * Logging and error-reporting helpers in the gem5 tradition.
 *
 * Two error functions with distinct purposes:
 *   - panic():  something happened that should never happen regardless
 *               of what the user does (a simulator bug).  Aborts.
 *   - fatal():  the simulation cannot continue because of a user error
 *               (bad configuration, invalid arguments).  Exits with 1.
 *
 * Status functions that never stop the simulation:
 *   - inform(): normal operating message.
 *   - warn():   functionality that might not behave as expected.
 */

#ifndef VSGPU_COMMON_LOGGING_HH
#define VSGPU_COMMON_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace vsgpu
{

/** Severity levels understood by the log sink. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail
{

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Emit one formatted log line to stderr. */
void emitLog(LogLevel level, const std::string &msg);

} // namespace detail

/** Whether inform()/warn() output is suppressed (e.g. during tests). */
void setLogQuiet(bool quiet);

/** @return true when inform()/warn() output is suppressed. */
bool logQuiet();

/**
 * Report an unrecoverable user-caused error and exit(1).
 * Use for bad configurations or invalid arguments.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitLog(LogLevel::Fatal,
                    detail::concat(std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Report an internal invariant violation (a simulator bug) and abort().
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitLog(LogLevel::Panic,
                    detail::concat(std::forward<Args>(args)...));
    std::abort();
}

/** Emit a warning that does not stop the simulation. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLog(LogLevel::Warn,
                    detail::concat(std::forward<Args>(args)...));
}

/** Emit an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLog(LogLevel::Inform,
                    detail::concat(std::forward<Args>(args)...));
}

/**
 * Assert a simulator invariant; on failure, panic with the message.
 * Active in all build types (unlike assert()).
 */
template <typename... Args>
void
panicIfNot(bool condition, Args &&...args)
{
    if (!condition)
        panic(std::forward<Args>(args)...);
}

/** Fatal-if helper for validating user-supplied configuration. */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        fatal(std::forward<Args>(args)...);
}

} // namespace vsgpu

#endif // VSGPU_COMMON_LOGGING_HH
