/**
 * @file
 * Logging and error-reporting helpers in the gem5 tradition.
 *
 * Two error functions with distinct purposes:
 *   - panic():  something happened that should never happen regardless
 *               of what the user does (a simulator bug).  Aborts.
 *   - fatal():  the simulation cannot continue because of a user error
 *               (bad configuration, invalid arguments).  Exits with 1.
 *
 * Status functions that never stop the simulation:
 *   - inform():    normal operating message.
 *   - warn():      functionality that might not behave as expected.
 *   - warn_once(): like warn(), but at most once per callsite.
 *
 * Output routing: messages go to a pluggable sink (stderr by
 * default; tests install their own with setLogSink()).  Inform/warn
 * visibility is filtered by a threshold taken from the
 * VSGPU_LOG_LEVEL environment variable ("info", "warn",
 * "fatal"/"error", "none"/"quiet") or overridden programmatically
 * with setLogThreshold(); fatal() and panic() always pass.
 */

#ifndef VSGPU_COMMON_LOGGING_HH
#define VSGPU_COMMON_LOGGING_HH

#include <atomic>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

namespace vsgpu
{

/** Severity levels understood by the log sink. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail
{

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Emit one formatted log line to stderr. */
void emitLog(LogLevel level, const std::string &msg);

} // namespace detail

/** Whether inform()/warn() output is suppressed (e.g. during tests). */
void setLogQuiet(bool quiet);

/** @return true when inform()/warn() output is suppressed. */
bool logQuiet();

/** Sink receiving every emitted (non-filtered) log line. */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Install a log sink; pass an empty function to restore the default
 * stderr sink.  Tests use this to capture inform/warn output.
 */
void setLogSink(LogSink sink);

/**
 * Override the visibility threshold: messages below @p level are
 * dropped (Fatal/Panic always pass).  Normally the threshold comes
 * from the VSGPU_LOG_LEVEL environment variable, parsed lazily on
 * first emission; this setter takes precedence (tests, CLI flags).
 */
void setLogThreshold(LogLevel level);

/** Callback invoked once, right after the first Fatal/Panic message
 *  is emitted and before the process terminates. */
using CrashHook = void (*)(LogLevel, const std::string &msg);

/**
 * Install a process-wide crash hook (the flight recorder uses this
 * to dump its ring buffer).  The hook runs at most once per process
 * — a fatal() raised inside the hook itself cannot recurse — and a
 * null pointer uninstalls it.
 */
void setCrashHook(CrashHook hook);

/**
 * Report an unrecoverable user-caused error and exit(1).
 * Use for bad configurations or invalid arguments.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitLog(LogLevel::Fatal,
                    detail::concat(std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Report an internal invariant violation (a simulator bug) and abort().
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitLog(LogLevel::Panic,
                    detail::concat(std::forward<Args>(args)...));
    std::abort();
}

/** Emit a warning that does not stop the simulation. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLog(LogLevel::Warn,
                    detail::concat(std::forward<Args>(args)...));
}

/** Emit an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLog(LogLevel::Inform,
                    detail::concat(std::forward<Args>(args)...));
}

/**
 * Emit a warning at most once per callsite (per process), however
 * many times control passes through it.  Implemented as a macro so
 * each textual use gets its own latch.
 */
#define warn_once(...)                                               \
    do {                                                             \
        static std::atomic<bool> vsgpuWarnedOnce{false};             \
        if (!vsgpuWarnedOnce.exchange(true))                         \
            ::vsgpu::warn(__VA_ARGS__);                              \
    } while (false)

/**
 * Assert a simulator invariant; on failure, panic with the message.
 * Active in all build types (unlike assert()).
 */
template <typename... Args>
void
panicIfNot(bool condition, Args &&...args)
{
    if (!condition)
        panic(std::forward<Args>(args)...);
}

/** Fatal-if helper for validating user-supplied configuration. */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        fatal(std::forward<Args>(args)...);
}

} // namespace vsgpu

#endif // VSGPU_COMMON_LOGGING_HH
