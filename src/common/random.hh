/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload generation must be reproducible across runs and platforms,
 * so we implement a fixed algorithm (xoshiro256**) rather than rely on
 * the standard library's unspecified distributions.
 */

#ifndef VSGPU_COMMON_RANDOM_HH
#define VSGPU_COMMON_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace vsgpu
{

/**
 * xoshiro256** generator with splitmix64 seeding.  Deterministic for a
 * given seed on every platform.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** @return standard normal variate (Box-Muller, cached pair). */
    double normal();

    /** @return normal variate with the given mean and stddev. */
    double normal(double mean, double stddev);

    /** @return true with probability p. */
    bool bernoulli(double p);

    /**
     * @return geometric variate >= 1 with success probability p
     * (number of trials up to and including the first success).
     */
    int geometric(double p);

  private:
    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace vsgpu

#endif // VSGPU_COMMON_RANDOM_HH
