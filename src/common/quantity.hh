/**
 * @file
 * Zero-runtime-cost dimensional analysis for the physical model.
 *
 * Quantity<M, KG, S, A> wraps one double tagged with its SI dimension
 * as exponents of (metre, kilogram, second, ampere).  Every unit the
 * PDN/IVR/power stack handles — volts, amps, ohms, siemens, farads,
 * henries, watts, joules, seconds, hertz, square metres — is an alias
 * of this template, so mixing units (passing watts where volts are
 * expected, adding ohms to farads) is a compile error while the
 * generated code is bit-identical to raw-double arithmetic.
 *
 * Conventions:
 *   - Construction from a raw double is explicit; prefer the literals
 *     in vsgpu::literals (1.0_V, 80.0_mOhm, 700.0_MHz, ...).
 *   - Dimensions cancel to plain double: Volts / Volts is a double,
 *     so ratios, efficiencies, and normalized values need no casts.
 *   - .raw() is the only escape hatch back to double.  Use it at the
 *     boundary to dimension-unaware code (the MNA solver core, the
 *     control law) and nowhere else; scripts/check_units.py polices
 *     new raw-double parameters in converted public headers.
 *   - All values are SI at unit scale (ohms not milliohms, square
 *     metres not mm^2).  Express display scaling as a division by a
 *     literal: area / 1.0_mm2 yields the mm^2 count as a double.
 */

#ifndef VSGPU_COMMON_QUANTITY_HH
#define VSGPU_COMMON_QUANTITY_HH

#include <cmath>
#include <ostream>
#include <type_traits>

namespace vsgpu
{

/**
 * One double carrying SI dimension exponents (m^M kg^KG s^S A^A).
 *
 * Arithmetic is constexpr and inline; with optimization on, a
 * Quantity compiles to exactly the double it wraps (verified by
 * bench/perf_microbench against the raw-double baseline).
 */
template <int M, int KG, int S, int A>
class Quantity
{
  public:
    constexpr Quantity() = default;

    /** Tag a raw SI value with this dimension (explicit on purpose). */
    constexpr explicit Quantity(double raw) : v_(raw) {}

    /** The raw SI value — the only way back to double. */
    constexpr double raw() const { return v_; }

    constexpr Quantity operator-() const { return Quantity{-v_}; }
    constexpr Quantity operator+() const { return *this; }

    constexpr Quantity &
    operator+=(Quantity other)
    {
        v_ += other.v_;
        return *this;
    }

    constexpr Quantity &
    operator-=(Quantity other)
    {
        v_ -= other.v_;
        return *this;
    }

    constexpr Quantity &
    operator*=(double scale)
    {
        v_ *= scale;
        return *this;
    }

    constexpr Quantity &
    operator/=(double scale)
    {
        v_ /= scale;
        return *this;
    }

    constexpr auto operator<=>(const Quantity &) const = default;

    friend constexpr Quantity
    operator+(Quantity x, Quantity y)
    {
        return Quantity{x.v_ + y.v_};
    }

    friend constexpr Quantity
    operator-(Quantity x, Quantity y)
    {
        return Quantity{x.v_ - y.v_};
    }

    friend constexpr Quantity
    operator*(Quantity x, double scale)
    {
        return Quantity{x.v_ * scale};
    }

    friend constexpr Quantity
    operator*(double scale, Quantity x)
    {
        return Quantity{scale * x.v_};
    }

    friend constexpr Quantity
    operator/(Quantity x, double scale)
    {
        return Quantity{x.v_ / scale};
    }

    friend constexpr Quantity<-M, -KG, -S, -A>
    operator/(double num, Quantity x)
    {
        return Quantity<-M, -KG, -S, -A>{num / x.v_};
    }

    friend std::ostream &
    operator<<(std::ostream &os, Quantity q)
    {
        return os << q.v_;
    }

  private:
    double v_ = 0.0;
};

/**
 * Product of two quantities: dimensions add; a fully cancelled result
 * collapses to plain double so ratios read naturally.
 */
template <int M1, int K1, int S1, int A1, int M2, int K2, int S2, int A2>
constexpr auto
operator*(Quantity<M1, K1, S1, A1> x, Quantity<M2, K2, S2, A2> y)
{
    if constexpr (M1 + M2 == 0 && K1 + K2 == 0 && S1 + S2 == 0 &&
                  A1 + A2 == 0)
        return x.raw() * y.raw();
    else
        return Quantity<M1 + M2, K1 + K2, S1 + S2, A1 + A2>{x.raw() *
                                                            y.raw()};
}

/** Quotient of two quantities: dimensions subtract (same collapse). */
template <int M1, int K1, int S1, int A1, int M2, int K2, int S2, int A2>
constexpr auto
operator/(Quantity<M1, K1, S1, A1> x, Quantity<M2, K2, S2, A2> y)
{
    if constexpr (M1 - M2 == 0 && K1 - K2 == 0 && S1 - S2 == 0 &&
                  A1 - A2 == 0)
        return x.raw() / y.raw();
    else
        return Quantity<M1 - M2, K1 - K2, S1 - S2, A1 - A2>{x.raw() /
                                                            y.raw()};
}

/** Magnitude with the dimension preserved. */
template <int M, int KG, int S, int A>
constexpr Quantity<M, KG, S, A>
abs(Quantity<M, KG, S, A> q)
{
    return Quantity<M, KG, S, A>{q.raw() < 0.0 ? -q.raw() : q.raw()};
}

// ---------------------------------------------------------------------
// Named units (SI exponents of m, kg, s, A).

using Seconds = Quantity<0, 0, 1, 0>;
using Hertz = Quantity<0, 0, -1, 0>;
using Amps = Quantity<0, 0, 0, 1>;
using Coulombs = Quantity<0, 0, 1, 1>;
using Volts = Quantity<2, 1, -3, -1>;
using Ohms = Quantity<2, 1, -3, -2>;
using Siemens = Quantity<-2, -1, 3, 2>;
using Farads = Quantity<-2, -1, 4, 2>;
using Henries = Quantity<2, 1, -2, -2>;
using Watts = Quantity<2, 1, -3, 0>;
using Joules = Quantity<2, 1, -2, 0>;
using Area = Quantity<2, 0, 0, 0>;
using FaradsPerArea = Quantity<-4, -1, 4, 2>;

// Controller gain: watts of power correction per volt of deviation.
// Dimensionally this is Amps (W/V = A); the alias keeps control-code
// signatures self-describing.
using WattsPerVolt = decltype(Watts{} / Volts{});

// Derived-unit identities: if any alias above is wrong these fail to
// compile, so the algebra is proven once, here.
static_assert(std::is_same_v<decltype(Watts{} / Amps{}), Volts>);
static_assert(std::is_same_v<decltype(Volts{} / Amps{}), Ohms>);
static_assert(std::is_same_v<decltype(Volts{} * Amps{}), Watts>);
static_assert(std::is_same_v<decltype(Volts{} / Ohms{}), Amps>);
static_assert(std::is_same_v<decltype(Farads{} * Ohms{}), Seconds>);
static_assert(std::is_same_v<decltype(Farads{} * Volts{}), Coulombs>);
static_assert(std::is_same_v<decltype(Henries{} / Ohms{}), Seconds>);
static_assert(std::is_same_v<decltype(Watts{} * Seconds{}), Joules>);
static_assert(std::is_same_v<decltype(1.0 / Seconds{}), Hertz>);
static_assert(std::is_same_v<decltype(1.0 / Ohms{}), Siemens>);
static_assert(std::is_same_v<decltype(Farads{} / Area{}), FaradsPerArea>);
static_assert(std::is_same_v<decltype(Volts{} / Volts{}), double>);
static_assert(std::is_same_v<WattsPerVolt, Amps>);
static_assert(
    std::is_same_v<decltype(WattsPerVolt{} * Volts{}), Watts>);

inline namespace literals
{

// One literal per (unit, scale) pair the codebase actually uses; both
// floating (1.0_V) and integral (80_mOhm) spellings are accepted.
#define VSGPU_QUANTITY_LITERAL(suffix, type, scale)                     \
    constexpr type operator""_##suffix(long double v)                   \
    {                                                                   \
        return type{static_cast<double>(v) * (scale)};                  \
    }                                                                   \
    constexpr type operator""_##suffix(unsigned long long v)            \
    {                                                                   \
        return type{static_cast<double>(v) * (scale)};                  \
    }

VSGPU_QUANTITY_LITERAL(V, Volts, 1.0)
VSGPU_QUANTITY_LITERAL(mV, Volts, 1e-3)
VSGPU_QUANTITY_LITERAL(A, Amps, 1.0)
VSGPU_QUANTITY_LITERAL(mA, Amps, 1e-3)
VSGPU_QUANTITY_LITERAL(Ohm, Ohms, 1.0)
VSGPU_QUANTITY_LITERAL(mOhm, Ohms, 1e-3)
VSGPU_QUANTITY_LITERAL(uOhm, Ohms, 1e-6)
VSGPU_QUANTITY_LITERAL(F, Farads, 1.0)
VSGPU_QUANTITY_LITERAL(uF, Farads, 1e-6)
VSGPU_QUANTITY_LITERAL(nF, Farads, 1e-9)
VSGPU_QUANTITY_LITERAL(pF, Farads, 1e-12)
VSGPU_QUANTITY_LITERAL(H, Henries, 1.0)
VSGPU_QUANTITY_LITERAL(nH, Henries, 1e-9)
VSGPU_QUANTITY_LITERAL(pH, Henries, 1e-12)
VSGPU_QUANTITY_LITERAL(W, Watts, 1.0)
VSGPU_QUANTITY_LITERAL(mW, Watts, 1e-3)
VSGPU_QUANTITY_LITERAL(J, Joules, 1.0)
VSGPU_QUANTITY_LITERAL(nJ, Joules, 1e-9)
VSGPU_QUANTITY_LITERAL(s, Seconds, 1.0)
VSGPU_QUANTITY_LITERAL(ms, Seconds, 1e-3)
VSGPU_QUANTITY_LITERAL(us, Seconds, 1e-6)
VSGPU_QUANTITY_LITERAL(ns, Seconds, 1e-9)
VSGPU_QUANTITY_LITERAL(ps, Seconds, 1e-12)
VSGPU_QUANTITY_LITERAL(Hz, Hertz, 1.0)
VSGPU_QUANTITY_LITERAL(kHz, Hertz, 1e3)
VSGPU_QUANTITY_LITERAL(MHz, Hertz, 1e6)
VSGPU_QUANTITY_LITERAL(GHz, Hertz, 1e9)
VSGPU_QUANTITY_LITERAL(m2, Area, 1.0)
VSGPU_QUANTITY_LITERAL(mm2, Area, 1e-6)
VSGPU_QUANTITY_LITERAL(um2, Area, 1e-12)

#undef VSGPU_QUANTITY_LITERAL

} // namespace literals

} // namespace vsgpu

#endif // VSGPU_COMMON_QUANTITY_HH
