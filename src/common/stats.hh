/**
 * @file
 * Streaming and batch statistics used throughout the evaluation:
 * running mean/variance/extrema, quantile summaries for box plots
 * (paper Fig. 11), and fixed-bin histograms (paper Fig. 17).
 */

#ifndef VSGPU_COMMON_STATS_HH
#define VSGPU_COMMON_STATS_HH

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace vsgpu
{

/**
 * Streaming mean / variance / min / max accumulator (Welford).
 * O(1) memory; suitable for multi-million-sample voltage traces.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void reset();

    /** @return number of samples added. */
    std::size_t count() const { return n_; }

    /** @return sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** @return population variance (0 when fewer than 2 samples). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
    }

    /** @return population standard deviation. */
    double stddev() const;

    /** @return minimum sample (+inf when empty). */
    double min() const { return min_; }

    /** @return maximum sample (-inf when empty). */
    double max() const { return max_; }

    /** @return sum of all samples. */
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Five-number summary for box plots: min, q1, median, q3, max, plus
 * mean and count.  Computed from a retained sample vector.
 */
struct BoxStats
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double mean = 0.0;
    std::size_t count = 0;
};

/**
 * Linear-interpolation quantile of a sample vector.
 *
 * @param samples sample values (not required to be sorted; copied).
 * @param q       quantile in [0, 1].
 */
double quantile(std::vector<double> samples, double q);

/** Compute the five-number summary of a sample vector. */
BoxStats boxStats(const std::vector<double> &samples);

/**
 * Reservoir sampler: retains a uniform random subset of a stream so
 * box statistics stay cheap on very long traces.
 */
class ReservoirSampler
{
  public:
    /** @param capacity maximum retained samples. */
    ReservoirSampler(std::size_t capacity = 65536);

    /** Offer one sample to the reservoir. */
    void add(double x);

    /** @return retained samples (order unspecified). */
    const std::vector<double> &samples() const { return samples_; }

    /** @return number of samples offered so far. */
    std::size_t seen() const { return seen_; }

    /** Compute box statistics over the retained samples. */
    BoxStats box() const { return boxStats(samples_); }

  private:
    std::size_t capacity_;
    std::size_t seen_ = 0;
    std::uint64_t state_;
    std::vector<double> samples_;
};

/**
 * Histogram over fixed, caller-supplied bin edges.  A sample x falls in
 * bin i when edges[i] <= x < edges[i+1]; samples outside the range are
 * clamped into the first/last bin (matching the paper's ">40%" bucket).
 */
class Histogram
{
  public:
    /** @param edges ascending bin edges; defines edges.size()-1 bins. */
    explicit Histogram(std::vector<double> edges);

    /** Add one sample. */
    void add(double x);

    /** @return raw count of bin i. */
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }

    /** @return number of bins. */
    std::size_t numBins() const { return counts_.size(); }

    /** @return total samples. */
    std::size_t total() const { return total_; }

    /** @return fraction of samples in bin i (0 when empty). */
    double fraction(std::size_t i) const;

    /** @return human-readable label "lo-hi" for bin i. */
    std::string binLabel(std::size_t i) const;

  private:
    std::vector<double> edges_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace vsgpu

#endif // VSGPU_COMMON_STATS_HH
