/**
 * @file
 * Debug-mode numeric invariant guards.
 *
 * Floating-point corruption (a NaN load current, an Inf node voltage)
 * propagates silently through the MNA solver and poisons every
 * downstream figure.  These macros make such corruption abort at its
 * source in checked builds and compile to nothing in release builds,
 * so the solver inner loop stays free of branches when it matters.
 *
 * Checked builds are those without NDEBUG (CMake Debug) — override
 * with -DVSGPU_DEBUG_CHECKS=0/1.  The guards accept raw doubles and
 * any Quantity alike.
 *
 *   VSGPU_CHECK_FINITE(x)            abort if x is NaN or Inf
 *   VSGPU_CHECK_RANGE(x, lo, hi)     abort unless lo <= x <= hi
 *   VSGPU_CHECK_ALL_FINITE(xs, what) abort if any element is not
 *                                    finite; 'what' names the context
 *
 * Function contracts make interface obligations explicit and lintable:
 *
 *   VSGPU_REQUIRES(cond, ...)  precondition; abort in checked builds
 *   VSGPU_ENSURES(cond, ...)   postcondition; abort in checked builds
 *   VSGPU_CONTRACT             tags a function as contract-carrying
 *
 * A function tagged VSGPU_CONTRACT (which expands to the
 * [[vsgpu::contract]] attribute where the compiler tolerates vendor
 * attribute namespaces) promises that its definition states at least
 * one VSGPU_REQUIRES/VSGPU_ENSURES.  tools/lint/vsgpu_lint verifies
 * that promise statically; the macros verify the conditions at
 * runtime in checked builds and compile to a name-check in release.
 *
 * Concurrency annotations make locking protocols explicit and
 * lintable (the lock-discipline family of vsgpu_lint consumes and
 * enforces them; they cost nothing at runtime):
 *
 *   VSGPU_GUARDED_BY(mu)  on a member/global declaration: every
 *                         access must hold mutex mu.  Placed after
 *                         the variable name, before the initializer:
 *                         `std::deque<int> tasks VSGPU_GUARDED_BY(mutex);`
 *   VSGPU_ACQUIRES(mu)    on a function definition (after the
 *                         parameter list): the body acquires mu at
 *                         some point during execution.  The lint
 *                         verifies the promise and uses it at call
 *                         sites for lock-order and double-lock
 *                         analysis.
 *   VSGPU_EXCLUDES(mu)    on a function definition: callers must NOT
 *                         hold mu at the call site (the body acquires
 *                         it itself, or would deadlock/invert order).
 *
 * Constructors and destructors are exempt from VSGPU_GUARDED_BY
 * enforcement (single-threaded by construction), matching the Clang
 * thread-safety model these annotations deliberately mirror.
 */

#ifndef VSGPU_COMMON_CHECK_HH
#define VSGPU_COMMON_CHECK_HH

#include <cmath>
#include <cstddef>

#include "common/logging.hh"
#include "common/quantity.hh"

#if !defined(VSGPU_DEBUG_CHECKS)
#if defined(NDEBUG)
#define VSGPU_DEBUG_CHECKS 0
#else
#define VSGPU_DEBUG_CHECKS 1
#endif
#endif

// The contract tag itself.  GCC >= 11 can scope the unknown-attribute
// warning to a vendor namespace (-Wno-attributes=vsgpu::, added by the
// top-level CMakeLists); elsewhere the tag expands to nothing and the
// lint keys on the macro name in the source text instead.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ >= 11
#define VSGPU_CONTRACT [[vsgpu::contract]]
#else
#define VSGPU_CONTRACT
#endif

// Concurrency annotations.  They expand to nothing for every
// compiler — the lock-discipline lint family keys on the macro names
// in the token stream, so the annotations stay meaningful without a
// thread-safety-analysis-capable toolchain.  The spellings mirror
// Clang's -Wthread-safety attributes so a later migration to real
// attributes is mechanical.
#define VSGPU_GUARDED_BY(mutex)
#define VSGPU_ACQUIRES(mutex)
#define VSGPU_EXCLUDES(mutex)

namespace vsgpu
{
namespace checkdetail
{

constexpr double
rawOf(double v)
{
    return v;
}

template <int M, int KG, int S, int A>
constexpr double
rawOf(Quantity<M, KG, S, A> q)
{
    return q.raw();
}

/** @return index of the first non-finite element, or -1 if all ok. */
template <typename Container>
std::ptrdiff_t
firstNonFinite(const Container &xs)
{
    std::ptrdiff_t i = 0;
    for (const auto &x : xs) {
        if (!std::isfinite(rawOf(x)))
            return i;
        ++i;
    }
    return -1;
}

} // namespace checkdetail
} // namespace vsgpu

#if VSGPU_DEBUG_CHECKS

#define VSGPU_CHECK_FINITE(x)                                           \
    do {                                                                \
        const double vsgpuCheckVal_ = ::vsgpu::checkdetail::rawOf(x);   \
        if (!std::isfinite(vsgpuCheckVal_))                             \
            ::vsgpu::panic(__FILE__, ":", __LINE__,                     \
                           ": numeric invariant violated: " #x " = ",   \
                           vsgpuCheckVal_);                             \
    } while (0)

#define VSGPU_CHECK_RANGE(x, lo, hi)                                    \
    do {                                                                \
        const double vsgpuCheckVal_ = ::vsgpu::checkdetail::rawOf(x);   \
        const double vsgpuCheckLo_ = ::vsgpu::checkdetail::rawOf(lo);   \
        const double vsgpuCheckHi_ = ::vsgpu::checkdetail::rawOf(hi);   \
        if (!(vsgpuCheckVal_ >= vsgpuCheckLo_ &&                        \
              vsgpuCheckVal_ <= vsgpuCheckHi_))                         \
            ::vsgpu::panic(__FILE__, ":", __LINE__,                     \
                           ": range invariant violated: " #x " = ",     \
                           vsgpuCheckVal_, " not in [", vsgpuCheckLo_,  \
                           ", ", vsgpuCheckHi_, "]");                   \
    } while (0)

#define VSGPU_CHECK_ALL_FINITE(xs, what)                                \
    do {                                                                \
        const std::ptrdiff_t vsgpuCheckIdx_ =                           \
            ::vsgpu::checkdetail::firstNonFinite(xs);                   \
        if (vsgpuCheckIdx_ >= 0)                                        \
            ::vsgpu::panic(__FILE__, ":", __LINE__,                     \
                           ": non-finite value in ", what,              \
                           " at index ", vsgpuCheckIdx_);               \
    } while (0)

#define VSGPU_REQUIRES(cond, ...)                                       \
    do {                                                                \
        if (!(cond))                                                    \
            ::vsgpu::panic(__FILE__, ":", __LINE__,                     \
                           ": precondition violated: " #cond            \
                           __VA_OPT__(, ": ", __VA_ARGS__));            \
    } while (0)

#define VSGPU_ENSURES(cond, ...)                                        \
    do {                                                                \
        if (!(cond))                                                    \
            ::vsgpu::panic(__FILE__, ":", __LINE__,                     \
                           ": postcondition violated: " #cond           \
                           __VA_OPT__(, ": ", __VA_ARGS__));            \
    } while (0)

#else

// Release: evaluate nothing, but keep the operands name-checked so a
// guard cannot silently rot (sizeof does not evaluate its operand).
#define VSGPU_CHECK_FINITE(x)                                           \
    ((void)sizeof(::vsgpu::checkdetail::rawOf(x)))
#define VSGPU_CHECK_RANGE(x, lo, hi)                                    \
    ((void)sizeof(::vsgpu::checkdetail::rawOf(x)),                      \
     (void)sizeof(::vsgpu::checkdetail::rawOf(lo)),                     \
     (void)sizeof(::vsgpu::checkdetail::rawOf(hi)))
#define VSGPU_CHECK_ALL_FINITE(xs, what)                                \
    ((void)sizeof(&(xs)), (void)sizeof(what))
#define VSGPU_REQUIRES(cond, ...)                                       \
    ((void)sizeof((cond) ? 1 : 0))
#define VSGPU_ENSURES(cond, ...)                                        \
    ((void)sizeof((cond) ? 1 : 0))

#endif // VSGPU_DEBUG_CHECKS

#endif // VSGPU_COMMON_CHECK_HH
