#include "workloads/generator.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/units.hh"

namespace vsgpu
{

namespace
{

/** Registers 8..47 rotate as destinations; 0..7 are never written. */
constexpr int destRegBase = 8;
constexpr int destRegCount = 40;

/** Deterministic [0,1) hash of a (seed, a, b) triple. */
double
hash01(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0)
{
    Rng rng(seed ^ (a * 0x9e3779b97f4a7c15ull) ^
            (b * 0xc2b2ae3d27d4eb4full));
    return rng.uniform();
}

} // namespace

VSGPU_CONTRACT
GeneratedProgram::GeneratedProgram(const WorkloadSpec &spec,
                                   std::uint64_t seed, int startOffset)
    : spec_(spec), rng_(seed), repeatsLeft_(spec.repeats),
      totalToEmit_(spec.totalInstrs())
{
    VSGPU_REQUIRES(!spec_.phases.empty(), "workload has no phases");
    const int loop = spec_.loopLength();
    VSGPU_REQUIRES(loop > 0, "workload loop is empty");
    int offset = startOffset % loop;

    // Position the cursor 'offset' instructions into the loop.
    while (offset > 0) {
        const auto &phase = spec_.phases[phaseIdx_];
        const int phaseLen =
            phase.lengthInstrs + (phase.barrierAtEnd ? 1 : 0);
        const int remaining = phaseLen - posInPhase_;
        if (offset >= remaining) {
            offset -= remaining;
            posInPhase_ = 0;
            phaseIdx_ = (phaseIdx_ + 1) % spec_.phases.size();
        } else {
            posInPhase_ += offset;
            offset = 0;
        }
    }
}

void
GeneratedProgram::advanceCursor()
{
    const auto &phase = spec_.phases[phaseIdx_];
    const int phaseLen =
        phase.lengthInstrs + (phase.barrierAtEnd ? 1 : 0);
    ++posInPhase_;
    if (posInPhase_ >= phaseLen) {
        posInPhase_ = 0;
        phaseIdx_ = (phaseIdx_ + 1) % spec_.phases.size();
    }
}

WarpInstr
GeneratedProgram::sample()
{
    const PhaseSpec &phase = spec_.phases[phaseIdx_];

    // Barrier slot at the end of a barrier phase.
    if (phase.barrierAtEnd && posInPhase_ == phase.lengthInstrs) {
        WarpInstr instr;
        instr.op = OpClass::Sync;
        instr.dest = noReg;
        instr.src0 = noReg;
        instr.src1 = noReg;
        return instr;
    }

    // Sample the op class from the phase mix (Sync excluded).
    double total = 0.0;
    for (int op = 0; op < numOpClasses; ++op) {
        if (static_cast<OpClass>(op) == OpClass::Sync)
            continue;
        total += phase.mix[static_cast<std::size_t>(op)];
    }
    panicIfNot(total > 0.0, "phase mix has no weight");
    double pick = rng_.uniform() * total;
    OpClass chosen = OpClass::IntAlu;
    for (int op = 0; op < numOpClasses; ++op) {
        if (static_cast<OpClass>(op) == OpClass::Sync)
            continue;
        pick -= phase.mix[static_cast<std::size_t>(op)];
        if (pick <= 0.0) {
            chosen = static_cast<OpClass>(op);
            break;
        }
    }

    WarpInstr instr;
    instr.op = chosen;
    instr.dest = static_cast<std::uint8_t>(
        destRegBase + (seq_ % destRegCount));
    if (chosen == OpClass::Store || chosen == OpClass::Sync)
        instr.dest = noReg;

    // Dependences: read a recently produced register with depChance.
    instr.src0 = noReg;
    instr.src1 = noReg;
    if (rng_.bernoulli(phase.depChance) && seq_ > 0) {
        const int back =
            1 + rng_.uniformInt(0, std::max(0, phase.depDistance - 1));
        if (seq_ >= back) {
            instr.src0 = static_cast<std::uint8_t>(
                destRegBase + ((seq_ - back) % destRegCount));
        }
    } else {
        instr.src0 = static_cast<std::uint8_t>(rng_.uniformInt(0, 7));
    }
    if (rng_.bernoulli(phase.depChance * 0.4) && seq_ > 0) {
        const int back = 1 + rng_.uniformInt(
            0, std::max(0, 2 * phase.depDistance - 1));
        if (seq_ >= back) {
            instr.src1 = static_cast<std::uint8_t>(
                destRegBase + ((seq_ - back) % destRegCount));
        }
    }

    // Divergence.
    if (phase.divergence >= 0.999) {
        instr.activeLanes = 32;
    } else {
        const double lanes =
            32.0 * (phase.divergence + 0.12 * rng_.normal());
        instr.activeLanes = static_cast<std::uint8_t>(
            std::clamp(static_cast<int>(std::lround(lanes)), 1, 32));
    }

    instr.rowHit = rng_.bernoulli(phase.rowHitRate);
    if (isMemoryOp(chosen)) {
        instr.l1Hit = rng_.bernoulli(spec_.l1HitRate);
        instr.l2Hit = rng_.bernoulli(spec_.l2HitRate);
    }
    return instr;
}

std::optional<WarpInstr>
GeneratedProgram::next()
{
    if (emitted_ >= totalToEmit_)
        return std::nullopt;
    const WarpInstr instr = sample();
    advanceCursor();
    ++emitted_;
    ++seq_;
    return instr;
}

VSGPU_CONTRACT
WorkloadFactory::WorkloadFactory(WorkloadSpec spec)
    : spec_(std::move(spec))
{
    VSGPU_REQUIRES(spec_.warpsPerSm > 0 &&
                   spec_.warpsPerSm <= config::warpsPerSM,
                   "warpsPerSm out of range");
}

std::unique_ptr<WarpProgram>
WorkloadFactory::makeProgram(int sm, int warp) const
{
    const int loop = spec_.loopLength();
    const int smOffset = static_cast<int>(
        spec_.smJitter * static_cast<double>(loop) *
        hash01(spec_.seed, static_cast<std::uint64_t>(sm) + 1));
    const int warpOffset = static_cast<int>(
        spec_.warpJitter * static_cast<double>(loop) *
        hash01(spec_.seed, static_cast<std::uint64_t>(sm) + 1,
               static_cast<std::uint64_t>(warp) + 1));

    const std::uint64_t streamSeed =
        spec_.seed + 1000003ull * static_cast<std::uint64_t>(sm) +
        7919ull * static_cast<std::uint64_t>(warp);

    return std::make_unique<GeneratedProgram>(
        spec_, streamSeed, (smOffset + warpOffset) % loop);
}

} // namespace vsgpu
