/**
 * @file
 * The benchmark suite: synthetic equivalents of the paper's twelve
 * evaluation workloads (six from Rodinia 2.0, six from the NVIDIA
 * CUDA SDK), plus microbenchmarks used by tests and worst-case
 * studies.
 *
 * Each generator is parameterized to match the published behavioural
 * characterization rather than the applications' semantics: issue
 * rates in the 0.8-1.8 warps/cycle range, per-benchmark memory
 * intensity and divergence, barrier structure, and — critical for
 * voltage stacking — per-benchmark inter-SM activity misalignment
 * (backprop most imbalanced, heartwall most uniform; paper Fig. 17).
 */

#ifndef VSGPU_WORKLOADS_SUITE_HH
#define VSGPU_WORKLOADS_SUITE_HH

#include <cstdint>
#include <vector>

#include "workloads/spec.hh"

namespace vsgpu
{

/** The paper's twelve benchmarks. */
enum class Benchmark
{
    Backprop,     // Rodinia "BACKP"
    Bfs,
    Heartwall,
    Hotspot,
    Pathfinder,
    Srad,
    Blackscholes, // CUDA SDK
    Scalarprod,
    Sortingnet,
    Simpleface,
    Fastwalsh,
    Simpleatomic,
};

/** @return all twelve benchmarks in the paper's presentation order. */
const std::vector<Benchmark> &allBenchmarks();

/** @return the display name used in the paper's figures. */
const char *benchmarkName(Benchmark bench);

/** @return the L1 hit rate this workload should configure. */
double benchmarkL1HitRate(Benchmark bench);

/**
 * The suite's published per-benchmark base seed.  All generator
 * entry points default to this value, so two call sites asking for
 * the same benchmark get bitwise-identical instruction streams
 * unless one explicitly reseeds.
 */
std::uint64_t benchmarkSeed(Benchmark bench);

/**
 * @return the workload specification for a benchmark.
 * @param seed base RNG seed for the instruction stream; defaults to
 *             benchmarkSeed(bench) so results are reproducible.
 */
WorkloadSpec workloadFor(Benchmark bench, std::uint64_t seed);
WorkloadSpec workloadFor(Benchmark bench);

/**
 * Perfectly balanced compute microbenchmark (zero jitter): the ideal
 * voltage-stacking case used by unit tests and calibration.
 */
WorkloadSpec uniformWorkload(int instrsPerWarp = 2000,
                             std::uint64_t seed = 0x111);

/**
 * Power square-wave microbenchmark: alternates dense independent FP
 * phases with dependence-serialized low-power phases, producing a
 * load-current fundamental near 1/(2*phaseCycles) of the core clock.
 * Used to validate the impedance analysis against the transient
 * engine.
 */
WorkloadSpec resonantWorkload(int phaseInstrs, int repeats = 8,
                              std::uint64_t seed = 0x2e5);

/** Scale a spec's repeat count so it retires roughly targetInstrs
 *  per warp. */
WorkloadSpec scaledToInstrs(WorkloadSpec spec, int targetInstrs);

} // namespace vsgpu

#endif // VSGPU_WORKLOADS_SUITE_HH
