#include "workloads/trace_file.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.hh"
#include "common/logging.hh"

namespace vsgpu
{

namespace
{

/** Mnemonic for an op class (inverse of parseOpClass). */
const char *
mnemonic(OpClass op)
{
    return opClassName(op);
}

/** Render a register id ('-' for none). */
std::string
regToken(std::uint8_t reg)
{
    return reg == noReg ? "-" : std::to_string(reg);
}

/** Parse a register token. */
std::uint8_t
parseReg(const std::string &token)
{
    if (token == "-")
        return noReg;
    const int value = std::stoi(token);
    fatalIf(value < 0 || value > 255,
            "trace register out of range: ", token);
    return static_cast<std::uint8_t>(value);
}

} // namespace

OpClass
parseOpClass(const std::string &m)
{
    for (int op = 0; op < numOpClasses; ++op) {
        if (m == opClassName(static_cast<OpClass>(op)))
            return static_cast<OpClass>(op);
    }
    fatal("unknown op mnemonic in trace: '", m, "'");
}

TraceFile
TraceFile::parse(std::istream &is)
{
    TraceFile trace;
    std::string line;
    int sm = -1;
    int warp = -1;
    std::vector<WarpInstr> current;
    int lineNo = 0;

    const auto flush = [&]() {
        if (sm >= 0)
            trace.addStream(sm, warp, std::move(current));
        current.clear();
    };

    while (std::getline(is, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string first;
        if (!(ls >> first))
            continue; // blank

        if (first == "warp") {
            flush();
            fatalIf(!(ls >> sm >> warp),
                    "trace line ", lineNo, ": malformed warp header");
            fatalIf(sm < 0 || warp < 0,
                    "trace line ", lineNo, ": negative sm/warp");
            continue;
        }

        fatalIf(sm < 0,
                "trace line ", lineNo,
                ": instruction before any 'warp' header");
        WarpInstr instr;
        instr.op = parseOpClass(first);
        std::string dest, src0, src1;
        int lanes = 0, rowHit = 0, l1 = 0, l2 = 0;
        fatalIf(!(ls >> dest >> src0 >> src1 >> lanes >> rowHit >>
                  l1 >> l2),
                "trace line ", lineNo, ": malformed instruction");
        instr.dest = parseReg(dest);
        instr.src0 = parseReg(src0);
        instr.src1 = parseReg(src1);
        fatalIf(lanes < 1 || lanes > 32,
                "trace line ", lineNo, ": lanes out of range");
        instr.activeLanes = static_cast<std::uint8_t>(lanes);
        instr.rowHit = rowHit != 0;
        instr.l1Hit = l1 != 0;
        instr.l2Hit = l2 != 0;
        current.push_back(instr);
    }
    flush();
    fatalIf(trace.streams_.empty(), "trace contains no streams");
    return trace;
}

void
TraceFile::write(std::ostream &os) const
{
    os << "# vsgpu warp trace\n";
    for (const auto &[key, instrs] : streams_) {
        os << "warp " << key.first << " " << key.second << "\n";
        for (const auto &i : instrs) {
            os << mnemonic(i.op) << " " << regToken(i.dest) << " "
               << regToken(i.src0) << " " << regToken(i.src1) << " "
               << static_cast<int>(i.activeLanes) << " "
               << (i.rowHit ? 1 : 0) << " " << (i.l1Hit ? 1 : 0)
               << " " << (i.l2Hit ? 1 : 0) << "\n";
        }
    }
}

void
TraceFile::addStream(int sm, int warp, std::vector<WarpInstr> instrs)
{
    panicIfNot(sm >= 0 && warp >= 0, "negative stream key");
    streams_[{sm, warp}] = std::move(instrs);
}

std::size_t
TraceFile::totalInstrs() const
{
    std::size_t n = 0;
    for (const auto &[key, instrs] : streams_)
        n += instrs.size();
    return n;
}

int
TraceFile::warpsPerSm() const
{
    int maxWarp = -1;
    for (const auto &[key, instrs] : streams_)
        maxWarp = std::max(maxWarp, key.second);
    return maxWarp + 1;
}

const std::vector<WarpInstr> &
TraceFile::stream(int sm, int warp) const
{
    panicIfNot(!streams_.empty(), "empty trace");
    const auto exact = streams_.find({sm, warp});
    if (exact != streams_.end())
        return exact->second;

    // Modulo fallback: replay a recorded stream.
    int maxSm = 0, maxWarp = 0;
    for (const auto &[key, instrs] : streams_) {
        maxSm = std::max(maxSm, key.first + 1);
        maxWarp = std::max(maxWarp, key.second + 1);
    }
    const auto folded =
        streams_.find({sm % maxSm, warp % maxWarp});
    if (folded != streams_.end())
        return folded->second;
    // Last resort: the first recorded stream.
    return streams_.begin()->second;
}

TraceFileFactory::TraceFileFactory(TraceFile trace)
    : trace_(std::move(trace))
{
}

std::unique_ptr<WarpProgram>
TraceFileFactory::makeProgram(int sm, int warp) const
{
    return std::make_unique<TraceProgram>(trace_.stream(sm, warp));
}

VSGPU_CONTRACT TraceFile
recordTrace(const ProgramFactory &factory, int numSms)
{
    VSGPU_REQUIRES(numSms > 0, "numSms must be positive");
    TraceFile trace;
    for (int sm = 0; sm < numSms; ++sm) {
        for (int warp = 0; warp < factory.warpsPerSm(); ++warp) {
            auto program = factory.makeProgram(sm, warp);
            std::vector<WarpInstr> instrs;
            while (auto instr = program->next())
                instrs.push_back(*instr);
            trace.addStream(sm, warp, std::move(instrs));
        }
    }
    return trace;
}

} // namespace vsgpu
