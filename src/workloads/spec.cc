#include "workloads/spec.hh"

namespace vsgpu
{

PhaseSpec &
PhaseSpec::w(OpClass op, double weight)
{
    mix[static_cast<std::size_t>(op)] = weight;
    return *this;
}

PhaseSpec &
PhaseSpec::len(int n)
{
    lengthInstrs = n;
    return *this;
}

PhaseSpec &
PhaseSpec::dep(double chance, int distance)
{
    depChance = chance;
    depDistance = distance;
    return *this;
}

PhaseSpec &
PhaseSpec::div(double lanesFraction)
{
    divergence = lanesFraction;
    return *this;
}

PhaseSpec &
PhaseSpec::rowHit(double rate)
{
    rowHitRate = rate;
    return *this;
}

PhaseSpec &
PhaseSpec::barrier()
{
    barrierAtEnd = true;
    return *this;
}

int
WorkloadSpec::loopLength() const
{
    int n = 0;
    for (const auto &phase : phases)
        n += phase.lengthInstrs + (phase.barrierAtEnd ? 1 : 0);
    return n;
}

} // namespace vsgpu
