/**
 * @file
 * Workload specifications.
 *
 * Each benchmark is described as a looped sequence of phases; every
 * phase carries an instruction mix, a dependence profile, divergence,
 * memory locality, and an optional trailing barrier.  Per-SM phase
 * offsets ("jitter") reproduce the inter-SM activity misalignment
 * that creates layer current imbalance in a voltage-stacked GPU
 * (paper Fig. 17's per-benchmark imbalance spread).
 */

#ifndef VSGPU_WORKLOADS_SPEC_HH
#define VSGPU_WORKLOADS_SPEC_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "gpu/isa.hh"

namespace vsgpu
{

/** One program phase. */
struct PhaseSpec
{
    /** Sampling weights per op class (need not be normalized);
     *  Sync weight is ignored (barriers via barrierAtEnd). */
    std::array<double, static_cast<std::size_t>(OpClass::NumClasses)>
        mix{};

    /** Warp instructions in this phase. */
    int lengthInstrs = 256;

    /** Probability an instruction reads a recently produced value. */
    double depChance = 0.45;

    /** How far back (instructions) dependences typically reach. */
    int depDistance = 3;

    /** Mean fraction of active lanes (branch divergence). */
    double divergence = 1.0;

    /** DRAM row-buffer hit probability for memory ops. */
    double rowHitRate = 0.8;

    /** Emit a barrier as the phase's final instruction. */
    bool barrierAtEnd = false;

    // -- fluent helpers for the suite definitions --
    PhaseSpec &w(OpClass op, double weight);
    PhaseSpec &len(int n);
    PhaseSpec &dep(double chance, int distance = 3);
    PhaseSpec &div(double lanesFraction);
    PhaseSpec &rowHit(double rate);
    PhaseSpec &barrier();
};

/** A complete workload description. */
struct WorkloadSpec
{
    std::string name;
    std::vector<PhaseSpec> phases;

    /** Times the phase sequence repeats per warp. */
    int repeats = 4;

    /** Resident warps per SM. */
    int warpsPerSm = 32;

    /** Per-workload L1 hit rate. */
    double l1HitRate = 0.6;

    /** Residual L2 hit rate for L1 misses. */
    double l2HitRate = 0.5;

    /**
     * Inter-SM phase misalignment in [0, 1]: fraction of one loop
     * iteration by which SM start points are scattered.
     */
    double smJitter = 0.1;

    /**
     * Per-warp start scatter in [0, 1] of one loop iteration
     * (models intra-SM warp skew).
     */
    double warpJitter = 0.05;

    /** Base RNG seed. */
    std::uint64_t seed = 1;

    /** @return instructions per warp in one loop iteration. */
    int loopLength() const;

    /** @return total instructions per warp. */
    int totalInstrs() const { return loopLength() * repeats; }
};

} // namespace vsgpu

#endif // VSGPU_WORKLOADS_SPEC_HH
