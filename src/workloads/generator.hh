/**
 * @file
 * Procedural instruction-stream generation from a WorkloadSpec.
 *
 * Streams are generated lazily and deterministically: the instruction
 * at a given (seed, sm, warp, position) is always the same, so
 * multi-million-instruction benchmarks need no trace storage and runs
 * are exactly reproducible across configurations (the same workload
 * can be replayed against different PDS configurations).
 */

#ifndef VSGPU_WORKLOADS_GENERATOR_HH
#define VSGPU_WORKLOADS_GENERATOR_HH

#include <memory>

#include "common/random.hh"
#include "gpu/program.hh"
#include "workloads/spec.hh"

namespace vsgpu
{

/**
 * WarpProgram that samples instructions phase by phase.
 */
class GeneratedProgram : public WarpProgram
{
  public:
    /**
     * @param spec        workload description (copied).
     * @param seed        stream seed (already mixed per sm/warp).
     * @param startOffset instructions to skip into the looped stream
     *                    (phase misalignment).
     */
    GeneratedProgram(const WorkloadSpec &spec, std::uint64_t seed,
                     int startOffset);

    std::optional<WarpInstr> next() override;

  private:
    /** Advance the (phase, position) cursor by one instruction. */
    void advanceCursor();

    /** Sample the instruction at the current cursor. */
    WarpInstr sample();

    WorkloadSpec spec_;
    Rng rng_;
    int repeatsLeft_;
    std::size_t phaseIdx_ = 0;
    int posInPhase_ = 0;
    int emitted_ = 0;
    int totalToEmit_;
    int seq_ = 0; ///< monotone instruction counter for register naming
};

/**
 * ProgramFactory over a WorkloadSpec.
 */
class WorkloadFactory : public ProgramFactory
{
  public:
    explicit WorkloadFactory(WorkloadSpec spec);

    int warpsPerSm() const override { return spec_.warpsPerSm; }

    std::unique_ptr<WarpProgram> makeProgram(int sm,
                                             int warp) const override;

    /** @return the spec. */
    const WorkloadSpec &spec() const { return spec_; }

  private:
    WorkloadSpec spec_;
};

} // namespace vsgpu

#endif // VSGPU_WORKLOADS_GENERATOR_HH
