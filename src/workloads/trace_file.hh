/**
 * @file
 * Textual trace format for warp instruction streams.
 *
 * Lets users drive the simulator with real traces (e.g. converted
 * from a GPGPU-Sim run) instead of the synthetic generators, and lets
 * the generators export their streams for inspection.
 *
 * Format (one file per kernel):
 *
 *   # comment
 *   warp <sm> <warp>
 *   <op> <dest> <src0> <src1> <lanes> <rowhit> <l1> <l2>
 *   ...
 *
 * where <op> is one of int/fp/sfu/load/store/smem/atomic/sync,
 * registers are 0-255 with '-' for none, <lanes> is 1-32, and the
 * last three fields are 0/1 flags.  Instructions belong to the most
 * recent `warp` header.  A stream may be shared: if a (sm, warp) pair
 * is missing, the stream of (sm % recorded SMs, warp % recorded
 * warps) is replayed, so a small trace can populate the whole GPU.
 */

#ifndef VSGPU_WORKLOADS_TRACE_FILE_HH
#define VSGPU_WORKLOADS_TRACE_FILE_HH

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "gpu/program.hh"

namespace vsgpu
{

/**
 * In-memory trace: instruction streams keyed by (sm, warp).
 */
class TraceFile
{
  public:
    /** Parse a trace from a stream.  fatal()s on malformed input. */
    static TraceFile parse(std::istream &is);

    /** Serialize to a stream in the textual format. */
    void write(std::ostream &os) const;

    /** Append a stream for one (sm, warp). */
    void addStream(int sm, int warp, std::vector<WarpInstr> instrs);

    /** @return number of recorded (sm, warp) streams. */
    std::size_t numStreams() const { return streams_.size(); }

    /** @return total recorded instructions. */
    std::size_t totalInstrs() const;

    /** @return highest warp slot recorded plus one. */
    int warpsPerSm() const;

    /** @return the stream for (sm, warp), with modulo fallback. */
    const std::vector<WarpInstr> &stream(int sm, int warp) const;

  private:
    std::map<std::pair<int, int>, std::vector<WarpInstr>> streams_;
};

/**
 * ProgramFactory replaying a TraceFile.
 */
class TraceFileFactory : public ProgramFactory
{
  public:
    explicit TraceFileFactory(TraceFile trace);

    int warpsPerSm() const override { return trace_.warpsPerSm(); }

    std::unique_ptr<WarpProgram> makeProgram(int sm,
                                             int warp) const override;

    /** @return the underlying trace. */
    const TraceFile &trace() const { return trace_; }

  private:
    TraceFile trace_;
};

/** Parse an op-class mnemonic ("int", "fp", ...).  fatal()s on an
 *  unknown mnemonic. */
OpClass parseOpClass(const std::string &mnemonic);

/**
 * Record a generated workload into a TraceFile (for export or
 * round-trip testing).
 *
 * @param factory source of streams.
 * @param numSms  how many SMs to record.
 */
TraceFile recordTrace(const ProgramFactory &factory, int numSms);

} // namespace vsgpu

#endif // VSGPU_WORKLOADS_TRACE_FILE_HH
