#include "workloads/suite.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsgpu
{

namespace
{

using Op = OpClass;

PhaseSpec
phase()
{
    return PhaseSpec{};
}

WorkloadSpec
backprop()
{
    // Back-propagation: bursty alternation of input fetch, dense FP
    // compute, and weight write-back with barriers between layers.
    // The paper's most imbalanced workload (Fig. 17 left bar).
    WorkloadSpec s;
    s.name = "backprop";
    s.phases = {
        phase().w(Op::Load, 0.50).w(Op::FpAlu, 0.30)
               .w(Op::IntAlu, 0.20).len(150).dep(0.40, 4)
               .rowHit(0.70),
        phase().w(Op::FpAlu, 0.60).w(Op::IntAlu, 0.25)
               .w(Op::SharedMem, 0.15).len(330).dep(0.50, 3),
        phase().w(Op::Store, 0.35).w(Op::FpAlu, 0.40)
               .w(Op::IntAlu, 0.25).len(150).dep(0.45, 3)
               .rowHit(0.75).barrier(),
    };
    s.repeats = 3;
    s.l1HitRate = 0.50;
    s.smJitter = 0.55;
    s.warpJitter = 0.20;
    return s;
}

WorkloadSpec
bfs()
{
    // Breadth-first search: irregular, divergent, memory bound; low
    // issue rate and poor row locality.
    WorkloadSpec s;
    s.name = "bfs";
    s.phases = {
        phase().w(Op::Load, 0.30).w(Op::IntAlu, 0.52)
               .w(Op::Store, 0.18).len(450).dep(0.50, 2)
               .div(0.45).rowHit(0.40),
    };
    s.repeats = 4;
    s.warpsPerSm = 24;
    s.l1HitRate = 0.45;
    s.smJitter = 0.30;
    s.warpJitter = 0.25;
    return s;
}

WorkloadSpec
heartwall()
{
    // Heart-wall tracking: long homogeneous FP streams; the paper's
    // most uniform workload (Fig. 17 right bar).
    WorkloadSpec s;
    s.name = "heartwall";
    s.phases = {
        phase().w(Op::FpAlu, 0.55).w(Op::IntAlu, 0.20)
               .w(Op::Load, 0.15).w(Op::SharedMem, 0.10)
               .len(500).dep(0.40, 4).rowHit(0.85),
    };
    s.repeats = 4;
    s.l1HitRate = 0.70;
    s.smJitter = 0.02;
    s.warpJitter = 0.02;
    return s;
}

WorkloadSpec
hotspot()
{
    // Thermal stencil: neighbour loads then FP relaxation per sweep.
    WorkloadSpec s;
    s.name = "hotspot";
    s.phases = {
        phase().w(Op::Load, 0.40).w(Op::FpAlu, 0.45)
               .w(Op::IntAlu, 0.15).len(150).dep(0.45, 3)
               .rowHit(0.85),
        phase().w(Op::FpAlu, 0.70).w(Op::SharedMem, 0.20)
               .w(Op::IntAlu, 0.10).len(400).dep(0.50, 3).barrier(),
    };
    s.repeats = 3;
    s.l1HitRate = 0.65;
    s.smJitter = 0.15;
    s.warpJitter = 0.08;
    return s;
}

WorkloadSpec
pathfinder()
{
    // Dynamic programming over grid rows: short compute bursts with a
    // barrier per row; sensitive to throttling (paper Fig. 11
    // outlier).
    WorkloadSpec s;
    s.name = "pathfinder";
    s.phases = {
        phase().w(Op::SharedMem, 0.35).w(Op::IntAlu, 0.35)
               .w(Op::FpAlu, 0.15).w(Op::Load, 0.15)
               .len(200).dep(0.55, 2).barrier(),
        phase().w(Op::IntAlu, 0.50).w(Op::SharedMem, 0.30)
               .w(Op::Store, 0.20).len(150).dep(0.50, 2).barrier(),
    };
    s.repeats = 5;
    s.l1HitRate = 0.60;
    s.smJitter = 0.20;
    s.warpJitter = 0.10;
    return s;
}

WorkloadSpec
srad()
{
    // Speckle-reducing anisotropic diffusion: FP with transcendental
    // (exp) calls and neighbourhood loads.
    WorkloadSpec s;
    s.name = "srad";
    s.phases = {
        phase().w(Op::FpAlu, 0.55).w(Op::Sfu, 0.08)
               .w(Op::Load, 0.20).w(Op::Store, 0.05)
               .w(Op::IntAlu, 0.10).len(420).dep(0.45, 3)
               .rowHit(0.80),
    };
    s.repeats = 4;
    s.l1HitRate = 0.60;
    s.smJitter = 0.12;
    s.warpJitter = 0.08;
    return s;
}

WorkloadSpec
blackscholes()
{
    // Option pricing: streaming loads feeding independent FP/SFU
    // (exp, log, sqrt) work; the highest issue-rate workload.
    WorkloadSpec s;
    s.name = "blackscholes";
    s.phases = {
        phase().w(Op::FpAlu, 0.62).w(Op::Sfu, 0.12)
               .w(Op::Load, 0.14).w(Op::Store, 0.12)
               .len(480).dep(0.25, 5).rowHit(0.92),
    };
    s.repeats = 4;
    s.l1HitRate = 0.80;
    s.smJitter = 0.08;
    s.warpJitter = 0.05;
    return s;
}

WorkloadSpec
scalarprod()
{
    // Dot products over large vectors: bandwidth bound streaming.
    WorkloadSpec s;
    s.name = "scalarprod";
    s.phases = {
        phase().w(Op::Load, 0.45).w(Op::FpAlu, 0.40)
               .w(Op::IntAlu, 0.15).len(430).dep(0.30, 4)
               .rowHit(0.95),
    };
    s.repeats = 4;
    s.l1HitRate = 0.45;
    s.smJitter = 0.10;
    s.warpJitter = 0.06;
    return s;
}

WorkloadSpec
sortingnet()
{
    // Bitonic sorting network: integer compare-exchange stages in
    // shared memory with a barrier per stage.
    WorkloadSpec s;
    s.name = "sortingnet";
    s.phases = {
        phase().w(Op::IntAlu, 0.55).w(Op::SharedMem, 0.30)
               .w(Op::Load, 0.10).w(Op::Store, 0.05)
               .len(220).dep(0.50, 2).barrier(),
    };
    s.repeats = 7;
    s.l1HitRate = 0.70;
    s.smJitter = 0.10;
    s.warpJitter = 0.05;
    return s;
}

WorkloadSpec
simpleface()
{
    // Face-detection style convolution: FP kernels over image tiles.
    WorkloadSpec s;
    s.name = "simpleface";
    s.phases = {
        phase().w(Op::FpAlu, 0.50).w(Op::Load, 0.25)
               .w(Op::SharedMem, 0.15).w(Op::IntAlu, 0.10)
               .len(440).dep(0.45, 3).rowHit(0.85),
    };
    s.repeats = 4;
    s.l1HitRate = 0.75;
    s.smJitter = 0.10;
    s.warpJitter = 0.06;
    return s;
}

WorkloadSpec
fastwalsh()
{
    // Fast Walsh transform: butterfly stages in shared memory with
    // barriers; throttling-sensitive (paper Fig. 11 outlier).
    WorkloadSpec s;
    s.name = "fastwalsh";
    s.phases = {
        phase().w(Op::SharedMem, 0.40).w(Op::FpAlu, 0.35)
               .w(Op::IntAlu, 0.25).len(240).dep(0.55, 2).barrier(),
    };
    s.repeats = 6;
    s.l1HitRate = 0.70;
    s.smJitter = 0.12;
    s.warpJitter = 0.06;
    return s;
}

WorkloadSpec
simpleatomic()
{
    // Atomic-intensive reduction: serializing global atomics produce
    // bursty, imbalanced activity (paper Fig. 11/17 outlier).
    WorkloadSpec s;
    s.name = "simpleatomic";
    s.phases = {
        phase().w(Op::Atomic, 0.10).w(Op::IntAlu, 0.55)
               .w(Op::Load, 0.22).w(Op::FpAlu, 0.13)
               .len(380).dep(0.50, 2).div(0.60).rowHit(0.55),
    };
    s.repeats = 4;
    s.warpsPerSm = 16;
    s.l1HitRate = 0.40;
    s.smJitter = 0.25;
    s.warpJitter = 0.15;
    return s;
}

} // namespace

const std::vector<Benchmark> &
allBenchmarks()
{
    static const std::vector<Benchmark> all = {
        Benchmark::Backprop,     Benchmark::Bfs,
        Benchmark::Heartwall,    Benchmark::Hotspot,
        Benchmark::Pathfinder,   Benchmark::Srad,
        Benchmark::Blackscholes, Benchmark::Scalarprod,
        Benchmark::Sortingnet,   Benchmark::Simpleface,
        Benchmark::Fastwalsh,    Benchmark::Simpleatomic,
    };
    return all;
}

const char *
benchmarkName(Benchmark bench)
{
    switch (bench) {
      case Benchmark::Backprop:     return "backprop";
      case Benchmark::Bfs:          return "bfs";
      case Benchmark::Heartwall:    return "heartwall";
      case Benchmark::Hotspot:      return "hotspot";
      case Benchmark::Pathfinder:   return "pathfinder";
      case Benchmark::Srad:         return "srad";
      case Benchmark::Blackscholes: return "blackscholes";
      case Benchmark::Scalarprod:   return "scalarprod";
      case Benchmark::Sortingnet:   return "sortingnet";
      case Benchmark::Simpleface:   return "simpleface";
      case Benchmark::Fastwalsh:    return "fastwalsh";
      case Benchmark::Simpleatomic: return "simpleatomic";
    }
    return "?";
}

std::uint64_t
benchmarkSeed(Benchmark bench)
{
    switch (bench) {
      case Benchmark::Backprop:     return 0xb0071;
      case Benchmark::Bfs:          return 0xbf5;
      case Benchmark::Heartwall:    return 0x4ea27;
      case Benchmark::Hotspot:      return 0x407590;
      case Benchmark::Pathfinder:   return 0x9a24f;
      case Benchmark::Srad:         return 0x52ad;
      case Benchmark::Blackscholes: return 0xb1acc;
      case Benchmark::Scalarprod:   return 0x5ca1a;
      case Benchmark::Sortingnet:   return 0x5027;
      case Benchmark::Simpleface:   return 0xface;
      case Benchmark::Fastwalsh:    return 0xfa57;
      case Benchmark::Simpleatomic: return 0xa70a11c;
    }
    panic("unknown benchmark");
}

WorkloadSpec
workloadFor(Benchmark bench, std::uint64_t seed)
{
    WorkloadSpec s;
    switch (bench) {
      case Benchmark::Backprop:     s = backprop(); break;
      case Benchmark::Bfs:          s = bfs(); break;
      case Benchmark::Heartwall:    s = heartwall(); break;
      case Benchmark::Hotspot:      s = hotspot(); break;
      case Benchmark::Pathfinder:   s = pathfinder(); break;
      case Benchmark::Srad:         s = srad(); break;
      case Benchmark::Blackscholes: s = blackscholes(); break;
      case Benchmark::Scalarprod:   s = scalarprod(); break;
      case Benchmark::Sortingnet:   s = sortingnet(); break;
      case Benchmark::Simpleface:   s = simpleface(); break;
      case Benchmark::Fastwalsh:    s = fastwalsh(); break;
      case Benchmark::Simpleatomic: s = simpleatomic(); break;
      default: panic("unknown benchmark");
    }
    s.seed = seed;
    return s;
}

WorkloadSpec
workloadFor(Benchmark bench)
{
    return workloadFor(bench, benchmarkSeed(bench));
}

double
benchmarkL1HitRate(Benchmark bench)
{
    return workloadFor(bench).l1HitRate;
}

WorkloadSpec
uniformWorkload(int instrsPerWarp, std::uint64_t seed)
{
    WorkloadSpec s;
    s.name = "uniform";
    s.phases = {
        phase().w(Op::FpAlu, 0.6).w(Op::IntAlu, 0.4)
               .len(std::max(instrsPerWarp, 1)).dep(0.30, 4),
    };
    s.repeats = 1;
    s.l1HitRate = 0.9;
    s.smJitter = 0.0;
    s.warpJitter = 0.0;
    s.seed = seed;
    return s;
}

WorkloadSpec
resonantWorkload(int phaseInstrs, int repeats, std::uint64_t seed)
{
    panicIfNot(phaseInstrs > 0, "phaseInstrs must be positive");
    WorkloadSpec s;
    s.name = "resonant";
    s.phases = {
        // Dense independent FP: high power.
        phase().w(Op::FpAlu, 0.85).w(Op::IntAlu, 0.15)
               .len(phaseInstrs).dep(0.05, 6),
        // Serialized dependence chain: low power.
        phase().w(Op::IntAlu, 1.0).len(phaseInstrs / 4)
               .dep(1.0, 1),
    };
    s.repeats = repeats;
    s.l1HitRate = 0.95;
    s.smJitter = 0.0;
    s.warpJitter = 0.0;
    s.seed = seed;
    return s;
}

WorkloadSpec
scaledToInstrs(WorkloadSpec spec, int targetInstrs)
{
    const int loop = spec.loopLength();
    panicIfNot(loop > 0, "workload loop is empty");
    spec.repeats = std::max(1, targetInstrs / loop);
    return spec;
}

} // namespace vsgpu
