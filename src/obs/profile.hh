/**
 * @file
 * Stage-cost self-profiler for the co-simulation loop.
 *
 * The cosim loop is a serial chain per cycle (GPU cycle model →
 * power → circuit step → controller → hypervisor → bookkeeping);
 * before ROADMAP item 2 can overlap those stages, we need a measured
 * baseline of where the wall time goes.  A StageTimer takes one
 * clock reading per stage boundary on sampled cycles and accumulates
 * per-stage totals plus log2-bucket histograms of per-cycle stage
 * durations; merge() combines per-run profiles into a sweep-wide
 * aggregate (integer sums, so the merge order does not matter).
 *
 * Profiling is globally gated by an atomic flag: the disabled path
 * of a ProfileScope is a single relaxed load (pinned to ~ns by
 * BM_ProfileScopeDisabled), and the StageTimer additionally samples
 * only every strideCycles-th cycle so the enabled overhead stays
 * within the <=2% budget gated in BENCH_obs.json.
 *
 * Profile contents are wall-clock derived and therefore
 * schedule-dependent by construction; the `profile` section is only
 * attached to stats JSON when profiling was explicitly requested, so
 * determinism-gated dumps never contain it.
 */

#ifndef VSGPU_OBS_PROFILE_HH
#define VSGPU_OBS_PROFILE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace vsgpu::obs
{

/** Profiled stages; the CircuitXxx entries are sub-phases of Circuit
 *  and excluded from loop-coverage sums. */
enum ProfileStage : int
{
    StageSetup,       ///< PDS construction + model verification
    StageGpu,         ///< GPU cycle model step
    StagePower,       ///< per-SM power evaluation
    StageCircuit,     ///< MNA transient step (incl. sub-phases)
    StageControl,     ///< droop detector + controller
    StageHypervisor,  ///< DFS / power gating / hypervisor
    StageObserve,     ///< rail scan, tracing, telemetry
    StageBookkeeping, ///< energy + imbalance accounting
    StageCircuitAssemble, ///< sub: companion-model RHS build
    StageCircuitSolve,    ///< sub: triangular solve (cached LU)
    StageCircuitRefactor, ///< sub: solve that rebuilt the LU
    StageCircuitUpdate,   ///< sub: reactive-state update
    numProfileStages,
};

/** First sub-phase entry (sub-phases overlap their parent stage). */
constexpr int firstProfileSubStage = StageCircuitAssemble;

/** @return dotted display name, e.g. "circuit.solve". */
const char *profileStageName(int stage);

/** Histogram bucket count: bucket k holds durations in
 *  [2^k, 2^(k+1)) ns, with the last bucket open-ended. */
constexpr int profileHistBuckets = 24;

/** Totals for one stage: integer sums merge order-independently. */
struct StageTotals
{
    std::uint64_t ns = 0;
    std::uint64_t samples = 0;
    std::array<std::uint64_t, profileHistBuckets> hist{};

    void add(std::uint64_t durationNs);
    void merge(const StageTotals &other);

    /** Approximate percentile from the log2 histogram: midpoint of
     *  the bucket where the cumulative count crosses frac. */
    double percentileNs(double frac) const;
};

/** Accumulated profile of one run or a merged sweep. */
struct Profile
{
    std::array<StageTotals, numProfileStages> stages{};

    std::uint64_t cycles = 0;        ///< simulated cycles covered
    std::uint64_t sampledCycles = 0; ///< cycles with stage timing
    std::uint64_t loopNs = 0;        ///< wall ns in sampled cycles
    std::uint64_t wallNs = 0;        ///< wall ns of whole run()s
    std::uint64_t runs = 0;
    int strideCycles = 1; ///< sampling stride used

    void merge(const Profile &other);
};

/** Globally enable/disable profiling (relaxed atomic). */
void setProfiling(bool on);
bool profilingEnabled();

/** Sampling stride for StageTimer cycles (default 32). */
void setProfilingStride(int strideCycles);
int profilingStride();

/** Monotonic wall clock in ns for profile instrumentation. */
std::int64_t profileNowNs();

/**
 * Fence-post stage timer for the cosim loop.  On sampled cycles,
 * beginCycle() takes the base reading and each mark(stage) charges
 * the elapsed slice to that stage, so consecutive marks cover the
 * cycle gap-free and loop coverage is ~100% by construction.
 * All methods no-op when constructed with a null profile.
 */
class StageTimer
{
  public:
    StageTimer(Profile *profile, int strideCycles);

    /** @return the profile when this cycle is being sampled. */
    Profile *sampling() const { return samplingNow_ ? profile_ : nullptr; }

    void
    beginCycle()
    {
        if (!profile_)
            return;
        // Wrapping counter instead of a modulo: this runs on every
        // simulated cycle and the 64-bit divide would be the most
        // expensive instruction in the off-stride path.
        samplingNow_ = sinceSample_ == 0;
        if (++sinceSample_ >= stride_)
            sinceSample_ = 0;
        if (!samplingNow_)
            return;
        cycleStart_ = profileNowNs();
        last_ = cycleStart_;
    }

    void
    mark(int stage)
    {
        if (!samplingNow_)
            return;
        const std::int64_t now = profileNowNs();
        profile_->stages[static_cast<std::size_t>(stage)].add(
            static_cast<std::uint64_t>(now - last_));
        last_ = now;
    }

    void
    endCycle()
    {
        if (!profile_)
            return;
        ++profile_->cycles;
        if (!samplingNow_)
            return;
        ++profile_->sampledCycles;
        profile_->loopNs +=
            static_cast<std::uint64_t>(last_ - cycleStart_);
    }

  private:
    Profile *profile_;
    int stride_;
    int sinceSample_ = 0; ///< 0 exactly on sampled cycles
    bool samplingNow_ = false;
    std::int64_t cycleStart_ = 0;
    std::int64_t last_ = 0;
};

/**
 * RAII scope charging its lifetime to one stage of a profile.  The
 * disabled path (profiling off, or null profile) is one relaxed
 * atomic load plus a null store — pinned by BM_ProfileScopeDisabled.
 */
class ProfileScope
{
  public:
    ProfileScope(Profile *profile, int stage)
    {
        if (profile != nullptr && profilingEnabled()) {
            profile_ = profile;
            stage_ = stage;
            start_ = profileNowNs();
        }
    }

    ~ProfileScope()
    {
        if (profile_ != nullptr)
            profile_->stages[static_cast<std::size_t>(stage_)].add(
                static_cast<std::uint64_t>(profileNowNs() -
                                           start_));
    }

    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

  private:
    Profile *profile_ = nullptr;
    int stage_ = 0;
    std::int64_t start_ = 0;
};

/** Serialize as the `profile` stats-JSON section (schema
 *  vsgpu-profile-v1); every line is prefixed with @p indent. */
std::string writeProfileJson(const Profile &profile,
                             const std::string &indent);

/** Strict inverse of writeProfileJson (panics on drift);
 *  writeProfileJson(parseProfileJson(x), indent) == x. */
Profile parseProfileJson(const std::string &text);

/** Render the human-readable stage report: per-stage share of loop
 *  time, circuit sub-phase breakdown, serial-chain critical path,
 *  and loop/wall coverage lines. */
std::string renderProfileReport(const Profile &profile);

} // namespace vsgpu::obs

#endif // VSGPU_OBS_PROFILE_HH
