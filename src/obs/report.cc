#include "obs/report.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/profile.hh"

namespace vsgpu::obs
{

namespace
{

/** Stats worth surfacing at the top of the report, in this order. */
constexpr const char *headlineStats[] = {
    "gpu.cycles",
    "gpu.instructions",
    "gpu.min_voltage",
    "gpu.mean_voltage",
    "gpu.throttle_rate",
    "control.decisions",
    "control.triggered",
    "hypervisor.dfs_transitions",
    "hypervisor.pg_gate_requests",
    "sim.transient.timesteps",
    "circuit.sparse.refactorizations",
    "energy.pde",
};

const SnapshotEntry *
findEntry(const StatsSnapshot &stats, const std::string &name)
{
    for (const SnapshotEntry &e : stats.entries)
        if (e.name == name)
            return &e;
    return nullptr;
}

void
writeHeadline(std::ostream &os, const StatsSnapshot &stats)
{
    os << "headline statistics (" << stats.entries.size()
       << " stats in dump)\n";
    for (const char *name : headlineStats) {
        const SnapshotEntry *e = findEntry(stats, name);
        if (e == nullptr)
            continue;
        char line[160];
        if (e->kind == StatKind::Counter)
            std::snprintf(line, sizeof(line), "  %-32s %20llu %s\n",
                          e->name.c_str(),
                          static_cast<unsigned long long>(e->count),
                          e->unit.c_str());
        else
            std::snprintf(line, sizeof(line), "  %-32s %20.6g %s\n",
                          e->name.c_str(), e->value,
                          e->unit.c_str());
        os << line;
    }
}

void
writeSeriesSummary(std::ostream &os, const TimeSeriesDoc &series)
{
    os << "time series (window " << series.windowCycles
       << " cycles = ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4g", series.sampleEverySec);
    os << buf << " s simulated; " << series.runs.size() << " run"
       << (series.runs.size() == 1 ? "" : "s") << ")\n";
    for (const TimeSeriesRun &run : series.runs) {
        os << "  " << (run.label.empty() ? "(unlabeled)" : run.label)
           << ": " << run.windows() << " windows";
        if (!run.cycles.empty())
            os << ", " << run.cycles.back() << " cycles";
        os << "\n";
        for (const TimeSeriesChannel &ch : run.channels) {
            if (ch.min.empty())
                continue;
            const double lo =
                *std::min_element(ch.min.begin(), ch.min.end());
            const double hi =
                *std::max_element(ch.max.begin(), ch.max.end());
            double meanSum = 0.0;
            for (double m : ch.mean)
                meanSum += m;
            char line[200];
            std::snprintf(line, sizeof(line),
                          "    %-24s min %12.6g  mean %12.6g  max "
                          "%12.6g %s\n",
                          ch.name.c_str(), lo,
                          meanSum /
                              static_cast<double>(ch.mean.size()),
                          hi, ch.unit.c_str());
            os << line;
        }
    }
}

} // namespace

void
writeRunReport(std::ostream &os, const StatsSnapshot &stats,
               const TimeSeriesDoc *series)
{
    os << "=============== vsgpu run report ===============\n";
    if (stats.manifest.valid) {
        const Manifest &m = stats.manifest;
        os << "tool: " << m.tool << " " << m.version << " ("
           << m.build << ")\n";
        os << "subject: " << m.subject << "\n";
        os << "config fingerprint: " << m.configFingerprint
           << "  seed: " << m.seed << "  scale: " << m.scale
           << "\n";
    } else {
        os << "(no manifest in stats dump)\n";
    }
    os << "\n";
    writeHeadline(os, stats);

    if (!stats.profileJson.empty()) {
        os << "\n";
        os << renderProfileReport(
            parseProfileJson(stats.profileJson));
    }

    if (series != nullptr) {
        os << "\n";
        writeSeriesSummary(os, *series);
    }
    os << "================================================\n";
}

} // namespace vsgpu::obs
