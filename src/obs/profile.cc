#include "obs/profile.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace vsgpu::obs
{

namespace
{

std::atomic<bool> profilingOn{false};
// Default sampling stride: the stage marks are clock reads (~20 ns
// each, ~10 per sampled cycle), so sampling one cycle in 32 keeps
// the enabled profiler inside the <=2% loop-overhead budget gated in
// BENCH_obs.json while still collecting hundreds of samples per
// stage on any realistic run.
std::atomic<int> profilingStrideCycles{32};

/** @return histogram bucket for a duration: floor(log2(ns)). */
int
histBucket(std::uint64_t ns)
{
    int bucket = 0;
    while (ns > 1 && bucket < profileHistBuckets - 1) {
        ns >>= 1;
        ++bucket;
    }
    return bucket;
}

} // namespace

const char *
profileStageName(int stage)
{
    switch (stage) {
      case StageSetup:           return "setup";
      case StageGpu:             return "gpu";
      case StagePower:           return "power";
      case StageCircuit:         return "circuit";
      case StageControl:         return "control";
      case StageHypervisor:      return "hypervisor";
      case StageObserve:         return "observe";
      case StageBookkeeping:     return "bookkeeping";
      case StageCircuitAssemble: return "circuit.assemble";
      case StageCircuitSolve:    return "circuit.solve";
      case StageCircuitRefactor: return "circuit.refactor";
      case StageCircuitUpdate:   return "circuit.update";
    }
    return "?";
}

void
StageTotals::add(std::uint64_t durationNs)
{
    ns += durationNs;
    ++samples;
    ++hist[static_cast<std::size_t>(histBucket(durationNs))];
}

void
StageTotals::merge(const StageTotals &other)
{
    ns += other.ns;
    samples += other.samples;
    for (int b = 0; b < profileHistBuckets; ++b)
        hist[static_cast<std::size_t>(b)] +=
            other.hist[static_cast<std::size_t>(b)];
}

double
StageTotals::percentileNs(double frac) const
{
    if (samples == 0)
        return 0.0;
    const double target = frac * static_cast<double>(samples);
    std::uint64_t cum = 0;
    for (int b = 0; b < profileHistBuckets; ++b) {
        cum += hist[static_cast<std::size_t>(b)];
        if (static_cast<double>(cum) >= target)
            return 1.5 * std::pow(2.0, b); // bucket midpoint
    }
    return 1.5 * std::pow(2.0, profileHistBuckets - 1);
}

void
Profile::merge(const Profile &other)
{
    for (int s = 0; s < numProfileStages; ++s)
        stages[static_cast<std::size_t>(s)].merge(
            other.stages[static_cast<std::size_t>(s)]);
    cycles += other.cycles;
    sampledCycles += other.sampledCycles;
    loopNs += other.loopNs;
    wallNs += other.wallNs;
    runs += other.runs;
    strideCycles = std::max(strideCycles, other.strideCycles);
}

void
setProfiling(bool on)
{
    profilingOn.store(on, std::memory_order_relaxed);
}

bool
profilingEnabled()
{
    return profilingOn.load(std::memory_order_relaxed);
}

void
setProfilingStride(int strideCycles)
{
    profilingStrideCycles.store(std::max(1, strideCycles),
                                std::memory_order_relaxed);
}

int
profilingStride()
{
    return profilingStrideCycles.load(std::memory_order_relaxed);
}

std::int64_t
profileNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() // vsgpu-lint: nondet-ok(profiler timestamps are observability-only and never feed back into the simulation)
                   .time_since_epoch())
        .count();
}

StageTimer::StageTimer(Profile *profile, int strideCycles)
    : profile_(profile), stride_(std::max(1, strideCycles))
{
}

// ---------------- serialization ----------------

std::string
writeProfileJson(const Profile &profile, const std::string &indent)
{
    std::ostringstream os;
    os << "{\n";
    os << indent << "  \"schema\": \"vsgpu-profile-v1\",\n";
    os << indent << "  \"runs\": " << profile.runs << ",\n";
    os << indent << "  \"stride_cycles\": " << profile.strideCycles
       << ",\n";
    os << indent << "  \"cycles\": " << profile.cycles << ",\n";
    os << indent << "  \"sampled_cycles\": " << profile.sampledCycles
       << ",\n";
    os << indent << "  \"loop_ns\": " << profile.loopNs << ",\n";
    os << indent << "  \"wall_ns\": " << profile.wallNs << ",\n";
    os << indent << "  \"stages\": [\n";
    for (int s = 0; s < numProfileStages; ++s) {
        const StageTotals &t =
            profile.stages[static_cast<std::size_t>(s)];
        os << indent << "    {\"name\": \"" << profileStageName(s)
           << "\", \"ns\": " << t.ns
           << ", \"samples\": " << t.samples << ", \"hist\": [";
        for (int b = 0; b < profileHistBuckets; ++b) {
            if (b > 0)
                os << ", ";
            os << t.hist[static_cast<std::size_t>(b)];
        }
        os << "]}";
        if (s + 1 < numProfileStages)
            os << ",";
        os << "\n";
    }
    os << indent << "  ]\n";
    os << indent << "}";
    return os.str();
}

namespace
{

/** Strict parser for the profile section (stats-parser style). */
class ProfileParser
{
  public:
    explicit ProfileParser(std::string text) : text_(std::move(text))
    {}

    Profile
    parse()
    {
        Profile profile;
        expect('{');
        bool first = true;
        while (!peekIs('}')) {
            if (!first)
                expect(',');
            first = false;
            const std::string key = parseString();
            expect(':');
            if (key == "schema") {
                const std::string schema = parseString();
                if (schema != "vsgpu-profile-v1")
                    panic("profile JSON: unknown schema '", schema,
                          "'");
            } else if (key == "runs") {
                profile.runs = parseUint();
            } else if (key == "stride_cycles") {
                profile.strideCycles =
                    static_cast<int>(parseUint());
            } else if (key == "cycles") {
                profile.cycles = parseUint();
            } else if (key == "sampled_cycles") {
                profile.sampledCycles = parseUint();
            } else if (key == "loop_ns") {
                profile.loopNs = parseUint();
            } else if (key == "wall_ns") {
                profile.wallNs = parseUint();
            } else if (key == "stages") {
                parseStages(profile);
            } else {
                panic("profile JSON: unknown key '", key, "'");
            }
        }
        expect('}');
        return profile;
    }

  private:
    void
    parseStages(Profile &profile)
    {
        expect('[');
        int index = 0;
        while (!peekIs(']')) {
            if (index > 0)
                expect(',');
            if (index >= numProfileStages)
                panic("profile JSON: too many stages");
            parseStage(
                profile.stages[static_cast<std::size_t>(index)],
                index);
            ++index;
        }
        expect(']');
        if (index != numProfileStages)
            panic("profile JSON: expected ", numProfileStages,
                  " stages, got ", index);
    }

    void
    parseStage(StageTotals &totals, int index)
    {
        expect('{');
        bool first = true;
        while (!peekIs('}')) {
            if (!first)
                expect(',');
            first = false;
            const std::string key = parseString();
            expect(':');
            if (key == "name") {
                const std::string name = parseString();
                if (name != profileStageName(index))
                    panic("profile JSON: stage ", index,
                          " named '", name, "', expected '",
                          profileStageName(index), "'");
            } else if (key == "ns") {
                totals.ns = parseUint();
            } else if (key == "samples") {
                totals.samples = parseUint();
            } else if (key == "hist") {
                expect('[');
                int b = 0;
                while (!peekIs(']')) {
                    if (b > 0)
                        expect(',');
                    if (b >= profileHistBuckets)
                        panic("profile JSON: too many hist buckets");
                    totals.hist[static_cast<std::size_t>(b)] =
                        parseUint();
                    ++b;
                }
                expect(']');
                if (b != profileHistBuckets)
                    panic("profile JSON: expected ",
                          profileHistBuckets, " hist buckets");
            } else {
                panic("profile JSON: unknown stage key '", key, "'");
            }
        }
        expect('}');
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    peekIs(char c)
    {
        skipSpace();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    void
    expect(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c)
            panic("profile JSON: expected '", std::string(1, c),
                  "' at offset ", pos_);
        ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"')
            out += text_[pos_++];
        if (pos_ >= text_.size())
            panic("profile JSON: unterminated string");
        ++pos_;
        return out;
    }

    std::uint64_t
    parseUint()
    {
        skipSpace();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ == start)
            panic("profile JSON: expected integer at offset ", pos_);
        return std::stoull(text_.substr(start, pos_ - start));
    }

    std::string text_;
    std::size_t pos_ = 0;
};

std::string
formatMs(std::uint64_t ns)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(ns) * 1e-6);
    return buf;
}

std::string
formatPct(double frac)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%5.1f%%", 100.0 * frac);
    return buf;
}

} // namespace

Profile
parseProfileJson(const std::string &text)
{
    return ProfileParser(text).parse();
}

std::string
renderProfileReport(const Profile &profile)
{
    std::ostringstream os;
    os << "stage profile (" << profile.runs << " run"
       << (profile.runs == 1 ? "" : "s") << ", " << profile.cycles
       << " cycles, " << profile.sampledCycles
       << " sampled, stride " << profile.strideCycles << ")\n";
    if (profile.sampledCycles == 0) {
        os << "  no sampled cycles; run with profiling enabled\n";
        return os.str();
    }

    const double loopNs =
        std::max<double>(1.0, static_cast<double>(profile.loopNs));
    os << "  stage             time(ms)    share     p50(ns)"
          "     p99(ns)\n";
    std::uint64_t covered = 0;
    for (int s = StageGpu; s < firstProfileSubStage; ++s) {
        const StageTotals &t =
            profile.stages[static_cast<std::size_t>(s)];
        covered += t.ns;
        char line[160];
        std::snprintf(line, sizeof(line),
                      "  %-16s %9s  %s  %10.0f  %10.0f\n",
                      profileStageName(s), formatMs(t.ns).c_str(),
                      formatPct(static_cast<double>(t.ns) / loopNs)
                          .c_str(),
                      t.percentileNs(0.50), t.percentileNs(0.99));
        os << line;
    }
    const StageTotals &circuit =
        profile.stages[static_cast<std::size_t>(StageCircuit)];
    if (circuit.ns > 0) {
        const double circuitNs = std::max<double>(
            1.0, static_cast<double>(circuit.ns));
        for (int s = firstProfileSubStage; s < numProfileStages;
             ++s) {
            const StageTotals &t =
                profile.stages[static_cast<std::size_t>(s)];
            if (t.samples == 0)
                continue;
            char line[160];
            std::snprintf(
                line, sizeof(line),
                "    %-14s %9s  %s of circuit (%llu samples)\n",
                profileStageName(s), formatMs(t.ns).c_str(),
                formatPct(static_cast<double>(t.ns) / circuitNs)
                    .c_str(),
                static_cast<unsigned long long>(t.samples));
            os << line;
        }
    }

    const std::uint64_t chain =
        profile.stages[StageGpu].ns + profile.stages[StagePower].ns +
        profile.stages[StageCircuit].ns +
        profile.stages[StageControl].ns;
    os << "  serial critical path (gpu -> power -> circuit -> "
          "control): "
       << formatPct(static_cast<double>(chain) / loopNs) << " of "
          "loop time\n";
    os << "  loop coverage: named stages account for "
       << formatPct(static_cast<double>(covered) / loopNs)
       << " of sampled loop time\n";
    if (profile.wallNs > 0) {
        // Scale the sampled loop time up by the stride to estimate
        // the full loop's share of run wall time.
        const double scale =
            static_cast<double>(profile.cycles) /
            std::max<double>(
                1.0, static_cast<double>(profile.sampledCycles));
        const double loopEst =
            static_cast<double>(profile.loopNs) * scale +
            static_cast<double>(profile.stages[StageSetup].ns);
        os << "  wall attribution: loop + setup cover "
           << formatPct(std::min(
                  1.0, loopEst / static_cast<double>(profile.wallNs)))
           << " of run wall time (" << formatMs(profile.wallNs)
           << " ms total, setup "
           << formatMs(profile.stages[StageSetup].ns) << " ms)\n";
    }
    return os.str();
}

} // namespace vsgpu::obs
