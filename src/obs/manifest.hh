/**
 * @file
 * Run manifest: the provenance block stamped into every machine-
 * readable output (stats JSON, scenario summary JSON).
 *
 * A manifest answers "what exactly produced this file": tool and
 * version, build flavour (optimization + sanitizers), the electrical
 * configuration fingerprint (FNV-1a over the exact pdsSetupKey bytes
 * of every configuration the run touched), the base RNG seed, and
 * the workload scale.  It deliberately contains nothing that varies
 * across reruns or --jobs values — no timestamps, no hostnames, no
 * thread counts — so manifest-stamped outputs stay bitwise
 * reproducible.
 */

#ifndef VSGPU_OBS_MANIFEST_HH
#define VSGPU_OBS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vsgpu::obs
{

/** Provenance of one run. */
struct Manifest
{
    /** False for a default-constructed manifest; dumps omit it. */
    bool valid = false;

    std::string tool;    ///< producing binary ("vsgpu", bench name)
    std::string version; ///< project version (VSGPU_VERSION_STRING)
    std::string build;   ///< "release" / "debug" [+asan+ubsan+tsan]

    /** What ran: scenario name or CLI subcommand + benchmark. */
    std::string subject;

    /** FNV-1a 64 hex over the pdsSetupKey bytes of every electrical
     *  configuration the run used (sorted, deduplicated). */
    std::string configFingerprint;

    std::uint64_t seed = 0; ///< base RNG seed of the run
    double scale = 1.0;     ///< workload scale

    /** Ordered key/value view for embedding in other documents. */
    std::vector<std::pair<std::string, std::string>> toPairs() const;
};

/** FNV-1a 64-bit hash, rendered as 16 lowercase hex digits. */
std::string fnv1a64Hex(std::string_view bytes);

/** Fingerprint of a set of configuration keys (sorted, deduped). */
std::string configFingerprint(std::vector<std::string> keys);

/** @return a manifest pre-filled with tool/version/build. */
Manifest makeManifest(std::string tool);

/** Serialize as a JSON object (no trailing newline). */
void writeManifestJson(const Manifest &manifest, std::ostream &os,
                       const std::string &indent);

} // namespace vsgpu::obs

#endif // VSGPU_OBS_MANIFEST_HH
