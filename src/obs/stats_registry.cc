#include "obs/stats_registry.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace vsgpu::obs
{

namespace
{

/** Shortest round-trip-exact representation of a double. */
std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    for (int prec = 1; prec < 17; ++prec) {
        char shorter[40];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(shorter, "%lf", &back);
        if (back == v)
            return shorter;
    }
    return buf;
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

const char *
statKindName(StatKind kind)
{
    switch (kind) {
      case StatKind::Scalar:       return "scalar";
      case StatKind::Counter:      return "counter";
      case StatKind::Distribution: return "distribution";
      case StatKind::Formula:      return "formula";
    }
    return "?";
}

void
DistributionStat::add(double x)
{
    if (stats_.count() == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    stats_.add(x);
}

// ---------------- StatsGroup ----------------

std::string
StatsGroup::qualify(const std::string &name) const
{
    return prefix_.empty() ? name : prefix_ + "." + name;
}

ScalarStat &
StatsGroup::scalar(const std::string &name, const std::string &unit,
                   const std::string &desc)
{
    return registry_.addScalar(qualify(name), unit, desc);
}

CounterStat &
StatsGroup::counter(const std::string &name, const std::string &unit,
                    const std::string &desc, bool scheduleDependent)
{
    return registry_.addCounter(qualify(name), unit, desc,
                                scheduleDependent);
}

DistributionStat &
StatsGroup::distribution(const std::string &name,
                         const std::string &unit,
                         const std::string &desc)
{
    return registry_.addDistribution(qualify(name), unit, desc);
}

FormulaStat &
StatsGroup::formula(const std::string &name, const std::string &unit,
                    const std::string &desc,
                    std::function<double()> fn)
{
    return registry_.addFormula(qualify(name), unit, desc,
                                std::move(fn));
}

StatsGroup
StatsGroup::group(const std::string &name) const
{
    return StatsGroup(registry_, qualify(name));
}

// ---------------- StatsRegistry ----------------

void
StatsRegistry::checkUnique(const std::string &name) const
{
    const auto clash = [&name](const auto &container) {
        return std::any_of(container.begin(), container.end(),
                           [&name](const auto &stat) {
                               return stat.info().name == name;
                           });
    };
    panicIfNot(!clash(scalars_) && !clash(counters_) &&
                   !clash(distributions_) && !clash(formulas_),
               "duplicate stat registration: ", name);
}

ScalarStat &
StatsRegistry::addScalar(const std::string &name,
                         const std::string &unit,
                         const std::string &desc)
{
    checkUnique(name);
    scalars_.emplace_back(StatInfo{name, unit, desc, false});
    return scalars_.back();
}

CounterStat &
StatsRegistry::addCounter(const std::string &name,
                          const std::string &unit,
                          const std::string &desc,
                          bool scheduleDependent)
{
    checkUnique(name);
    counters_.emplace_back(
        StatInfo{name, unit, desc, scheduleDependent});
    return counters_.back();
}

DistributionStat &
StatsRegistry::addDistribution(const std::string &name,
                               const std::string &unit,
                               const std::string &desc)
{
    checkUnique(name);
    distributions_.emplace_back(StatInfo{name, unit, desc, false});
    return distributions_.back();
}

FormulaStat &
StatsRegistry::addFormula(const std::string &name,
                          const std::string &unit,
                          const std::string &desc,
                          std::function<double()> fn)
{
    checkUnique(name);
    formulas_.emplace_back(StatInfo{name, unit, desc, false},
                           std::move(fn));
    return formulas_.back();
}

std::size_t
StatsRegistry::size() const
{
    return scalars_.size() + counters_.size() +
           distributions_.size() + formulas_.size();
}

StatsSnapshot
StatsRegistry::snapshot(bool includeScheduleDependent) const
{
    StatsSnapshot out;
    out.manifest = manifest_;
    out.profileJson = profileJson_;
    const auto keep = [&](const StatInfo &info) {
        return includeScheduleDependent || !info.scheduleDependent;
    };
    for (const ScalarStat &s : scalars_) {
        if (!keep(s.info()))
            continue;
        SnapshotEntry e;
        e.kind = StatKind::Scalar;
        e.name = s.info().name;
        e.unit = s.info().unit;
        e.desc = s.info().desc;
        e.value = s.value();
        out.entries.push_back(std::move(e));
    }
    for (const CounterStat &c : counters_) {
        if (!keep(c.info()))
            continue;
        SnapshotEntry e;
        e.kind = StatKind::Counter;
        e.name = c.info().name;
        e.unit = c.info().unit;
        e.desc = c.info().desc;
        e.count = c.count();
        out.entries.push_back(std::move(e));
    }
    for (const DistributionStat &d : distributions_) {
        if (!keep(d.info()))
            continue;
        SnapshotEntry e;
        e.kind = StatKind::Distribution;
        e.name = d.info().name;
        e.unit = d.info().unit;
        e.desc = d.info().desc;
        e.count = d.count();
        e.mean = d.mean();
        e.stddev = d.stddev();
        e.min = d.min();
        e.max = d.max();
        out.entries.push_back(std::move(e));
    }
    for (const FormulaStat &f : formulas_) {
        if (!keep(f.info()))
            continue;
        SnapshotEntry e;
        e.kind = StatKind::Formula;
        e.name = f.info().name;
        e.unit = f.info().unit;
        e.desc = f.info().desc;
        e.value = f.value();
        out.entries.push_back(std::move(e));
    }
    std::sort(out.entries.begin(), out.entries.end(),
              [](const SnapshotEntry &a, const SnapshotEntry &b) {
                  return a.name < b.name;
              });
    return out;
}

const SnapshotEntry *
StatsRegistry::find(const std::string &name) const
{
    cachedSnapshot_ = snapshot(true);
    for (const SnapshotEntry &e : cachedSnapshot_.entries)
        if (e.name == name)
            return &e;
    return nullptr;
}

void
StatsRegistry::dumpText(std::ostream &os,
                        bool includeScheduleDependent) const
{
    writeStatsText(snapshot(includeScheduleDependent), os);
}

void
StatsRegistry::dumpJson(std::ostream &os,
                        bool includeScheduleDependent) const
{
    writeStatsJson(snapshot(includeScheduleDependent), os);
}

// ---------------- serialization ----------------

void
writeStatsText(const StatsSnapshot &snapshot, std::ostream &os)
{
    os << "---------- Begin Simulation Statistics ----------\n";
    const auto line = [&os](const std::string &name,
                            const std::string &value,
                            const std::string &desc,
                            const std::string &unit) {
        os << std::left << std::setw(44) << name << " "
           << std::right << std::setw(16) << value << "  # " << desc;
        if (!unit.empty())
            os << " (" << unit << ")";
        os << "\n";
    };
    for (const SnapshotEntry &e : snapshot.entries) {
        switch (e.kind) {
          case StatKind::Scalar:
          case StatKind::Formula:
            line(e.name, formatDouble(e.value), e.desc, e.unit);
            break;
          case StatKind::Counter:
            line(e.name, std::to_string(e.count), e.desc, e.unit);
            break;
          case StatKind::Distribution:
            line(e.name + ".count", std::to_string(e.count), e.desc,
                 "samples");
            line(e.name + ".mean", formatDouble(e.mean), e.desc,
                 e.unit);
            line(e.name + ".stddev", formatDouble(e.stddev), e.desc,
                 e.unit);
            line(e.name + ".min", formatDouble(e.min), e.desc,
                 e.unit);
            line(e.name + ".max", formatDouble(e.max), e.desc,
                 e.unit);
            break;
        }
    }
    os << "---------- End Simulation Statistics   ----------\n";
}

void
writeStatsJson(const StatsSnapshot &snapshot, std::ostream &os)
{
    os << "{\n";
    if (snapshot.manifest.valid) {
        os << "  \"manifest\": ";
        writeManifestJson(snapshot.manifest, os, "  ");
        os << ",\n";
    }
    if (!snapshot.profileJson.empty())
        os << "  \"profile\": " << snapshot.profileJson << ",\n";
    os << "  \"stats\": [";
    for (std::size_t i = 0; i < snapshot.entries.size(); ++i) {
        const SnapshotEntry &e = snapshot.entries[i];
        os << (i ? ",\n" : "\n") << "    {\"name\": " << quote(e.name)
           << ", \"kind\": \"" << statKindName(e.kind) << "\""
           << ", \"unit\": " << quote(e.unit)
           << ", \"desc\": " << quote(e.desc);
        switch (e.kind) {
          case StatKind::Scalar:
          case StatKind::Formula:
            os << ", \"value\": " << formatDouble(e.value);
            break;
          case StatKind::Counter:
            os << ", \"value\": " << e.count;
            break;
          case StatKind::Distribution:
            os << ", \"count\": " << e.count
               << ", \"mean\": " << formatDouble(e.mean)
               << ", \"stddev\": " << formatDouble(e.stddev)
               << ", \"min\": " << formatDouble(e.min)
               << ", \"max\": " << formatDouble(e.max);
            break;
        }
        os << "}";
    }
    os << "\n  ]\n}\n";
}

namespace
{

/** Minimal parser for the JSON subset writeStatsJson emits. */
class StatsParser
{
  public:
    explicit StatsParser(std::istream &is)
    {
        std::ostringstream buf;
        buf << is.rdbuf();
        text_ = buf.str();
    }

    StatsSnapshot
    parse()
    {
        StatsSnapshot out;
        expect('{');
        bool first = true;
        while (peek() != '}') {
            if (!first)
                expect(',');
            first = false;
            const std::string key = parseString();
            expect(':');
            if (key == "manifest") {
                parseManifest(out.manifest);
            } else if (key == "profile") {
                out.profileJson = parseRawObject();
            } else if (key == "stats") {
                parseEntries(out.entries);
            } else {
                panic("stats JSON: unknown key '", key, "'");
            }
        }
        expect('}');
        return out;
    }

  private:
    void
    parseManifest(Manifest &m)
    {
        m.valid = true;
        expect('{');
        bool first = true;
        while (peek() != '}') {
            if (!first)
                expect(',');
            first = false;
            const std::string key = parseString();
            expect(':');
            const std::string value = parseString();
            if (key == "tool")
                m.tool = value;
            else if (key == "version")
                m.version = value;
            else if (key == "build")
                m.build = value;
            else if (key == "subject")
                m.subject = value;
            else if (key == "config_fingerprint")
                m.configFingerprint = value;
            else if (key == "seed")
                m.seed = std::stoull(value);
            else if (key == "scale")
                m.scale = std::stod(value);
            else
                panic("stats JSON: unknown manifest key '", key, "'");
        }
        expect('}');
    }

    void
    parseEntries(std::vector<SnapshotEntry> &entries)
    {
        expect('[');
        while (peek() != ']') {
            if (!entries.empty())
                expect(',');
            SnapshotEntry e;
            expect('{');
            bool first = true;
            bool isCounter = false;
            double value = 0.0;
            while (peek() != '}') {
                if (!first)
                    expect(',');
                first = false;
                const std::string key = parseString();
                expect(':');
                if (key == "name") {
                    e.name = parseString();
                } else if (key == "kind") {
                    const std::string kind = parseString();
                    bool known = false;
                    for (StatKind k :
                         {StatKind::Scalar, StatKind::Counter,
                          StatKind::Distribution,
                          StatKind::Formula}) {
                        if (kind == statKindName(k)) {
                            e.kind = k;
                            known = true;
                        }
                    }
                    panicIfNot(known, "stats JSON: unknown kind '",
                               kind, "'");
                    isCounter = e.kind == StatKind::Counter;
                } else if (key == "unit") {
                    e.unit = parseString();
                } else if (key == "desc") {
                    e.desc = parseString();
                } else if (key == "value") {
                    value = parseNumber();
                } else if (key == "count") {
                    e.count =
                        static_cast<std::uint64_t>(parseNumber());
                } else if (key == "mean") {
                    e.mean = parseNumber();
                } else if (key == "stddev") {
                    e.stddev = parseNumber();
                } else if (key == "min") {
                    e.min = parseNumber();
                } else if (key == "max") {
                    e.max = parseNumber();
                } else {
                    panic("stats JSON: unknown entry key '", key,
                          "'");
                }
            }
            expect('}');
            if (isCounter)
                e.count = static_cast<std::uint64_t>(value);
            else
                e.value = value;
            entries.push_back(std::move(e));
        }
        expect(']');
    }

    /**
     * Capture one balanced JSON object verbatim (the `profile`
     * section is owned by obs/profile.hh; the stats layer stores and
     * re-emits it byte-exactly rather than interpreting it).
     */
    std::string
    parseRawObject()
    {
        panicIfNot(peek() == '{',
                   "stats JSON: expected object at byte ", pos_);
        const std::size_t start = pos_;
        int depth = 0;
        bool inString = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (inString) {
                if (c == '\\')
                    ++pos_;
                else if (c == '"')
                    inString = false;
            } else if (c == '"') {
                inString = true;
            } else if (c == '{') {
                ++depth;
            } else if (c == '}') {
                --depth;
                if (depth == 0) {
                    ++pos_;
                    return text_.substr(start, pos_ - start);
                }
            }
            ++pos_;
        }
        panic("stats JSON: unterminated object at byte ", start);
        return {};
    }

    char
    peek()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        panicIfNot(pos_ < text_.size(),
                   "stats JSON: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        panicIfNot(peek() == c, "stats JSON: expected '", c,
                   "' at byte ", pos_);
        ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                ++pos_;
            panicIfNot(pos_ < text_.size(),
                       "stats JSON: unterminated string");
            out += text_[pos_++];
        }
        panicIfNot(pos_ < text_.size(),
                   "stats JSON: unterminated string");
        ++pos_;
        return out;
    }

    double
    parseNumber()
    {
        peek();
        std::size_t used = 0;
        const double v = std::stod(text_.substr(pos_), &used);
        panicIfNot(used != 0, "stats JSON: expected number at byte ",
                   pos_);
        pos_ += used;
        return v;
    }

    std::string text_;
    std::size_t pos_ = 0;
};

} // namespace

StatsSnapshot
readStatsJson(std::istream &is)
{
    StatsParser parser(is);
    return parser.parse();
}

} // namespace vsgpu::obs
