#include "obs/flight_recorder.hh"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>

#include "common/logging.hh"

namespace vsgpu::obs
{

namespace
{

std::atomic<bool> flightEnabled{true};

std::mutex dumpPathMutex;
std::string dumpPath; // guarded by dumpPathMutex

std::string
dumpPathCopy()
{
    std::lock_guard<std::mutex> lock(dumpPathMutex);
    return dumpPath;
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

FlightRecorder &
FlightRecorder::instance()
{
    thread_local FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::beginRun(std::string subject, std::string fingerprint)
{
    head_ = 0;
    recorded_ = 0;
    subject_ = std::move(subject);
    fingerprint_ = std::move(fingerprint);
}

std::size_t
FlightRecorder::size() const
{
    return recorded_ < capacity()
               ? static_cast<std::size_t>(recorded_)
               : capacity();
}

std::vector<FlightRecord>
FlightRecorder::records() const
{
    std::vector<FlightRecord> out;
    const std::size_t held = size();
    out.reserve(held);
    const std::size_t start =
        recorded_ < capacity() ? 0 : head_;
    for (std::size_t i = 0; i < held; ++i)
        out.push_back(ring_[(start + i) % capacity()]);
    return out;
}

void
FlightRecorder::writeText(std::ostream &os) const
{
    os << "==== vsgpu flight recorder ====\n";
    os << "subject: "
       << (subject_.empty() ? "(unknown)" : subject_) << "\n";
    os << "config fingerprint: "
       << (fingerprint_.empty() ? "(none)" : fingerprint_) << "\n";
    os << "records: " << size() << " held of " << recorded_
       << " recorded (capacity " << capacity() << ")\n";
    os << "      cycle       time(s)          tag"
          "             a             b\n";
    for (const FlightRecord &r : records()) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%11llu  %12.6e  %11s  %12.6g  %12.6g\n",
                      static_cast<unsigned long long>(r.cycle),
                      r.timeSec, r.tag, r.a, r.b);
        os << line;
    }
    os << "==== end flight recorder ====\n";
}

void
FlightRecorder::writeJson(std::ostream &os) const
{
    os << "{\n";
    os << "  \"schema\": \"vsgpu-flight-v1\",\n";
    os << "  \"subject\": " << quote(subject_) << ",\n";
    os << "  \"config_fingerprint\": " << quote(fingerprint_)
       << ",\n";
    os << "  \"capacity\": " << capacity() << ",\n";
    os << "  \"recorded\": " << recorded_ << ",\n";
    os << "  \"records\": [";
    bool first = true;
    for (const FlightRecord &r : records()) {
        if (!first)
            os << ",";
        first = false;
        char line[200];
        std::snprintf(line, sizeof(line),
                      "\n    {\"cycle\": %llu, \"time_sec\": %.17g, "
                      "\"tag\": \"%s\", \"a\": %.17g, \"b\": %.17g}",
                      static_cast<unsigned long long>(r.cycle),
                      r.timeSec, r.tag, r.a, r.b);
        os << line;
    }
    if (!first)
        os << "\n  ";
    os << "]\n";
    os << "}\n";
}

bool
flightRecorderEnabled()
{
    return flightEnabled.load(std::memory_order_relaxed);
}

void
setFlightRecorderEnabled(bool on)
{
    flightEnabled.store(on, std::memory_order_relaxed);
}

void
setFlightDumpPath(std::string path)
{
    std::lock_guard<std::mutex> lock(dumpPathMutex);
    dumpPath = std::move(path);
}

namespace
{

void
flightCrashDump(LogLevel, const std::string &)
{
    // Runs on the crashing thread, so instance() is the ring that
    // recorded the dying run.
    const FlightRecorder &recorder = FlightRecorder::instance();
    if (recorder.subject().empty() && recorder.size() == 0)
        return;
    // The dump must reach the terminal even when a test or frontend
    // replaced the log sink: the process is about to terminate and
    // this is the last diagnostic it will ever produce.
    recorder.writeText(std::cerr); // vsgpu-lint: iostream-ok(crash-path dump bypasses the pluggable log sink on purpose)
    const std::string path = dumpPathCopy();
    if (!path.empty()) {
        std::ofstream out(path);
        if (out)
            recorder.writeJson(out);
    }
}

} // namespace

void
installFlightRecorderCrashDump()
{
    setCrashHook(&flightCrashDump);
}

} // namespace vsgpu::obs
