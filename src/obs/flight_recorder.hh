/**
 * @file
 * Crash flight recorder: a bounded ring of recent per-cycle samples
 * and events that is dumped when a run dies.
 *
 * The co-simulator records a tiny POD sample (rail min/max plus
 * occasional events) into a thread-local ring every cycle; when a
 * solver failure, NaN/Inf guard trip, or the control-model verify
 * gate aborts the run via fatal()/panic(), the crash hook installed
 * in common/logging dumps the most recent capacity() records —
 * together with the run subject and its manifest config fingerprint
 * — to stderr, and optionally as JSON to a file registered with
 * setFlightDumpPath().  That turns "the sweep died three hours in"
 * into an inspectable tail of simulated history.
 *
 * The recorder is thread-local (one ring per worker thread, matching
 * the one-run-per-task execution model) and always on by default:
 * recording is a handful of stores per cycle and nothing is written
 * anywhere unless the process is already dying.
 */

#ifndef VSGPU_OBS_FLIGHT_RECORDER_HH
#define VSGPU_OBS_FLIGHT_RECORDER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace vsgpu::obs
{

/** One flight-recorder entry; POD so recording is a few stores. */
struct FlightRecord
{
    double timeSec = 0.0;      ///< simulated time
    std::uint64_t cycle = 0;   ///< simulated cycle
    const char *tag = "";      ///< static event tag, e.g. "rail"
    double a = 0.0;            ///< tag-specific value
    double b = 0.0;            ///< tag-specific value
};

/** Per-thread bounded ring of recent records. */
class FlightRecorder
{
  public:
    static constexpr std::size_t capacity() { return 4096; }

    /** @return this thread's recorder. */
    static FlightRecorder &instance();

    /** Reset the ring and attach run identity (subject + manifest
     *  config fingerprint) for the dump banner. */
    void beginRun(std::string subject, std::string fingerprint);

    void
    record(const char *tag, double timeSec, std::uint64_t cycle,
           double a, double b)
    {
        FlightRecord &r = ring_[head_];
        r.timeSec = timeSec;
        r.cycle = cycle;
        r.tag = tag;
        r.a = a;
        r.b = b;
        head_ = (head_ + 1) % capacity();
        ++recorded_;
    }

    /** Records currently held (<= capacity()). */
    std::size_t size() const;

    /** Total records ever written this run. */
    std::uint64_t recorded() const { return recorded_; }

    /** Held records in chronological order. */
    std::vector<FlightRecord> records() const;

    const std::string &subject() const { return subject_; }
    const std::string &fingerprint() const { return fingerprint_; }

    /** Human-readable dump (banner + one line per record). */
    void writeText(std::ostream &os) const;

    /** JSON dump (schema vsgpu-flight-v1). */
    void writeJson(std::ostream &os) const;

  private:
    std::array<FlightRecord, 4096> ring_{};
    std::size_t head_ = 0;
    std::uint64_t recorded_ = 0;
    std::string subject_;
    std::string fingerprint_;
};

/** Global recording gate (relaxed atomic; default on). */
bool flightRecorderEnabled();
void setFlightRecorderEnabled(bool on);

/** Register a path that receives the JSON dump on crash (empty
 *  clears it).  Process-wide. */
void setFlightDumpPath(std::string path);

/**
 * Install the crash hook that dumps this thread's recorder on
 * fatal()/panic().  Idempotent; the co-simulator calls it at run
 * start.  The dump is skipped entirely when the recorder has no run
 * context and no records (e.g. CLI argument errors).
 */
void installFlightRecorderCrashDump();

} // namespace vsgpu::obs

#endif // VSGPU_OBS_FLIGHT_RECORDER_HH
