#include "obs/timeseries.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.hh"
#include "common/logging.hh"

namespace vsgpu::obs
{

namespace
{

/** Shortest round-trip-exact representation of a double. */
std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    for (int prec = 1; prec < 17; ++prec) {
        char shorter[40];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(shorter, "%lf", &back);
        if (back == v)
            return shorter;
    }
    return buf;
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

void
writeDoubleArray(std::ostream &os, const std::vector<double> &v)
{
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << formatDouble(v[i]);
    }
    os << "]";
}

void
writeCycleArray(std::ostream &os, const std::vector<std::uint64_t> &v)
{
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << v[i];
    }
    os << "]";
}

/** Exact p99 (nearest-rank) of the samples.  The caller-owned
 *  scratch buffer absorbs the nth_element reorder so closing a
 *  window allocates nothing once the buffers are warm. */
double
percentile99(const std::vector<double> &samples,
             std::vector<double> &scratch)
{
    if (samples.empty())
        return 0.0;
    scratch.assign(samples.begin(), samples.end());
    const std::size_t rank =
        (scratch.size() * 99 + 99) / 100; // ceil(0.99 * n)
    const std::size_t idx = std::min(rank, scratch.size()) - 1;
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(idx),
                     scratch.end());
    return scratch[idx];
}

} // namespace

std::uint64_t
timeSeriesWindowCycles(double dtSec, double sampleEverySec)
{
    if (!(dtSec > 0.0) || !(sampleEverySec > 0.0))
        return 1;
    const double cycles = sampleEverySec / dtSec;
    const auto rounded =
        static_cast<std::uint64_t>(std::llround(cycles));
    return std::max<std::uint64_t>(1, rounded);
}

// ---------------- TimeSeriesRecorder ----------------

TimeSeriesRecorder::TimeSeriesRecorder(double dtSec,
                                       double sampleEverySec)
    : dtSec_(dtSec), sampleEverySec_(sampleEverySec),
      windowCycles_(timeSeriesWindowCycles(dtSec, sampleEverySec)),
      run_(std::make_shared<TimeSeriesRun>())
{
    // Strided channels target ~256 records per window with a floor
    // of 32 cycles between records: short windows (a few hundred
    // cycles) would otherwise record every cycle and the sampling
    // cost would scale with channel count instead of staying inside
    // the BENCH_obs.json overhead budget.  The first cycle of every
    // window is always on-stride, so even a 1-cycle window gets a
    // record.
    sampleStride_ =
        std::max<std::uint64_t>(32, windowCycles_ / 256);
}

int
TimeSeriesRecorder::addChannel(std::string name, std::string unit,
                               std::string desc,
                               bool scheduleDependent)
{
    VSGPU_REQUIRES(cycle_ == 0,
                   "time-series channels must be registered before "
                   "the first cycle");
    TimeSeriesChannel ch;
    ch.name = std::move(name);
    ch.unit = std::move(unit);
    ch.desc = std::move(desc);
    ch.scheduleDependent = scheduleDependent;
    run_->channels.push_back(std::move(ch));
    accums_.emplace_back();
    return static_cast<int>(run_->channels.size()) - 1;
}

void
TimeSeriesRecorder::pushSample(Accum &a, double value)
{
    // Deterministic doubling-stride decimation: the p99 buffer
    // covers the whole window at progressively coarser resolution
    // instead of only its first p99SampleCap records.  The keep == 1
    // short-circuit skips the divide in the common case of a window
    // that never overflows the sample cap.
    ++a.sampleCount;
    if (a.keep != 1 && (a.sampleCount - 1) % a.keep != 0)
        return;
    if (a.samples.size() >= p99SampleCap) {
        std::size_t w = 0;
        for (std::size_t r = 0; r < a.samples.size(); r += 2)
            a.samples[w++] = a.samples[r];
        a.samples.resize(w);
        a.keep *= 2;
        if ((a.sampleCount - 1) % a.keep != 0)
            return;
    }
    a.samples.push_back(value);
}

void
TimeSeriesRecorder::record(int channel, double value)
{
    VSGPU_REQUIRES(channel >= 0 &&
                       static_cast<std::size_t>(channel) <
                           accums_.size(),
                   "time-series channel id out of range");
    Accum &a = accums_[static_cast<std::size_t>(channel)];
    if (a.count == 0) {
        a.min = value;
        a.max = value;
    } else {
        a.min = std::min(a.min, value);
        a.max = std::max(a.max, value);
    }
    a.sum += value;
    ++a.count;
    pushSample(a, value);
}

void
TimeSeriesRecorder::recordDense(int channel, double value)
{
    VSGPU_REQUIRES(channel >= 0 &&
                       static_cast<std::size_t>(channel) <
                           accums_.size(),
                   "time-series channel id out of range");
    Accum &a = accums_[static_cast<std::size_t>(channel)];
    if (a.count == 0) {
        a.min = value;
        a.max = value;
    } else {
        a.min = std::min(a.min, value);
        a.max = std::max(a.max, value);
    }
    a.sum += value;
    ++a.count;
    // The p99 estimate takes the on-stride subsample only; the
    // aggregates above stay exact over every cycle.
    if (sampleThisCycle())
        pushSample(a, value);
}

void
TimeSeriesRecorder::endCycle()
{
    ++cycle_;
    ++cycleInWindow_;
    if (++cyclesSinceStride_ >= sampleStride_)
        cyclesSinceStride_ = 0;
    if (cycleInWindow_ >= windowCycles_)
        closeWindow();
}

void
TimeSeriesRecorder::closeWindow()
{
    run_->timeSec.push_back(static_cast<double>(cycle_) * dtSec_);
    run_->cycles.push_back(cycle_);
    for (std::size_t c = 0; c < accums_.size(); ++c) {
        Accum &a = accums_[c];
        TimeSeriesChannel &ch = run_->channels[c];
        if (a.count == 0) {
            ch.min.push_back(0.0);
            ch.max.push_back(0.0);
            ch.mean.push_back(0.0);
            ch.p99.push_back(0.0);
        } else {
            ch.min.push_back(a.min);
            ch.max.push_back(a.max);
            ch.mean.push_back(a.sum /
                              static_cast<double>(a.count));
            ch.p99.push_back(percentile99(a.samples, p99Scratch_));
        }
        // Field-wise reset keeps the sample buffer's capacity so the
        // next window records without re-allocating.
        a.min = 0.0;
        a.max = 0.0;
        a.sum = 0.0;
        a.count = 0;
        a.sampleCount = 0;
        a.keep = 1;
        a.samples.clear();
    }
    cycleInWindow_ = 0;
    // The first cycle of every window is on-stride by contract.
    cyclesSinceStride_ = 0;
}

std::shared_ptr<TimeSeriesRun>
TimeSeriesRecorder::finish()
{
    if (cycleInWindow_ > 0)
        closeWindow();
    return run_;
}

// ---------------- serialization ----------------

namespace
{

void
writeChannel(std::ostream &os, const TimeSeriesChannel &ch,
             const char *indent)
{
    os << indent << "{\n";
    os << indent << "  \"name\": " << quote(ch.name) << ",\n";
    os << indent << "  \"unit\": " << quote(ch.unit) << ",\n";
    os << indent << "  \"desc\": " << quote(ch.desc) << ",\n";
    if (ch.scheduleDependent)
        os << indent << "  \"schedule_dependent\": true,\n";
    os << indent << "  \"min\": ";
    writeDoubleArray(os, ch.min);
    os << ",\n";
    os << indent << "  \"max\": ";
    writeDoubleArray(os, ch.max);
    os << ",\n";
    os << indent << "  \"mean\": ";
    writeDoubleArray(os, ch.mean);
    os << ",\n";
    os << indent << "  \"p99\": ";
    writeDoubleArray(os, ch.p99);
    os << "\n";
    os << indent << "}";
}

} // namespace

void
writeTimeSeriesJson(const TimeSeriesDoc &doc, std::ostream &os,
                    bool includeScheduleDependent)
{
    std::vector<const TimeSeriesRun *> runs;
    runs.reserve(doc.runs.size());
    for (const TimeSeriesRun &run : doc.runs)
        runs.push_back(&run);
    std::sort(runs.begin(), runs.end(),
              [](const TimeSeriesRun *a, const TimeSeriesRun *b) {
                  return a->label < b->label;
              });

    os << "{\n";
    os << "  \"schema\": \"vsgpu-timeseries-v1\",\n";
    os << "  \"sample_every_sec\": "
       << formatDouble(doc.sampleEverySec) << ",\n";
    os << "  \"dt_sec\": " << formatDouble(doc.dtSec) << ",\n";
    os << "  \"window_cycles\": " << doc.windowCycles << ",\n";
    os << "  \"runs\": [";
    bool firstRun = true;
    for (const TimeSeriesRun *run : runs) {
        if (!firstRun)
            os << ",";
        firstRun = false;
        os << "\n    {\n";
        os << "      \"label\": " << quote(run->label) << ",\n";
        os << "      \"time_sec\": ";
        writeDoubleArray(os, run->timeSec);
        os << ",\n";
        os << "      \"cycles\": ";
        writeCycleArray(os, run->cycles);
        os << ",\n";
        os << "      \"channels\": [";
        bool firstCh = true;
        for (const TimeSeriesChannel &ch : run->channels) {
            if (ch.scheduleDependent && !includeScheduleDependent)
                continue;
            if (!firstCh)
                os << ",";
            firstCh = false;
            os << "\n";
            writeChannel(os, ch, "        ");
        }
        if (!firstCh)
            os << "\n      ";
        os << "]\n";
        os << "    }";
    }
    if (!firstRun)
        os << "\n  ";
    os << "]\n";
    os << "}\n";
}

void
writeTimeSeriesCsv(const TimeSeriesDoc &doc, std::ostream &os,
                   bool includeScheduleDependent)
{
    std::vector<const TimeSeriesRun *> runs;
    runs.reserve(doc.runs.size());
    for (const TimeSeriesRun &run : doc.runs)
        runs.push_back(&run);
    std::sort(runs.begin(), runs.end(),
              [](const TimeSeriesRun *a, const TimeSeriesRun *b) {
                  return a->label < b->label;
              });

    // Header comes from the first run; all runs of a document share
    // the channel layout because they come from the same cosim code.
    os << "label,window,time_sec,cycles";
    if (!runs.empty()) {
        for (const TimeSeriesChannel &ch : runs.front()->channels) {
            if (ch.scheduleDependent && !includeScheduleDependent)
                continue;
            os << "," << ch.name << ".min"
               << "," << ch.name << ".max"
               << "," << ch.name << ".mean"
               << "," << ch.name << ".p99";
        }
    }
    os << "\n";
    for (const TimeSeriesRun *run : runs) {
        for (std::size_t w = 0; w < run->windows(); ++w) {
            os << run->label << "," << w << ","
               << formatDouble(run->timeSec[w]) << ","
               << run->cycles[w];
            for (const TimeSeriesChannel &ch : run->channels) {
                if (ch.scheduleDependent &&
                    !includeScheduleDependent)
                    continue;
                os << "," << formatDouble(ch.min[w]) << ","
                   << formatDouble(ch.max[w]) << ","
                   << formatDouble(ch.mean[w]) << ","
                   << formatDouble(ch.p99[w]);
            }
            os << "\n";
        }
    }
}

namespace
{

/**
 * Strict recursive-descent parser for the time-series dump, in the
 * style of the stats-registry parser: panics on any malformed or
 * unknown construct so schema drift fails loudly.
 */
class TimeSeriesParser
{
  public:
    explicit TimeSeriesParser(std::string text)
        : text_(std::move(text))
    {}

    TimeSeriesDoc
    parse()
    {
        TimeSeriesDoc doc;
        expect('{');
        bool first = true;
        while (!peekIs('}')) {
            if (!first)
                expect(',');
            first = false;
            const std::string key = parseString();
            expect(':');
            if (key == "schema") {
                const std::string schema = parseString();
                if (schema != "vsgpu-timeseries-v1")
                    panic("timeseries JSON: unknown schema '",
                          schema, "'");
            } else if (key == "sample_every_sec") {
                doc.sampleEverySec = parseNumber();
            } else if (key == "dt_sec") {
                doc.dtSec = parseNumber();
            } else if (key == "window_cycles") {
                doc.windowCycles =
                    static_cast<std::uint64_t>(parseNumber());
            } else if (key == "runs") {
                parseRuns(doc);
            } else {
                panic("timeseries JSON: unknown key '", key, "'");
            }
        }
        expect('}');
        return doc;
    }

  private:
    void
    parseRuns(TimeSeriesDoc &doc)
    {
        expect('[');
        while (!peekIs(']')) {
            if (!doc.runs.empty())
                expect(',');
            doc.runs.push_back(parseRun());
        }
        expect(']');
    }

    TimeSeriesRun
    parseRun()
    {
        TimeSeriesRun run;
        expect('{');
        bool first = true;
        while (!peekIs('}')) {
            if (!first)
                expect(',');
            first = false;
            const std::string key = parseString();
            expect(':');
            if (key == "label") {
                run.label = parseString();
            } else if (key == "time_sec") {
                run.timeSec = parseDoubleArray();
            } else if (key == "cycles") {
                for (double v : parseDoubleArray())
                    run.cycles.push_back(
                        static_cast<std::uint64_t>(v));
            } else if (key == "channels") {
                expect('[');
                while (!peekIs(']')) {
                    if (!run.channels.empty())
                        expect(',');
                    run.channels.push_back(parseChannel());
                }
                expect(']');
            } else {
                panic("timeseries JSON: unknown run key '", key,
                      "'");
            }
        }
        expect('}');
        return run;
    }

    TimeSeriesChannel
    parseChannel()
    {
        TimeSeriesChannel ch;
        expect('{');
        bool first = true;
        while (!peekIs('}')) {
            if (!first)
                expect(',');
            first = false;
            const std::string key = parseString();
            expect(':');
            if (key == "name") {
                ch.name = parseString();
            } else if (key == "unit") {
                ch.unit = parseString();
            } else if (key == "desc") {
                ch.desc = parseString();
            } else if (key == "schedule_dependent") {
                ch.scheduleDependent = parseBool();
            } else if (key == "min") {
                ch.min = parseDoubleArray();
            } else if (key == "max") {
                ch.max = parseDoubleArray();
            } else if (key == "mean") {
                ch.mean = parseDoubleArray();
            } else if (key == "p99") {
                ch.p99 = parseDoubleArray();
            } else {
                panic("timeseries JSON: unknown channel key '", key,
                      "'");
            }
        }
        expect('}');
        return ch;
    }

    std::vector<double>
    parseDoubleArray()
    {
        std::vector<double> out;
        expect('[');
        while (!peekIs(']')) {
            if (!out.empty())
                expect(',');
            out.push_back(parseNumber());
        }
        expect(']');
        return out;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    peekIs(char c)
    {
        skipSpace();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    void
    expect(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c)
            panic("timeseries JSON: expected '", std::string(1, c),
                  "' at offset ", pos_);
        ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\' && pos_ < text_.size())
                c = text_[pos_++];
            out += c;
        }
        if (pos_ >= text_.size())
            panic("timeseries JSON: unterminated string");
        ++pos_; // closing quote
        return out;
    }

    bool
    parseBool()
    {
        skipSpace();
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            return false;
        }
        panic("timeseries JSON: expected boolean at offset ", pos_);
        return false;
    }

    double
    parseNumber()
    {
        skipSpace();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            panic("timeseries JSON: expected number at offset ",
                  pos_);
        return std::stod(text_.substr(start, pos_ - start));
    }

    std::string text_;
    std::size_t pos_ = 0;
};

} // namespace

TimeSeriesDoc
readTimeSeriesJson(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    return TimeSeriesParser(buf.str()).parse();
}

} // namespace vsgpu::obs
