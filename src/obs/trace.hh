/**
 * @file
 * Structured event tracer emitting Chrome trace_event JSON.
 *
 * The trace is a flat list of complete spans ("X" events, with
 * microsecond timestamps and durations) and instant events ("i"),
 * grouped by category: phase spans (setup, DC solve, AC scan,
 * transient chunks), per-task pool spans (with per-thread track
 * ids), controller actions, and hypervisor actions.  The output
 * loads directly in Perfetto / chrome://tracing.
 *
 * Cost model: tracing is off by default.  Every instrumentation
 * point first reads one namespace-scope atomic mask with relaxed
 * ordering — when the category bit is clear, that single load is
 * the entire cost (no time query, no allocation, no lock).  The
 * perf_microbench BM_TraceScopeDisabled case pins this down.
 *
 * Timestamps are wall-clock and therefore non-deterministic; the
 * tracer only ever *observes* the run and never feeds back into
 * simulation state, so golden traces and summary JSON stay
 * bit-identical whether tracing is enabled or not.
 */

#ifndef VSGPU_OBS_TRACE_HH
#define VSGPU_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hh"

namespace vsgpu::obs
{

/** Trace category bits (combine with |). */
enum : std::uint32_t
{
    CatPhase = 1u << 0, ///< run phases: setup, solves, chunks
    CatPool = 1u << 1,  ///< exec pool tasks, per worker thread
    CatCtl = 1u << 2,   ///< controller decisions / actuations
    CatHv = 1u << 3,    ///< hypervisor DFS / power-gating actions
    CatAll = CatPhase | CatPool | CatCtl | CatHv,
};

/**
 * Parse a --trace-categories value: comma-separated category names
 * ("phase", "pool", "ctl", "hv") or "all".  Panics on unknown
 * names; an empty string means all categories.
 */
std::uint32_t parseTraceCategories(const std::string &csv);

/** @return the canonical name of a single category bit. */
const char *traceCategoryName(std::uint32_t cat);

/** Enabled-category mask; zero (the default) disables tracing. */
extern std::atomic<std::uint32_t> traceMask;

/** One recorded event (span or instant). */
struct TraceEvent
{
    char phase = 'X';       ///< 'X' complete span, 'i' instant
    std::uint32_t cat = 0;  ///< single category bit
    const char *name = ""; ///< static string (macro literal)
    std::uint32_t tid = 0;  ///< dense per-thread track id
    double tsUs = 0.0;      ///< start, µs since tracing start
    double durUs = 0.0;     ///< span duration, µs ('X' only)
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Process-wide trace collector.  Thread-safe: events append under a
 * mutex (only ever taken on the enabled path).  Bounded: past
 * maxEvents() the buffer becomes a ring that evicts the oldest
 * event (with a one-time warning); droppedEvents() counts the
 * evictions and is surfaced as the schedule-dependent stat
 * obs.trace.dropped_events.
 */
class Tracer
{
  public:
    static Tracer &instance();

    /** Enable the given categories and reset the time origin. */
    void enable(std::uint32_t mask);

    /** Disable all tracing (recorded events are kept). */
    void disable();

    static bool
    enabledFor(std::uint32_t cat)
    {
        return (traceMask.load(std::memory_order_relaxed) & cat) !=
               0;
    }

    /** µs since enable(); wall-clock, observability only. */
    double nowUs() const;

    /** Dense id of the calling thread (0 = first thread seen). */
    static std::uint32_t threadId();

    void complete(std::uint32_t cat, const char *name, double tsUs,
                  double durUs,
                  std::vector<std::pair<std::string, std::string>>
                      args = {});
    void instant(std::uint32_t cat, const char *name,
                 std::vector<std::pair<std::string, std::string>>
                     args = {});

    std::size_t numEvents() const;

    /** Held events in chronological (oldest-first) order. */
    std::vector<TraceEvent> events() const;

    /** Events evicted from the ring since the last clear(). */
    std::uint64_t droppedEvents() const;

    void clear();

    static constexpr std::size_t maxEvents() { return 1u << 20; }

    /** Write the Chrome trace_event JSON document. */
    void writeJson(std::ostream &os) const;

  private:
    Tracer() = default;

    void push(TraceEvent event);

    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_ VSGPU_GUARDED_BY(mutex_);
    /** Ring head once events_ is full: index of the oldest event. */
    std::size_t head_ VSGPU_GUARDED_BY(mutex_) = 0;
    /** Events evicted (overwritten) since the last clear(). */
    std::uint64_t dropped_ VSGPU_GUARDED_BY(mutex_) = 0;
    // originNs_ is deliberately unannotated: nowUs() reads it without
    // the lock, which is safe by protocol — enable() writes it under
    // the mutex before the traceMask store that makes any
    // instrumentation point call nowUs() at all.
    std::int64_t originNs_ = 0; ///< steady-clock ns at enable()
};

/**
 * RAII span: records a complete event covering its lifetime.  When
 * the category is disabled at construction the object is inert (one
 * relaxed atomic load, nothing else).
 */
class ScopedSpan
{
  public:
    ScopedSpan(std::uint32_t cat, const char *name)
    {
        if (Tracer::enabledFor(cat)) {
            cat_ = cat;
            name_ = name;
            startUs_ = Tracer::instance().nowUs();
        }
    }

    ~ScopedSpan() { end(); }

    /** Finish the span early (idempotent; destructor otherwise). */
    void
    end()
    {
        if (cat_ != 0) {
            Tracer &tracer = Tracer::instance();
            tracer.complete(cat_, name_, startUs_,
                            tracer.nowUs() - startUs_,
                            std::move(args_));
            cat_ = 0;
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** True when this span is actually recording. */
    bool live() const { return cat_ != 0; }

    /** Attach an argument (only call when live()). */
    void
    setArg(std::string key, std::string value)
    {
        args_.emplace_back(std::move(key), std::move(value));
    }

  private:
    std::uint32_t cat_ = 0;
    const char *name_ = "";
    double startUs_ = 0.0;
    std::vector<std::pair<std::string, std::string>> args_;
};

/** Span covering the enclosing scope; name must be a literal. */
#define VSGPU_TRACE_SCOPE(cat, name)                                 \
    ::vsgpu::obs::ScopedSpan vsgpuTraceSpan##__LINE__(cat, name)

/** Instant event; no-op (one relaxed load) when cat is disabled. */
#define VSGPU_TRACE_INSTANT(cat, name)                               \
    do {                                                             \
        if (::vsgpu::obs::Tracer::enabledFor(cat))                   \
            ::vsgpu::obs::Tracer::instance().instant(cat, name);     \
    } while (false)

} // namespace vsgpu::obs

#endif // VSGPU_OBS_TRACE_HH
