/**
 * @file
 * Text rendering of observability dumps (`vsgpu report`).
 *
 * Takes the machine-readable artifacts a run leaves behind — a stats
 * JSON (optionally carrying a `profile` section) and optionally a
 * time-series JSON — and renders one human-readable report: manifest
 * identity, headline statistics, the stage-cost profile with its
 * serial-chain critical path, and per-run channel summaries.
 */

#ifndef VSGPU_OBS_REPORT_HH
#define VSGPU_OBS_REPORT_HH

#include <iosfwd>

#include "obs/stats_registry.hh"
#include "obs/timeseries.hh"

namespace vsgpu::obs
{

/**
 * Render the full report.  @p series may be null when no time-series
 * dump is available; the profile section renders when the snapshot
 * carries one.
 */
void writeRunReport(std::ostream &os, const StatsSnapshot &stats,
                    const TimeSeriesDoc *series);

} // namespace vsgpu::obs

#endif // VSGPU_OBS_REPORT_HH
