/**
 * @file
 * Deterministic windowed time-series telemetry of a co-simulation.
 *
 * A TimeSeriesRecorder samples named channels on a *simulated-time*
 * cadence: the caller picks a window length as simulated seconds
 * (--sample-every) and the recorder closes one aggregation window
 * every windowCycles() timesteps, emitting min/max/mean/p99 per
 * channel per window.  Because the window boundaries, the sampled
 * values, and the aggregation arithmetic all derive from simulation
 * state only, the resulting dump is bitwise identical for --jobs 1
 * and --jobs N (docs/parallel_exec.md).
 *
 * Wall-clock-derived channels (e.g. wall microseconds per window)
 * are registered with scheduleDependent = true and are excluded from
 * dumps by default, following the exec.pool.steals precedent in the
 * stats registry, so determinism-gated dumps stay comparable across
 * job counts while the diagnostic data remains reachable on demand.
 *
 * Memory stays bounded for any cadence: exact min/max/mean come from
 * streaming accumulators; p99 comes from a per-window sample buffer
 * capped at p99SampleCap samples via a deterministic stride.
 */

#ifndef VSGPU_OBS_TIMESERIES_HH
#define VSGPU_OBS_TIMESERIES_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace vsgpu::obs
{

/** One channel's per-window aggregates (parallel arrays). */
struct TimeSeriesChannel
{
    std::string name;
    std::string unit;
    std::string desc;

    /** True when the values derive from wall clock / scheduling;
     *  excluded from dumps by default (determinism contract). */
    bool scheduleDependent = false;

    std::vector<double> min;
    std::vector<double> max;
    std::vector<double> mean;
    std::vector<double> p99;
};

/** The windowed series of one co-simulation run. */
struct TimeSeriesRun
{
    /** Caller-assigned identity of the run (sweep-point label). */
    std::string label;

    /** Simulated end time of each window (s). */
    std::vector<double> timeSec;

    /** Cumulative simulated cycles at each window end. */
    std::vector<std::uint64_t> cycles;

    std::vector<TimeSeriesChannel> channels;

    std::size_t windows() const { return timeSec.size(); }
};

/** A dump document: shared cadence plus one entry per run. */
struct TimeSeriesDoc
{
    double sampleEverySec = 0.0; ///< requested window (sim seconds)
    double dtSec = 0.0;          ///< simulation timestep (s)
    std::uint64_t windowCycles = 0; ///< cycles per full window

    /** Runs sorted by label (writeTimeSeriesJson enforces). */
    std::vector<TimeSeriesRun> runs;
};

/** @return cycles per window for a cadence: round(every/dt), >= 1. */
std::uint64_t timeSeriesWindowCycles(double dtSec,
                                     double sampleEverySec);

/**
 * Streaming recorder used inside the cosim loop.  Register channels
 * up front, then per simulated cycle record() values and call
 * endCycle(); finish() flushes a partial final window and returns
 * the completed run.
 */
class TimeSeriesRecorder
{
  public:
    /** Samples per window kept for the p99 estimate; beyond this a
     *  deterministic stride decimates the buffer. */
    static constexpr std::size_t p99SampleCap = 1024;

    TimeSeriesRecorder(double dtSec, double sampleEverySec);

    /** Register a channel; @return its dense id. */
    int addChannel(std::string name, std::string unit,
                   std::string desc, bool scheduleDependent = false);

    /** @return cycles per full aggregation window (>= 1). */
    std::uint64_t windowCycles() const { return windowCycles_; }

    /**
     * Deterministic per-channel sampling stride: targets ~256
     * records per window with a floor of 32 cycles between records
     * (the overhead budget), and the first cycle of every window is
     * always on-stride.  Callers with expensive channel reads may
     * record only on cycles where sampleThisCycle() is true.
     */
    std::uint64_t sampleStride() const { return sampleStride_; }

    /** True when this cycle lies on the sampling stride. */
    bool
    sampleThisCycle() const
    {
        // A wrapping counter instead of cycleInWindow_ %
        // sampleStride_: this is called several times per simulated
        // cycle and a 64-bit divide is the most expensive thing in
        // the recording fast path.
        return cyclesSinceStride_ == 0;
    }

    /** Record one value for this cycle (call before endCycle()). */
    void record(int channel, double value);

    /**
     * Dense-channel fast path: the aggregates (min/max/mean) stay
     * exact over every cycle, but the p99 buffer only takes values
     * on the sampling stride.  This keeps per-cycle channels (rail
     * extrema) inside the BENCH_obs.json overhead budget while the
     * extrema — the signals the paper's droop analysis cares about —
     * lose no precision.
     */
    void recordDense(int channel, double value);

    /** Advance simulated time; closes the window on its boundary. */
    void endCycle();

    /** Flush any partial window and return the run (empty when no
     *  cycle was ever recorded). */
    std::shared_ptr<TimeSeriesRun> finish();

  private:
    struct Accum;
    void closeWindow();
    void pushSample(Accum &a, double value);

    struct Accum
    {
        double min = 0.0;
        double max = 0.0;
        double sum = 0.0;
        std::uint64_t count = 0;
        std::uint64_t sampleCount = 0; ///< values offered for p99
        std::uint64_t keep = 1; ///< decimation stride for samples
        std::vector<double> samples; ///< p99 buffer (capped)
    };

    double dtSec_;
    double sampleEverySec_;
    std::uint64_t windowCycles_;
    std::uint64_t sampleStride_;

    std::uint64_t cycle_ = 0;         ///< total cycles seen
    std::uint64_t cycleInWindow_ = 0; ///< cycles in open window
    std::uint64_t cyclesSinceStride_ = 0; ///< 0 on stride cycles

    std::shared_ptr<TimeSeriesRun> run_;
    std::vector<Accum> accums_;
    std::vector<double> p99Scratch_; ///< reused by closeWindow()
};

/**
 * Write the document as compact columnar JSON.  Runs are emitted
 * sorted by label; schedule-dependent channels are omitted unless
 * asked for, so default dumps compare bitwise across --jobs values.
 */
void writeTimeSeriesJson(const TimeSeriesDoc &doc, std::ostream &os,
                         bool includeScheduleDependent = false);

/** CSV rendering: one row per (run, window), columns per channel
 *  aggregate.  Same schedule-dependent exclusion as the JSON dump. */
void writeTimeSeriesCsv(const TimeSeriesDoc &doc, std::ostream &os,
                        bool includeScheduleDependent = false);

/**
 * Parse a document previously produced by writeTimeSeriesJson().
 * Panics on malformed input;
 * writeTimeSeriesJson(readTimeSeriesJson(x)) == x when x was written
 * with the same includeScheduleDependent setting.
 */
TimeSeriesDoc readTimeSeriesJson(std::istream &is);

} // namespace vsgpu::obs

#endif // VSGPU_OBS_TIMESERIES_HH
