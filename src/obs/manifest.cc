#include "obs/manifest.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace vsgpu::obs
{

namespace
{

/** Shortest round-trip-exact representation of a double (mirrors the
 *  summary JSON writer so manifests embed identically everywhere). */
std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    for (int prec = 1; prec < 17; ++prec) {
        char shorter[40];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(shorter, "%lf", &back);
        if (back == v)
            return shorter;
    }
    return buf;
}

std::string
buildFlavour()
{
    std::string out =
#ifdef NDEBUG
        "release";
#else
        "debug";
#endif
#if defined(__SANITIZE_ADDRESS__)
    out += "+asan";
#endif
#if defined(__SANITIZE_THREAD__)
    out += "+tsan";
#endif
#if defined(VSGPU_UBSAN_BUILD)
    out += "+ubsan";
#endif
    return out;
}

} // namespace

std::string
fnv1a64Hex(std::string_view bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::string
configFingerprint(std::vector<std::string> keys)
{
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::string all;
    for (const std::string &k : keys) {
        all += k;
        all += '\x1f'; // separator outside any key alphabet
    }
    return fnv1a64Hex(all);
}

Manifest
makeManifest(std::string tool)
{
    Manifest m;
    m.valid = true;
    m.tool = std::move(tool);
#ifdef VSGPU_VERSION_STRING
    m.version = VSGPU_VERSION_STRING;
#else
    m.version = "unversioned";
#endif
    m.build = buildFlavour();
    return m;
}

std::vector<std::pair<std::string, std::string>>
Manifest::toPairs() const
{
    std::vector<std::pair<std::string, std::string>> out;
    out.emplace_back("tool", tool);
    out.emplace_back("version", version);
    out.emplace_back("build", build);
    out.emplace_back("subject", subject);
    out.emplace_back("config_fingerprint", configFingerprint);
    out.emplace_back("seed", std::to_string(seed));
    out.emplace_back("scale", formatDouble(scale));
    return out;
}

void
writeManifestJson(const Manifest &manifest, std::ostream &os,
                  const std::string &indent)
{
    const auto pairs = manifest.toPairs();
    os << "{";
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        os << (i ? "," : "") << "\n"
           << indent << "  \"" << pairs[i].first << "\": \""
           << pairs[i].second << "\"";
    }
    os << "\n" << indent << "}";
}

} // namespace vsgpu::obs
