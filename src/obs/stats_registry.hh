/**
 * @file
 * Hierarchical statistics registry in the gem5 tradition.
 *
 * Every instrumented layer (gpu, control, hypervisor, sim, exec)
 * registers named statistics — scalars, counters, distributions, and
 * formulas — with a unit and a one-line description.  Hierarchy is
 * expressed with dotted names ("control.detector_trips"); the
 * StatsGroup helper scopes registration under one prefix.  The
 * registry dumps as gem5-style text (name value # description) and
 * as machine-readable JSON, optionally stamped with a run Manifest.
 *
 * Determinism contract: everything simulation-derived is identical
 * for --jobs 1 and --jobs N (docs/parallel_exec.md).  The few stats
 * that legitimately depend on the schedule (e.g. pool steal counts)
 * are registered with scheduleDependent = true and are excluded from
 * dumps by default, so two stats files from different job counts
 * compare bitwise equal.
 *
 * Units are derived from the Quantity dimension types where one
 * exists (unitName<Volts>() == "V"); dimensionless event counts name
 * what they count ("cycles", "tasks").
 */

#ifndef VSGPU_OBS_STATS_REGISTRY_HH
#define VSGPU_OBS_STATS_REGISTRY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/quantity.hh"
#include "common/stats.hh"
#include "obs/manifest.hh"

namespace vsgpu::obs
{

/** Display unit of a Quantity dimension (specialized per alias). */
template <typename Q>
constexpr const char *
unitName()
{
    return "?";
}

// clang-format off
template <> constexpr const char *unitName<Volts>()   { return "V"; }
template <> constexpr const char *unitName<Watts>()   { return "W"; }
template <> constexpr const char *unitName<Amps>()    { return "A"; }
template <> constexpr const char *unitName<Seconds>() { return "s"; }
template <> constexpr const char *unitName<Hertz>()   { return "Hz"; }
template <> constexpr const char *unitName<Ohms>()    { return "ohm"; }
template <> constexpr const char *unitName<Joules>()  { return "J"; }
// clang-format on

/** Kinds of statistics the registry holds. */
enum class StatKind
{
    Scalar,
    Counter,
    Distribution,
    Formula,
};

/** @return the stable kind name used in the JSON dump. */
const char *statKindName(StatKind kind);

/** Metadata shared by every statistic. */
struct StatInfo
{
    std::string name; ///< full dotted name
    std::string unit;
    std::string desc;

    /** True when the value legitimately varies with the pool
     *  schedule; excluded from dumps by default. */
    bool scheduleDependent = false;
};

/** A double-valued statistic set once (or updated) by its owner. */
class ScalarStat
{
  public:
    explicit ScalarStat(StatInfo info) : info_(std::move(info)) {}

    void set(double v) { value_ = v; }
    double value() const { return value_; }
    const StatInfo &info() const { return info_; }

  private:
    StatInfo info_;
    double value_ = 0.0;
};

/** A monotonically increasing event count. */
class CounterStat
{
  public:
    explicit CounterStat(StatInfo info) : info_(std::move(info)) {}

    void add(std::uint64_t n) { count_ += n; }
    void set(std::uint64_t n) { count_ = n; }
    CounterStat &operator+=(std::uint64_t n)
    {
        count_ += n;
        return *this;
    }
    std::uint64_t count() const { return count_; }
    const StatInfo &info() const { return info_; }

  private:
    StatInfo info_;
    std::uint64_t count_ = 0;
};

/** Sample distribution (Welford accumulation + min/max). */
class DistributionStat
{
  public:
    explicit DistributionStat(StatInfo info) : info_(std::move(info))
    {
    }

    void add(double x);
    std::size_t count() const { return stats_.count(); }
    double mean() const { return stats_.mean(); }
    double stddev() const { return stats_.stddev(); }
    double min() const { return count() ? min_ : 0.0; }
    double max() const { return count() ? max_ : 0.0; }
    const StatInfo &info() const { return info_; }

  private:
    StatInfo info_;
    RunningStats stats_;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A derived value computed from other stats at dump time. */
class FormulaStat
{
  public:
    FormulaStat(StatInfo info, std::function<double()> fn)
        : info_(std::move(info)), fn_(std::move(fn))
    {
    }

    double value() const { return fn_ ? fn_() : 0.0; }
    const StatInfo &info() const { return info_; }

  private:
    StatInfo info_;
    std::function<double()> fn_;
};

/** One parsed/serializable view of a statistic (dump snapshot). */
struct SnapshotEntry
{
    StatKind kind = StatKind::Scalar;
    std::string name;
    std::string unit;
    std::string desc;

    double value = 0.0;        ///< scalar / formula value
    std::uint64_t count = 0;   ///< counter value or sample count
    double mean = 0.0;         ///< distribution only
    double stddev = 0.0;       ///< distribution only
    double min = 0.0;          ///< distribution only
    double max = 0.0;          ///< distribution only
};

/** Snapshot of a whole registry, ready for (de)serialization. */
struct StatsSnapshot
{
    Manifest manifest; ///< omitted from JSON when !manifest.valid

    /**
     * Pre-rendered `profile` section (see obs/profile.hh), stored as
     * raw JSON text and re-emitted verbatim so the round-trip stays
     * byte-exact.  Omitted from JSON when empty; only populated when
     * profiling was explicitly requested (wall-clock contents are
     * schedule-dependent by nature).
     */
    std::string profileJson;

    std::vector<SnapshotEntry> entries;
};

class StatsRegistry;

/**
 * Registration handle scoped under one dotted prefix; groups nest by
 * name ("sim" -> "sim.transient").
 */
class StatsGroup
{
  public:
    StatsGroup(StatsRegistry &registry, std::string prefix)
        : registry_(registry), prefix_(std::move(prefix))
    {
    }

    ScalarStat &scalar(const std::string &name,
                       const std::string &unit,
                       const std::string &desc);
    CounterStat &counter(const std::string &name,
                         const std::string &unit,
                         const std::string &desc,
                         bool scheduleDependent = false);
    DistributionStat &distribution(const std::string &name,
                                   const std::string &unit,
                                   const std::string &desc);
    FormulaStat &formula(const std::string &name,
                         const std::string &unit,
                         const std::string &desc,
                         std::function<double()> fn);

    /** @return a nested group under this prefix. */
    StatsGroup group(const std::string &name) const;

  private:
    std::string qualify(const std::string &name) const;

    StatsRegistry &registry_;
    std::string prefix_;
};

/**
 * The registry: owns every statistic of one run.  Registration
 * returns stable references (deque storage); names must be unique.
 */
class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    ScalarStat &addScalar(const std::string &name,
                          const std::string &unit,
                          const std::string &desc);
    CounterStat &addCounter(const std::string &name,
                            const std::string &unit,
                            const std::string &desc,
                            bool scheduleDependent = false);
    DistributionStat &addDistribution(const std::string &name,
                                      const std::string &unit,
                                      const std::string &desc);
    FormulaStat &addFormula(const std::string &name,
                            const std::string &unit,
                            const std::string &desc,
                            std::function<double()> fn);

    /** @return a registration handle scoped under @p prefix. */
    StatsGroup group(const std::string &prefix)
    {
        return StatsGroup(*this, prefix);
    }

    /** @return total registered statistics. */
    std::size_t size() const;

    /** @return the entry with this full name, or nullptr. */
    const SnapshotEntry *find(const std::string &name) const;

    /**
     * Capture every statistic, sorted by name.  Schedule-dependent
     * stats are excluded unless asked for, so snapshots (and the
     * dumps built from them) compare bitwise equal across --jobs.
     */
    StatsSnapshot snapshot(bool includeScheduleDependent = false)
        const;

    /** gem5-style text dump: name  value  # description (unit). */
    void dumpText(std::ostream &os,
                  bool includeScheduleDependent = false) const;

    /** JSON dump, optionally manifest-stamped. */
    void dumpJson(std::ostream &os,
                  bool includeScheduleDependent = false) const;

    /** Manifest stamped into JSON dumps (copied). */
    void setManifest(const Manifest &manifest)
    {
        manifest_ = manifest;
    }

    /** Rendered `profile` section for JSON dumps (empty = none). */
    void setProfileJson(std::string profileJson)
    {
        profileJson_ = std::move(profileJson);
    }

  private:
    void checkUnique(const std::string &name) const;
    mutable StatsSnapshot cachedSnapshot_; ///< find() scratch

    Manifest manifest_;
    std::string profileJson_;
    std::deque<ScalarStat> scalars_;
    std::deque<CounterStat> counters_;
    std::deque<DistributionStat> distributions_;
    std::deque<FormulaStat> formulas_;
};

/** Serialize a snapshot as the stats JSON document. */
void writeStatsJson(const StatsSnapshot &snapshot, std::ostream &os);

/** gem5-style text rendering of a snapshot. */
void writeStatsText(const StatsSnapshot &snapshot, std::ostream &os);

/**
 * Parse a document previously produced by writeStatsJson().  Panics
 * on malformed input; writeStatsJson(readStatsJson(x)) == x.
 */
StatsSnapshot readStatsJson(std::istream &is);

} // namespace vsgpu::obs

#endif // VSGPU_OBS_STATS_REGISTRY_HH
