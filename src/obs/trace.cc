#include "obs/trace.hh"

#include <chrono>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace vsgpu::obs
{

std::atomic<std::uint32_t> traceMask{0};

namespace
{

/** Wall-clock observability timestamps; the values never reach any
 *  simulation state, so determinism is unaffected. */
std::int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() // vsgpu-lint: nondet-ok(trace timestamps are observability-only and never feed back into the simulation)
                   .time_since_epoch())
        .count();
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

std::atomic<std::uint32_t> nextThreadId{0};

} // namespace

std::uint32_t
parseTraceCategories(const std::string &csv)
{
    if (csv.empty() || csv == "all")
        return CatAll;
    std::uint32_t mask = 0;
    std::istringstream is(csv);
    std::string token;
    while (std::getline(is, token, ',')) {
        if (token == "phase")
            mask |= CatPhase;
        else if (token == "pool")
            mask |= CatPool;
        else if (token == "ctl")
            mask |= CatCtl;
        else if (token == "hv")
            mask |= CatHv;
        else
            panic("unknown trace category '", token,
                  "' (want phase, pool, ctl, hv, or all)");
    }
    return mask;
}

const char *
traceCategoryName(std::uint32_t cat)
{
    switch (cat) {
      case CatPhase: return "phase";
      case CatPool:  return "pool";
      case CatCtl:   return "ctl";
      case CatHv:    return "hv";
    }
    return "?";
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::enable(std::uint32_t mask)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        originNs_ = steadyNowNs();
    }
    traceMask.store(mask, std::memory_order_relaxed);
}

void
Tracer::disable()
{
    traceMask.store(0, std::memory_order_relaxed);
}

double
Tracer::nowUs() const
{
    return static_cast<double>(steadyNowNs() - originNs_) * 1e-3;
}

std::uint32_t
Tracer::threadId()
{
    thread_local const std::uint32_t id =
        nextThreadId.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
Tracer::push(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() < maxEvents()) {
        events_.push_back(std::move(event));
        return;
    }
    // Ring semantics: keep the most recent maxEvents() events by
    // overwriting the oldest; the tail of a long run is worth more
    // than its start.
    warn_once("trace buffer full (", maxEvents(),
              " events); evicting oldest events");
    // vsgpu-lint: move-ok(the push_back branch above returns, so the two moves are on mutually exclusive paths)
    events_[head_] = std::move(event);
    head_ = (head_ + 1) % maxEvents();
    ++dropped_;
}

void
Tracer::complete(
    std::uint32_t cat, const char *name, double tsUs, double durUs,
    std::vector<std::pair<std::string, std::string>> args)
{
    TraceEvent e;
    e.phase = 'X';
    e.cat = cat;
    e.name = name;
    e.tid = threadId();
    e.tsUs = tsUs;
    e.durUs = durUs;
    e.args = std::move(args);
    push(std::move(e));
}

void
Tracer::instant(
    std::uint32_t cat, const char *name,
    std::vector<std::pair<std::string, std::string>> args)
{
    TraceEvent e;
    e.phase = 'i';
    e.cat = cat;
    e.name = name;
    e.tid = threadId();
    e.tsUs = nowUs();
    e.args = std::move(args);
    push(std::move(e));
}

std::size_t
Tracer::numEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (head_ == 0)
        return events_;
    // Unroll the ring: oldest surviving event first.
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    for (std::size_t i = 0; i < events_.size(); ++i)
        out.push_back(events_[(head_ + i) % events_.size()]);
    return out;
}

std::uint64_t
Tracer::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    head_ = 0;
    dropped_ = 0;
}

void
Tracer::writeJson(std::ostream &os) const
{
    const std::vector<TraceEvent> snapshot = events();
    os << "{\n  \"displayTimeUnit\": \"ms\",\n"
       << "  \"traceEvents\": [";
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        const TraceEvent &e = snapshot[i];
        os << (i ? ",\n" : "\n") << "    {\"ph\": \"" << e.phase
           << "\", \"cat\": \"" << traceCategoryName(e.cat)
           << "\", \"name\": " << quote(e.name)
           << ", \"pid\": 1, \"tid\": " << e.tid
           << ", \"ts\": " << e.tsUs;
        if (e.phase == 'X')
            os << ", \"dur\": " << e.durUs;
        if (e.phase == 'i')
            os << ", \"s\": \"t\"";
        if (!e.args.empty()) {
            os << ", \"args\": {";
            for (std::size_t a = 0; a < e.args.size(); ++a) {
                os << (a ? ", " : "") << quote(e.args[a].first)
                   << ": " << quote(e.args[a].second);
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n  ]\n}\n";
}

} // namespace vsgpu::obs
