/**
 * @file
 * Per-warp instruction streams.
 *
 * A WarpProgram yields the instruction sequence one warp executes.
 * Workload generators implement it procedurally (so multi-million
 * instruction benchmarks need no trace storage); tests use the
 * vector-backed TraceProgram.
 */

#ifndef VSGPU_GPU_PROGRAM_HH
#define VSGPU_GPU_PROGRAM_HH

#include <memory>
#include <optional>
#include <vector>

#include "gpu/isa.hh"

namespace vsgpu
{

/**
 * Abstract instruction stream for one warp.
 */
class WarpProgram
{
  public:
    virtual ~WarpProgram() = default;

    /** @return the next instruction, or nullopt at end of program. */
    virtual std::optional<WarpInstr> next() = 0;
};

/**
 * A WarpProgram backed by a fixed instruction vector.
 */
class TraceProgram : public WarpProgram
{
  public:
    explicit TraceProgram(std::vector<WarpInstr> instrs)
        : instrs_(std::move(instrs))
    {
    }

    std::optional<WarpInstr>
    next() override
    {
        if (pos_ >= instrs_.size())
            return std::nullopt;
        return instrs_[pos_++];
    }

  private:
    std::vector<WarpInstr> instrs_;
    std::size_t pos_ = 0;
};

/**
 * Factory handed to the GPU when a kernel launches: produces the
 * program for each (SM, warp slot) pair.
 */
class ProgramFactory
{
  public:
    virtual ~ProgramFactory() = default;

    /** @return warps resident per SM for this kernel. */
    virtual int warpsPerSm() const = 0;

    /** Create the instruction stream for one warp. */
    virtual std::unique_ptr<WarpProgram> makeProgram(int sm,
                                                     int warp) const = 0;
};

} // namespace vsgpu

#endif // VSGPU_GPU_PROGRAM_HH
