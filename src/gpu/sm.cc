#include "gpu/sm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsgpu
{

Sm::Sm(int id, const SmConfig &cfg, MemorySystem &mem)
    : id_(id), cfg_(cfg), mem_(mem),
      scoreboard_(config::warpsPerSM, cfg.numRegs),
      units_{ExecUnit(ExecUnitKind::Sp0), ExecUnit(ExecUnitKind::Sp1),
             ExecUnit(ExecUnitKind::Sfu), ExecUnit(ExecUnitKind::Lsu)},
      issueLimit_(static_cast<double>(cfg.maxIssueWidth))
{
    panicIfNot(cfg_.maxIssueWidth > 0, "issue width must be positive");
}

void
Sm::launch(const ProgramFactory &factory, Cycle now)
{
    const int numWarps = factory.warpsPerSm();
    panicIfNot(numWarps > 0 && numWarps <= config::warpsPerSM,
               "kernel warp count out of range: ", numWarps);
    warps_.clear();
    warps_.resize(static_cast<std::size_t>(numWarps));
    for (int w = 0; w < numWarps; ++w) {
        warps_[static_cast<std::size_t>(w)].program =
            factory.makeProgram(id_, w);
        scoreboard_.releaseWarp(w);
    }
    activeWarps_ = numWarps;
    lastIssuedWarp_ = -1;
    issueTokens_ = 0.0;
    fakeTokens_ = 0.0;
    for (auto &u : units_)
        u.reset(now);
}

void
Sm::refill(WarpContext &warp)
{
    if (warp.finished || warp.pending.has_value())
        return;
    warp.pending = warp.program->next();
    if (!warp.pending.has_value()) {
        warp.finished = true;
        --activeWarps_;
    }
}

void
Sm::checkBarrier()
{
    bool anyWaiting = false;
    for (const auto &w : warps_) {
        if (w.finished)
            continue;
        if (!w.atBarrier)
            return; // someone still running
        anyWaiting = true;
    }
    if (!anyWaiting)
        return;
    for (auto &w : warps_) {
        if (w.finished || !w.atBarrier)
            continue;
        w.atBarrier = false;
        w.pending.reset();
        ++retired_;
    }
}

Cycle
Sm::resultLatency(const WarpInstr &instr, Cycle now)
{
    switch (instr.op) {
      case OpClass::IntAlu:
        return now + cfg_.intAluLatency;
      case OpClass::FpAlu:
        return now + cfg_.fpAluLatency;
      case OpClass::Sfu:
        return now + cfg_.sfuLatency;
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::SharedMem:
      case OpClass::Atomic:
        return mem_.accessWithHints(instr.op, instr.rowHit,
                                    instr.l1Hit, instr.l2Hit, now);
      case OpClass::Sync:
      case OpClass::NumClasses:
        break;
    }
    return now + 1;
}

ExecUnit *
Sm::findUnit(OpClass op, Cycle now)
{
    const auto tryUnit = [&](ExecUnitKind kind) -> ExecUnit * {
        ExecUnit &u = unit(kind);
        if (u.canAccept(now))
            return &u;
        if (u.gated(now)) {
            // Demand wake-up: the instruction waits for the block.
            if (u.gateRequested()) {
                u.ungate(now, cfg_.pgWakeLatency);
                ++events_.wakeEvents;
            }
        }
        return nullptr;
    };

    if (op == OpClass::IntAlu || op == OpClass::FpAlu) {
        if (ExecUnit *u = tryUnit(ExecUnitKind::Sp0))
            return u;
        return tryUnit(ExecUnitKind::Sp1);
    }
    return tryUnit(primaryUnit(op));
}

void
Sm::buildSchedule(std::vector<int> &order, Cycle now)
{
    order.clear();
    const int n = static_cast<int>(warps_.size());

    if (cfg_.scheduler == SchedulerKind::Gates) {
        // Gating-aware: first the warps whose next op targets an
        // un-gated block (keeps idle blocks idle so they can gate),
        // then the rest, each group in oldest-first order.
        for (int pass = 0; pass < 2; ++pass) {
            for (int w = 0; w < n; ++w) {
                const auto &warp = warps_[static_cast<std::size_t>(w)];
                if (warp.finished || !warp.pending.has_value())
                    continue;
                const ExecUnitKind kind =
                    primaryUnit(warp.pending->op);
                const bool hot = !unit(kind).gated(now);
                if ((pass == 0) == hot)
                    order.push_back(w);
            }
        }
        return;
    }

    // GTO: greedy warp first, then oldest-first (slot order).
    if (lastIssuedWarp_ >= 0 && lastIssuedWarp_ < n)
        order.push_back(lastIssuedWarp_);
    for (int w = 0; w < n; ++w)
        if (w != lastIssuedWarp_)
            order.push_back(w);
}

const SmCycleEvents &
Sm::step(Cycle now)
{
    events_ = SmCycleEvents{};
    events_.active = activeWarps_ > 0;
    ++cyclesRun_;

    if (activeWarps_ == 0)
        return events_;

    // DIWS token bucket: average issue rate <= issueLimit_.
    issueTokens_ = std::min(
        issueTokens_ + issueLimit_,
        static_cast<double>(cfg_.maxIssueWidth));

    int slots = cfg_.maxIssueWidth;
    bool throttledThisCycle = false;

    static thread_local std::vector<int> order;
    // Refill all pending slots first so scheduling sees fresh state.
    for (auto &warp : warps_)
        refill(warp);
    buildSchedule(order, now);

    std::size_t cursor = 0;
    while (slots > 0 && cursor < order.size()) {
        if (issueTokens_ < 1.0) {
            // A slot exists but DIWS withholds it; remember whether
            // real work was available so the throttle is chargeable.
            for (std::size_t k = cursor; k < order.size(); ++k) {
                auto &w = warps_[static_cast<std::size_t>(order[k])];
                if (!w.finished && w.pending.has_value() &&
                    !w.atBarrier &&
                    scoreboard_.ready(order[k], *w.pending, now)) {
                    throttledThisCycle = true;
                    break;
                }
            }
            break;
        }

        const int wIdx = order[cursor];
        WarpContext &warp = warps_[static_cast<std::size_t>(wIdx)];
        if (warp.finished || !warp.pending.has_value() ||
            warp.atBarrier) {
            ++cursor;
            continue;
        }

        const WarpInstr instr = *warp.pending;

        if (instr.op == OpClass::Sync) {
            warp.atBarrier = true;
            ++cursor;
            continue;
        }

        if (!scoreboard_.ready(wIdx, instr, now)) {
            ++cursor;
            continue;
        }

        ExecUnit *execUnit = findUnit(instr.op, now);
        if (execUnit == nullptr) {
            ++cursor;
            continue;
        }

        // Issue.
        execUnit->accept(instr.op, now);
        const Cycle readyAt = resultLatency(instr, now);
        scoreboard_.recordIssue(wIdx, instr, readyAt);
        warp.pending.reset();
        refill(warp);

        events_.issued[static_cast<std::size_t>(instr.op)] += 1;
        issuedByClass_[static_cast<std::size_t>(instr.op)] += 1;
        events_.lanesActive += instr.activeLanes;
        ++retired_;
        ++issuedTotal_;
        issueTokens_ -= 1.0;
        --slots;

        // Greedy: keep trying the same warp (do not advance cursor)
        // unless it just stalled; the ready checks above handle that.
        lastIssuedWarp_ = wIdx;
    }

    if (throttledThisCycle)
        ++throttledCycles_;

    checkBarrier();

    // Fake instruction injection into leftover slots, limited by the
    // injection-rate budget and SP block availability.
    if (fakeRate_ > 0.0 && slots > 0) {
        fakeTokens_ = std::min(
            fakeTokens_ + fakeRate_,
            static_cast<double>(cfg_.maxIssueWidth));
        while (slots > 0 && fakeTokens_ >= 1.0) {
            ExecUnit *u = findUnit(OpClass::IntAlu, now);
            if (u == nullptr)
                break;
            u->accept(OpClass::IntAlu, now);
            events_.fakeIssued += 1;
            ++fakeTotal_;
            fakeTokens_ -= 1.0;
            --slots;
        }
    } else {
        fakeTokens_ = 0.0;
    }

    return events_;
}

void
Sm::setIssueWidthLimit(double warpsPerCycle)
{
    issueLimit_ = std::clamp(
        warpsPerCycle, 0.0, static_cast<double>(cfg_.maxIssueWidth));
}

void
Sm::setFakeInjectRate(double perCycle)
{
    fakeRate_ = std::clamp(
        perCycle, 0.0, static_cast<double>(cfg_.maxIssueWidth));
}

ExecUnit &
Sm::unit(ExecUnitKind kind)
{
    return units_[static_cast<std::size_t>(kind)];
}

const ExecUnit &
Sm::unit(ExecUnitKind kind) const
{
    return units_[static_cast<std::size_t>(kind)];
}

void
Sm::requestGate(ExecUnitKind kind, Cycle now)
{
    unit(kind).gate(now, cfg_.pgBlackout);
}

double
Sm::avgIssueRate() const
{
    if (cyclesRun_ == 0)
        return 0.0;
    return static_cast<double>(issuedTotal_) /
           static_cast<double>(cyclesRun_);
}

SmStats
Sm::stats() const
{
    SmStats s;
    s.cycles = cyclesRun_;
    s.retired = retired_;
    s.fakeIssued = fakeTotal_;
    s.throttledCycles = throttledCycles_;
    s.issuedByClass = issuedByClass_;
    for (int u = 0; u < numExecUnits; ++u) {
        const auto &eu = units_[static_cast<std::size_t>(u)];
        s.unitBusyCycles[static_cast<std::size_t>(u)] =
            eu.busyCycles();
        s.gateEvents[static_cast<std::size_t>(u)] = eu.gateEvents();
    }
    s.avgIssueRate = avgIssueRate();
    return s;
}

} // namespace vsgpu
