/**
 * @file
 * The 16-SM GPU: SM array, shared memory system, and per-SM dynamic
 * frequency scaling via clock masking (the paper implements DFS "by
 * masking the clock in GPGPU-Sim"; we do the same with per-SM
 * fractional clock-enable accumulators).
 */

#ifndef VSGPU_GPU_GPU_HH
#define VSGPU_GPU_GPU_HH

#include <memory>
#include <ostream>
#include <vector>

#include "gpu/memory.hh"
#include "gpu/sm.hh"

namespace vsgpu
{

/** Whole-GPU configuration. */
struct GpuConfig
{
    SmConfig sm;
    MemoryConfig memory;
};

/**
 * The GPU device model.
 */
class Gpu
{
  public:
    explicit Gpu(const GpuConfig &cfg = {});

    /** Launch a kernel onto every SM. */
    void launch(const ProgramFactory &factory);

    /** @return true when every SM has drained. */
    bool done() const;

    /** Advance one global core clock. */
    void step();

    /** @return elapsed global cycles. */
    Cycle cycle() const { return cycle_; }

    /** @return SM by index. */
    Sm &sm(int idx);
    const Sm &sm(int idx) const;

    /** @return the shared memory system. */
    MemorySystem &memory() { return mem_; }
    const MemorySystem &memory() const { return mem_; }

    /**
     * Set an SM's clock as a fraction of the nominal 700 MHz
     * (DFS actuation; 1.0 = full speed, 0.0 = clock-gated).
     */
    void setSmFrequencyFraction(int idx, double fraction);

    /** @return an SM's clock fraction. */
    double smFrequencyFraction(int idx) const;

    /**
     * @return the events of SM @p idx for the last global cycle
     * (clocked=false when the SM's clock was masked that cycle).
     */
    const SmCycleEvents &smEvents(int idx) const;

    /** @return number of SMs. */
    int numSMs() const { return static_cast<int>(sms_.size()); }

    /**
     * Dump counters in a gem5-style "name value # description"
     * format: per-SM issue/retire/throttle counts, per-block
     * utilization and gating activity, and memory-system statistics.
     */
    void dumpStats(std::ostream &os) const;

  private:
    GpuConfig cfg_;
    MemorySystem mem_;
    std::vector<std::unique_ptr<Sm>> sms_;
    std::vector<double> freqFraction_;
    std::vector<double> clockAccum_;
    std::vector<SmCycleEvents> lastEvents_;
    Cycle cycle_ = 0;
};

} // namespace vsgpu

#endif // VSGPU_GPU_GPU_HH
