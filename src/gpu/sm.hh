/**
 * @file
 * Cycle-level streaming multiprocessor model.
 *
 * The SM implements the paper's Fig. 6 microarchitecture at the level
 * the voltage-stacking study needs: a dual-issue front end fed by a
 * greedy-then-oldest (GTO) warp scheduler with scoreboard dependence
 * checks, four execution blocks (SP0/SP1/SFU/LSU), barriers, and a
 * shared memory hierarchy.  It exposes the two architecture-level
 * voltage-smoothing actuators:
 *
 *   - dynamic issue width scaling (DIWS): a fractional issue-rate
 *     limit realized with a token bucket (the paper's down-counter
 *     per N cycles), and
 *   - fake instruction injection (FII): fake ops filling otherwise
 *     idle issue slots, consuming energy without architectural
 *     effect,
 *
 * plus per-execution-block power gating with blackout and wake-up
 * penalties (for the Warped-Gates-style policy).
 */

#ifndef VSGPU_GPU_SM_HH
#define VSGPU_GPU_SM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "gpu/exec_unit.hh"
#include "gpu/memory.hh"
#include "gpu/program.hh"
#include "gpu/scoreboard.hh"

namespace vsgpu
{

/** Warp scheduler flavours. */
enum class SchedulerKind
{
    Gto,   ///< greedy-then-oldest (paper Table I)
    Gates, ///< gating-aware scheduler (Warped Gates' GATES)
};

/** Static SM configuration. */
struct SmConfig
{
    int maxIssueWidth = config::maxIssueWidth;
    int numRegs = 64;

    Cycle intAluLatency = 12;
    Cycle fpAluLatency = 18;
    Cycle sfuLatency = 22;

    /** Power-gating wake-up latency (cycles). */
    Cycle pgWakeLatency = 11;
    /** Blackout: minimum cycles a gated block stays gated
     *  (Warped Gates' break-even period). */
    Cycle pgBlackout = 24;

    SchedulerKind scheduler = SchedulerKind::Gto;
};

/** Micro-architectural events of one SM cycle (power-model input). */
struct SmCycleEvents
{
    std::array<int, numOpClasses> issued{};
    int fakeIssued = 0;
    int lanesActive = 0;   ///< sum of active lanes of real issues
    int wakeEvents = 0;    ///< power-gating wake-ups this cycle
    bool active = false;   ///< SM still has unfinished warps
    bool clocked = true;   ///< false on cycles skipped by DFS

    /** @return real warp instructions issued this cycle. */
    int
    totalIssued() const
    {
        int n = 0;
        for (int v : issued)
            n += v;
        return n;
    }
};

/** Aggregate statistics snapshot of one SM. */
struct SmStats
{
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    std::uint64_t fakeIssued = 0;
    std::uint64_t throttledCycles = 0;
    std::array<std::uint64_t, numOpClasses> issuedByClass{};
    std::array<Cycle, numExecUnits> unitBusyCycles{};
    std::array<std::uint64_t, numExecUnits> gateEvents{};
    double avgIssueRate = 0.0;
};

/**
 * One streaming multiprocessor.
 */
class Sm
{
  public:
    /**
     * @param id  SM index within the GPU.
     * @param cfg static configuration.
     * @param mem shared memory system (must outlive the SM).
     */
    Sm(int id, const SmConfig &cfg, MemorySystem &mem);

    /** Install a kernel's warps; resets all pipeline state. */
    void launch(const ProgramFactory &factory, Cycle now = 0);

    /** @return true when every warp has drained. */
    bool done() const { return activeWarps_ == 0; }

    /** Advance one core cycle; @return the cycle's events. */
    const SmCycleEvents &step(Cycle now);

    /** @return events of the most recent step. */
    const SmCycleEvents &lastEvents() const { return events_; }

    // --- voltage-smoothing actuators ---

    /** Set the DIWS issue-rate limit (warps/cycle, fractional OK). */
    void setIssueWidthLimit(double warpsPerCycle);

    /** @return current DIWS limit (warps/cycle). */
    double issueWidthLimit() const { return issueLimit_; }

    /** Set the FII injection rate (fake instructions/cycle). */
    void setFakeInjectRate(double perCycle);

    /** @return current FII rate. */
    double fakeInjectRate() const { return fakeRate_; }

    // --- power gating ---

    /** @return an execution block (for gating policies and stats). */
    ExecUnit &unit(ExecUnitKind kind);
    const ExecUnit &unit(ExecUnitKind kind) const;

    /** Gate a block using the configured blackout. */
    void requestGate(ExecUnitKind kind, Cycle now);

    // --- statistics ---

    int id() const { return id_; }
    std::uint64_t retired() const { return retired_; }
    std::uint64_t fakeIssuedTotal() const { return fakeTotal_; }
    std::uint64_t cyclesRun() const { return cyclesRun_; }

    /** Cycles on which at least one issue slot went unused while a
     *  warp was throttled purely by DIWS. */
    std::uint64_t throttledCycles() const { return throttledCycles_; }

    /** @return number of unfinished warps. */
    int activeWarps() const { return activeWarps_; }

    /** @return average issue rate so far (warps/cycle). */
    double avgIssueRate() const;

    /** @return an aggregate statistics snapshot. */
    SmStats stats() const;

  private:
    /** Per-warp execution context. */
    struct WarpContext
    {
        std::unique_ptr<WarpProgram> program;
        std::optional<WarpInstr> pending;
        bool atBarrier = false;
        bool finished = false;
    };

    /** Fetch into pending if empty; updates finished state. */
    void refill(WarpContext &warp);

    /** Release the barrier when every unfinished warp reached it. */
    void checkBarrier();

    /** @return issue latency (result availability) for an op. */
    Cycle resultLatency(const WarpInstr &instr, Cycle now);

    /** Try to find an execution block for the op. */
    ExecUnit *findUnit(OpClass op, Cycle now);

    /** Build the scheduler's candidate order for this cycle. */
    void buildSchedule(std::vector<int> &order, Cycle now);

    int id_;
    SmConfig cfg_;
    MemorySystem &mem_;
    Scoreboard scoreboard_;
    std::vector<WarpContext> warps_;
    std::array<ExecUnit, numExecUnits> units_;

    int activeWarps_ = 0;
    int lastIssuedWarp_ = -1;

    double issueLimit_;
    double issueTokens_ = 0.0;
    double fakeRate_ = 0.0;
    double fakeTokens_ = 0.0;

    SmCycleEvents events_;
    std::uint64_t retired_ = 0;
    std::uint64_t fakeTotal_ = 0;
    std::uint64_t cyclesRun_ = 0;
    std::uint64_t issuedTotal_ = 0;
    std::uint64_t throttledCycles_ = 0;
    std::array<std::uint64_t, numOpClasses> issuedByClass_{};
};

} // namespace vsgpu

#endif // VSGPU_GPU_SM_HH
