#include "gpu/memory.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsgpu
{

MemorySystem::MemorySystem(const MemoryConfig &config)
    : config_(config), rng_(config.seed)
{
    panicIfNot(config_.dramRequestsPerCycle > 0.0,
               "DRAM bandwidth must be positive");
}

void
MemorySystem::setL1HitRate(double rate)
{
    panicIfNot(rate >= 0.0 && rate <= 1.0, "L1 hit rate in [0,1]");
    config_.l1HitRate = rate;
}

Cycle
MemorySystem::access(OpClass op, bool rowHit, Cycle now)
{
    return accessWithHints(op, rowHit,
                           rng_.bernoulli(config_.l1HitRate),
                           rng_.bernoulli(config_.l2HitRate), now);
}

Cycle
MemorySystem::accessWithHints(OpClass op, bool rowHit, bool l1Hit,
                              bool l2Hit, Cycle now)
{
    panicIfNot(isMemoryOp(op), "non-memory op in MemorySystem");
    ++accesses_;

    if (op == OpClass::SharedMem)
        return now + config_.sharedLatency;

    const bool atomic = op == OpClass::Atomic;
    if (!atomic && l1Hit) {
        ++l1Hits_;
        return now + config_.l1Latency;
    }
    if (!atomic && l2Hit) {
        ++l2Hits_;
        return now + config_.l2Latency;
    }

    // DRAM: bandwidth-limited channel; FR-FCFS approximated by giving
    // row hits both priority (shorter queue occupancy) and lower
    // service latency.
    ++dramAccesses_;
    const double nowD = static_cast<double>(now);
    const double start = std::max(nowD, dramNextFree_);
    dramQueueingTotal_ += start - nowD;
    const double serviceSlots = rowHit ? 1.0 : 2.0;
    dramNextFree_ = start + serviceSlots / config_.dramRequestsPerCycle;

    Cycle latency = rowHit ? config_.dramRowHitLatency
                           : config_.dramRowMissLatency;
    if (atomic)
        latency += config_.atomicExtraLatency;
    return static_cast<Cycle>(start) + latency;
}

double
MemorySystem::avgDramQueueing() const
{
    if (dramAccesses_ == 0)
        return 0.0;
    return dramQueueingTotal_ / static_cast<double>(dramAccesses_);
}

void
MemorySystem::reset()
{
    dramNextFree_ = 0.0;
    accesses_ = 0;
    l1Hits_ = 0;
    l2Hits_ = 0;
    dramAccesses_ = 0;
    dramQueueingTotal_ = 0.0;
}

} // namespace vsgpu
