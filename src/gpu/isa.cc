#include "gpu/isa.hh"

namespace vsgpu
{

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:     return "int";
      case OpClass::FpAlu:      return "fp";
      case OpClass::Sfu:        return "sfu";
      case OpClass::Load:       return "load";
      case OpClass::Store:      return "store";
      case OpClass::SharedMem:  return "smem";
      case OpClass::Atomic:     return "atomic";
      case OpClass::Sync:       return "sync";
      case OpClass::NumClasses: break;
    }
    return "?";
}

bool
isMemoryOp(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store ||
           op == OpClass::SharedMem || op == OpClass::Atomic;
}

} // namespace vsgpu
