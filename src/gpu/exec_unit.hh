/**
 * @file
 * Execution blocks of a Fermi-class SM.
 *
 * Each SM has four blocks (paper Fig. 6): two groups of 16 shader
 * cores (SP0/SP1), one group of 4 special-function units, and one
 * group of 16 load/store units.  A block accepts at most one warp
 * instruction at a time and stays occupied for an op-dependent number
 * of cycles (32 threads over 16 lanes = 2 cycles on SP, 8 on the
 * 4-lane SFU, and so on).  Blocks also track idle time and support
 * power gating with a wake-up delay (used by the Warped-Gates-style
 * policy).
 */

#ifndef VSGPU_GPU_EXEC_UNIT_HH
#define VSGPU_GPU_EXEC_UNIT_HH

#include <array>
#include <cstdint>

#include "common/units.hh"
#include "gpu/isa.hh"

namespace vsgpu
{

/** The four execution blocks of an SM. */
enum class ExecUnitKind : std::uint8_t
{
    Sp0,
    Sp1,
    Sfu,
    Lsu,
    NumUnits
};

/** Number of execution blocks. */
inline constexpr int numExecUnits =
    static_cast<int>(ExecUnitKind::NumUnits);

/** @return printable unit name. */
const char *execUnitName(ExecUnitKind kind);

/** @return cycles a warp instruction occupies its block. */
Cycle occupancyCycles(OpClass op);

/**
 * One execution block: occupancy, idle tracking, and gating state.
 */
class ExecUnit
{
  public:
    explicit ExecUnit(ExecUnitKind kind);

    /** @return the block kind. */
    ExecUnitKind kind() const { return kind_; }

    /**
     * @return true when the block can accept an instruction at @p now
     * (not occupied; if gated, acceptance implies a wake-up begins and
     * this returns false until the wake completes).
     */
    bool canAccept(Cycle now) const;

    /** Occupy the block for the instruction issued at @p now. */
    void accept(OpClass op, Cycle now);

    /** @return true when the block is executing at @p now. */
    bool busy(Cycle now) const { return busyUntil_ > now; }

    /** @return consecutive idle cycles as of @p now. */
    Cycle idleCycles(Cycle now) const;

    // --- power gating ---

    /** @return true when the block's supply is gated at @p now. */
    bool gated(Cycle now) const;

    /**
     * Gate the block (drops its leakage).  A gated block refuses
     * instructions until ungate() completes its wake-up.
     * @param blackoutCycles minimum time the block stays gated.
     */
    void gate(Cycle now, Cycle blackoutCycles);

    /**
     * Begin waking the block.
     * @param wakeCycles wake-up latency.
     * @return cycle at which the block becomes usable.
     */
    Cycle ungate(Cycle now, Cycle wakeCycles);

    /** @return true once gate() was called and wake not started. */
    bool gateRequested() const { return gatedFlag_; }

    /** @return number of gate events so far. */
    std::uint64_t gateEvents() const { return gateEvents_; }

    /** @return number of wake events so far. */
    std::uint64_t wakeEvents() const { return wakeEvents_; }

    /** @return total cycles spent gated up to the last state change. */
    Cycle gatedCycles(Cycle now) const;

    /** @return total cycles the block spent executing. */
    Cycle busyCycles() const { return busyTotal_; }

    /** Reset idle tracking (e.g. at kernel launch). */
    void reset(Cycle now);

  private:
    ExecUnitKind kind_;
    Cycle busyUntil_ = 0;
    Cycle lastBusy_ = 0;

    bool gatedFlag_ = false;
    Cycle gatedSince_ = 0;
    Cycle blackoutUntil_ = 0;
    Cycle wakeUntil_ = 0;
    Cycle gatedTotal_ = 0;
    Cycle busyTotal_ = 0;
    std::uint64_t gateEvents_ = 0;
    std::uint64_t wakeEvents_ = 0;
};

/** @return the block an op class executes on; SP ops may use either
 *  SP block (the caller tries both). */
ExecUnitKind primaryUnit(OpClass op);

} // namespace vsgpu

#endif // VSGPU_GPU_EXEC_UNIT_HH
