/**
 * @file
 * Per-warp register scoreboard.
 *
 * Tracks outstanding register writes per warp so the scheduler only
 * issues instructions whose sources and destination are free
 * (paper Section IV-C: "Before a warp is issued, the warp scheduler
 * first checks with the scoreboard").
 */

#ifndef VSGPU_GPU_SCOREBOARD_HH
#define VSGPU_GPU_SCOREBOARD_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "gpu/isa.hh"

namespace vsgpu
{

/**
 * Scoreboard over a fixed number of warps and registers per warp.
 */
class Scoreboard
{
  public:
    /**
     * @param numWarps warp slots tracked.
     * @param numRegs  architectural registers per warp.
     */
    Scoreboard(int numWarps, int numRegs = 64);

    /** @return true when the instruction's registers are all free. */
    bool ready(int warp, const WarpInstr &instr, Cycle now) const;

    /**
     * Record the destination write of an issued instruction.
     * @param readyAt cycle at which the result becomes available.
     */
    void recordIssue(int warp, const WarpInstr &instr, Cycle readyAt);

    /** Release all registers of a warp (program end / reset). */
    void releaseWarp(int warp);

    /** @return cycle at which a register becomes free (0 if free). */
    Cycle pendingUntil(int warp, std::uint8_t reg) const;

  private:
    bool regFree(int warp, std::uint8_t reg, Cycle now) const;

    int numWarps_;
    int numRegs_;
    /** readyAt cycle per (warp, reg); 0 = no pending write. */
    std::vector<Cycle> pending_;
};

} // namespace vsgpu

#endif // VSGPU_GPU_SCOREBOARD_HH
