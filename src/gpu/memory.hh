/**
 * @file
 * Shared memory hierarchy: per-SM L1 (probabilistic hit model with a
 * workload-supplied hit rate), a shared L2, and a bandwidth-limited
 * DRAM channel model with FR-FCFS-style row-buffer sensitivity
 * (row hits are cheaper, as scheduled first by the controller).
 */

#ifndef VSGPU_GPU_MEMORY_HH
#define VSGPU_GPU_MEMORY_HH

#include <cstdint>

#include "common/random.hh"
#include "common/units.hh"
#include "gpu/isa.hh"

namespace vsgpu
{

/** Latency and bandwidth parameters of the memory hierarchy. */
struct MemoryConfig
{
    double l1HitRate = 0.6;   ///< per-workload
    double l2HitRate = 0.5;   ///< residual hit rate in the shared L2

    Cycle sharedLatency = 30; ///< shared-memory access
    Cycle l1Latency = 28;     ///< L1 hit
    Cycle l2Latency = 130;    ///< L1 miss, L2 hit (total)
    Cycle dramRowHitLatency = 260;  ///< total latency, row-buffer hit
    Cycle dramRowMissLatency = 440; ///< total latency, row-buffer miss
    Cycle atomicExtraLatency = 120; ///< serialization of atomics

    /**
     * DRAM service bandwidth in requests per core cycle:
     * 179.2 GB/s at 700 MHz with 128 B transactions = 2.0 req/cycle.
     */
    double dramRequestsPerCycle = 2.0;

    std::uint64_t seed = 0x5eed0001;
};

/**
 * The GPU-wide memory system shared by all SMs.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryConfig &config = {});

    /**
     * Perform one warp memory access with probabilistic cache
     * outcomes (rolls this system's RNG at the configured rates).
     *
     * @param op     memory op class.
     * @param rowHit DRAM row-buffer locality hint from the trace.
     * @param now    issue cycle.
     * @return cycle at which the result is available.
     */
    Cycle access(OpClass op, bool rowHit, Cycle now);

    /**
     * Perform one warp memory access with the cache outcomes decided
     * by the trace (deterministic across runs and access orders).
     */
    Cycle accessWithHints(OpClass op, bool rowHit, bool l1Hit,
                          bool l2Hit, Cycle now);

    /** @return configured parameters. */
    const MemoryConfig &config() const { return config_; }

    /** Change the L1 hit rate (per-workload). */
    void setL1HitRate(double rate);

    // --- statistics ---
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t l1Hits() const { return l1Hits_; }
    std::uint64_t l2Hits() const { return l2Hits_; }
    std::uint64_t dramAccesses() const { return dramAccesses_; }

    /** @return average DRAM queueing delay (cycles). */
    double avgDramQueueing() const;

    /** Reset statistics and queue state. */
    void reset();

  private:
    MemoryConfig config_;
    Rng rng_;

    /** Next cycle at which the DRAM channel can start a request. */
    double dramNextFree_ = 0.0;

    std::uint64_t accesses_ = 0;
    std::uint64_t l1Hits_ = 0;
    std::uint64_t l2Hits_ = 0;
    std::uint64_t dramAccesses_ = 0;
    double dramQueueingTotal_ = 0.0;
};

} // namespace vsgpu

#endif // VSGPU_GPU_MEMORY_HH
