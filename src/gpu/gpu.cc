#include "gpu/gpu.hh"

#include <algorithm>
#include <iomanip>

#include "common/logging.hh"

namespace vsgpu
{

Gpu::Gpu(const GpuConfig &cfg)
    : cfg_(cfg), mem_(cfg.memory)
{
    sms_.reserve(static_cast<std::size_t>(config::numSMs));
    for (int i = 0; i < config::numSMs; ++i)
        sms_.push_back(std::make_unique<Sm>(i, cfg_.sm, mem_));
    freqFraction_.assign(static_cast<std::size_t>(config::numSMs), 1.0);
    clockAccum_.assign(static_cast<std::size_t>(config::numSMs), 0.0);
    lastEvents_.assign(static_cast<std::size_t>(config::numSMs),
                       SmCycleEvents{});
}

void
Gpu::launch(const ProgramFactory &factory)
{
    for (auto &sm : sms_)
        sm->launch(factory, cycle_);
}

bool
Gpu::done() const
{
    return std::all_of(sms_.begin(), sms_.end(),
                       [](const auto &sm) { return sm->done(); });
}

void
Gpu::step()
{
    for (int i = 0; i < numSMs(); ++i) {
        const auto idx = static_cast<std::size_t>(i);
        clockAccum_[idx] += freqFraction_[idx];
        if (clockAccum_[idx] >= 1.0) {
            clockAccum_[idx] -= 1.0;
            lastEvents_[idx] = sms_[idx]->step(cycle_);
        } else {
            SmCycleEvents idle;
            idle.active = !sms_[idx]->done();
            idle.clocked = false;
            lastEvents_[idx] = idle;
        }
    }
    ++cycle_;
}

Sm &
Gpu::sm(int idx)
{
    panicIfNot(idx >= 0 && idx < numSMs(), "bad SM index ", idx);
    return *sms_[static_cast<std::size_t>(idx)];
}

const Sm &
Gpu::sm(int idx) const
{
    panicIfNot(idx >= 0 && idx < numSMs(), "bad SM index ", idx);
    return *sms_[static_cast<std::size_t>(idx)];
}

void
Gpu::setSmFrequencyFraction(int idx, double fraction)
{
    panicIfNot(idx >= 0 && idx < numSMs(), "bad SM index ", idx);
    freqFraction_[static_cast<std::size_t>(idx)] =
        std::clamp(fraction, 0.0, 1.0);
}

double
Gpu::smFrequencyFraction(int idx) const
{
    panicIfNot(idx >= 0 && idx < numSMs(), "bad SM index ", idx);
    return freqFraction_[static_cast<std::size_t>(idx)];
}

const SmCycleEvents &
Gpu::smEvents(int idx) const
{
    panicIfNot(idx >= 0 && idx < numSMs(), "bad SM index ", idx);
    return lastEvents_[static_cast<std::size_t>(idx)];
}

void
Gpu::dumpStats(std::ostream &os) const
{
    const auto line = [&os](const std::string &name, double value,
                            const std::string &desc) {
        os << std::left << std::setw(40) << name << std::setw(16)
           << value << "# " << desc << "\n";
    };

    line("gpu.cycles", static_cast<double>(cycle_),
         "global cycles simulated");
    std::uint64_t retired = 0;
    for (const auto &sm : sms_)
        retired += sm->retired();
    line("gpu.instructions", static_cast<double>(retired),
         "warp instructions retired (all SMs)");
    if (cycle_ > 0)
        line("gpu.ipc",
             static_cast<double>(retired) /
                 static_cast<double>(cycle_),
             "retired warp instructions per global cycle");

    for (int i = 0; i < numSMs(); ++i) {
        const SmStats s = sms_[static_cast<std::size_t>(i)]->stats();
        const std::string prefix =
            "gpu.sm" + std::to_string(i) + ".";
        line(prefix + "retired", static_cast<double>(s.retired),
             "warp instructions retired");
        line(prefix + "issue_rate", s.avgIssueRate,
             "average issue rate (warps/cycle)");
        line(prefix + "throttled_cycles",
             static_cast<double>(s.throttledCycles),
             "cycles withheld by DIWS with ready work");
        line(prefix + "fake_issued",
             static_cast<double>(s.fakeIssued),
             "fake instructions injected (FII)");
        for (int u = 0; u < numExecUnits; ++u) {
            const auto kind = static_cast<ExecUnitKind>(u);
            const double util =
                s.cycles > 0
                    ? static_cast<double>(
                          s.unitBusyCycles[static_cast<std::size_t>(
                              u)]) /
                          static_cast<double>(s.cycles)
                    : 0.0;
            line(prefix + execUnitName(kind) + ".utilization", util,
                 "busy fraction of run cycles");
            if (s.gateEvents[static_cast<std::size_t>(u)] > 0)
                line(prefix + execUnitName(kind) + ".gate_events",
                     static_cast<double>(
                         s.gateEvents[static_cast<std::size_t>(u)]),
                     "power-gating events");
        }
    }

    line("gpu.mem.accesses", static_cast<double>(mem_.accesses()),
         "memory-system accesses");
    line("gpu.mem.l1_hits", static_cast<double>(mem_.l1Hits()),
         "L1 hits");
    line("gpu.mem.l2_hits", static_cast<double>(mem_.l2Hits()),
         "L2 hits");
    line("gpu.mem.dram_accesses",
         static_cast<double>(mem_.dramAccesses()), "DRAM accesses");
    line("gpu.mem.dram_avg_queue", mem_.avgDramQueueing(),
         "average DRAM queueing delay (cycles)");
}

} // namespace vsgpu
