/**
 * @file
 * Minimal warp-level instruction representation for the trace-driven
 * SM model.
 *
 * The simulator is throughput- and event-accurate rather than
 * functionally accurate: instructions carry an operation class (which
 * execution block they occupy, for how long, and what they cost in
 * energy), register identifiers (for scoreboard dependences), an
 * active-lane count (divergence), and a locality hint (for the DRAM
 * row-buffer model).
 */

#ifndef VSGPU_GPU_ISA_HH
#define VSGPU_GPU_ISA_HH

#include <cstdint>
#include <string>

namespace vsgpu
{

/** Operation classes recognized by the SM pipeline. */
enum class OpClass : std::uint8_t
{
    IntAlu,    ///< integer ALU op on an SP block
    FpAlu,     ///< single-precision FP op on an SP block
    Sfu,       ///< transcendental on the SFU block
    Load,      ///< global load through the LSU
    Store,     ///< global store through the LSU
    SharedMem, ///< shared-memory access through the LSU
    Atomic,    ///< global atomic through the LSU (serializing)
    Sync,      ///< barrier; waits until all warps reach it
    NumClasses
};

/** Number of op classes (array sizing). */
inline constexpr int numOpClasses =
    static_cast<int>(OpClass::NumClasses);

/** @return printable op-class name. */
const char *opClassName(OpClass op);

/** @return true when the op executes on the LSU block. */
bool isMemoryOp(OpClass op);

/** Register id meaning "no register". */
inline constexpr std::uint8_t noReg = 0xff;

/**
 * One warp-level instruction.
 */
struct WarpInstr
{
    OpClass op = OpClass::IntAlu;
    std::uint8_t dest = noReg;
    std::uint8_t src0 = noReg;
    std::uint8_t src1 = noReg;
    std::uint8_t activeLanes = 32; ///< 1..32
    bool rowHit = true; ///< DRAM row-buffer locality hint (loads/stores)

    /**
     * Cache outcomes as properties of the instruction (decided by the
     * workload generator), so timing comparisons between PDS
     * configurations are not perturbed by access-order-dependent
     * random rolls.
     */
    bool l1Hit = true;
    bool l2Hit = false;
};

} // namespace vsgpu

#endif // VSGPU_GPU_ISA_HH
