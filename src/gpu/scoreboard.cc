#include "gpu/scoreboard.hh"

#include "common/logging.hh"

namespace vsgpu
{

Scoreboard::Scoreboard(int numWarps, int numRegs)
    : numWarps_(numWarps), numRegs_(numRegs)
{
    panicIfNot(numWarps_ > 0 && numRegs_ > 0,
               "scoreboard needs positive warp/reg counts");
    pending_.assign(
        static_cast<std::size_t>(numWarps_) *
            static_cast<std::size_t>(numRegs_),
        0);
}

bool
Scoreboard::regFree(int warp, std::uint8_t reg, Cycle now) const
{
    if (reg == noReg)
        return true;
    panicIfNot(reg < numRegs_, "register id out of range");
    const Cycle until =
        pending_[static_cast<std::size_t>(warp) *
                     static_cast<std::size_t>(numRegs_) +
                 reg];
    return until <= now;
}

bool
Scoreboard::ready(int warp, const WarpInstr &instr, Cycle now) const
{
    panicIfNot(warp >= 0 && warp < numWarps_, "bad warp index ", warp);
    return regFree(warp, instr.src0, now) &&
           regFree(warp, instr.src1, now) &&
           regFree(warp, instr.dest, now);
}

void
Scoreboard::recordIssue(int warp, const WarpInstr &instr, Cycle readyAt)
{
    panicIfNot(warp >= 0 && warp < numWarps_, "bad warp index ", warp);
    if (instr.dest == noReg)
        return;
    panicIfNot(instr.dest < numRegs_, "register id out of range");
    pending_[static_cast<std::size_t>(warp) *
                 static_cast<std::size_t>(numRegs_) +
             instr.dest] = readyAt;
}

void
Scoreboard::releaseWarp(int warp)
{
    panicIfNot(warp >= 0 && warp < numWarps_, "bad warp index ", warp);
    for (int r = 0; r < numRegs_; ++r)
        pending_[static_cast<std::size_t>(warp) *
                     static_cast<std::size_t>(numRegs_) +
                 static_cast<std::size_t>(r)] = 0;
}

Cycle
Scoreboard::pendingUntil(int warp, std::uint8_t reg) const
{
    panicIfNot(warp >= 0 && warp < numWarps_, "bad warp index ", warp);
    if (reg == noReg || reg >= numRegs_)
        return 0;
    return pending_[static_cast<std::size_t>(warp) *
                        static_cast<std::size_t>(numRegs_) +
                    reg];
}

} // namespace vsgpu
