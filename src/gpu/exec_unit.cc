#include "gpu/exec_unit.hh"

#include "common/logging.hh"

namespace vsgpu
{

const char *
execUnitName(ExecUnitKind kind)
{
    switch (kind) {
      case ExecUnitKind::Sp0: return "sp0";
      case ExecUnitKind::Sp1: return "sp1";
      case ExecUnitKind::Sfu: return "sfu";
      case ExecUnitKind::Lsu: return "lsu";
      case ExecUnitKind::NumUnits: break;
    }
    return "?";
}

Cycle
occupancyCycles(OpClass op)
{
    // Fermi's execution blocks run at the 2x shader clock, so a
    // 16-lane block retires a 32-thread warp every core cycle.
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::FpAlu:
        return 1; // 32 threads over 16 double-pumped lanes
      case OpClass::Sfu:
        return 4; // 32 threads over 4 double-pumped SFU lanes
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::SharedMem:
        return 1; // 32 threads over 16 LSU lanes
      case OpClass::Atomic:
        return 2; // serialization overhead
      case OpClass::Sync:
        return 1; // barriers do not occupy a block
      case OpClass::NumClasses:
        break;
    }
    return 1;
}

ExecUnitKind
primaryUnit(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::FpAlu:
        return ExecUnitKind::Sp0;
      case OpClass::Sfu:
        return ExecUnitKind::Sfu;
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::SharedMem:
      case OpClass::Atomic:
        return ExecUnitKind::Lsu;
      case OpClass::Sync:
        return ExecUnitKind::Sp0; // nominal; barriers bypass blocks
      case OpClass::NumClasses:
        break;
    }
    return ExecUnitKind::Sp0;
}

ExecUnit::ExecUnit(ExecUnitKind kind)
    : kind_(kind)
{
}

bool
ExecUnit::canAccept(Cycle now) const
{
    if (gatedFlag_ || wakeUntil_ > now)
        return false;
    return busyUntil_ <= now;
}

void
ExecUnit::accept(OpClass op, Cycle now)
{
    panicIfNot(canAccept(now), "accept on a busy or gated unit");
    busyUntil_ = now + occupancyCycles(op);
    busyTotal_ += occupancyCycles(op);
    lastBusy_ = busyUntil_;
}

Cycle
ExecUnit::idleCycles(Cycle now) const
{
    if (busyUntil_ > now)
        return 0;
    return now - lastBusy_;
}

bool
ExecUnit::gated(Cycle now) const
{
    return gatedFlag_ || wakeUntil_ > now;
}

void
ExecUnit::gate(Cycle now, Cycle blackoutCycles)
{
    if (gatedFlag_)
        return;
    gatedFlag_ = true;
    gatedSince_ = now;
    blackoutUntil_ = now + blackoutCycles;
    ++gateEvents_;
}

Cycle
ExecUnit::ungate(Cycle now, Cycle wakeCycles)
{
    if (!gatedFlag_)
        return wakeUntil_ > now ? wakeUntil_ : now;
    // Honour the blackout period: the wake cannot complete before it.
    const Cycle start = now > blackoutUntil_ ? now : blackoutUntil_;
    gatedTotal_ += start - gatedSince_;
    gatedFlag_ = false;
    wakeUntil_ = start + wakeCycles;
    lastBusy_ = wakeUntil_;
    ++wakeEvents_;
    return wakeUntil_;
}

Cycle
ExecUnit::gatedCycles(Cycle now) const
{
    return gatedTotal_ + (gatedFlag_ ? now - gatedSince_ : 0);
}

void
ExecUnit::reset(Cycle now)
{
    busyUntil_ = now;
    lastBusy_ = now;
    gatedFlag_ = false;
    blackoutUntil_ = now;
    wakeUntil_ = now;
}

} // namespace vsgpu
