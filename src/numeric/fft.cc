#include "numeric/fft.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vsgpu
{

std::size_t
nextPowerOfTwo(std::size_t n)
{
    panicIfNot(n >= 1, "nextPowerOfTwo of zero");
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

void
fft(std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = data.size();
    panicIfNot(n >= 1 && (n & (n - 1)) == 0,
               "FFT size must be a power of two, got ", n);
    if (n == 1)
        return;

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    // Butterfly stages.
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle =
            (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
        const Complex wlen{std::cos(angle), std::sin(angle)};
        for (std::size_t i = 0; i < n; i += len) {
            Complex w{1.0, 0.0};
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex u = data[i + k];
                const Complex v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        const double inv = 1.0 / static_cast<double>(n);
        for (auto &x : data)
            x *= inv;
    }
}

std::vector<SpectrumPoint>
powerSpectrum(const std::vector<double> &samples, double sampleHz,
              std::size_t segmentLength)
{
    panicIfNot(sampleHz > 0.0, "sample rate must be positive");
    panicIfNot(samples.size() >= 8, "spectrum needs >= 8 samples");

    std::size_t seg = segmentLength;
    while (seg > samples.size())
        seg >>= 1;
    seg = std::max<std::size_t>(seg, 8);
    panicIfNot((seg & (seg - 1)) == 0,
               "segment length must be a power of two");

    // Hann window and its power normalization.
    std::vector<double> window(seg);
    double windowPower = 0.0;
    for (std::size_t i = 0; i < seg; ++i) {
        window[i] = 0.5 * (1.0 - std::cos(2.0 * M_PI *
                                          static_cast<double>(i) /
                                          static_cast<double>(seg)));
        windowPower += window[i] * window[i];
    }

    std::vector<double> accum(seg / 2 + 1, 0.0);
    int segments = 0;
    const std::size_t hop = seg / 2;
    for (std::size_t start = 0; start + seg <= samples.size();
         start += hop) {
        // Remove the segment mean so DC leakage does not swamp the
        // low bins.
        double mean = 0.0;
        for (std::size_t i = 0; i < seg; ++i)
            mean += samples[start + i];
        mean /= static_cast<double>(seg);

        std::vector<Complex> buf(seg);
        for (std::size_t i = 0; i < seg; ++i)
            buf[i] = Complex{(samples[start + i] - mean) * window[i],
                             0.0};
        fft(buf);
        for (std::size_t k = 0; k <= seg / 2; ++k)
            accum[k] += std::norm(buf[k]);
        ++segments;
    }
    panicIfNot(segments > 0, "series shorter than one segment");

    std::vector<SpectrumPoint> psd;
    psd.reserve(seg / 2 + 1);
    const double norm =
        1.0 / (static_cast<double>(segments) * windowPower * sampleHz);
    for (std::size_t k = 0; k <= seg / 2; ++k) {
        const double oneSided = (k == 0 || k == seg / 2) ? 1.0 : 2.0;
        psd.push_back({sampleHz * static_cast<double>(k) /
                           static_cast<double>(seg),
                       accum[k] * norm * oneSided});
    }
    return psd;
}

double
spectralFractionBelow(const std::vector<SpectrumPoint> &psd,
                      double freqHz)
{
    double below = 0.0, total = 0.0;
    for (const auto &p : psd) {
        if (p.freqHz <= 0.0)
            continue; // skip DC
        total += p.power;
        if (p.freqHz <= freqHz)
            below += p.power;
    }
    return total > 0.0 ? below / total : 0.0;
}

} // namespace vsgpu
