/**
 * @file
 * Eigenvalue computation for small dense matrices.
 *
 * Used to verify closed-loop stability of the discretized
 * voltage-smoothing controller (paper eq. (8)): the system is stable
 * iff the spectral radius of Z(A + BK) is below one.
 */

#ifndef VSGPU_NUMERIC_EIGEN_HH
#define VSGPU_NUMERIC_EIGEN_HH

#include <vector>

#include "numeric/matrix.hh"

namespace vsgpu
{

/**
 * Compute all eigenvalues of a square complex matrix using Hessenberg
 * reduction followed by shifted QR iteration with deflation.
 *
 * Intended for small systems (n up to a few tens); panics if the
 * iteration fails to converge.
 */
std::vector<Complex> eigenvalues(const CMatrix &a);

/** Eigenvalues of a real matrix (may be complex conjugate pairs). */
std::vector<Complex> eigenvalues(const Matrix &a);

/** @return max |lambda_i| over all eigenvalues of a. */
double spectralRadius(const Matrix &a);

/** @return max |lambda_i| over all eigenvalues of a. */
double spectralRadius(const CMatrix &a);

} // namespace vsgpu

#endif // VSGPU_NUMERIC_EIGEN_HH
