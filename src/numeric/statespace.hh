/**
 * @file
 * Continuous and discrete linear dynamic systems.
 *
 * Implements the pieces the paper's Section IV needs: the continuous
 * model x' = A x + B u + dF (eq. (5)), zero-order-hold discretization
 * at the control-loop sampling period T (eq. (8)), stability analysis
 * of the closed loop, discrete frequency response (Bode magnitude) for
 * the formal droop bound, and time-domain disturbance response.
 */

#ifndef VSGPU_NUMERIC_STATESPACE_HH
#define VSGPU_NUMERIC_STATESPACE_HH

#include <vector>

#include "numeric/matrix.hh"

namespace vsgpu
{

/** Matrix exponential via scaling-and-squaring with a Taylor core. */
Matrix expm(const Matrix &a);

/**
 * A continuous-time linear system x' = A x + B u.
 */
struct StateSpace
{
    Matrix a; ///< state matrix
    Matrix b; ///< input matrix

    /** @return state dimension. */
    std::size_t order() const { return a.rows(); }
};

/**
 * A discrete-time linear system x[n+1] = Ad x[n] + Bd u[n].
 */
struct DiscreteStateSpace
{
    Matrix ad;       ///< discretized state matrix
    Matrix bd;       ///< discretized input matrix
    double period;   ///< sampling period (s)

    /** @return state dimension. */
    std::size_t order() const { return ad.rows(); }
};

/**
 * Zero-order-hold discretization of a continuous system at period T,
 * computed from the block matrix exponential
 *   expm([[A, B], [0, 0]] T) = [[Ad, Bd], [0, I]].
 */
DiscreteStateSpace discretizeZoh(const StateSpace &sys, double period);

/**
 * Closed-loop discrete matrix for proportional state feedback u = K x:
 * Z(A + B K) (paper eq. (8)), i.e. discretize(A + B K) by ZOH.
 */
Matrix closedLoopDiscrete(const StateSpace &sys, const Matrix &k,
                          double period);

/** @return true iff the discrete matrix has spectral radius < 1. */
bool isDiscreteStable(const Matrix &ad);

/**
 * Magnitude of the discrete transfer function from an additive state
 * disturbance w to each state:  x[n+1] = Ad x[n] + w[n].
 *
 * @param ad   closed-loop discrete state matrix.
 * @param freq disturbance frequency (Hz), must be below Nyquist.
 * @param period sampling period (s).
 * @return per-state worst-case gain |(e^{jwT} I - Ad)^{-1}|_inf rows.
 */
std::vector<double> disturbanceGain(const Matrix &ad, double freq,
                                    double period);

/**
 * Worst disturbance-to-state gain across a frequency grid up to the
 * Nyquist frequency; this is the quantity the paper's Bode-plot proof
 * bounds to guarantee droops stay inside the voltage margin.
 */
double peakDisturbanceGain(const Matrix &ad, double period,
                           int gridPoints = 256);

/**
 * Simulate the discrete closed loop against a disturbance sequence.
 *
 * @param ad   discrete state matrix.
 * @param x0   initial state.
 * @param disturbance per-step additive disturbance vectors.
 * @return state trajectory (one entry per step, post-update).
 */
std::vector<std::vector<double>>
simulateDiscrete(const Matrix &ad, const std::vector<double> &x0,
                 const std::vector<std::vector<double>> &disturbance);

} // namespace vsgpu

#endif // VSGPU_NUMERIC_STATESPACE_HH
