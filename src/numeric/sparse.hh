/**
 * @file
 * Sparse linear algebra for the MNA circuit engines.
 *
 * The PDN netlists are overwhelmingly sparse (a few entries per row
 * at any grid size), so the dense LU in matrix.hh wastes O(n^2) work
 * per solve and O(n^3) per factorization on structural zeros.  This
 * module provides:
 *
 *  - CscPattern / CscPatternBuilder: an immutable compressed-sparse-
 *    column sparsity pattern with slot lookup, compiled once per
 *    netlist topology (the symbolic half of the engine; cached in
 *    exec::SetupCache via PdsSetup::mnaPattern).
 *  - SparseLuT<T>: a left-looking (Gilbert-Peierls) LU factorization
 *    with partial pivoting over a CscPattern, supporting cheap
 *    numeric refactorization (workspaces and storage are reused
 *    across factor() calls) and O(nnz) triangular solves.
 *
 * Bit-compatibility contract: SparseLuT is constructed to be
 * *bitwise identical* to LuFactor<T> on the same logical matrix.  It
 * uses the same pivot-selection rule (strict |.| maximum over the
 * partially-pivoted physical row order, first winner kept), applies
 * per-entry update terms in the same ascending pivot order as the
 * dense right-looking elimination, and performs the triangular
 * solves over ascending column indices.  Factor entries that are an
 * exact numeric zero are dropped from L and U entirely: the dense
 * elimination skips zero multipliers, and a zero term in a solve sum
 * is a no-op (acc -= 0 * x), so dropping them leaves every computed
 * bit unchanged while keeping the factors at their true nonzero
 * structure.  (The one theoretical exception — an accumulator that
 * is exactly -0.0 mid-substitution being flipped to +0.0 by a
 * subtracted signed zero — cannot arise here: assembled MNA values
 * and cancellation results are always +0.0.)  Solutions match the
 * dense solver bit for bit; the sparse-vs-dense differential suite
 * (tests/circuit/test_sparse_vs_dense.cc) pins this.
 */

#ifndef VSGPU_NUMERIC_SPARSE_HH
#define VSGPU_NUMERIC_SPARSE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "numeric/matrix.hh"

namespace vsgpu
{

/**
 * Immutable compressed-sparse-column sparsity pattern of a square
 * matrix.  Row indices are sorted and unique within each column.
 * Values live outside the pattern (a plain vector indexed by slot),
 * so one compiled pattern can back any number of concurrently
 * assembled matrices.
 */
struct CscPattern
{
    /** Matrix order (square). */
    int order = 0;

    /** Column start offsets into rowIdx (size order + 1). */
    std::vector<std::int32_t> colPtr;

    /** Row index of each structural entry, sorted per column. */
    std::vector<std::int32_t> rowIdx;

    /** @return number of structural nonzeros. */
    std::size_t nnz() const { return rowIdx.size(); }

    /**
     * @return the value-slot of entry (row, col), or -1 when the
     * entry is not structural.  Binary search within the column.
     */
    std::int32_t
    slot(int row, int col) const
    {
        panicIfNot(row >= 0 && row < order && col >= 0 && col < order,
                   "pattern slot query out of range");
        const auto first = rowIdx.begin() +
                           colPtr[static_cast<std::size_t>(col)];
        const auto last = rowIdx.begin() +
                          colPtr[static_cast<std::size_t>(col) + 1];
        const auto it = std::lower_bound(first, last,
                                         static_cast<std::int32_t>(row));
        if (it == last || *it != row)
            return -1;
        return static_cast<std::int32_t>(it - rowIdx.begin());
    }
};

/**
 * Accumulates (row, col) structural entries and compiles them into a
 * sorted, deduplicated CscPattern.
 */
class CscPatternBuilder
{
  public:
    /** @param order matrix order (square). */
    explicit CscPatternBuilder(int order);

    /** Record a structural entry (duplicates are fine). */
    void
    add(int row, int col)
    {
        panicIfNot(row >= 0 && row < order_ && col >= 0 &&
                       col < order_,
                   "pattern entry out of range");
        entries_.emplace_back(static_cast<std::int32_t>(col),
                              static_cast<std::int32_t>(row));
    }

    /** @return number of recorded (possibly duplicate) entries. */
    std::size_t pending() const { return entries_.size(); }

    /** Sort, deduplicate and freeze the pattern. */
    CscPattern compile();

  private:
    int order_;
    /// (col, row) so the default pair order sorts column-major.
    std::vector<std::pair<std::int32_t, std::int32_t>> entries_;
};

/**
 * Left-looking sparse LU with partial pivoting over a fixed
 * CscPattern.
 *
 * Lifecycle: construct once per pattern (the symbolic context —
 * workspaces, storage reservations), then factor() for each new set
 * of numeric values (a *refactorization*: storage is reused, only
 * the numeric work is redone) and solve() per right-hand side.
 * Partial pivoting makes the fill pattern value-dependent, so the
 * fill is rediscovered per factor(); the per-column reach is found
 * by depth-first search over the growing L exactly as in
 * Gilbert-Peierls, then replayed in ascending pivot order for dense
 * bit-compatibility (see the header comment).
 */
template <typename T>
class SparseLuT
{
  public:
    /** Bind to a compiled pattern (shared, immutable). */
    explicit SparseLuT(std::shared_ptr<const CscPattern> pattern)
        : pattern_(std::move(pattern))
    {
        panicIfNot(pattern_ != nullptr, "SparseLu needs a pattern");
        const std::size_t n =
            static_cast<std::size_t>(pattern_->order);
        x_.assign(n, T{});
        mark_.assign(n, 0);
        stack_.reserve(n);
        entryStack_.reserve(n);
        rowAt_.resize(n);
        posOf_.resize(n);
        pinv_.resize(n);
        perm_.resize(n);
        reachTop_.reserve(n);
        reachBelow_.reserve(n);
        touched_.reserve(n);
        lColPtr_.reserve(n + 1);
        uColPtr_.reserve(n + 1);
        diag_.resize(n);
    }

    /**
     * Numeric (re)factorization from values aligned with the
     * pattern's slots.  Panics on a singular matrix with the same
     * diagnostic as the dense LuFactor.
     */
    void
    factor(const std::vector<T> &values)
    {
        const int n = pattern_->order;
        const std::size_t un = static_cast<std::size_t>(n);
        panicIfNot(values.size() == pattern_->nnz(),
                   "sparse factor values/pattern size mismatch");

        lColPtr_.assign(1, 0);
        lRow_.clear();
        lVal_.clear();
        uColPtr_.assign(1, 0);
        uPos_.clear();
        uVal_.clear();
        for (std::size_t i = 0; i < un; ++i) {
            rowAt_[i] = static_cast<std::int32_t>(i);
            posOf_[i] = static_cast<std::int32_t>(i);
            pinv_[i] = -1;
        }
        ++stamp_; // invalidates all column marks at once

        for (int j = 0; j < n; ++j) {
            ++stamp_;
            reachTop_.clear();
            reachBelow_.clear();
            touched_.clear();

            // --- symbolic: reach of A(:,j) through the current L ---
            const std::int32_t a0 =
                pattern_->colPtr[static_cast<std::size_t>(j)];
            const std::int32_t a1 =
                pattern_->colPtr[static_cast<std::size_t>(j) + 1];
            for (std::int32_t t = a0; t < a1; ++t)
                dfsReach(pattern_->rowIdx[static_cast<std::size_t>(t)]);

            // Scatter this column's assembled values (fill rows keep
            // the exact zero left by the previous gather).
            for (std::int32_t t = a0; t < a1; ++t)
                x_[static_cast<std::size_t>(
                    pattern_->rowIdx[static_cast<std::size_t>(t)])] =
                    values[static_cast<std::size_t>(t)];

            // --- numeric: replay updates in ascending pivot order,
            // matching the dense right-looking step order bit for
            // bit. ---
            std::sort(reachTop_.begin(), reachTop_.end());
            uColPtr_.push_back(uColPtr_.back());
            for (std::int32_t p : reachTop_) {
                const std::size_t rowP = static_cast<std::size_t>(
                    rowAt_[static_cast<std::size_t>(p)]);
                const T xp = x_[rowP];
                // An exact-zero U entry contributes only +/-0 update
                // terms and a zero solve term; dropping it keeps the
                // factors at their true numeric nonzeros (see the
                // header's bit-compatibility note on zero terms).
                if (xp == T{})
                    continue;
                uPos_.push_back(p);
                uVal_.push_back(xp);
                ++uColPtr_.back();
                const std::int32_t l0 =
                    lColPtr_[static_cast<std::size_t>(p)];
                const std::int32_t l1 =
                    lColPtr_[static_cast<std::size_t>(p) + 1];
                for (std::int32_t t = l0; t < l1; ++t) {
                    const T lv = lVal_[static_cast<std::size_t>(t)];
                    // The dense code skips updates with a zero
                    // multiplier; mirror it exactly.
                    if (lv == T{})
                        continue;
                    x_[static_cast<std::size_t>(
                        lRow_[static_cast<std::size_t>(t)])] -= lv * xp;
                }
            }

            // --- pivot: the dense scan over the physical row order
            // (strict maximum, first winner), reading exact zeros
            // for untouched rows. ---
            std::int32_t pivotPos = static_cast<std::int32_t>(j);
            double best = scalarAbs(
                x_[static_cast<std::size_t>(
                    rowAt_[static_cast<std::size_t>(j)])]);
            for (int q = j + 1; q < n; ++q) {
                const double cand = scalarAbs(
                    x_[static_cast<std::size_t>(
                        rowAt_[static_cast<std::size_t>(q)])]);
                if (cand > best) {
                    best = cand;
                    pivotPos = static_cast<std::int32_t>(q);
                }
            }
            panicIfNot(best > 0.0, "singular matrix in LU factor");
            const std::int32_t pivotRow =
                rowAt_[static_cast<std::size_t>(pivotPos)];
            std::swap(rowAt_[static_cast<std::size_t>(j)],
                      rowAt_[static_cast<std::size_t>(pivotPos)]);
            posOf_[static_cast<std::size_t>(
                rowAt_[static_cast<std::size_t>(j)])] =
                static_cast<std::int32_t>(j);
            posOf_[static_cast<std::size_t>(
                rowAt_[static_cast<std::size_t>(pivotPos)])] =
                pivotPos;
            pinv_[static_cast<std::size_t>(pivotRow)] =
                static_cast<std::int32_t>(j);
            const T pivot = x_[static_cast<std::size_t>(pivotRow)];
            diag_[static_cast<std::size_t>(j)] = pivot;

            // --- L column j: below-diagonal entries divided by the
            // pivot.  Exact-zero multipliers are dropped: the dense
            // elimination skips them anyway, they contribute zero
            // solve terms, and keeping them out of lRow_ keeps the
            // DFS reach (which follows lRow_) at the true numeric
            // nonzero structure instead of snowballing fill. ---
            lColPtr_.push_back(lColPtr_.back());
            for (std::int32_t r : reachBelow_) {
                if (r == pivotRow)
                    continue;
                const T q = x_[static_cast<std::size_t>(r)] / pivot;
                if (q == T{})
                    continue;
                lRow_.push_back(r);
                lVal_.push_back(q);
                ++lColPtr_.back();
            }

            // Gather: clear the workspace for the next column.
            for (std::int32_t r : touched_)
                x_[static_cast<std::size_t>(r)] = T{};
        }

        for (std::size_t i = 0; i < un; ++i)
            perm_[i] = rowAt_[i];
        buildRowForms();
        factored_ = true;
    }

    /** Solve A x = b into @p out (no allocation after first use). */
    void
    solve(const std::vector<T> &b, std::vector<T> &out) const
    {
        const std::size_t n = static_cast<std::size_t>(pattern_->order);
        panicIfNot(factored_, "sparse solve before factor");
        panicIfNot(b.size() == n, "LU solve rhs size mismatch");
        panicIfNot(&b != &out, "sparse solve cannot alias rhs");
        out.resize(n);
        // Forward substitution on the permuted rhs (ascending column
        // order inside each row, as in the dense solve).
        for (std::size_t i = 0; i < n; ++i) {
            T acc = b[static_cast<std::size_t>(perm_[i])];
            const std::int32_t r0 = lRowPtr_[i];
            const std::int32_t r1 = lRowPtr_[i + 1];
            for (std::int32_t t = r0; t < r1; ++t)
                acc -= lRowVal_[static_cast<std::size_t>(t)] *
                       out[static_cast<std::size_t>(
                           lRowCol_[static_cast<std::size_t>(t)])];
            out[i] = acc;
        }
        // Back substitution.
        for (std::size_t ii = n; ii-- > 0;) {
            T acc = out[ii];
            const std::int32_t r0 = uRowPtr_[ii];
            const std::int32_t r1 = uRowPtr_[ii + 1];
            for (std::int32_t t = r0; t < r1; ++t)
                acc -= uRowVal_[static_cast<std::size_t>(t)] *
                       out[static_cast<std::size_t>(
                           uRowCol_[static_cast<std::size_t>(t)])];
            out[ii] = acc / diag_[ii];
        }
    }

    /** Solve A x = b for one right-hand side (allocating variant). */
    std::vector<T>
    solve(const std::vector<T> &b) const
    {
        std::vector<T> x;
        solve(b, x);
        return x;
    }

    /** @return order of the factored matrix. */
    std::size_t
    order() const
    {
        return static_cast<std::size_t>(pattern_->order);
    }

    /** @return structural nonzeros of L + U (including diagonal). */
    std::size_t
    factorNnz() const
    {
        return lVal_.size() + uVal_.size() + diag_.size();
    }

    /** @return the bound assembly pattern. */
    const CscPattern &pattern() const { return *pattern_; }

  private:
    /**
     * Iterative depth-first search from one structural row of
     * A(:,j): pivoted rows recurse through their L column, unpivoted
     * rows are leaves.  Fills reachTop_ (pivot positions < j),
     * reachBelow_ (unpivoted original rows) and touched_ (all rows
     * to gather-clear).
     */
    void
    dfsReach(std::int32_t row)
    {
        if (mark_[static_cast<std::size_t>(row)] == stamp_)
            return;
        stack_.clear();
        entryStack_.clear();
        stack_.push_back(row);
        entryStack_.push_back(-1); // -1: node not yet expanded
        while (!stack_.empty()) {
            const std::int32_t r = stack_.back();
            std::int32_t t = entryStack_.back();
            const std::int32_t p =
                pinv_[static_cast<std::size_t>(r)];
            if (t < 0) {
                mark_[static_cast<std::size_t>(r)] = stamp_;
                touched_.push_back(r);
                if (p < 0) {
                    // Unpivoted: below-diagonal leaf.
                    reachBelow_.push_back(r);
                    stack_.pop_back();
                    entryStack_.pop_back();
                    continue;
                }
                t = lColPtr_[static_cast<std::size_t>(p)];
            }
            const std::int32_t end =
                lColPtr_[static_cast<std::size_t>(p) + 1];
            bool descended = false;
            while (t < end) {
                const std::int32_t child =
                    lRow_[static_cast<std::size_t>(t)];
                ++t;
                if (mark_[static_cast<std::size_t>(child)] !=
                    stamp_) {
                    entryStack_.back() = t;
                    stack_.push_back(child);
                    entryStack_.push_back(-1);
                    descended = true;
                    break;
                }
            }
            if (descended)
                continue;
            reachTop_.push_back(p);
            stack_.pop_back();
            entryStack_.pop_back();
        }
    }

    /** Build the row-major (CSR) forms the triangular solves use. */
    void
    buildRowForms()
    {
        const std::size_t n = static_cast<std::size_t>(pattern_->order);
        lRowPtr_.assign(n + 1, 0);
        uRowPtr_.assign(n + 1, 0);
        for (std::int32_t r : lRow_)
            ++lRowPtr_[static_cast<std::size_t>(
                           pinv_[static_cast<std::size_t>(r)]) +
                       1];
        for (std::int32_t p : uPos_)
            ++uRowPtr_[static_cast<std::size_t>(p) + 1];
        for (std::size_t i = 0; i < n; ++i) {
            lRowPtr_[i + 1] =
                static_cast<std::int32_t>(lRowPtr_[i + 1] +
                                          lRowPtr_[i]);
            uRowPtr_[i + 1] =
                static_cast<std::int32_t>(uRowPtr_[i + 1] +
                                          uRowPtr_[i]);
        }
        lRowCol_.resize(lRow_.size());
        lRowVal_.resize(lRow_.size());
        uRowCol_.resize(uPos_.size());
        uRowVal_.resize(uPos_.size());
        fill_.assign(n, 0);
        // Column-ascending iteration gives ascending column indices
        // within every row, matching the dense solve's loop order.
        for (std::size_t col = 0; col < n; ++col) {
            const std::int32_t c0 = lColPtr_[col];
            const std::int32_t c1 = lColPtr_[col + 1];
            for (std::int32_t t = c0; t < c1; ++t) {
                const std::size_t i = static_cast<std::size_t>(
                    pinv_[static_cast<std::size_t>(
                        lRow_[static_cast<std::size_t>(t)])]);
                const std::int32_t dst = static_cast<std::int32_t>(
                    lRowPtr_[i] + fill_[i]);
                ++fill_[i];
                lRowCol_[static_cast<std::size_t>(dst)] =
                    static_cast<std::int32_t>(col);
                lRowVal_[static_cast<std::size_t>(dst)] =
                    lVal_[static_cast<std::size_t>(t)];
            }
        }
        fill_.assign(n, 0);
        for (std::size_t col = 0; col < n; ++col) {
            const std::int32_t c0 = uColPtr_[col];
            const std::int32_t c1 = uColPtr_[col + 1];
            for (std::int32_t t = c0; t < c1; ++t) {
                const std::size_t i = static_cast<std::size_t>(
                    uPos_[static_cast<std::size_t>(t)]);
                const std::int32_t dst = static_cast<std::int32_t>(
                    uRowPtr_[i] + fill_[i]);
                ++fill_[i];
                uRowCol_[static_cast<std::size_t>(dst)] =
                    static_cast<std::int32_t>(col);
                uRowVal_[static_cast<std::size_t>(dst)] =
                    uVal_[static_cast<std::size_t>(t)];
            }
        }
    }

    std::shared_ptr<const CscPattern> pattern_;
    bool factored_ = false;

    // Column-major factors built during factor().  L is strictly
    // lower (unit diagonal implicit), stored with *original* row
    // ids; U is strictly upper, stored with pivot positions; the
    // diagonal lives in diag_.
    std::vector<std::int32_t> lColPtr_, lRow_;
    std::vector<T> lVal_;
    std::vector<std::int32_t> uColPtr_, uPos_;
    std::vector<T> uVal_;
    std::vector<T> diag_;

    // Row-major mirrors for the triangular solves (built once per
    // factor; row = final pivot position, columns ascending).
    std::vector<std::int32_t> lRowPtr_, lRowCol_;
    std::vector<T> lRowVal_;
    std::vector<std::int32_t> uRowPtr_, uRowCol_;
    std::vector<T> uRowVal_;

    // Permutation state: rowAt_[pos] = original row at the physical
    // position, posOf_ its inverse, pinv_[row] = pivot position
    // (-1 while unpivoted), perm_ = final rowAt_ (the dense perm_).
    std::vector<std::int32_t> rowAt_, posOf_, pinv_, perm_;

    // Per-column workspaces.
    std::vector<T> x_;
    std::vector<std::int32_t> mark_;
    std::int32_t stamp_ = 0;
    std::vector<std::int32_t> stack_, entryStack_;
    std::vector<std::int32_t> reachTop_, reachBelow_, touched_;
    std::vector<std::int32_t> fill_;
};

using SparseLu = SparseLuT<double>;
using CSparseLu = SparseLuT<std::complex<double>>;

} // namespace vsgpu

#endif // VSGPU_NUMERIC_SPARSE_HH
