#include "numeric/sparse.hh"

namespace vsgpu
{

CscPatternBuilder::CscPatternBuilder(int order)
    : order_(order)
{
    panicIfNot(order_ > 0, "pattern order must be positive");
}

CscPattern
CscPatternBuilder::compile()
{
    std::sort(entries_.begin(), entries_.end());
    entries_.erase(std::unique(entries_.begin(), entries_.end()),
                   entries_.end());

    CscPattern pat;
    pat.order = order_;
    pat.colPtr.assign(static_cast<std::size_t>(order_) + 1, 0);
    pat.rowIdx.reserve(entries_.size());
    for (const auto &[col, row] : entries_) {
        pat.rowIdx.push_back(row);
        ++pat.colPtr[static_cast<std::size_t>(col) + 1];
    }
    for (int c = 0; c < order_; ++c)
        pat.colPtr[static_cast<std::size_t>(c) + 1] =
            static_cast<std::int32_t>(
                pat.colPtr[static_cast<std::size_t>(c) + 1] +
                pat.colPtr[static_cast<std::size_t>(c)]);
    entries_.clear();
    return pat;
}

} // namespace vsgpu
