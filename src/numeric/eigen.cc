#include "numeric/eigen.hh"

#include <algorithm>
#include <cmath>

namespace vsgpu
{

namespace
{

/**
 * Reduce a complex matrix to upper Hessenberg form in place using
 * Householder reflectors (similarity transform, eigenvalues kept).
 */
void
hessenberg(CMatrix &h)
{
    const std::size_t n = h.rows();
    if (n < 3)
        return;
    for (std::size_t k = 0; k + 2 < n; ++k) {
        // Build the reflector that zeroes column k below row k+1.
        double colNorm = 0.0;
        for (std::size_t i = k + 1; i < n; ++i)
            colNorm += std::norm(h(i, k));
        colNorm = std::sqrt(colNorm);
        if (colNorm == 0.0)
            continue;

        Complex alpha = h(k + 1, k);
        const double alphaAbs = std::abs(alpha);
        const Complex phase =
            alphaAbs > 0.0 ? alpha / alphaAbs : Complex{1.0, 0.0};
        const Complex beta = -phase * colNorm;

        std::vector<Complex> v(n, Complex{});
        v[k + 1] = alpha - beta;
        for (std::size_t i = k + 2; i < n; ++i)
            v[i] = h(i, k);
        double vNorm2 = 0.0;
        for (std::size_t i = k + 1; i < n; ++i)
            vNorm2 += std::norm(v[i]);
        if (vNorm2 == 0.0)
            continue;

        // H := (I - 2 v v^H / |v|^2) H (I - 2 v v^H / |v|^2)
        // Left multiply.
        for (std::size_t j = 0; j < n; ++j) {
            Complex dot{};
            for (std::size_t i = k + 1; i < n; ++i)
                dot += std::conj(v[i]) * h(i, j);
            dot *= 2.0 / vNorm2;
            for (std::size_t i = k + 1; i < n; ++i)
                h(i, j) -= dot * v[i];
        }
        // Right multiply.
        for (std::size_t i = 0; i < n; ++i) {
            Complex dot{};
            for (std::size_t j = k + 1; j < n; ++j)
                dot += h(i, j) * v[j];
            dot *= 2.0 / vNorm2;
            for (std::size_t j = k + 1; j < n; ++j)
                h(i, j) -= dot * std::conj(v[j]);
        }
    }
}

/** Wilkinson shift from the trailing 2x2 block ending at index m. */
Complex
wilkinsonShift(const CMatrix &h, std::size_t m)
{
    const Complex a = h(m - 1, m - 1);
    const Complex b = h(m - 1, m);
    const Complex c = h(m, m - 1);
    const Complex d = h(m, m);
    const Complex tr = a + d;
    const Complex det = a * d - b * c;
    const Complex disc = std::sqrt(tr * tr - 4.0 * det);
    const Complex l1 = (tr + disc) * 0.5;
    const Complex l2 = (tr - disc) * 0.5;
    return std::abs(l1 - d) < std::abs(l2 - d) ? l1 : l2;
}

} // namespace

std::vector<Complex>
eigenvalues(const CMatrix &a)
{
    panicIfNot(a.rows() == a.cols(), "eigenvalues of non-square matrix");
    const std::size_t n = a.rows();
    std::vector<Complex> lambda;
    lambda.reserve(n);
    if (n == 0)
        return lambda;
    if (n == 1) {
        lambda.push_back(a(0, 0));
        return lambda;
    }

    CMatrix h = a;
    hessenberg(h);

    const double scale = std::max(h.maxAbs(), 1e-300);
    const double eps = 1e-14 * scale;
    std::size_t m = n - 1; // active block is rows/cols 0..m
    std::size_t iterations = 0;
    const std::size_t maxIterations = 200 * n;

    while (true) {
        // Deflate converged trailing eigenvalues.
        while (m > 0) {
            const double sub = std::abs(h(m, m - 1));
            const double diag =
                std::abs(h(m, m)) + std::abs(h(m - 1, m - 1));
            if (sub <= std::max(eps, 1e-15 * diag)) {
                lambda.push_back(h(m, m));
                --m;
            } else {
                break;
            }
        }
        if (m == 0) {
            lambda.push_back(h(0, 0));
            break;
        }

        panicIfNot(++iterations < maxIterations,
                   "QR eigenvalue iteration failed to converge");

        // Occasionally use an exceptional shift to break cycles.
        Complex mu;
        if (iterations % 31 == 0) {
            mu = Complex{std::abs(h(m, m - 1)), 0.0};
        } else {
            mu = wilkinsonShift(h, m);
        }

        // Implicit shifted QR step via Givens rotations on the
        // active Hessenberg block 0..m.
        for (std::size_t i = 0; i <= m; ++i)
            h(i, i) -= mu;

        // QR by Givens: eliminate subdiagonal, store rotations.
        std::vector<Complex> cs(m), sn(m);
        for (std::size_t k = 0; k < m; ++k) {
            const Complex x = h(k, k);
            const Complex y = h(k + 1, k);
            const double r = std::sqrt(std::norm(x) + std::norm(y));
            if (r == 0.0) {
                cs[k] = 1.0;
                sn[k] = 0.0;
                continue;
            }
            cs[k] = x / r;
            sn[k] = y / r;
            for (std::size_t j = k; j <= m; ++j) {
                const Complex t1 = h(k, j);
                const Complex t2 = h(k + 1, j);
                h(k, j) = std::conj(cs[k]) * t1 + std::conj(sn[k]) * t2;
                h(k + 1, j) = -sn[k] * t1 + cs[k] * t2;
            }
        }
        // RQ: apply rotations from the right.
        for (std::size_t k = 0; k < m; ++k) {
            const std::size_t hi = std::min(k + 2, m);
            for (std::size_t i = 0; i <= hi; ++i) {
                const Complex t1 = h(i, k);
                const Complex t2 = h(i, k + 1);
                h(i, k) = t1 * cs[k] + t2 * sn[k];
                h(i, k + 1) = -t1 * std::conj(sn[k]) +
                              t2 * std::conj(cs[k]);
            }
        }
        for (std::size_t i = 0; i <= m; ++i)
            h(i, i) += mu;
    }

    std::reverse(lambda.begin(), lambda.end());
    return lambda;
}

std::vector<Complex>
eigenvalues(const Matrix &a)
{
    CMatrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            c(i, j) = Complex{a(i, j), 0.0};
    return eigenvalues(c);
}

double
spectralRadius(const Matrix &a)
{
    double rho = 0.0;
    for (const auto &l : eigenvalues(a))
        rho = std::max(rho, std::abs(l));
    return rho;
}

double
spectralRadius(const CMatrix &a)
{
    double rho = 0.0;
    for (const auto &l : eigenvalues(a))
        rho = std::max(rho, std::abs(l));
    return rho;
}

} // namespace vsgpu
