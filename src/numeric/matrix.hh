/**
 * @file
 * Small dense-matrix linear algebra.
 *
 * The control formulation (paper eq. (4)-(8)) and the MNA circuit
 * engine both need dense real and complex matrices of modest size
 * (4x4 control states up to a few hundred MNA unknowns), so a simple
 * row-major template with partial-pivot LU is sufficient and keeps the
 * project dependency-free.
 */

#ifndef VSGPU_NUMERIC_MATRIX_HH
#define VSGPU_NUMERIC_MATRIX_HH

#include <cmath>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/logging.hh"

namespace vsgpu
{

/** Magnitude helper that works for both real and complex scalars. */
inline double scalarAbs(double x) { return std::fabs(x); }
inline double scalarAbs(const std::complex<double> &x)
{
    return std::abs(x);
}

/**
 * Row-major dense matrix over a real or complex scalar type.
 */
template <typename T>
class MatrixT
{
  public:
    /** Construct an empty 0x0 matrix. */
    MatrixT() = default;

    /** Construct a rows x cols matrix filled with the given value. */
    MatrixT(std::size_t rows, std::size_t cols, T fill = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {
    }

    /** Construct from a nested initializer list (row major). */
    MatrixT(std::initializer_list<std::initializer_list<T>> init)
    {
        rows_ = init.size();
        cols_ = rows_ ? init.begin()->size() : 0;
        data_.reserve(rows_ * cols_);
        for (const auto &row : init) {
            panicIfNot(row.size() == cols_,
                       "ragged initializer for MatrixT");
            for (const auto &v : row)
                data_.push_back(v);
        }
    }

    /** @return identity matrix of the given order. */
    static MatrixT
    identity(std::size_t n)
    {
        MatrixT m(n, n);
        for (std::size_t i = 0; i < n; ++i)
            m(i, i) = T{1};
        return m;
    }

    /** @return number of rows. */
    std::size_t rows() const { return rows_; }

    /** @return number of columns. */
    std::size_t cols() const { return cols_; }

    /** Mutable element access. */
    T &
    operator()(std::size_t r, std::size_t c)
    {
        panicIfNot(r < rows_ && c < cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    /** Const element access. */
    const T &
    operator()(std::size_t r, std::size_t c) const
    {
        panicIfNot(r < rows_ && c < cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    /** Elementwise sum. */
    MatrixT
    operator+(const MatrixT &other) const
    {
        panicIfNot(sameShape(other), "matrix + shape mismatch");
        MatrixT out = *this;
        for (std::size_t i = 0; i < data_.size(); ++i)
            out.data_[i] += other.data_[i];
        return out;
    }

    /** Elementwise difference. */
    MatrixT
    operator-(const MatrixT &other) const
    {
        panicIfNot(sameShape(other), "matrix - shape mismatch");
        MatrixT out = *this;
        for (std::size_t i = 0; i < data_.size(); ++i)
            out.data_[i] -= other.data_[i];
        return out;
    }

    /** Matrix product. */
    MatrixT
    operator*(const MatrixT &other) const
    {
        panicIfNot(cols_ == other.rows_, "matrix * shape mismatch");
        MatrixT out(rows_, other.cols_);
        for (std::size_t i = 0; i < rows_; ++i) {
            for (std::size_t k = 0; k < cols_; ++k) {
                const T a = (*this)(i, k);
                if (a == T{})
                    continue;
                for (std::size_t j = 0; j < other.cols_; ++j)
                    out(i, j) += a * other(k, j);
            }
        }
        return out;
    }

    /** Scalar product. */
    MatrixT
    operator*(const T &s) const
    {
        MatrixT out = *this;
        for (auto &v : out.data_)
            v *= s;
        return out;
    }

    /** Matrix-vector product. */
    std::vector<T>
    operator*(const std::vector<T> &x) const
    {
        panicIfNot(cols_ == x.size(), "matrix-vector shape mismatch");
        std::vector<T> y(rows_, T{});
        for (std::size_t i = 0; i < rows_; ++i) {
            T acc{};
            for (std::size_t j = 0; j < cols_; ++j)
                acc += (*this)(i, j) * x[j];
            y[i] = acc;
        }
        return y;
    }

    /** @return the transpose (no conjugation). */
    MatrixT
    transpose() const
    {
        MatrixT out(cols_, rows_);
        for (std::size_t i = 0; i < rows_; ++i)
            for (std::size_t j = 0; j < cols_; ++j)
                out(j, i) = (*this)(i, j);
        return out;
    }

    /** @return largest absolute entry (infinity-style norm). */
    double
    maxAbs() const
    {
        double m = 0.0;
        for (const auto &v : data_)
            m = std::max(m, scalarAbs(v));
        return m;
    }

    /** @return induced infinity norm (max absolute row sum). */
    double
    normInf() const
    {
        double m = 0.0;
        for (std::size_t i = 0; i < rows_; ++i) {
            double s = 0.0;
            for (std::size_t j = 0; j < cols_; ++j)
                s += scalarAbs((*this)(i, j));
            m = std::max(m, s);
        }
        return m;
    }

    /** @return true when the shapes match. */
    bool
    sameShape(const MatrixT &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_;
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

using Matrix = MatrixT<double>;
using CMatrix = MatrixT<std::complex<double>>;
using Complex = std::complex<double>;

/**
 * Partial-pivot LU factorization of a square matrix, retaining the
 * factorization so that many right-hand sides can be solved cheaply
 * (the transient engine's hot path).
 */
template <typename T>
class LuFactor
{
  public:
    /** Factor the given square matrix.  Panics when singular. */
    explicit LuFactor(MatrixT<T> a)
        : lu_(std::move(a))
    {
        const std::size_t n = lu_.rows();
        panicIfNot(n == lu_.cols(), "LU of non-square matrix");
        perm_.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            perm_[i] = i;

        for (std::size_t k = 0; k < n; ++k) {
            // Partial pivoting.
            std::size_t pivot = k;
            double best = scalarAbs(lu_(k, k));
            for (std::size_t i = k + 1; i < n; ++i) {
                const double cand = scalarAbs(lu_(i, k));
                if (cand > best) {
                    best = cand;
                    pivot = i;
                }
            }
            panicIfNot(best > 0.0, "singular matrix in LU factor");
            if (pivot != k) {
                for (std::size_t j = 0; j < n; ++j)
                    std::swap(lu_(k, j), lu_(pivot, j));
                std::swap(perm_[k], perm_[pivot]);
            }
            const T diag = lu_(k, k);
            for (std::size_t i = k + 1; i < n; ++i) {
                const T factor = lu_(i, k) / diag;
                lu_(i, k) = factor;
                if (factor == T{})
                    continue;
                for (std::size_t j = k + 1; j < n; ++j)
                    lu_(i, j) -= factor * lu_(k, j);
            }
        }
    }

    /** Solve A x = b for one right-hand side. */
    std::vector<T>
    solve(const std::vector<T> &b) const
    {
        const std::size_t n = lu_.rows();
        panicIfNot(b.size() == n, "LU solve rhs size mismatch");
        std::vector<T> x(n);
        // Forward substitution on the permuted rhs.
        for (std::size_t i = 0; i < n; ++i) {
            T acc = b[perm_[i]];
            for (std::size_t j = 0; j < i; ++j)
                acc -= lu_(i, j) * x[j];
            x[i] = acc;
        }
        // Back substitution.
        for (std::size_t ii = n; ii-- > 0;) {
            T acc = x[ii];
            for (std::size_t j = ii + 1; j < n; ++j)
                acc -= lu_(ii, j) * x[j];
            x[ii] = acc / lu_(ii, ii);
        }
        return x;
    }

    /** @return order of the factored matrix. */
    std::size_t order() const { return lu_.rows(); }

  private:
    MatrixT<T> lu_;
    std::vector<std::size_t> perm_;
};

/** Solve A x = b once (factor + solve). */
template <typename T>
std::vector<T>
solveLinear(const MatrixT<T> &a, const std::vector<T> &b)
{
    return LuFactor<T>(a).solve(b);
}

/** Compute the inverse of a square matrix via LU. */
template <typename T>
MatrixT<T>
inverse(const MatrixT<T> &a)
{
    const std::size_t n = a.rows();
    LuFactor<T> lu(a);
    MatrixT<T> inv(n, n);
    std::vector<T> e(n, T{});
    for (std::size_t j = 0; j < n; ++j) {
        e[j] = T{1};
        const auto col = lu.solve(e);
        for (std::size_t i = 0; i < n; ++i)
            inv(i, j) = col[i];
        e[j] = T{};
    }
    return inv;
}

} // namespace vsgpu

#endif // VSGPU_NUMERIC_MATRIX_HH
