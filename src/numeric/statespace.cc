#include "numeric/statespace.hh"

#include <cmath>

#include "numeric/eigen.hh"

namespace vsgpu
{

Matrix
expm(const Matrix &a)
{
    panicIfNot(a.rows() == a.cols(), "expm of non-square matrix");
    const std::size_t n = a.rows();

    // Scale so the norm is small, exponentiate by Taylor series, then
    // square back.  Adequate for the well-conditioned small systems
    // used here.
    const double norm = a.normInf();
    int squarings = 0;
    double scale = 1.0;
    while (norm * scale > 0.5) {
        scale *= 0.5;
        ++squarings;
    }

    Matrix scaled = a * scale;
    Matrix result = Matrix::identity(n);
    Matrix term = Matrix::identity(n);
    for (int k = 1; k <= 24; ++k) {
        term = term * scaled;
        term = term * (1.0 / static_cast<double>(k));
        result = result + term;
        if (term.maxAbs() < 1e-18)
            break;
    }
    for (int s = 0; s < squarings; ++s)
        result = result * result;
    return result;
}

DiscreteStateSpace
discretizeZoh(const StateSpace &sys, double period)
{
    panicIfNot(period > 0.0, "discretization period must be positive");
    const std::size_t n = sys.a.rows();
    const std::size_t m = sys.b.cols();
    panicIfNot(sys.b.rows() == n, "B row count != A order");

    // Block matrix M = [[A, B], [0, 0]] * T; expm(M) = [[Ad, Bd], ...].
    Matrix block(n + m, n + m);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            block(i, j) = sys.a(i, j) * period;
        for (std::size_t j = 0; j < m; ++j)
            block(i, n + j) = sys.b(i, j) * period;
    }
    const Matrix e = expm(block);

    DiscreteStateSpace d;
    d.period = period;
    d.ad = Matrix(n, n);
    d.bd = Matrix(n, m);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            d.ad(i, j) = e(i, j);
        for (std::size_t j = 0; j < m; ++j)
            d.bd(i, j) = e(i, n + j);
    }
    return d;
}

Matrix
closedLoopDiscrete(const StateSpace &sys, const Matrix &k, double period)
{
    panicIfNot(k.rows() == sys.b.cols() && k.cols() == sys.a.rows(),
               "feedback gain shape mismatch");
    StateSpace closed;
    closed.a = sys.a + sys.b * k;
    closed.b = Matrix(sys.a.rows(), 1); // unused input
    return discretizeZoh(closed, period).ad;
}

bool
isDiscreteStable(const Matrix &ad)
{
    return spectralRadius(ad) < 1.0;
}

std::vector<double>
disturbanceGain(const Matrix &ad, double freq, double period)
{
    const std::size_t n = ad.rows();
    const double w = 2.0 * M_PI * freq * period;
    const Complex z{std::cos(w), std::sin(w)};

    CMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            m(i, j) = (i == j ? z : Complex{}) - Complex{ad(i, j), 0.0};

    const CMatrix inv = inverse(m);
    std::vector<double> gains(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double rowSum = 0.0;
        for (std::size_t j = 0; j < n; ++j)
            rowSum += std::abs(inv(i, j));
        gains[i] = rowSum;
    }
    return gains;
}

double
peakDisturbanceGain(const Matrix &ad, double period, int gridPoints)
{
    panicIfNot(gridPoints > 1, "need at least 2 grid points");
    const double nyquist = 0.5 / period;
    double peak = 0.0;
    for (int i = 0; i < gridPoints; ++i) {
        // Log-ish grid biased toward low frequencies where the
        // residual-current plateau lives; include DC.
        const double frac =
            static_cast<double>(i) / static_cast<double>(gridPoints - 1);
        const double freq = nyquist * frac * frac;
        for (double g : disturbanceGain(ad, freq, period))
            peak = std::max(peak, g);
    }
    return peak;
}

std::vector<std::vector<double>>
simulateDiscrete(const Matrix &ad, const std::vector<double> &x0,
                 const std::vector<std::vector<double>> &disturbance)
{
    const std::size_t n = ad.rows();
    panicIfNot(x0.size() == n, "x0 size mismatch");
    std::vector<std::vector<double>> traj;
    traj.reserve(disturbance.size());
    std::vector<double> x = x0;
    for (const auto &w : disturbance) {
        panicIfNot(w.size() == n, "disturbance size mismatch");
        std::vector<double> next = ad * x;
        for (std::size_t i = 0; i < n; ++i)
            next[i] += w[i];
        x = std::move(next);
        traj.push_back(x);
    }
    return traj;
}

} // namespace vsgpu
