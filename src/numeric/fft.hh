/**
 * @file
 * Radix-2 FFT and power-spectrum estimation.
 *
 * Used to analyze simulated load-current and supply-voltage traces in
 * the frequency domain — the paper's whole cross-layer argument is a
 * frequency split (architecture handles the low band, CR-IVR the high
 * band), and the spectrum bench makes that split visible from the
 * co-simulation itself.
 */

#ifndef VSGPU_NUMERIC_FFT_HH
#define VSGPU_NUMERIC_FFT_HH

#include <vector>

#include "numeric/matrix.hh"

namespace vsgpu
{

/**
 * In-place iterative radix-2 Cooley-Tukey FFT.
 * @param data complex samples; size must be a power of two.
 * @param inverse compute the inverse transform (includes the 1/N
 *        normalization) when true.
 */
void fft(std::vector<Complex> &data, bool inverse = false);

/** @return smallest power of two >= n (n >= 1). */
std::size_t nextPowerOfTwo(std::size_t n);

/**
 * One-sided power spectral density estimate of a real sample stream
 * via Welch's method (Hann window, 50% overlap).
 *
 * @param samples   real time series.
 * @param sampleHz  sampling rate.
 * @param segmentLength FFT segment size (power of two; clamped to the
 *        series length).
 * @return (frequencyHz, power) pairs for bins 0..segment/2.
 */
struct SpectrumPoint
{
    double freqHz;
    double power;
};

std::vector<SpectrumPoint>
powerSpectrum(const std::vector<double> &samples, double sampleHz,
              std::size_t segmentLength = 4096);

/**
 * @return the fraction of total (non-DC) spectral power at or below
 * the given frequency.
 */
double spectralFractionBelow(const std::vector<SpectrumPoint> &psd,
                             double freqHz);

} // namespace vsgpu

#endif // VSGPU_NUMERIC_FFT_HH
