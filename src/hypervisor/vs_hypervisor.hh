/**
 * @file
 * The VS-aware power-management hypervisor (paper Algorithm 2).
 *
 * Sits between higher-level power optimizers (DFS, PG) and the GPU:
 * it remaps their per-SM commands so that the frequency and gated-
 * leakage spread *within each stacking column* stays inside a power-
 * imbalance budget, because imbalanced commands would translate
 * directly into layer current imbalance the CR-IVR/smoothing layer
 * must then absorb.  The budget adapts to observed voltage-smoothing
 * throttle pressure: when smoothing is busy, the hypervisor tightens
 * the allowed spread.
 */

#ifndef VSGPU_HYPERVISOR_VS_HYPERVISOR_HH
#define VSGPU_HYPERVISOR_VS_HYPERVISOR_HH

#include <array>

#include "common/units.hh"
#include "gpu/exec_unit.hh"

namespace vsgpu
{

/** Hypervisor configuration. */
struct HypervisorConfig
{
    /** Initial max frequency spread within a stacking column. */
    Hertz freqThresholdHz = 100.0_MHz;

    /** Initial max gated-leakage spread within a column. */
    Watts leakThresholdW = 0.40_W;

    /** Bounds for the adaptive budget. */
    Hertz freqThresholdMinHz = 50.0_MHz;
    Hertz freqThresholdMaxHz = 400.0_MHz;
    Watts leakThresholdMinW = 0.15_W;
    Watts leakThresholdMaxW = 1.2_W;

    /** Throttle-rate setpoint driving the adaptation. */
    double throttleSetpoint = 0.05;

    /** Frequency quantization step for remapped commands. */
    Hertz stepHz = 50.0_MHz;
};

/** Per-SM gating permissions emitted by the hypervisor. */
using GatingPlan =
    std::array<std::array<bool, numExecUnits>, config::numSMs>;

/**
 * Algorithm 2: command mapping for DFS and PG requests.
 */
class VsAwareHypervisor
{
  public:
    explicit VsAwareHypervisor(const HypervisorConfig &cfg = {});

    /**
     * Remap requested per-SM frequencies so each stacking column's
     * spread stays within the current budget (low outliers are pulled
     * up toward the column maximum).
     */
    std::array<Hertz, config::numSMs>
    filterFrequencies(std::array<Hertz, config::numSMs> requested)
        const;

    /**
     * Remap a gating request: permits gating only while the resulting
     * gated-leakage spread within each column stays inside the
     * budget.
     *
     * @param requested  per-(SM, unit) gating wishes.
     * @param unitLeakW  leakage saved by gating each unit kind.
     */
    GatingPlan
    filterGating(const GatingPlan &requested,
                 const std::array<Watts, numExecUnits> &unitLeakW)
        const;

    /**
     * Adapt the budgets from the observed voltage-smoothing throttle
     * rate (fraction of cycles affected by smoothing).
     */
    void feedback(double throttleRate);

    /** @return current frequency budget. */
    Hertz freqThresholdHz() const { return freqThresholdHz_; }

    /** @return current leakage budget. */
    Watts leakThresholdW() const { return leakThresholdW_; }

    /** @return DFS requests pulled up to the column budget. */
    std::uint64_t freqRemaps() const { return freqRemaps_; }

    /** @return gating requests denied by the imbalance budget. */
    std::uint64_t gatingDenials() const { return gatingDenials_; }

  private:
    HypervisorConfig cfg_;
    Hertz freqThresholdHz_;
    Watts leakThresholdW_;

    // The filter methods are logically const (pure command
    // remapping); the counters only observe how often they act.
    mutable std::uint64_t freqRemaps_ = 0;
    mutable std::uint64_t gatingDenials_ = 0;
};

} // namespace vsgpu

#endif // VSGPU_HYPERVISOR_VS_HYPERVISOR_HH
