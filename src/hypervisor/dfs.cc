#include "hypervisor/dfs.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"
#include "common/logging.hh"

namespace vsgpu
{

VSGPU_CONTRACT
DfsGovernor::DfsGovernor(const DfsConfig &cfg)
    : cfg_(cfg)
{
    VSGPU_REQUIRES(cfg_.epoch > 0, "DFS epoch must be positive");
    VSGPU_REQUIRES(cfg_.stepHz > Hertz{}, "DFS step must be positive");
    VSGPU_REQUIRES(cfg_.minHz <= cfg_.maxHz,
                   "DFS frequency band is inverted");
    requestHz_.fill(cfg_.maxHz);
}

void
DfsGovernor::step(const Gpu &gpu)
{
    ++cycleInEpoch_;
    if (cycleInEpoch_ < cfg_.epoch)
        return;
    cycleInEpoch_ = 0;

    for (int i = 0; i < config::numSMs; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const std::uint64_t retired = gpu.sm(i).retired();
        const double epochInstrs =
            static_cast<double>(retired - lastRetired_[idx]);
        lastRetired_[idx] = retired;

        const double fracNow =
            gpu.smFrequencyFraction(i) > 0.0
                ? gpu.smFrequencyFraction(i)
                : 1.0;
        // IPC normalized to full clock: what this SM would retire per
        // full-speed cycle given the observed per-own-cycle IPC.
        const double ipcAtFull =
            epochInstrs / (static_cast<double>(cfg_.epoch) * fracNow);

        // Track the best sustained full-speed IPC as the reference.
        referenceIpc_[idx] =
            std::max(ipcAtFull, 0.95 * referenceIpc_[idx]);
        if (referenceIpc_[idx] <= 0.0)
            continue;

        // Lowest frequency predicted to hit the target throughput:
        // throughput ~ min(ipcAtFull, boundedByMemory) * f/fmax, so
        // f >= target * fmax * (reference / ipcAtFull-at-f).
        const double needFraction =
            cfg_.perfTarget * referenceIpc_[idx] /
            std::max(ipcAtFull, 1e-6) * fracNow;
        Hertz hz = needFraction * config::smClockHz;
        hz = std::ceil(hz / cfg_.stepHz) * cfg_.stepHz;
        const Hertz next = std::clamp(hz, cfg_.minHz, cfg_.maxHz);
        if (next != requestHz_[idx])
            ++transitions_;
        requestHz_[idx] = next;
    }
}

} // namespace vsgpu
