#include "hypervisor/pg.hh"

#include "common/check.hh"
#include "common/logging.hh"

namespace vsgpu
{

VSGPU_CONTRACT
PgGovernor::PgGovernor(const PgConfig &cfg)
    : cfg_(cfg)
{
    VSGPU_REQUIRES(cfg_.checkPeriod > 0, "check period must be positive");
}

bool
PgGovernor::unitAllowed(ExecUnitKind kind) const
{
    switch (kind) {
      case ExecUnitKind::Sp0:
      case ExecUnitKind::Sp1:
        return cfg_.gateSp;
      case ExecUnitKind::Sfu:
        return cfg_.gateSfu;
      case ExecUnitKind::Lsu:
        return cfg_.gateLsu;
      case ExecUnitKind::NumUnits:
        break;
    }
    return false;
}

void
PgGovernor::step(Gpu &gpu, Cycle now)
{
    if (++sinceCheck_ < cfg_.checkPeriod)
        return;
    sinceCheck_ = 0;

    for (int s = 0; s < gpu.numSMs(); ++s) {
        Sm &sm = gpu.sm(s);
        if (sm.done())
            continue;
        for (int u = 0; u < numExecUnits; ++u) {
            const auto kind = static_cast<ExecUnitKind>(u);
            if (!unitAllowed(kind))
                continue;
            if (vetoed_[static_cast<std::size_t>(s)]
                       [static_cast<std::size_t>(u)]) {
                ++vetoSkips_;
                continue;
            }
            ExecUnit &unit = sm.unit(kind);
            if (unit.gated(now) || unit.busy(now))
                continue;
            if (unit.idleCycles(now) >= cfg_.idleDetect) {
                sm.requestGate(kind, now);
                ++gateRequests_;
            }
        }
    }
}

VSGPU_CONTRACT void
PgGovernor::setVeto(int sm, ExecUnitKind unit, bool vetoed)
{
    VSGPU_REQUIRES(sm >= 0 && sm < config::numSMs, "bad SM index ", sm);
    vetoed_[static_cast<std::size_t>(sm)]
           [static_cast<std::size_t>(unit)] = vetoed;
}

void
PgGovernor::clearVetoes()
{
    for (auto &row : vetoed_)
        row.fill(false);
}

} // namespace vsgpu
