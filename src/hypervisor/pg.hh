/**
 * @file
 * Warped-Gates-style execution-unit power gating (paper Section V):
 * the GATES gating-aware scheduler lives in the SM (SchedulerKind::
 * Gates); this governor implements the idle-detect plus Blackout
 * policy — a block idle longer than the detect window is gated and
 * must stay gated for at least the break-even (blackout) period;
 * wake-ups happen on demand inside the SM with a latency penalty.
 */

#ifndef VSGPU_HYPERVISOR_PG_HH
#define VSGPU_HYPERVISOR_PG_HH

#include <array>

#include "common/units.hh"
#include "gpu/gpu.hh"

namespace vsgpu
{

/** Power-gating policy configuration. */
struct PgConfig
{
    /** Consecutive idle cycles before a block is gated. */
    Cycle idleDetect = 10;

    /** Cycles between policy evaluations. */
    Cycle checkPeriod = 4;

    /** Allow gating of SP blocks. */
    bool gateSp = true;
    /** Allow gating of the SFU block. */
    bool gateSfu = true;
    /** Allow gating of the LSU block. */
    bool gateLsu = true;
};

/**
 * The gating governor for the whole SM array.
 */
class PgGovernor
{
  public:
    explicit PgGovernor(const PgConfig &cfg = {});

    /**
     * Advance one cycle; every checkPeriod it proposes gating for
     * idle blocks.  Vetoed (sm, unit) pairs — set by the VS-aware
     * hypervisor — are skipped.
     */
    void step(Gpu &gpu, Cycle now);

    /** Veto/permit gating of one block. */
    void setVeto(int sm, ExecUnitKind unit, bool vetoed);

    /** Clear all vetoes. */
    void clearVetoes();

    /** @return configuration. */
    const PgConfig &config() const { return cfg_; }

    /** @return gate requests issued to SMs so far. */
    std::uint64_t gateRequests() const { return gateRequests_; }

    /** @return policy evaluations skipped by a hypervisor veto. */
    std::uint64_t vetoSkips() const { return vetoSkips_; }

  private:
    bool unitAllowed(ExecUnitKind kind) const;

    PgConfig cfg_;
    Cycle sinceCheck_ = 0;
    std::uint64_t gateRequests_ = 0;
    std::uint64_t vetoSkips_ = 0;
    std::array<std::array<bool, numExecUnits>, config::numSMs>
        vetoed_{};
};

} // namespace vsgpu

#endif // VSGPU_HYPERVISOR_PG_HH
