#include "hypervisor/vs_hypervisor.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hh"
#include "common/logging.hh"

namespace vsgpu
{

namespace
{

/** Stacking-position convention shared with VsPdn: layer = sm / 4
 *  (0 = top domain), column = sm % 4. */
int
columnOf(int sm)
{
    return sm % config::smsPerLayer;
}

} // namespace

VsAwareHypervisor::VsAwareHypervisor(const HypervisorConfig &cfg)
    : cfg_(cfg), freqThresholdHz_(cfg.freqThresholdHz),
      leakThresholdW_(cfg.leakThresholdW)
{
}

std::array<Hertz, config::numSMs>
VsAwareHypervisor::filterFrequencies(
    std::array<Hertz, config::numSMs> requested) const
{
    for (int c = 0; c < config::smsPerLayer; ++c) {
        Hertz fMax{};
        for (int sm = 0; sm < config::numSMs; ++sm)
            if (columnOf(sm) == c)
                fMax = std::max(
                    fMax, requested[static_cast<std::size_t>(sm)]);

        const Hertz floor = fMax - freqThresholdHz_;
        for (int sm = 0; sm < config::numSMs; ++sm) {
            if (columnOf(sm) != c)
                continue;
            Hertz &f = requested[static_cast<std::size_t>(sm)];
            if (f < floor) {
                // Pull the outlier up to the budgeted spread,
                // quantized to the DFS step grid.
                f = std::ceil(floor / cfg_.stepHz) * cfg_.stepHz;
                ++freqRemaps_;
            }
        }
    }
    return requested;
}

GatingPlan
VsAwareHypervisor::filterGating(
    const GatingPlan &requested,
    const std::array<Watts, numExecUnits> &unitLeakW) const
{
    GatingPlan plan{};

    for (int c = 0; c < config::smsPerLayer; ++c) {
        // Greedily admit gating requests, cheapest first, while the
        // column's gated-leakage spread stays inside the budget.
        std::array<Watts, config::numLayers> gatedLeak{};

        // Collect requests in this column.
        struct Req
        {
            int sm;
            int unit;
            Watts watts;
        };
        std::vector<Req> reqs;
        for (int sm = 0; sm < config::numSMs; ++sm) {
            if (columnOf(sm) != c)
                continue;
            for (int u = 0; u < numExecUnits; ++u) {
                if (requested[static_cast<std::size_t>(sm)]
                             [static_cast<std::size_t>(u)]) {
                    reqs.push_back(
                        {sm, u,
                         unitLeakW[static_cast<std::size_t>(u)]});
                }
            }
        }
        std::sort(reqs.begin(), reqs.end(),
                  [](const Req &a, const Req &b) {
                      return a.watts < b.watts;
                  });

        for (const Req &r : reqs) {
            const int layer = r.sm / config::smsPerLayer;
            gatedLeak[static_cast<std::size_t>(layer)] += r.watts;
            const auto minmax = std::minmax_element(gatedLeak.begin(),
                                                    gatedLeak.end());
            if (*minmax.second - *minmax.first > leakThresholdW_) {
                // Would exceed the imbalance budget: veto.
                gatedLeak[static_cast<std::size_t>(layer)] -= r.watts;
                ++gatingDenials_;
                continue;
            }
            plan[static_cast<std::size_t>(r.sm)]
                [static_cast<std::size_t>(r.unit)] = true;
        }
    }
    return plan;
}

VSGPU_CONTRACT void
VsAwareHypervisor::feedback(double throttleRate)
{
    VSGPU_REQUIRES(throttleRate >= 0.0 && throttleRate <= 1.0,
                   "throttle rate in [0,1], got ", throttleRate);
    // Simple multiplicative adaptation around the setpoint: high
    // smoothing pressure tightens the budgets, slack loosens them.
    const double ratio =
        throttleRate > cfg_.throttleSetpoint ? 0.9 : 1.05;
    freqThresholdHz_ = std::clamp(freqThresholdHz_ * ratio,
                                  cfg_.freqThresholdMinHz,
                                  cfg_.freqThresholdMaxHz);
    leakThresholdW_ = std::clamp(leakThresholdW_ * ratio,
                                 cfg_.leakThresholdMinW,
                                 cfg_.leakThresholdMaxW);
}

} // namespace vsgpu
