/**
 * @file
 * Simplified GRAPE-style dynamic frequency scaling (paper Section V):
 * a per-SM feedback governor that, every 4096-cycle epoch, picks the
 * lowest 50 MHz frequency step predicted to meet a performance target
 * expressed as a fraction of full-speed throughput.  Memory-bound
 * epochs therefore scale down (saving energy at little cost), exactly
 * the behaviour the paper's DFS experiments rely on.
 */

#ifndef VSGPU_HYPERVISOR_DFS_HH
#define VSGPU_HYPERVISOR_DFS_HH

#include <array>
#include <cstdint>

#include "common/units.hh"
#include "gpu/gpu.hh"

namespace vsgpu
{

/** DFS governor configuration. */
struct DfsConfig
{
    /** Target throughput as a fraction of full-speed (e.g. 0.7). */
    double perfTarget = 0.7;

    /** Decision period (cycles), as in GRAPE. */
    Cycle epoch = 4096;

    /** Frequency quantization step, as in GRAPE. */
    Hertz stepHz = 50.0_MHz;

    Hertz minHz = 200.0_MHz;
    Hertz maxHz = config::smClockHz;
};

/**
 * Per-SM DFS governor.
 */
class DfsGovernor
{
  public:
    explicit DfsGovernor(const DfsConfig &cfg = {});

    /**
     * Advance one cycle; on epoch boundaries, update the requested
     * per-SM frequencies from measured progress.
     *
     * @param gpu the device (reads retired counters; does NOT apply
     *            frequencies — the hypervisor filters them first).
     */
    void step(const Gpu &gpu);

    /** @return requested per-SM frequencies. */
    const std::array<Hertz, config::numSMs> &requested() const
    {
        return requestHz_;
    }

    /** @return configuration. */
    const DfsConfig &config() const { return cfg_; }

    /** @return per-SM frequency-step changes across all epochs. */
    std::uint64_t transitions() const { return transitions_; }

  private:
    DfsConfig cfg_;
    Cycle cycleInEpoch_ = 0;
    std::uint64_t transitions_ = 0;
    std::array<std::uint64_t, config::numSMs> lastRetired_{};
    std::array<double, config::numSMs> referenceIpc_{};
    std::array<Hertz, config::numSMs> requestHz_;
};

} // namespace vsgpu

#endif // VSGPU_HYPERVISOR_DFS_HH
