/**
 * @file
 * Quickstart: simulate one GPU benchmark on a voltage-stacked power
 * delivery subsystem and print the headline metrics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [benchmark-name]
 */

#include <cstring>
#include <iostream>

#include "common/table.hh"
#include "sim/cosim.hh"
#include "workloads/suite.hh"

using namespace vsgpu;

int
main(int argc, char **argv)
{
    // 1. Pick a workload (default: hotspot; any paper benchmark name
    //    works: backprop, bfs, heartwall, ...).
    Benchmark bench = Benchmark::Hotspot;
    if (argc > 1) {
        bool found = false;
        for (Benchmark b : allBenchmarks()) {
            if (std::strcmp(argv[1], benchmarkName(b)) == 0) {
                bench = b;
                found = true;
            }
        }
        if (!found) {
            std::cerr << "unknown benchmark '" << argv[1]
                      << "'; options:";
            for (Benchmark b : allBenchmarks())
                std::cerr << " " << benchmarkName(b);
            std::cerr << "\n";
            return 1;
        }
    }
    const WorkloadSpec workload =
        scaledToInstrs(workloadFor(bench), 1500);

    // 2. Configure the cross-layer voltage-stacked PDS: a 0.2x-area
    //    distributed CR-IVR plus the control-theoretic voltage
    //    smoothing layer (DIWS by default).
    CosimConfig cfg;
    cfg.pds = defaultPds(PdsKind::VsCrossLayer);
    cfg.maxCycles = 200000;

    // 3. Run the integrated co-simulation: the cycle-level GPU model
    //    produces per-SM power each clock, the circuit engine
    //    advances the stacked PDN, and the controller closes the
    //    loop.
    CoSimulator sim(cfg);
    const CosimResult r = sim.run(workload);

    // 4. Report.
    std::cout << "benchmark          : " << workload.name << "\n"
              << "cycles             : " << r.cycles << "\n"
              << "instructions       : " << r.instructions << "\n"
              << "avg GPU power      : "
              << formatFixed(r.avgLoadPower(), 1) << " W\n"
              << "power delivery eff.: "
              << formatPercent(r.energy.pde()) << "\n"
              << "mean layer voltage : "
              << formatFixed(r.meanVoltage, 3) << " V\n"
              << "worst layer voltage: "
              << formatFixed(r.minVoltage, 3) << " V\n"
              << "smoothing throttle : "
              << formatPercent(r.throttleRate) << " of cycles\n";

    Table breakdown("energy breakdown");
    breakdown.setHeader({"component", "joules", "share"});
    const auto &e = r.energy;
    const auto row = [&](const char *name, double joules) {
        breakdown.beginRow()
            .cell(name)
            .cell(joules * 1e3, 3)
            .cell(formatPercent(joules / e.wall))
            .endRow();
    };
    row("SM load", e.load);
    row("PDN resistive loss", e.pdn);
    row("CR-IVR loss", e.crIvr);
    row("control overheads", e.overhead);
    breakdown.print(std::cout);
    return 0;
}
