/**
 * @file
 * Define a custom synthetic workload and compare how it behaves on
 * the conventional and voltage-stacked power delivery subsystems.
 *
 * The example builds a deliberately "VS-hostile" kernel — heavy
 * compute bursts separated by global barriers with large per-SM
 * phase misalignment — and shows how the cross-layer solution keeps
 * the stacked layers inside the voltage margin anyway.
 */

#include <iostream>

#include "common/table.hh"
#include "sim/cosim.hh"
#include "workloads/generator.hh"

using namespace vsgpu;

namespace
{

/** A bursty, misaligned kernel stressing layer current balance. */
WorkloadSpec
hostileKernel()
{
    WorkloadSpec spec;
    spec.name = "hostile-bursts";

    PhaseSpec burst;
    burst.mix[static_cast<std::size_t>(OpClass::FpAlu)] = 0.75;
    burst.mix[static_cast<std::size_t>(OpClass::IntAlu)] = 0.25;
    burst.lengthInstrs = 160;
    burst.depChance = 0.15; // nearly independent -> high power
    PhaseSpec drain;
    drain.mix[static_cast<std::size_t>(OpClass::Load)] = 0.6;
    drain.mix[static_cast<std::size_t>(OpClass::IntAlu)] = 0.4;
    drain.lengthInstrs = 80;
    drain.depChance = 0.7;
    drain.rowHitRate = 0.4;
    drain.barrierAtEnd = true; // hard phase boundary

    spec.phases = {burst, drain};
    spec.repeats = 8;
    spec.l1HitRate = 0.5;
    spec.smJitter = 0.6;  // SMs far out of phase: worst for stacking
    spec.warpJitter = 0.1;
    spec.seed = 0xc0ffee;
    return spec;
}

CosimResult
runOn(PdsKind kind, const WorkloadSpec &spec)
{
    CosimConfig cfg;
    cfg.pds = defaultPds(kind);
    cfg.maxCycles = 200000;
    CoSimulator sim(cfg);
    return sim.run(spec);
}

} // namespace

int
main()
{
    const WorkloadSpec spec = hostileKernel();
    std::cout << "custom workload '" << spec.name << "': "
              << spec.totalInstrs() << " instructions/warp, "
              << spec.warpsPerSm << " warps/SM, smJitter "
              << spec.smJitter << "\n\n";

    Table table("PDS comparison for the custom workload");
    table.setHeader({"PDS", "PDE", "min V", "mean V", "imb>20%",
                     "throttle"});
    for (PdsKind kind :
         {PdsKind::ConventionalVrm, PdsKind::VsCircuitOnly,
          PdsKind::VsCrossLayer}) {
        const CosimResult r = runOn(kind, spec);
        table.beginRow()
            .cell(pdsName(kind))
            .cell(formatPercent(r.energy.pde()))
            .cell(r.minVoltage, 3)
            .cell(r.meanVoltage, 3)
            .cell(formatPercent(r.imbalanceBins[2] +
                                r.imbalanceBins[3]))
            .cell(formatPercent(r.throttleRate))
            .endRow();
    }
    table.print(std::cout);

    std::cout
        << "\nReading the table: stacking converts the workload's\n"
        << "inter-SM misalignment into layer-voltage noise (min V of\n"
        << "the circuit-only row); the cross-layer controller trades\n"
        << "a small amount of throttling for a restored margin while\n"
        << "keeping the stacked configuration's efficiency.\n";
    return 0;
}
