/**
 * @file
 * Impedance explorer: characterize a voltage-stacked PDN design the
 * way the paper's Section III does — sweep the effective impedances
 * and size the CR-IVR against a target bound.
 *
 * Usage:
 *   ./build/examples/impedance_explorer [ivr-area-fraction]
 *
 * With no argument it explores several CR-IVR sizes and reports the
 * smallest area meeting the 0.1-ohm worst-case bound.
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "ivr/cr_ivr.hh"
#include "pdn/impedance.hh"

using namespace vsgpu;

namespace
{

/** Build a VS PDN with a CR-IVR sized to the given area fraction. */
VsPdn
makePdn(double areaFraction)
{
    VsPdnOptions options;
    if (areaFraction > 0.0) {
        const CrIvrDesign design(areaFraction * config::gpuDieAreaMm2);
        options.crIvrEffOhms = design.effOhmsPerCell();
        options.crIvrFlyCapF = design.flyCapPerCellF();
    }
    return VsPdn(options);
}

/** Worst effective impedance over the analysis band. */
double
worstImpedance(const VsPdn &pdn)
{
    ImpedanceAnalyzer analyzer(pdn);
    double worst = 0.0;
    for (double f : logFrequencyGrid(1e6, 5e8, 40))
        worst = std::max(worst, analyzer.peakImpedance(f));
    return worst;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1) {
        // Detailed sweep of one design.
        const double area = std::atof(argv[1]);
        const VsPdn pdn = makePdn(area);
        ImpedanceAnalyzer analyzer(pdn);
        Table table("effective impedance, CR-IVR area " +
                    formatFixed(area, 2) + "x GPU");
        table.setHeader({"freq_MHz", "Z_G", "Z_ST", "Z_R_same",
                         "Z_R_diff"});
        for (const auto &p :
             analyzer.sweep(logFrequencyGrid(1e6, 500e6, 24))) {
            table.beginRow()
                .cell(p.freqHz / 1e6, 2)
                .cell(p.zGlobal, 4)
                .cell(p.zStack, 4)
                .cell(p.zResidualSameLayer, 4)
                .cell(p.zResidualDiffLayer, 4)
                .endRow();
        }
        table.print(std::cout);
        return 0;
    }

    // Sizing study: impedance bound vs CR-IVR area.
    std::cout << "CR-IVR sizing against the 0.1-ohm worst-case "
                 "bound (paper Section III-C):\n\n";
    Table table("worst impedance vs area");
    table.setHeader({"area_xGPU", "area_mm2", "Reff_per_cell",
                     "worst_Z", "meets 0.1 ohm"});
    double smallestPassing = -1.0;
    for (double area : {0.0, 0.1, 0.2, 0.4, 0.8, 1.2, 1.72, 2.0}) {
        const VsPdn pdn = makePdn(area);
        const double worst = worstImpedance(pdn);
        const bool pass = worst < 0.1;
        if (pass && smallestPassing < 0.0)
            smallestPassing = area;
        table.beginRow()
            .cell(area, 2)
            .cell(area * config::gpuDieAreaMm2, 1)
            .cell(area > 0.0
                      ? CrIvrDesign(area * config::gpuDieAreaMm2)
                            .effOhmsPerCell()
                      : 0.0,
                  4)
            .cell(worst, 4)
            .cell(pass ? "yes" : "NO")
            .endRow();
    }
    table.print(std::cout);
    if (smallestPassing > 0.0) {
        std::cout << "\nSmallest surveyed circuit-only design meeting "
                     "the bound: "
                  << formatFixed(smallestPassing, 2)
                  << "x GPU area.\nThe cross-layer approach instead "
                     "runs at 0.2x and lets the architecture loop "
                     "cover the low-frequency residual.\n";
    }
    return 0;
}
