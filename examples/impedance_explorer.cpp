/**
 * @file
 * Impedance explorer: characterize a voltage-stacked PDN design the
 * way the paper's Section III does — sweep the effective impedances
 * and size the CR-IVR against a target bound.
 *
 * Usage:
 *   ./build/examples/impedance_explorer [ivr-area-fraction]
 *
 * With no argument it explores several CR-IVR sizes and reports the
 * smallest area meeting the 0.1-ohm worst-case bound.
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "ivr/cr_ivr.hh"
#include "pdn/impedance.hh"

using namespace vsgpu;

namespace
{

/** Build a VS PDN with a CR-IVR sized to the given area fraction. */
VsPdn
makePdn(double areaFraction)
{
    VsPdnOptions options;
    if (areaFraction > 0.0) {
        const CrIvrDesign design(areaFraction * config::gpuDieArea);
        options.crIvrEffOhms = design.effOhmsPerCell();
        options.crIvrFlyCapF = design.flyCapPerCell();
    }
    return VsPdn(options);
}

/** Worst effective impedance over the analysis band. */
Ohms
worstImpedance(const VsPdn &pdn)
{
    ImpedanceAnalyzer analyzer(pdn);
    Ohms worst{};
    for (Hertz f : logFrequencyGrid(1.0_MHz, 500.0_MHz, 40))
        worst = std::max(worst, analyzer.peakImpedance(f));
    return worst;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1) {
        // Detailed sweep of one design.
        const double area = std::atof(argv[1]);
        const VsPdn pdn = makePdn(area);
        ImpedanceAnalyzer analyzer(pdn);
        Table table("effective impedance, CR-IVR area " +
                    formatFixed(area, 2) + "x GPU");
        table.setHeader({"freq_MHz", "Z_G", "Z_ST", "Z_R_same",
                         "Z_R_diff"});
        for (const auto &p :
             analyzer.sweep(logFrequencyGrid(1.0_MHz, 500.0_MHz,
                                             24))) {
            table.beginRow()
                .cell(p.freq / 1.0_MHz, 2)
                .cell(p.zGlobal.raw(), 4)
                .cell(p.zStack.raw(), 4)
                .cell(p.zResidualSameLayer.raw(), 4)
                .cell(p.zResidualDiffLayer.raw(), 4)
                .endRow();
        }
        table.print(std::cout);
        return 0;
    }

    // Sizing study: impedance bound vs CR-IVR area.
    std::cout << "CR-IVR sizing against the 0.1-ohm worst-case "
                 "bound (paper Section III-C):\n\n";
    Table table("worst impedance vs area");
    table.setHeader({"area_xGPU", "area_mm2", "Reff_per_cell",
                     "worst_Z", "meets 0.1 ohm"});
    double smallestPassing = -1.0;
    for (double area : {0.0, 0.1, 0.2, 0.4, 0.8, 1.2, 1.72, 2.0}) {
        const VsPdn pdn = makePdn(area);
        const Ohms worst = worstImpedance(pdn);
        const bool pass = worst < 0.1_Ohm;
        if (pass && smallestPassing < 0.0)
            smallestPassing = area;
        table.beginRow()
            .cell(area, 2)
            .cell(area * config::gpuDieArea / 1.0_mm2, 1)
            .cell(area > 0.0
                      ? CrIvrDesign(area * config::gpuDieArea)
                            .effOhmsPerCell()
                            .raw()
                      : 0.0,
                  4)
            .cell(worst.raw(), 4)
            .cell(pass ? "yes" : "NO")
            .endRow();
    }
    table.print(std::cout);
    if (smallestPassing > 0.0) {
        std::cout << "\nSmallest surveyed circuit-only design meeting "
                     "the bound: "
                  << formatFixed(smallestPassing, 2)
                  << "x GPU area.\nThe cross-layer approach instead "
                     "runs at 0.2x and lets the architecture loop "
                     "cover the low-frequency residual.\n";
    }
    return 0;
}
