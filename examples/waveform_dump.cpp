/**
 * @file
 * Dump PDN waveforms: reproduce the paper's Fig. 9 worst-case event
 * at circuit-level resolution and write the boundary-rail and
 * layer-voltage waveforms as VCD (GTKWave) and CSV files.
 *
 * Usage:
 *   ./build/examples/waveform_dump [out-prefix]
 *
 * Writes <prefix>.vcd and <prefix>.csv (default prefix: worst_case).
 */

#include <fstream>
#include <iostream>
#include <string>

#include "circuit/wave_writer.hh"
#include "ivr/cr_ivr.hh"
#include "pdn/vs_pdn.hh"

using namespace vsgpu;

int
main(int argc, char **argv)
{
    const std::string prefix = argc > 1 ? argv[1] : "worst_case";

    // 0.2x-area CR-IVR voltage-stacked PDN.
    const CrIvrDesign design(0.2 * config::gpuDieArea);
    VsPdnOptions options;
    options.crIvrEffOhms = design.effOhmsPerCell();
    options.crIvrFlyCapF = design.flyCapPerCell();
    VsPdn pdn(options);

    TransientSim sim(pdn.netlist(), config::clockPeriod.raw());
    WaveWriter wave(sim, 4);
    // Record each layer voltage of column 0 and the boundary rails.
    for (int layer = 0; layer < pdn.layers(); ++layer) {
        wave.addSignal("layer" + std::to_string(layer) + "_col0",
                       pdn.smTopNode(pdn.smIndexAt(layer, 0)),
                       pdn.smBottomNode(pdn.smIndexAt(layer, 0)));
    }
    for (int level = 0; level <= pdn.layers(); ++level)
        wave.addSignal("rail_b" + std::to_string(level),
                       pdn.boundaryNode(level, 0));

    // Balanced nominal load, then halt layer 0 at 2 us.
    const double amps = 6.0;
    for (int sm = 0; sm < pdn.numSms(); ++sm)
        sim.setCurrent(pdn.smCurrentSource(sm), amps);
    sim.initToDc();

    const Cycle haltAt =
        static_cast<Cycle>(2.0_us / config::clockPeriod);
    const Cycle total =
        static_cast<Cycle>(5.0_us / config::clockPeriod);
    for (Cycle cycle = 0; cycle < total; ++cycle) {
        if (cycle == haltAt) {
            for (int col = 0; col < pdn.columns(); ++col)
                sim.setCurrent(
                    pdn.smCurrentSource(pdn.smIndexAt(0, col)),
                    -0.8); // halted SMs: leakage only, load R cancels
        }
        sim.step();
        wave.sample();
    }

    std::ofstream vcd(prefix + ".vcd");
    wave.writeVcd(vcd, "vs_pdn");
    std::ofstream csv(prefix + ".csv");
    wave.writeCsv(csv);

    std::cout << "wrote " << wave.numSamples() << " samples x "
              << wave.numSignals() << " signals to " << prefix
              << ".vcd / " << prefix << ".csv\n"
              << "open the VCD in GTKWave to see the halted-layer "
                 "imbalance event at 2 us.\n";

    // Quick textual summary.
    double minLayer = 1e9, maxLayer = 0.0;
    for (std::size_t s = 0; s < wave.numSamples(); ++s) {
        for (int layer = 0; layer < pdn.layers(); ++layer) {
            const double v =
                wave.value(s, static_cast<std::size_t>(layer));
            minLayer = std::min(minLayer, v);
            maxLayer = std::max(maxLayer, v);
        }
    }
    std::cout << "layer-voltage excursion: " << minLayer << " V .. "
              << maxLayer << " V\n";
    return 0;
}
