/**
 * @file
 * Collaborative power management on a voltage-stacked GPU (paper
 * Section VI-D): run DFS and power gating through the VS-aware
 * hypervisor and compare against the conventional system.
 */

#include <iostream>

#include "common/table.hh"
#include "hypervisor/dfs.hh"
#include "hypervisor/pg.hh"
#include "hypervisor/vs_hypervisor.hh"
#include "sim/cosim.hh"
#include "workloads/suite.hh"

using namespace vsgpu;

namespace
{

struct Row
{
    std::string label;
    double energyJ;
    Cycle cycles;
    double pde;
    double minV;
};

Row
runConfig(const std::string &label, PdsKind kind, bool dfsOn,
          bool pgOn)
{
    const WorkloadSpec wl =
        scaledToInstrs(workloadFor(Benchmark::Srad), 1000);

    DfsConfig dcfg;
    dcfg.perfTarget = 0.7; // GRAPE-style 70% performance goal
    DfsGovernor dfs(dcfg);
    PgGovernor pg;
    VsAwareHypervisor hv;

    CosimConfig cfg;
    cfg.pds = defaultPds(kind);
    if (pgOn)
        cfg.gpu.sm.scheduler = SchedulerKind::Gates;
    cfg.maxCycles = 400000;
    CoSimulator sim(cfg);
    if (dfsOn)
        sim.attachDfs(&dfs);
    if (pgOn)
        sim.attachPg(&pg);
    if (isVoltageStacked(kind) && (dfsOn || pgOn))
        sim.attachHypervisor(&hv); // Algorithm 2 command mapping
    const CosimResult r = sim.run(wl);
    return {label, r.energy.wall, r.cycles, r.energy.pde(),
            r.minVoltage};
}

} // namespace

int
main()
{
    std::cout << "Collaborative power management demo (srad kernel, "
                 "DFS target 70%)\n\n";

    const Row rows[] = {
        runConfig("conventional, no PM", PdsKind::ConventionalVrm,
                  false, false),
        runConfig("conventional + DFS", PdsKind::ConventionalVrm,
                  true, false),
        runConfig("conventional + PG", PdsKind::ConventionalVrm,
                  false, true),
        runConfig("VS cross-layer, no PM", PdsKind::VsCrossLayer,
                  false, false),
        runConfig("VS cross-layer + DFS (hypervisor)",
                  PdsKind::VsCrossLayer, true, false),
        runConfig("VS cross-layer + PG (hypervisor)",
                  PdsKind::VsCrossLayer, false, true),
    };

    const double norm = rows[0].energyJ;
    Table table("total energy normalized to conventional/no-PM");
    table.setHeader({"configuration", "energy", "cycles", "PDE",
                     "min V"});
    for (const Row &r : rows) {
        table.beginRow()
            .cell(r.label)
            .cell(r.energyJ / norm, 3)
            .cell(static_cast<long long>(r.cycles))
            .cell(formatPercent(r.pde))
            .cell(r.minV, 3)
            .endRow();
    }
    table.print(std::cout);

    std::cout
        << "\nThe hypervisor (Algorithm 2) remaps DFS/PG commands so\n"
        << "per-column frequency and gated-leakage spreads stay\n"
        << "inside the current-imbalance budget; the VS rows keep a\n"
        << "safe minimum voltage while their higher PDE converts the\n"
        << "same optimizations into larger wall-energy savings.\n";
    return 0;
}
