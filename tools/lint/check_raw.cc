/**
 * @file
 * Families 5 and 7: raw-escape (token-level) and unit-flow
 * (semantic).
 *
 * Quantity::raw() is the deliberate escape hatch out of the
 * dimensional type system (src/common/quantity.hh).  Inside the
 * numeric core it is legitimate — matrix stamps, AC solves, and the
 * verifier all assemble raw doubles by design — but in modelling and
 * simulation code every .raw() is a point where a unit error can
 * re-enter silently.
 *
 * raw-escape flags each .raw() / ->raw() call outside the
 * numeric-core whitelist (see checkAppliesTo) so each new escape is
 * either moved behind a typed interface or explicitly waived with
 * // vsgpu-lint: raw-escape-ok(<reason>).
 *
 * unit-flow goes further: once a value has escaped to a raw double,
 * the suffix-matching unit-safety family can only see names that
 * carry a unit suffix.  unit-flow instead propagates unit tags
 * through the dataflow core — a tag is seeded by `q.raw()` on a
 * variable whose declared type is a Quantity alias (Volts, Amps, …)
 * or by a unit-suffixed double name, and flows through assignments
 * and arithmetic.  Two rules fire on the converged tags:
 *
 *   unit-flow.mixed-units    an additive (+/-) expression whose
 *       operands carry different unit tags: volts + amps is a bug no
 *       matter what the intermediate variables are called.
 *       Multiplicative combinations (volts.raw() * amps.raw()) form
 *       a derived dimension and clear the tag instead.
 *   unit-flow.arg-mismatch   a tagged value passed to a (possibly
 *       cross-TU) function parameter whose Quantity type or unit
 *       suffix expects a different unit.
 *
 * Waiver: // vsgpu-lint: unit-flow-ok(<reason>).
 */

#include "dataflow.hh"
#include "semantic.hh"

#include <array>
#include <cctype>
#include <map>
#include <string>

namespace vsgpu::lint
{

void
checkRawEscape(const SourceFile &src, std::vector<Diagnostic> &out)
{
    const std::vector<Token> tokens = tokenize(src.code());

    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
        // Member call shape: '.' or '->', identifier 'raw', '(', ')'.
        // The receiver expression is irrelevant: only Quantity has a
        // member named raw() in this codebase, so the shape is the
        // signature.
        if (tokens[i].text != "." && tokens[i].text != "->")
            continue;
        if (tokens[i + 1].text != "raw" ||
            tokens[i + 1].kind != Token::Kind::Identifier)
            continue;
        if (tokens[i + 2].text != "(")
            continue;
        if (i + 3 >= tokens.size() || tokens[i + 3].text != ")")
            continue;
        const int line = src.lineOf(tokens[i + 1].offset);
        if (src.hasWaiver(line, "vsgpu-lint: raw-escape-ok"))
            continue;
        out.push_back(
            {src.display(), line, Check::RawEscape,
             "Quantity::raw() outside the numeric core leaks a "
             "unit-typed value as a bare double — keep the Quantity, "
             "move the conversion into src/circuit or src/verify, or "
             "waive with // vsgpu-lint: raw-escape-ok(<reason>)",
             ""});
    }
}

// ====================================================================
// Family 7: unit-flow (semantic, project-wide)
// ====================================================================

namespace
{

using TokenVec = std::vector<Token>;

/** Quantity alias names (src/common/quantity.hh); the alias itself
 *  is the unit tag. */
bool
isQuantityAlias(std::string_view name)
{
    static constexpr std::array aliases = {
        "Seconds", "Hertz",   "Amps",    "Coulombs", "Volts",
        "Ohms",    "Siemens", "Farads",  "Henries",  "Watts",
        "Joules",  "Area",    "FaradsPerArea", "WattsPerVolt",
    };
    for (std::string_view a : aliases)
        if (name == a)
            return true;
    return false;
}

/** Unit tag implied by a raw double's name suffix ("" if none). */
std::string
suffixTag(std::string_view name)
{
    static const std::pair<std::string_view, std::string_view>
        suffixes[] = {
            {"volts", "Volts"},     {"volt", "Volts"},
            {"mv", "Volts"},        {"amps", "Amps"},
            {"amp", "Amps"},        {"ma", "Amps"},
            {"ohms", "Ohms"},       {"ohm", "Ohms"},
            {"siemens", "Siemens"}, {"farads", "Farads"},
            {"farad", "Farads"},    {"nf", "Farads"},
            {"uf", "Farads"},       {"pf", "Farads"},
            {"henries", "Henries"}, {"henry", "Henries"},
            {"nh", "Henries"},      {"ph", "Henries"},
            {"watts", "Watts"},     {"watt", "Watts"},
            {"mw", "Watts"},        {"joules", "Joules"},
            {"joule", "Joules"},    {"nj", "Joules"},
            {"hertz", "Hertz"},     {"mhz", "Hertz"},
            {"ghz", "Hertz"},       {"khz", "Hertz"},
            {"hz", "Hertz"},        {"seconds", "Seconds"},
            {"second", "Seconds"},  {"secs", "Seconds"},
            {"sec", "Seconds"},     {"us", "Seconds"},
            {"ns", "Seconds"},      {"ps", "Seconds"},
            {"mm2", "Area"},        {"m2", "Area"},
        };
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    for (const auto &[suffix, tag] : suffixes) {
        if (lower.size() < suffix.size() ||
            lower.compare(lower.size() - suffix.size(),
                          suffix.size(), suffix) != 0)
            continue;
        const std::size_t at = name.size() - suffix.size();
        if (at == 0)
            return std::string(tag);
        // Require a word boundary (camelCase hump, '_', or digit)
        // so "analysis" does not end in "sis"-like accidents.
        const char before = name[at - 1];
        const char first = name[at];
        if (std::isupper(static_cast<unsigned char>(first)) ||
            before == '_' ||
            std::isdigit(static_cast<unsigned char>(before)))
            return std::string(tag);
    }
    return {};
}

/** Per-function unit-flow pass. */
class UnitFlow
{
  public:
    UnitFlow(const Project &project, const FunctionDef &fn,
             std::vector<Diagnostic> &out)
        : project_(project), fn_(fn),
          src_(project.sources()[static_cast<std::size_t>(
              fn.fileIndex)]),
          tokens_(project.tokens(fn.fileIndex)), out_(out)
    {
    }

    void
    run()
    {
        // Declared Quantity types: parameters and local declarations.
        for (const ParamInfo &p : fn_.params)
            if (!p.name.empty() && isQuantityAlias(p.type))
                quantType_[p.name] = p.type;

        const df::Cfg cfg =
            df::buildCfg(tokens_, fn_.bodyBegin, fn_.bodyEnd);
        for (const df::Block &block : cfg.blocks)
            for (const df::Stmt &stmt : block.stmts)
                if (stmt.declares && !stmt.defs.empty() &&
                    isQuantityAlias(stmt.declType))
                    quantType_[stmt.defs.front()] = stmt.declType;

        df::solveTaint(
            cfg,
            [&](const df::Stmt &stmt, const df::TaintEnv &env) {
                return transfer(stmt, env);
            },
            [&](const df::Stmt &stmt, const df::TaintEnv &env) {
                visit(stmt, env);
            });
    }

  private:
    /** Tags of one variable: environment first, then name suffix. */
    df::TagSet
    varTags(const std::string &name, const df::TaintEnv &env) const
    {
        const auto it = env.find(name);
        if (it != env.end())
            return it->second;
        const std::string tag = suffixTag(name);
        if (!tag.empty() && !quantType_.count(name))
            return {tag};
        return {};
    }

    /**
     * Evaluate the unit tags of expression tokens [s, e): split at
     * top-level +/- into additive operands, tag each operand
     * (raw()/value() sources, variable tags), clear multiplicative
     * combinations of >= 2 distinct tags (derived dimension), and
     * report whether distinct tags meet additively.
     */
    df::TagSet
    evalTags(std::size_t s, std::size_t e, const df::TaintEnv &env,
             bool &mixed) const
    {
        mixed = false;
        df::TagSet result;
        df::TagSet firstSeen;
        std::size_t opBegin = s;
        int depth = 0;
        for (std::size_t i = s; i <= e; ++i) {
            const std::string_view t =
                i < e ? tokens_[i].text : std::string_view{};
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}")
                --depth;
            const bool addOp =
                depth == 0 && (t == "+" || t == "-") &&
                i > opBegin; // leading sign is unary
            if (!addOp && i < e)
                continue;
            if (i > opBegin) {
                const df::TagSet tags =
                    operandTags(opBegin, i, env);
                if (!tags.empty()) {
                    if (!firstSeen.empty() && tags != firstSeen)
                        mixed = true;
                    if (firstSeen.empty())
                        firstSeen = tags;
                    result.insert(tags.begin(), tags.end());
                }
            }
            opBegin = i + 1;
        }
        if (mixed)
            return {}; // already wrong; do not cascade downstream
        return result;
    }

    /** Tags of one additive operand (a multiplicative chain). */
    df::TagSet
    operandTags(std::size_t s, std::size_t e,
                const df::TaintEnv &env) const
    {
        df::TagSet tags;
        bool multiplicative = false;
        int depth = 0;
        for (std::size_t i = s; i < e; ++i) {
            const std::string_view t = tokens_[i].text;
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}")
                --depth;
            if (depth == 0 && (t == "*" || t == "/"))
                multiplicative = true;
            if (tokens_[i].kind != Token::Kind::Identifier)
                continue;
            // Source: q.raw() / q.value() on a known Quantity.
            if ((t == "raw" || t == "value") && i >= 2 &&
                (tokens_[i - 1].text == "." ||
                 tokens_[i - 1].text == "->") &&
                i + 1 < e && tokens_[i + 1].text == "(") {
                const auto qt = quantType_.find(
                    std::string(tokens_[i - 2].text));
                if (qt != quantType_.end())
                    tags.insert(qt->second);
                continue;
            }
            // Plain variable use.
            const std::string_view prev =
                i > s ? tokens_[i - 1].text : std::string_view{};
            const std::string_view next =
                i + 1 < e ? tokens_[i + 1].text
                          : std::string_view{};
            if (prev == "." || prev == "->" || prev == "::" ||
                next == "::" || next == "(")
                continue;
            const df::TagSet vt =
                varTags(std::string(t), env);
            tags.insert(vt.begin(), vt.end());
        }
        // A product/quotient of >= 2 distinct units is a derived
        // dimension (volts * amps -> watts): clear the tag.
        if (multiplicative && tags.size() >= 2)
            return {};
        return tags;
    }

    /** Token index just past the first top-level assignment op. */
    std::size_t
    rhsBegin(const df::Stmt &stmt) const
    {
        int depth = 0;
        for (std::size_t i = stmt.tokBegin; i < stmt.tokEnd; ++i) {
            const std::string_view t = tokens_[i].text;
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}")
                --depth;
            else if (depth == 0 &&
                     (t == "=" || t == "+=" || t == "-=" ||
                      t == "*=" || t == "/="))
                return i + 1;
        }
        return stmt.isReturn ? stmt.tokBegin + 1 : stmt.tokBegin;
    }

    df::TagSet
    transfer(const df::Stmt &stmt, const df::TaintEnv &env) const
    {
        if (stmt.defs.empty())
            return {};
        bool mixed = false;
        return evalTags(rhsBegin(stmt), stmt.tokEnd, env, mixed);
    }

    void
    visit(const df::Stmt &stmt, const df::TaintEnv &env)
    {
        bool mixed = false;
        const df::TagSet tags =
            evalTags(rhsBegin(stmt), stmt.tokEnd, env, mixed);
        (void)tags;
        if (mixed)
            diagnose(stmt.offset, "unit-flow.mixed-units",
                     "values with different unit tags meet "
                     "additively — adding e.g. volts to amps is a "
                     "dimensional error even through unsuffixed "
                     "intermediates; keep the Quantity types or "
                     "convert explicitly");

        for (const df::CallRef &call : stmt.calls)
            checkCallArgs(call, env);
    }

    void
    checkCallArgs(const df::CallRef &call, const df::TaintEnv &env)
    {
        for (int id : project_.lookup(call.callee)) {
            const FunctionDef &callee =
                project_.index()
                    .functions[static_cast<std::size_t>(id)];
            if (callee.params.empty())
                continue;
            for (std::size_t a = 0;
                 a < call.args.size() &&
                 a < callee.params.size();
                 ++a) {
                const ParamInfo &param = callee.params[a];
                std::string expected;
                if (isQuantityAlias(param.type))
                    expected = param.type;
                else if (param.type == "double" ||
                         param.type == "float")
                    expected = suffixTag(param.name);
                if (expected.empty())
                    continue;
                df::TagSet tags;
                for (const std::string &root : call.args[a]) {
                    const df::TagSet vt = varTags(root, env);
                    tags.insert(vt.begin(), vt.end());
                }
                if (tags.size() == 1 && *tags.begin() != expected)
                    diagnose(call.nameOffset,
                             "unit-flow.arg-mismatch",
                             "argument tagged '" + *tags.begin() +
                                 "' flows into parameter '" +
                                 param.name + "' of '" +
                                 callee.name + "' which expects '" +
                                 expected +
                                 "' — unit mismatch across the "
                                 "call boundary");
            }
            break; // first overload with parameters is enough
        }
    }

    void
    diagnose(std::size_t offset, const std::string &id,
             std::string message)
    {
        const int line = src_.lineOf(offset);
        if (src_.hasWaiver(line, "vsgpu-lint: unit-flow-ok"))
            return;
        const std::string key = id + ":" + std::to_string(line);
        if (!seen_.insert(key).second)
            return;
        out_.push_back({src_.display(), line, Check::UnitFlow,
                        std::move(message), id});
    }

    const Project &project_;
    const FunctionDef &fn_;
    const SourceFile &src_;
    const TokenVec &tokens_;
    std::vector<Diagnostic> &out_;
    std::map<std::string, std::string> quantType_;
    std::set<std::string> seen_;
};

} // namespace

void
checkUnitFlow(const Project &project, std::vector<Diagnostic> &out)
{
    for (const FunctionDef &fn : project.index().functions) {
        UnitFlow flow(project, fn, out);
        flow.run();
    }
}

} // namespace vsgpu::lint
