/**
 * @file
 * Family 5: raw-escape.
 *
 * Quantity::raw() is the deliberate escape hatch out of the
 * dimensional type system (src/common/quantity.hh).  Inside the
 * numeric core it is legitimate — matrix stamps, AC solves, and the
 * verifier all assemble raw doubles by design — but in modelling and
 * simulation code every .raw() is a point where a unit error can
 * re-enter silently.  This family flags .raw() / ->raw() calls in
 * files outside the numeric-core whitelist (see checkAppliesTo) so
 * each new escape is either moved behind a typed interface or
 * explicitly waived:
 *
 *   // vsgpu-lint: raw-escape-ok(<reason>)
 *
 * on the diagnosed line or the line above it.
 */

#include "lint.hh"

#include <string>

namespace vsgpu::lint
{

void
checkRawEscape(const SourceFile &src, std::vector<Diagnostic> &out)
{
    const std::vector<Token> tokens = tokenize(src.code());

    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
        // Member call shape: '.' or '->', identifier 'raw', '(', ')'.
        // The receiver expression is irrelevant: only Quantity has a
        // member named raw() in this codebase, so the shape is the
        // signature.
        if (tokens[i].text != "." && tokens[i].text != "->")
            continue;
        if (tokens[i + 1].text != "raw" ||
            tokens[i + 1].kind != Token::Kind::Identifier)
            continue;
        if (tokens[i + 2].text != "(")
            continue;
        if (i + 3 >= tokens.size() || tokens[i + 3].text != ")")
            continue;
        const int line = src.lineOf(tokens[i + 1].offset);
        if (src.hasWaiver(line, "vsgpu-lint: raw-escape-ok"))
            continue;
        out.push_back(
            {src.display(), line, Check::RawEscape,
             "Quantity::raw() outside the numeric core leaks a "
             "unit-typed value as a bare double — keep the Quantity, "
             "move the conversion into src/circuit or src/verify, or "
             "waive with // vsgpu-lint: raw-escape-ok(<reason>)"});
    }
}

} // namespace vsgpu::lint
