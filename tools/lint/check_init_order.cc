/**
 * @file
 * Family: init-order (semantic, project-wide).
 *
 * Dynamic initialization of namespace-scope variables runs in an
 * unspecified order ACROSS translation units (the static
 * initialization order fiasco).  An initializer that reads another
 * TU's dynamically initialized global may observe it
 * zero-initialized — and whether it does changes with link order,
 * so the bug appears and vanishes with unrelated edits.  This is
 * exactly the class solver.hh's process-global default avoids by
 * construction (constant-initializable), and the family keeps it
 * avoided:
 *
 *   init-order.cross-tu    a namespace-scope initializer reads a
 *       global whose own initializer is dynamic (calls a
 *       non-constexpr function or reads mutable state) and lives in
 *       a different .cc file.
 *   init-order.via-call    the read hides one call deep: the
 *       initializer calls a helper (unambiguous, single candidate)
 *       whose body reads the other TU's dynamic global.
 *
 * Constant-initialized targets (const/constexpr, literal
 * initializers) never flag — constant initialization happens before
 * any dynamic initializer runs.  Targets declared in headers are
 * skipped too: every includer sees the definition, so there is no
 * cross-TU ordering question the token model can settle.  Fix:
 * function-local static (construct-on-first-use), or make the
 * target constant-initializable.
 *
 * Waiver: // vsgpu-lint: initorder-ok(<reason>).
 */

#include "concurrency_model.hh"
#include "lifetime_model.hh"
#include "semantic.hh"

#include <set>
#include <string>
#include <vector>

namespace vsgpu::lint
{

namespace
{

using TokenVec = std::vector<Token>;
constexpr std::string_view kWaiver = "vsgpu-lint: initorder-ok";

void
emit(const Project &project, int fileIndex, std::size_t offset,
     const std::string &id, std::string message,
     std::vector<Diagnostic> &out)
{
    const SourceFile &src =
        project.sources()[static_cast<std::size_t>(fileIndex)];
    const int line = src.lineOf(offset);
    if (src.hasWaiver(line, kWaiver))
        return;
    out.push_back({src.display(), line, Check::InitOrder,
                   std::move(message), id,
                   cm::columnOf(src, offset)});
}

bool
endsWith(std::string_view str, std::string_view suffix)
{
    return str.size() >= suffix.size() &&
           str.substr(str.size() - suffix.size()) == suffix;
}

/** The dynamic GlobalInit for @p name defined in another .cc than
 *  file @p readerFile, or nullptr. */
const lm::GlobalInit *
dynamicInitElsewhere(const Project &project, const std::string &name,
                     int readerFile)
{
    const lm::LifetimeModel &model = project.lifetime();
    for (int idx : model.initsOf(name)) {
        const lm::GlobalInit &init =
            model.globalInits()[static_cast<std::size_t>(idx)];
        if (!init.dynamic || init.fileIndex == readerFile)
            continue;
        const std::string &display =
            project.sources()[static_cast<std::size_t>(
                                  init.fileIndex)]
                .display();
        // Header-defined targets are visible to every includer;
        // only a .cc-private dynamic initializer has an order that
        // genuinely depends on link order.
        if (!endsWith(display, ".cc") && !endsWith(display, ".cpp"))
            continue;
        return &init;
    }
    return nullptr;
}

std::string
citeTarget(const Project &project, const lm::GlobalInit &target)
{
    return "'" + target.name + "', dynamically initialized in " +
           project.sources()[static_cast<std::size_t>(
                                 target.fileIndex)]
               .display() +
           ":" + std::to_string(target.line);
}

/** Is token @p i a variable read (not a member, qualifier, or
 *  declaration context)? */
bool
isVarRead(const TokenVec &toks, std::size_t i)
{
    if (toks[i].kind != Token::Kind::Identifier)
        return false;
    if (i > 0 && (toks[i - 1].text == "." ||
                  toks[i - 1].text == "->" ||
                  toks[i - 1].text == "::" ||
                  toks[i - 1].text == "&"))
        return false;
    if (i + 1 < toks.size() && toks[i + 1].text == "::")
        return false;
    return true;
}

void
scanReader(const Project &project, const lm::GlobalInit &reader,
           std::vector<Diagnostic> &out)
{
    const SymbolIndex &index = project.index();
    const TokenVec &toks = project.tokens(reader.fileIndex);
    // One report per (reader, name): `gW * gW` is one hazard.
    std::set<std::string> reported;

    for (std::size_t i = reader.initBegin;
         i < reader.initEnd && i < toks.size(); ++i) {
        if (!isVarRead(toks, i))
            continue;
        const std::string name(toks[i].text);
        if (name == reader.name || reported.count(name))
            continue;
        const bool isCall =
            i + 1 < toks.size() && toks[i + 1].text == "(";

        if (!isCall) {
            const lm::GlobalInit *target = dynamicInitElsewhere(
                project, name, reader.fileIndex);
            if (target == nullptr)
                continue;
            reported.insert(name);
            emit(project, reader.fileIndex, toks[i].offset,
                 "init-order.cross-tu",
                 "initializer of '" + reader.name + "' reads " +
                     citeTarget(project, *target) +
                     " — cross-TU dynamic initialization order is "
                     "unspecified, so this may read a "
                     "zero-initialized value depending on link "
                     "order; use a function-local static "
                     "(construct-on-first-use) or make the target "
                     "constant-initializable",
                 out);
            continue;
        }

        // One call deep: only an unambiguous helper is followed —
        // a misresolved overload must not invent an ordering bug.
        const std::vector<int> &cands = project.lookup(name);
        if (cands.size() != 1)
            continue;
        const FunctionDef &callee =
            index.functions[static_cast<std::size_t>(
                cands.front())];
        if (callee.bodyBegin >= callee.bodyEnd)
            continue;
        const TokenVec &ctoks = project.tokens(callee.fileIndex);
        for (std::size_t j = callee.bodyBegin; j < callee.bodyEnd;
             ++j) {
            if (!isVarRead(ctoks, j))
                continue;
            const std::string read(ctoks[j].text);
            const lm::GlobalInit *target = dynamicInitElsewhere(
                project, read, reader.fileIndex);
            if (target == nullptr)
                continue;
            reported.insert(name);
            emit(project, reader.fileIndex, toks[i].offset,
                 "init-order.via-call",
                 "initializer of '" + reader.name + "' calls '" +
                     name + "', which reads " +
                     citeTarget(project, *target) +
                     " (via " + name +
                     ") — cross-TU dynamic initialization order "
                     "is unspecified; use a function-local static "
                     "(construct-on-first-use) or make the target "
                     "constant-initializable",
                 out);
            break;
        }
    }
}

} // namespace

void
checkInitOrder(const Project &project, std::vector<Diagnostic> &out)
{
    for (const lm::GlobalInit &reader :
         project.lifetime().globalInits())
        scanReader(project, reader, out);
}

} // namespace vsgpu::lint
