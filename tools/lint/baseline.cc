/**
 * @file
 * Baseline handling: frozen debt that does not fail the gate.
 *
 * A fingerprint is "<check>|<file>|<squeezed line text>" — content-
 * addressed, so unrelated edits that only shift line numbers do not
 * invalidate the baseline, while touching a baselined line forces
 * the author to either fix it or consciously re-baseline.
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>

namespace vsgpu::lint
{

namespace
{

/** Collapse runs of whitespace to single spaces and trim. */
std::string
squeeze(std::string_view text)
{
    std::string out;
    bool pendingSpace = false;
    for (char c : text) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            pendingSpace = !out.empty();
            continue;
        }
        if (pendingSpace) {
            out.push_back(' ');
            pendingSpace = false;
        }
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
fingerprint(const Diagnostic &diag, std::string_view lineText)
{
    // Semantic families carry dotted ids (pool-escape.global-write)
    // that subdivide the family; the id is the stable head so a
    // family can grow new sub-rules without invalidating baselines.
    const std::string head =
        diag.id.empty() ? std::string(checkName(diag.check))
                        : diag.id;
    return head + "|" + diag.file + "|" + squeeze(lineText);
}

std::vector<std::string>
loadBaseline(const std::string &path)
{
    std::vector<std::string> entries;
    std::ifstream in(path);
    if (!in)
        return entries;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        entries.push_back(line);
    }
    return entries;
}

std::vector<Diagnostic>
subtractBaseline(const std::vector<Diagnostic> &diags,
                 const std::vector<SourceFile> &sources,
                 const std::vector<std::string> &baseline)
{
    std::map<std::string, int> budget;
    for (const std::string &entry : baseline)
        ++budget[entry];

    auto lineTextOf = [&](const Diagnostic &diag) -> std::string_view {
        const auto it = std::find_if(
            sources.begin(), sources.end(), [&](const SourceFile &s) {
                return s.display() == diag.file;
            });
        return it == sources.end() ? std::string_view{}
                                   : it->lineText(diag.line);
    };

    std::vector<Diagnostic> fresh;
    for (const Diagnostic &diag : diags) {
        const std::string fp = fingerprint(diag, lineTextOf(diag));
        const auto it = budget.find(fp);
        if (it != budget.end() && it->second > 0) {
            --it->second;
            continue;
        }
        fresh.push_back(diag);
    }
    return fresh;
}

} // namespace vsgpu::lint
