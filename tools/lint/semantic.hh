/**
 * @file
 * Cross-translation-unit semantic model for vsgpu_lint.
 *
 * Three layers, built once per invocation over every file named by
 * the compile database (plus headers):
 *
 *   SymbolIndex   function/method definitions with parsed parameter
 *                 lists and per-body side-effect summaries, mutable
 *                 namespace-scope globals, per-class member fields,
 *                 and project-wide const / atomic / pointer /
 *                 unordered-container name sets.
 *
 *   CallGraph     name-resolved call edges between indexed functions
 *                 with a bounded transitive closure, plus fixpoint
 *                 effect propagation: a function that calls a helper
 *                 which writes a global (or writes through a
 *                 reference parameter the caller forwarded) inherits
 *                 that effect, so a task body's writes are visible
 *                 any bounded number of calls deep.
 *
 *   Project       the façade the semantic check families consume:
 *                 sources, per-file token streams, the index, and
 *                 the call graph.
 *
 * The semantic families (pool-escape, unit-flow, determinism-taint,
 * and the concurrency-soundness engine: lock-discipline,
 * atomics-misuse, pool-happens-before, fp-determinism) run
 * project-wide over a Project instead of file-by-file;
 * runProjectChecks() applies the same path scoping as the per-file
 * families.
 */

#ifndef VSGPU_TOOLS_LINT_SEMANTIC_HH
#define VSGPU_TOOLS_LINT_SEMANTIC_HH

#include "lint.hh"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace vsgpu::lint
{

namespace lm
{
class LifetimeModel; // lifetime_model.hh
} // namespace lm

/** One function parameter as parsed from the definition. */
struct ParamInfo
{
    std::string name;
    std::string type;      ///< last type identifier (Volts, double, …)
    bool byRef = false;    ///< declared with & (or && )
    bool isPointer = false;
    bool isConst = false;  ///< const-qualified (read-only view)
};

/** One function or method definition found in a source file. */
struct FunctionDef
{
    std::string name;      ///< unqualified name
    std::string className; ///< qualifying/enclosing class, "" if free
    int fileIndex = 0;     ///< into Project::sources()
    int line = 0;          ///< of the name token
    std::size_t nameTok = 0;   ///< token index of the name (for the
                               ///< lifetime model's return-type scan)
    std::size_t bodyBegin = 0; ///< token index just past the '{'
    std::size_t bodyEnd = 0;   ///< token index of the closing '}'
    std::vector<ParamInfo> params;

    // --- side-effect summary (direct, then widened transitively by
    // --- the call graph's propagateEffects pass) -----------------
    std::set<std::string> writesGlobals; ///< indexed globals written
    bool writesFields = false; ///< writes a member field / via this
    std::set<int> writesParams; ///< ref/ptr params written through
    std::set<std::string> calls; ///< unqualified callee names
    bool takesLock = false; ///< body declares a lock guard

    /** Normalized mutex keys ("Class::mu" / "mu") this function
     *  acquires — directly or, after propagateEffects, through any
     *  bounded number of callees. */
    std::set<std::string> locksAcquired;
    /** Call path provenance for a transitively acquired lock. */
    std::map<std::string, std::string> lockVia;
    /** Normalized keys promised by VSGPU_ACQUIRES(mu). */
    std::set<std::string> annAcquires;
    /** Normalized keys forbidden at call sites: VSGPU_EXCLUDES. */
    std::set<std::string> annExcludes;
    /** Shared FP names ("g" / "Class::field") this function
     *  accumulates into (+=, -=, *=, /=, x = x + ...), directly or
     *  transitively.  Tracked separately from writesGlobals because
     *  a *serialized* FP accumulation is still order-dependent. */
    std::set<std::string> fpAccumulates;
    /** Call path provenance for a transitive FP accumulation. */
    std::map<std::string, std::string> fpVia;
    /** Body directly submits work to exec::Pool (parallelFor /
     *  runSweep / runIndexSweep).  The pool-happens-before family
     *  walks the call graph itself to find transitive submissions,
     *  requiring unambiguous name resolution at every hop. */
    bool submitsToPool = false;

    /** One call-site argument that forwards a caller parameter. */
    struct ArgFlow
    {
        int param = 0;      ///< caller parameter index forwarded
        std::string callee; ///< unqualified callee name
        int arg = 0;        ///< callee argument position
    };
    /** Caller-parameter forwardings (for writesParams propagation). */
    std::vector<ArgFlow> forwards;

    /** Representative call path for a transitive effect, for
     *  diagnostics ("via helperA -> helperB"). */
    std::map<std::string, std::string> effectVia;
};

/** Declaration site of an indexed name (for cross-TU provenance). */
struct DeclSite
{
    int fileIndex = -1;
    int line = 0;
};

/** One VSGPU_GUARDED_BY-annotated variable declaration. */
struct GuardedVar
{
    std::string name;      ///< variable / field name
    std::string className; ///< declaring class, "" for globals
    std::string mutexKey;  ///< normalized required mutex key
    DeclSite decl;
};

/** Project-wide symbol index. */
struct SymbolIndex
{
    std::vector<FunctionDef> functions;
    /** Unqualified name -> function ids (overloads merged). */
    std::map<std::string, std::vector<int>> byName;
    /** Class name -> member field names. */
    std::map<std::string, std::set<std::string>> classFields;
    /** Mutable namespace-scope variables (and class statics). */
    std::set<std::string> globals;
    /** Names declared std::atomic anywhere in the project. */
    std::set<std::string> atomics;
    /** Names declared const anywhere (read-only; never a race). */
    std::set<std::string> constNames;
    /** Names declared as raw pointers anywhere (aliasing capture). */
    std::set<std::string> pointerNames;
    /** Per-file names of unordered-container variables. */
    std::map<int, std::set<std::string>> unorderedVars;

    /** Names declared with a std mutex type anywhere. */
    std::set<std::string> mutexNames;
    /** Mutex name -> owning class names ("" = namespace scope). */
    std::map<std::string, std::set<std::string>> mutexOwners;
    /** VSGPU_GUARDED_BY annotations, in declaration order. */
    std::vector<GuardedVar> guarded;
    /** FP-typed shared names: globals by name, fields as
     *  "Class::field" (double/float/Quantity aliases). */
    std::set<std::string> fpNames;
    /** First declaration site of each atomic name. */
    std::map<std::string, DeclSite> atomicDecl;
    /** First declaration site of each mutable global. */
    std::map<std::string, DeclSite> globalDecl;
    /** First declaration site of each unordered-container name. */
    std::map<std::string, DeclSite> unorderedDecl;
};

/**
 * Normalize a mutex expression to a stable lock-order key: the last
 * chain component, qualified as "Class::name" when the name is a
 * member of @p contextClass or of exactly one class project-wide
 * ("queue.mutex" -> "WorkerQueue::mutex"); bare otherwise.
 */
std::string normalizeMutexKey(const SymbolIndex &index,
                              const std::string &expr,
                              const std::string &contextClass);

/**
 * Parse every source into the index.  @p tokens must hold the
 * tokenization of each file's scrubbed code, parallel to @p sources.
 */
SymbolIndex buildSymbolIndex(
    const std::vector<SourceFile> &sources,
    const std::vector<std::vector<Token>> &tokens);

/** Call graph over SymbolIndex::functions. */
struct CallGraph
{
    /** Direct callees (function ids) per function id. */
    std::vector<std::vector<int>> callees;
    /** Bounded transitive closure (excludes the function itself
     *  unless reachable through a cycle). */
    std::vector<std::vector<int>> reachable;
};

/**
 * Resolve call edges by name and compute the bounded closure.
 * @p depthBound caps the closure walk so pathological graphs (and
 * cycles) terminate; effects further away are invisible by design.
 */
CallGraph buildCallGraph(const SymbolIndex &index,
                         int depthBound = 8);

/**
 * Widen each function's side-effect summary with its callees':
 * callee global/field writes merge into the caller (with a via-path
 * for diagnostics); a callee writing through parameter k propagates
 * to the caller's own parameter when the caller forwards it.  Calls
 * into lock-taking callees do not propagate (their writes are
 * serialized).  Runs @p rounds fixpoint iterations — effects become
 * visible up to @p rounds calls deep.
 */
void propagateEffects(SymbolIndex &index, const CallGraph &graph,
                      int rounds = 4);

/** Everything the semantic families need, built once. */
class Project
{
  public:
    explicit Project(std::vector<SourceFile> sources);

    const std::vector<SourceFile> &sources() const
    {
        return sources_;
    }
    const std::vector<Token> &tokens(int fileIndex) const
    {
        return tokens_[static_cast<std::size_t>(fileIndex)];
    }
    const SymbolIndex &index() const { return index_; }
    const CallGraph &callGraph() const { return graph_; }

    /** Functions whose unqualified name is @p name (may be empty). */
    const std::vector<int> &lookup(const std::string &name) const;

    /** Region/escape lifetime model (built once in the ctor). */
    const lm::LifetimeModel &lifetime() const { return *lifetime_; }

  private:
    std::vector<SourceFile> sources_;
    std::vector<std::vector<Token>> tokens_;
    SymbolIndex index_;
    CallGraph graph_;
    std::shared_ptr<const lm::LifetimeModel> lifetime_;
};

/**
 * Family 6: pool-escape — mutable state reachable from a task body
 * submitted to exec::Pool::parallelFor / runSweep / runIndexSweep
 * (captures, this, pointer captures, and writes any bounded number
 * of calls deep) written without a lock, atomic, or per-index slot.
 */
void checkPoolEscape(const Project &project,
                     std::vector<Diagnostic> &out);

/**
 * Family 7: unit-flow — unit tags propagated from Quantity::raw()
 * / ::value() sources and unit-suffixed names through assignments,
 * additive arithmetic, and call arguments; flags additive mixes and
 * tagged arguments flowing into parameters expecting another unit.
 */
void checkUnitFlow(const Project &project,
                   std::vector<Diagnostic> &out);

/**
 * Family 8: determinism-taint — wall-clock, RNG, address-as-value,
 * and unordered-iteration-order taint flowing (across function
 * boundaries) into stats registry writes, trace events, or summary /
 * golden JSON outputs.
 */
void checkDeterminismTaint(const Project &project,
                           std::vector<Diagnostic> &out);

/**
 * Family 9: lock-discipline — interprocedural lock-set analysis.
 * Builds a global lock-order graph from every acquisition (RAII
 * guards, manual lock(), VSGPU_ACQUIRES promises, and lock-sets
 * propagated through the call graph) and reports order cycles
 * (potential deadlock, lock-discipline.order-cycle), double
 * acquisition of a held mutex (.double-lock), unlock without a
 * matching lock (.unlock-without-lock), VSGPU_GUARDED_BY accesses
 * outside the required lock (.guarded-by), unfulfilled
 * VSGPU_ACQUIRES promises (.acquires-unfulfilled), and calls into
 * VSGPU_EXCLUDES functions with the excluded mutex held
 * (.excludes-violation).
 */
void checkLockDiscipline(const Project &project,
                         std::vector<Diagnostic> &out);

/**
 * Family 10: atomics-misuse — a name declared std::atomic in one TU
 * and plain in another (atomics-misuse.mixed-declaration), a global
 * written only under locks but read without one (.unguarded-read),
 * and a relaxed atomic store publishing earlier unguarded plain
 * writes (flag-then-data, .relaxed-publish).
 */
void checkAtomicsMisuse(const Project &project,
                        std::vector<Diagnostic> &out);

/**
 * Family 11: pool-happens-before — models Pool submission/join as
 * happens-before edges (accesses sequenced before parallelFor /
 * runSweep and after their return are ordered and never flagged);
 * inside a task body it reports reaching a nested pool submission
 * (the pool is not reentrant, pool-happens-before.nested-submit)
 * and same-phase cross-task element access — a stencil subscript
 * [i +/- k] on a container the task also writes per-index
 * (.cross-task-read).
 */
void checkPoolHappensBefore(const Project &project,
                            std::vector<Diagnostic> &out);

/**
 * Family 12: fp-determinism — floating-point accumulations whose
 * result depends on task/thread scheduling order even when properly
 * serialized (a lock or atomic makes the sum race-free but not
 * order-stable: fp-determinism.locked-reduction), and FP reductions
 * over containers whose unordered-ness is declared in another TU or
 * behind a parameter type (.unordered-reduction).  Both break the
 * jobs-1-vs-N bitwise-identity invariant.
 */
void checkFpDeterminism(const Project &project,
                        std::vector<Diagnostic> &out);

/**
 * Family 13: use-after-move — a moved-from local or parameter read
 * before reinitialization (use-after-move.use) or moved a second
 * time (.double-move), with the move visible directly or through a
 * sink-parameter callee any bounded number of calls deep ("via
 * helper" provenance).  May-moves on one branch flag later uses on
 * the joined path, like clang-tidy's bugprone-use-after-move.
 */
void checkUseAfterMove(const Project &project,
                       std::vector<Diagnostic> &out);

/**
 * Family 14: dangling-view — a view (string_view/span/reference/
 * pointer) outliving its referent: returning a view of a Local
 * (dangling-view.return-local), binding a view to an owning
 * temporary returned by value (.bind-temporary), or escaping the
 * address/view of a Local into Field/Global/Param-region storage,
 * including registries reached through a callee whose parameter
 * escapes (.escape-local, "via helper").
 */
void checkDanglingView(const Project &project,
                       std::vector<Diagnostic> &out);

/**
 * Family 15: iterator-invalidation — an iterator/reference/pointer
 * into a container used after a may-mutate operation on that
 * container (iterator-invalidation.use-after-mutate), cross-TU when
 * the mutation hides inside a callee that mutates its container
 * parameter; and range-for bodies structurally mutating the
 * container they iterate (.mutate-while-iterating).
 */
void checkIterInvalidation(const Project &project,
                           std::vector<Diagnostic> &out);

/**
 * Family 16: init-order — a namespace-scope initializer reading a
 * global whose dynamic initialization lives in another translation
 * unit (init-order.cross-tu), directly or through a single helper
 * call (.via-call): whether the other TU ran first is unspecified
 * (the static initialization order fiasco).
 */
void checkInitOrder(const Project &project,
                    std::vector<Diagnostic> &out);

/**
 * Drop token-level pool-concurrency findings that a semantic pool
 * family also reports at the same file:line — one id wins (the
 * dotted semantic one, which carries provenance).  Among lifetime
 * families at one file:line, use-after-move outranks
 * iterator-invalidation, which outranks dangling-view (the same
 * malformed statement often trips more than one model).
 */
void dedupeFamilyOverlap(std::vector<Diagnostic> &diags);

/**
 * Run the semantic families named in @p checks over @p project,
 * applying checkAppliesTo() scoping per diagnostic file unless
 * @p ignoreScope (explicit file arguments / fixtures).
 */
void runProjectChecks(const Project &project,
                      const std::vector<Check> &checks,
                      bool ignoreScope,
                      std::vector<Diagnostic> &out);

/** Serialize the symbol index as JSON (CI cache / debugging). */
void dumpIndexJson(const Project &project, std::ostream &os);

} // namespace vsgpu::lint

#endif // VSGPU_TOOLS_LINT_SEMANTIC_HH
