/**
 * @file
 * vsgpu_lint — project-specific static analysis for the vsgpu tree.
 *
 * Four check families enforce the invariants the codebase's tests and
 * type system rely on, as machine-checked rules instead of convention:
 *
 *   unit-safety       raw double/float crossing a converted public
 *                     header where a Quantity type exists
 *   determinism       wall-clock, global-RNG, and unordered-iteration
 *                     sources of run-to-run nondeterminism
 *   pool-concurrency  by-reference lambda captures submitted to
 *                     exec::Pool / runSweep that write shared state
 *                     without a lock, atomic, or per-index slot
 *   contracts         functions tagged [[vsgpu::contract]] /
 *                     VSGPU_CONTRACT must state VSGPU_REQUIRES or
 *                     VSGPU_ENSURES in their definition
 *   raw-escape        Quantity::raw() called outside the numeric
 *                     core (circuit/verify/solver boundary files)
 *
 * The analysis is a deliberately small token-level frontend: it scrubs
 * comments and string literals, tokenizes, and pattern-matches — no
 * compiler installation required, so the gate runs on every machine
 * that can build the project.  When Clang LibTooling development
 * headers are available, the optional AST verifier (ast_backend.cc)
 * cross-checks the unit-safety family against the real AST.
 *
 * Waivers are inline comments naming a reason:
 *   // vsgpu-lint: raw-ok(<reason>)        unit-safety
 *   // vsgpu-lint: nondet-ok(<reason>)     determinism (banned calls)
 *   // vsgpu-lint: unordered-ok(<reason>)  determinism (iteration)
 *   // vsgpu-lint: iostream-ok(<reason>)   determinism (direct stdio)
 *   // vsgpu-lint: shared-ok(<reason>)     pool-concurrency
 *   // vsgpu-lint: raw-escape-ok(<reason>) raw-escape
 *   // vsgpu-lint: lock-ok(<reason>)       lock-discipline
 *   // vsgpu-lint: atomics-ok(<reason>)    atomics-misuse
 *   // vsgpu-lint: hb-ok(<reason>)         pool-happens-before
 *   // vsgpu-lint: fp-order-ok(<reason>)   fp-determinism
 *   // vsgpu-lint: move-ok(<reason>)       use-after-move
 *   // vsgpu-lint: view-ok(<reason>)       dangling-view
 *   // vsgpu-lint: iter-ok(<reason>)       iterator-invalidation
 *   // vsgpu-lint: initorder-ok(<reason>)  init-order
 * A waiver on the diagnosed line or the line above it applies.
 */

#ifndef VSGPU_TOOLS_LINT_LINT_HH
#define VSGPU_TOOLS_LINT_LINT_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace vsgpu::lint
{

/** Check families, in severity-neutral declaration order.  The
 *  first five are per-file token-level families; the rest are
 *  project-wide semantic families built on the symbol index / call
 *  graph / dataflow core (semantic.hh, dataflow.hh).  Families 9-12
 *  form the concurrency-soundness engine gating the pipeline-parallel
 *  cosim work (lock-discipline, atomics-misuse, pool-happens-before,
 *  fp-determinism); families 13-16 form the lifetime/ownership
 *  engine on the region/escape model (lifetime_model.hh):
 *  use-after-move, dangling-view, iterator-invalidation,
 *  init-order. */
enum class Check
{
    UnitSafety,
    Determinism,
    PoolConcurrency,
    Contracts,
    RawEscape,
    PoolEscape,
    UnitFlow,
    DeterminismTaint,
    LockDiscipline,
    AtomicsMisuse,
    PoolHappensBefore,
    FpDeterminism,
    UseAfterMove,
    DanglingView,
    IterInvalidation,
    InitOrder,
};

/** Every family, in declaration order (CLI listings, round-trips). */
inline constexpr Check kAllChecks[] = {
    Check::UnitSafety,   Check::Determinism,
    Check::PoolConcurrency, Check::Contracts,
    Check::RawEscape,    Check::PoolEscape,
    Check::UnitFlow,     Check::DeterminismTaint,
    Check::LockDiscipline, Check::AtomicsMisuse,
    Check::PoolHappensBefore, Check::FpDeterminism,
    Check::UseAfterMove, Check::DanglingView,
    Check::IterInvalidation, Check::InitOrder,
};

/** True for the project-wide semantic families. */
bool isProjectCheck(Check check);

/** Stable kebab-case name used on the CLI and in baseline files. */
std::string_view checkName(Check check);

/** Parse a check name; returns false on an unknown name. */
bool parseCheckName(std::string_view name, Check &out);

/** One finding: file:line plus the check that fired and its message. */
struct Diagnostic
{
    std::string file; ///< display path (repo-relative when possible)
    int line = 0;     ///< 1-based
    Check check = Check::UnitSafety;
    std::string message;
    /**
     * Stable dotted diagnostic id ("pool-escape.pointer-capture"),
     * set by the semantic families.  Empty for the token-level
     * families, whose fingerprints predate ids and must stay stable;
     * when set, it replaces the family name in fingerprints and is
     * the SARIF ruleId.
     */
    std::string id;
    /** 1-based column of the finding; 0 = unknown (line-granular
     *  families).  Participates in the SARIF sort key.  Last so the
     *  established {file, line, check, message, id} aggregate
     *  initializers stay valid. */
    int column = 0;
};

/**
 * A source file prepared for analysis: the raw text (for waiver
 * comments) plus a scrubbed copy of identical length in which
 * comments, string literals, and character literals are blanked so
 * token scans cannot be fooled by quoted or commented code.
 */
class SourceFile
{
  public:
    /** @param display path used in diagnostics and baselines. */
    SourceFile(std::string display, std::string text);

    const std::string &display() const { return display_; }
    const std::string &text() const { return text_; }
    const std::string &code() const { return code_; }

    /** 1-based line number of a byte offset into text()/code(). */
    int lineOf(std::size_t offset) const;

    /** Raw text of a 1-based line (no trailing newline). */
    std::string_view lineText(int line) const;

    /** True when @p line or the line above carries @p waiverTag. */
    bool hasWaiver(int line, std::string_view waiverTag) const;

  private:
    std::string display_;
    std::string text_;
    std::string code_;
    std::vector<std::size_t> lineStarts_;
};

/** Load a file from disk; @p display overrides the diagnostic path. */
SourceFile loadSource(const std::string &path,
                      const std::string &display);

/** One lexical token of the scrubbed source. */
struct Token
{
    enum class Kind
    {
        Identifier,
        Number,
        Punct,
    };

    Kind kind = Kind::Punct;
    std::string_view text; ///< view into SourceFile::code()
    std::size_t offset = 0;
};

/** Tokenize scrubbed source (identifiers, numbers, operators). */
std::vector<Token> tokenize(const std::string &code);

/** Options shared by the check families. */
struct CheckOptions
{
    /**
     * Determinism: files allowed to touch std::random_device (the
     * seeded entropy factory).  Matched as path suffixes.
     */
    std::vector<std::string> entropyAllowlist = {
        "src/common/random.cc",
        "src/common/random.hh",
    };

    /**
     * Determinism: src/ files allowed to write std::cout/cerr/clog
     * directly.  Everything else routes output through
     * common/logging (filterable, sink-pluggable) or returns data
     * for a frontend to print, so library code never interleaves
     * raw stdio with the tools' structured output.  Matched as path
     * suffixes.
     */
    std::vector<std::string> iostreamAllowlist = {
        "src/common/logging.cc",
        "src/common/logging.hh",
        "src/common/table.cc",
        "src/common/table.hh",
        "src/circuit/wave_writer.cc",
        "src/circuit/wave_writer.hh",
    };
};

/** Family 1: raw double/float crossing a converted public header. */
void checkUnitSafety(const SourceFile &src,
                     std::vector<Diagnostic> &out);

/** Family 2: nondeterminism sources in simulation code. */
void checkDeterminism(const SourceFile &src, const CheckOptions &opts,
                      std::vector<Diagnostic> &out);

/** Family 3: unsynchronized shared writes in pool-submitted lambdas. */
void checkPoolConcurrency(const SourceFile &src,
                          std::vector<Diagnostic> &out);

/** Family 4: contract-tagged functions must state contracts. */
void checkContracts(const SourceFile &src,
                    std::vector<Diagnostic> &out);

/** Family 5: Quantity::raw() escapes outside the numeric core. */
void checkRawEscape(const SourceFile &src,
                    std::vector<Diagnostic> &out);

/**
 * Scope predicate: which families apply to @p display path when
 * sweeping a whole project tree.  Explicitly listed files bypass
 * scoping (every enabled family runs), which is what the fixture
 * tests rely on.
 */
bool checkAppliesTo(Check check, std::string_view display);

/** Run every enabled family that applies to @p src. */
void runChecks(const SourceFile &src, const std::vector<Check> &checks,
               const CheckOptions &opts, bool ignoreScope,
               std::vector<Diagnostic> &out);

/**
 * Baseline: frozen existing debt.  A fingerprint is
 * "<check>|<file>|<whitespace-squeezed line text>", stable across
 * unrelated edits that only shift line numbers.
 */
std::string fingerprint(const Diagnostic &diag,
                        std::string_view lineText);

/** Load baseline fingerprints (one per line, '#' comments). */
std::vector<std::string> loadBaseline(const std::string &path);

/**
 * Partition @p diags into new findings (returned) and baselined ones.
 * Each baseline entry absorbs at most one matching diagnostic.
 */
std::vector<Diagnostic>
subtractBaseline(const std::vector<Diagnostic> &diags,
                 const std::vector<SourceFile> &sources,
                 const std::vector<std::string> &baseline);

/** Entries of a compile_commands.json database. */
struct CompileCommand
{
    std::string directory;
    std::string file;
};

/** Parse the compile database; panics on malformed JSON. */
std::vector<CompileCommand>
readCompileCommands(const std::string &path);

/**
 * Write @p diags as a SARIF 2.1.0 log (GitHub code scanning).  Rules
 * are derived from the diagnostic ids (falling back to the family
 * name); locations use the display paths as repository-relative URIs.
 */
void writeSarif(std::ostream &os,
                const std::vector<Diagnostic> &diags);

/**
 * Print the rationale, a minimal violating/fixed example pair (from
 * the fixture corpus), and the waiver syntax for @p idOrFamily — a
 * dotted diagnostic id ("lock-discipline.order-cycle") or a family
 * name ("lock-discipline").  Returns false for an unknown id (the
 * CLI maps that to exit status 2).
 */
bool explainDiagnostic(std::string_view idOrFamily,
                       std::ostream &os);

} // namespace vsgpu::lint

#endif // VSGPU_TOOLS_LINT_LINT_HH
