/**
 * @file
 * Shared concurrency model for vsgpu_lint's pool/lock families.
 *
 * Four check families (pool-concurrency, pool-escape,
 * pool-happens-before, fp-determinism) reason about lambdas submitted
 * to exec::Pool, and three (lock-discipline, atomics-misuse,
 * fp-determinism) reason about which mutexes a token range holds.
 * This header is the single home of both models so the families agree
 * on what a pool task and a lock scope are:
 *
 *   PoolLambda / findPoolLambdas   every lambda in argument position
 *       of parallelFor / runSweep / runIndexSweep, with its capture
 *       list, parameter list, and body token ranges.
 *
 *   LockScope / lockScopes         every RAII guard declaration
 *       (lock_guard / scoped_lock / unique_lock / shared_lock) and
 *       manual mu.lock() in a token range, with the raw mutex
 *       expressions it covers and the token interval the lock is
 *       held over (guard scopes end at the enclosing brace or at an
 *       explicit guard.unlock()).
 *
 * The happens-before model the pool families share: parallelFor and
 * the runSweep templates BLOCK until every task joins, so writes
 * sequenced before the submission and reads sequenced after the call
 * return are ordered with the tasks and are never flagged — only
 * accesses *inside* a task body race with sibling tasks of the same
 * phase.
 */

#ifndef VSGPU_TOOLS_LINT_CONCURRENCY_MODEL_HH
#define VSGPU_TOOLS_LINT_CONCURRENCY_MODEL_HH

#include "lint.hh"

#include <set>
#include <string>
#include <vector>

namespace vsgpu::lint::cm
{

using TokenVec = std::vector<Token>;
using NameSet = std::set<std::string, std::less<>>;

/** Index of the token closing the group opened at @p open. */
std::size_t skipBalanced(const TokenVec &tokens, std::size_t open,
                         std::string_view openText,
                         std::string_view closeText);

/** RAII lock guard type names (std:: or unqualified). */
bool isLockType(std::string_view name);

/** Mutex type names (mutex, recursive_mutex, shared_mutex, ...). */
bool isMutexType(std::string_view name);

/** Container member calls that mutate the receiver. */
bool isMutatingMember(std::string_view name);

/** Assignment and compound-assignment operators. */
bool isAssignOp(std::string_view text);

/** Compound FP-accumulation operators (+=, -=, *=, /=). */
bool isAccumOp(std::string_view text);

/** Floating-point types: the primitives and every Quantity alias
 *  (a Quantity wraps a double, so accumulating one is an FP sum). */
bool isFpTypeName(std::string_view name);

/** One lambda found in argument position of a pool submission. */
struct PoolLambda
{
    std::size_t captBegin = 0;  ///< '[' of the capture list
    std::size_t captEnd = 0;    ///< matching ']'
    std::size_t paramOpen = 0;  ///< '(' of the parameter list (or 0)
    std::size_t paramClose = 0; ///< matching ')' (or 0)
    std::size_t bodyBegin = 0;  ///< token just past the body '{'
    std::size_t bodyEnd = 0;    ///< token index of the body '}'
};

/** Find every lambda passed to parallelFor/runSweep/runIndexSweep. */
std::vector<PoolLambda> findPoolLambdas(const TokenVec &tokens);

/** True when @p name is a pool submission entry point. */
bool isPoolSubmitName(std::string_view name);

/** Parameter names of a lambda: last identifier per parameter. */
NameSet paramNames(const TokenVec &tokens, std::size_t openParen,
                   std::size_t closeParen);

/** Locally declared names of a body range (approximate; a false
 *  "local" only suppresses findings, never invents one). */
NameSet localNames(const TokenVec &tokens, std::size_t begin,
                   std::size_t end);

/** Task parameters plus integer locals derived from them. */
NameSet indexAliasNames(const TokenVec &tokens,
                        std::size_t bodyBegin, std::size_t bodyEnd,
                        const NameSet &params);

/** Does any [subscript] in [chainBegin, writeOp) name a param? */
bool indexedByParam(const TokenVec &tokens, std::size_t chainBegin,
                    std::size_t writeOp, const NameSet &params);

/** One acquired-lock interval inside a function or lambda body. */
struct LockScope
{
    std::size_t begin = 0; ///< first token index the lock covers
    std::size_t end = 0;   ///< one past the last covered token
    std::size_t declTok = 0; ///< token index of the guard/lock() name
    /**
     * Raw mutex expressions as written: "mu" or the last two chain
     * components "queue.mutex" (receiver kept so the key can be
     * qualified by the receiver's class).  scoped_lock may hold
     * several.
     */
    std::vector<std::string> mutexes;
    std::string guardVar; ///< RAII guard variable name ("" manual)
    bool manual = false;  ///< from mu.lock(), not a guard object
};

/**
 * Every lock scope in [begin, end).  A guard's scope runs from its
 * declaration to the end of the enclosing brace block, truncated at
 * an explicit guard.unlock(); a manual mu.lock() runs to the
 * matching mu.unlock() or the enclosing brace end.
 */
std::vector<LockScope> lockScopes(const TokenVec &tokens,
                                  std::size_t begin,
                                  std::size_t end);

/** Raw mutex expressions held at token index @p tok. */
std::vector<std::string>
mutexesHeldAt(const std::vector<LockScope> &scopes, std::size_t tok);

/** True when any lock scope covers token index @p tok. */
bool underAnyLock(const std::vector<LockScope> &scopes,
                  std::size_t tok);

/** 1-based column of a byte offset (for Diagnostic::column). */
int columnOf(const SourceFile &src, std::size_t offset);

} // namespace vsgpu::lint::cm

#endif // VSGPU_TOOLS_LINT_CONCURRENCY_MODEL_HH
