/**
 * @file
 * Implementation of the shared concurrency model (pool lambdas and
 * lock scopes) described in concurrency_model.hh.
 */

#include "concurrency_model.hh"

namespace vsgpu::lint::cm
{

std::size_t
skipBalanced(const TokenVec &tokens, std::size_t open,
             std::string_view openText, std::string_view closeText)
{
    int depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (tokens[i].text == openText)
            ++depth;
        else if (tokens[i].text == closeText && --depth == 0)
            return i;
    }
    return tokens.size();
}

bool
isLockType(std::string_view name)
{
    return name == "lock_guard" || name == "scoped_lock" ||
           name == "unique_lock" || name == "shared_lock";
}

bool
isMutexType(std::string_view name)
{
    return name == "mutex" || name == "recursive_mutex" ||
           name == "timed_mutex" || name == "recursive_timed_mutex" ||
           name == "shared_mutex" || name == "shared_timed_mutex";
}

bool
isMutatingMember(std::string_view name)
{
    return name == "push_back" || name == "emplace_back" ||
           name == "insert" || name == "emplace" ||
           name == "clear" || name == "resize" || name == "erase" ||
           name == "pop_back" || name == "assign";
}

bool
isAssignOp(std::string_view text)
{
    return text == "=" || text == "+=" || text == "-=" ||
           text == "*=" || text == "/=" || text == "%=" ||
           text == "&=" || text == "|=" || text == "^=" ||
           text == "<<=" || text == ">>=";
}

bool
isAccumOp(std::string_view text)
{
    return text == "+=" || text == "-=" || text == "*=" ||
           text == "/=";
}

bool
isFpTypeName(std::string_view t)
{
    return t == "double" || t == "float" || t == "Quantity" ||
           t == "Seconds" || t == "Hertz" || t == "Amps" ||
           t == "Coulombs" || t == "Volts" || t == "Ohms" ||
           t == "Siemens" || t == "Farads" || t == "Henries" ||
           t == "Watts" || t == "Joules" || t == "Area" ||
           t == "FaradsPerArea" || t == "WattsPerVolt";
}

bool
isPoolSubmitName(std::string_view name)
{
    return name == "parallelFor" || name == "runSweep" ||
           name == "runIndexSweep";
}

std::vector<PoolLambda>
findPoolLambdas(const TokenVec &tokens)
{
    std::vector<PoolLambda> found;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        if (tok.kind != Token::Kind::Identifier)
            continue;
        if (!isPoolSubmitName(tok.text))
            continue;
        if (tokens[i + 1].text != "(")
            continue;
        const std::size_t closeCall =
            skipBalanced(tokens, i + 1, "(", ")");

        for (std::size_t j = i + 2; j < closeCall; ++j) {
            if (tokens[j].text != "[")
                continue;
            const std::string_view prev = tokens[j - 1].text;
            if (prev != "(" && prev != ",")
                continue; // subscript, not a lambda argument
            PoolLambda lam;
            lam.captBegin = j;
            lam.captEnd = skipBalanced(tokens, j, "[", "]");
            std::size_t k = lam.captEnd + 1;
            if (k < closeCall && tokens[k].text == "(") {
                lam.paramOpen = k;
                lam.paramClose = skipBalanced(tokens, k, "(", ")");
                k = lam.paramClose + 1;
            }
            while (k < closeCall && tokens[k].text != "{")
                ++k;
            if (k >= closeCall)
                continue;
            lam.bodyBegin = k + 1;
            lam.bodyEnd = skipBalanced(tokens, k, "{", "}");
            found.push_back(lam);
            j = lam.bodyEnd;
        }
        i = closeCall;
    }
    return found;
}

NameSet
paramNames(const TokenVec &tokens, std::size_t openParen,
           std::size_t closeParen)
{
    NameSet params;
    int depth = 0;
    std::size_t lastIdent = 0;
    bool haveIdent = false;
    for (std::size_t i = openParen;
         i <= closeParen && i < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        if (tok.text == "(" || tok.text == "<" || tok.text == "[")
            ++depth;
        else if (tok.text == ")" || tok.text == ">" ||
                 tok.text == "]")
            --depth;
        if (tok.kind == Token::Kind::Identifier && depth == 1) {
            lastIdent = i;
            haveIdent = true;
        }
        const bool boundary =
            (tok.text == "," && depth == 1) ||
            (tok.text == ")" && depth == 0);
        if (boundary && haveIdent) {
            params.insert(std::string(tokens[lastIdent].text));
            haveIdent = false;
        }
    }
    return params;
}

NameSet
localNames(const TokenVec &tokens, std::size_t begin,
           std::size_t end)
{
    NameSet locals;
    for (std::size_t i = begin; i < end; ++i) {
        // Structured binding: auto [a, b] / auto &[a, b].
        if (tokens[i].text == "[" && i > begin &&
            (tokens[i - 1].text == "auto" ||
             tokens[i - 1].text == "&")) {
            const std::size_t close =
                skipBalanced(tokens, i, "[", "]");
            for (std::size_t j = i + 1; j < close && j < end; ++j)
                if (tokens[j].kind == Token::Kind::Identifier)
                    locals.insert(std::string(tokens[j].text));
            i = close;
            continue;
        }
        if (tokens[i].kind != Token::Kind::Identifier || i == begin)
            continue;
        const Token &prev = tokens[i - 1];
        const bool typeBefore =
            (prev.kind == Token::Kind::Identifier &&
             prev.text != "return" && !isAssignOp(prev.text)) ||
            prev.text == ">" || prev.text == "&" || prev.text == "*";
        if (!typeBefore)
            continue;
        const std::string_view next =
            i + 1 < end ? tokens[i + 1].text : std::string_view{};
        if (next == "=" || next == ";" || next == "{" ||
            next == "(" || next == ",") {
            locals.insert(std::string(tokens[i].text));
            // Comma declarators: double a = 0, b = 0; — every
            // identifier right after a depth-0 ',' before the ';'
            // is part of the same declaration.
            if (next == "=") {
                int depth = 0;
                for (std::size_t j = i + 1; j < end; ++j) {
                    const std::string_view t = tokens[j].text;
                    if (t == "(" || t == "[" || t == "{")
                        ++depth;
                    else if (t == ")" || t == "]" || t == "}")
                        --depth;
                    else if (t == ";" && depth == 0)
                        break;
                    else if (t == "," && depth == 0 &&
                             j + 1 < end &&
                             tokens[j + 1].kind ==
                                 Token::Kind::Identifier)
                        locals.insert(
                            std::string(tokens[j + 1].text));
                }
            }
        }
    }
    return locals;
}

NameSet
indexAliasNames(const TokenVec &tokens, std::size_t bodyBegin,
                std::size_t bodyEnd, const NameSet &params)
{
    static constexpr std::string_view integerish[] = {
        "int", "long", "short", "unsigned", "size_t", "ptrdiff_t",
        "auto"};
    NameSet names = params;
    for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t i = bodyBegin; i + 1 < bodyEnd; ++i) {
            if (tokens[i].kind != Token::Kind::Identifier ||
                tokens[i + 1].text != "=")
                continue;
            // Walk the declaration type backwards; require an
            // integer-ish token so derived doubles do not become
            // index slots.
            bool integerType = false;
            bool sawType = false;
            for (std::size_t j = i; j-- > bodyBegin;) {
                const std::string_view t = tokens[j].text;
                if (t == ";" || t == "{" || t == "}" || t == ")")
                    break;
                if (tokens[j].kind == Token::Kind::Identifier) {
                    sawType = true;
                    for (std::string_view k : integerish)
                        if (t == k || (t.size() > k.size() &&
                                       t.find(k) !=
                                           std::string_view::npos))
                            integerType = true;
                } else if (t != "::" && t != "<" && t != ">" &&
                           t != "&" && t != "const") {
                    break;
                }
            }
            if (!sawType || !integerType)
                continue;
            // Initialiser up to ';' must mention a known index name.
            bool fromIndex = false;
            for (std::size_t j = i + 2;
                 j < bodyEnd && tokens[j].text != ";"; ++j)
                if (tokens[j].kind == Token::Kind::Identifier &&
                    names.count(tokens[j].text) > 0)
                    fromIndex = true;
            if (fromIndex)
                names.insert(std::string(tokens[i].text));
        }
    }
    return names;
}

bool
indexedByParam(const TokenVec &tokens, std::size_t chainBegin,
               std::size_t writeOp, const NameSet &params)
{
    for (std::size_t i = chainBegin; i < writeOp; ++i) {
        if (tokens[i].text != "[")
            continue;
        const std::size_t close = skipBalanced(tokens, i, "[", "]");
        for (std::size_t j = i + 1; j < close; ++j)
            if (tokens[j].kind == Token::Kind::Identifier &&
                params.count(tokens[j].text) > 0)
                return true;
        i = close;
    }
    return false;
}

namespace
{

/** End of the brace block enclosing token @p from (exclusive). */
std::size_t
enclosingBlockEnd(const TokenVec &tokens, std::size_t from,
                  std::size_t end)
{
    int depth = 0;
    for (std::size_t i = from; i < end; ++i) {
        if (tokens[i].text == "{")
            ++depth;
        else if (tokens[i].text == "}") {
            if (depth == 0)
                return i;
            --depth;
        }
    }
    return end;
}

/**
 * The mutex expression of one guard-constructor argument segment
 * [segBegin, segEnd): the trailing identifier chain, keeping at most
 * the last receiver ("queue.mutex", "this.mutex_", or "mu").
 */
std::string
mutexExprOf(const TokenVec &tokens, std::size_t segBegin,
            std::size_t segEnd)
{
    // Last identifier in the segment is the mutex name.
    std::size_t name = segEnd;
    for (std::size_t i = segEnd; i-- > segBegin;) {
        if (tokens[i].kind == Token::Kind::Identifier) {
            name = i;
            break;
        }
    }
    if (name == segEnd)
        return {};
    std::string expr(tokens[name].text);
    if (name >= segBegin + 2 &&
        (tokens[name - 1].text == "." ||
         tokens[name - 1].text == "->") &&
        (tokens[name - 2].kind == Token::Kind::Identifier ||
         tokens[name - 2].text == "this")) {
        expr = std::string(tokens[name - 2].text) + "." + expr;
    }
    return expr;
}

} // namespace

std::vector<LockScope>
lockScopes(const TokenVec &tokens, std::size_t begin,
           std::size_t end)
{
    std::vector<LockScope> scopes;
    for (std::size_t i = begin; i < end; ++i) {
        const Token &tok = tokens[i];
        if (tok.kind != Token::Kind::Identifier)
            continue;

        // RAII guard: lock_guard<...> name(mu, ...); also the CTAD
        // form scoped_lock name(mu1, mu2).
        if (isLockType(tok.text)) {
            std::size_t j = i + 1;
            if (j < end && tokens[j].text == "<")
                j = skipBalanced(tokens, j, "<", ">") + 1;
            if (j >= end ||
                tokens[j].kind != Token::Kind::Identifier)
                continue;
            LockScope scope;
            scope.declTok = i;
            scope.guardVar = std::string(tokens[j].text);
            std::size_t open = j + 1;
            if (open < end && (tokens[open].text == "(" ||
                               tokens[open].text == "{")) {
                const bool paren = tokens[open].text == "(";
                const std::size_t close = skipBalanced(
                    tokens, open, paren ? "(" : "{",
                    paren ? ")" : "}");
                // Split arguments at top-level commas.
                std::size_t segBegin = open + 1;
                int depth = 0;
                for (std::size_t k = open + 1;
                     k <= close && k < end; ++k) {
                    const std::string_view t = tokens[k].text;
                    if (t == "(" || t == "[" || t == "{" ||
                        t == "<")
                        ++depth;
                    else if (t == ")" || t == "]" || t == "}" ||
                             t == ">")
                        --depth;
                    const bool boundary =
                        (t == "," && depth == 0) || k == close;
                    if (!boundary)
                        continue;
                    std::string expr =
                        mutexExprOf(tokens, segBegin, k);
                    // std::adopt_lock / defer_lock tags are not
                    // mutexes.
                    if (!expr.empty() && expr != "adopt_lock" &&
                        expr != "defer_lock" &&
                        expr != "try_to_lock")
                        scope.mutexes.push_back(std::move(expr));
                    segBegin = k + 1;
                }
                scope.begin = close + 1;
            } else {
                scope.begin = j + 1;
            }
            if (scope.mutexes.empty())
                continue;
            scope.end = enclosingBlockEnd(tokens, scope.begin, end);
            // Truncate at an explicit guard.unlock().
            for (std::size_t k = scope.begin; k < scope.end; ++k) {
                if (tokens[k].text == scope.guardVar &&
                    k + 2 < scope.end && tokens[k + 1].text == "." &&
                    tokens[k + 2].text == "unlock") {
                    scope.end = k;
                    break;
                }
            }
            scopes.push_back(std::move(scope));
            continue;
        }

        // Manual mu.lock(): scope until mu.unlock() or block end.
        if (i + 3 < end &&
            (tokens[i + 1].text == "." ||
             tokens[i + 1].text == "->") &&
            tokens[i + 2].text == "lock" &&
            tokens[i + 3].text == "(") {
            LockScope scope;
            scope.declTok = i;
            scope.manual = true;
            scope.mutexes.push_back(std::string(tok.text));
            scope.begin = skipBalanced(tokens, i + 3, "(", ")") + 1;
            scope.end = enclosingBlockEnd(tokens, scope.begin, end);
            for (std::size_t k = scope.begin; k < scope.end; ++k) {
                if (tokens[k].text == tok.text &&
                    k + 2 < scope.end &&
                    (tokens[k + 1].text == "." ||
                     tokens[k + 1].text == "->") &&
                    tokens[k + 2].text == "unlock") {
                    scope.end = k;
                    break;
                }
            }
            scopes.push_back(std::move(scope));
        }
    }
    return scopes;
}

std::vector<std::string>
mutexesHeldAt(const std::vector<LockScope> &scopes, std::size_t tok)
{
    std::vector<std::string> held;
    for (const LockScope &scope : scopes)
        if (scope.begin <= tok && tok < scope.end)
            for (const std::string &m : scope.mutexes)
                held.push_back(m);
    return held;
}

bool
underAnyLock(const std::vector<LockScope> &scopes, std::size_t tok)
{
    for (const LockScope &scope : scopes)
        if (scope.begin <= tok && tok < scope.end)
            return true;
    return false;
}

int
columnOf(const SourceFile &src, std::size_t offset)
{
    const std::string &code = src.code();
    if (offset > code.size())
        return 0;
    std::size_t start = 0;
    if (offset > 0) {
        const std::size_t nl = code.rfind('\n', offset - 1);
        if (nl != std::string::npos)
            start = nl + 1;
    }
    return static_cast<int>(offset - start) + 1;
}

} // namespace vsgpu::lint::cm
