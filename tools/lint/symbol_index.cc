/**
 * @file
 * Project-wide symbol index for vsgpu_lint's semantic families
 * (semantic.hh): function/method definitions with parameter lists and
 * side-effect summaries, globals, class fields, and the const /
 * atomic / pointer / unordered name sets.  Also the Project façade,
 * the semantic-family dispatcher, and the index JSON dump.
 *
 * The parser is the same dependency-free token scan as the rest of
 * the linter.  It tracks a brace-context stack (namespace / class /
 * function / other) so namespace-scope variables and member fields
 * are told apart, and recognizes function definitions by the shape
 * `name ( params ) qualifiers { body }` — including constructor
 * initializer lists and trailing return types.  Misparses degrade to
 * missing index entries, which suppress findings; they never invent
 * one.
 */

#include "semantic.hh"

#include "concurrency_model.hh"
#include "dataflow.hh"
#include "lifetime_model.hh"

#include <algorithm>
#include <ostream>

namespace vsgpu::lint
{

namespace
{

using TokenVec = std::vector<Token>;

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool
isTypeKeyword(std::string_view t)
{
    return t == "double" || t == "float" || t == "int" ||
           t == "bool" || t == "char" || t == "long" ||
           t == "short" || t == "unsigned" || t == "signed" ||
           t == "auto" || t == "void";
}

bool
isDeclQualifier(std::string_view t)
{
    return t == "const" || t == "constexpr" || t == "static" ||
           t == "inline" || t == "mutable" || t == "extern" ||
           t == "thread_local" || t == "volatile";
}

bool
isReservedWord(std::string_view t)
{
    return isTypeKeyword(t) || isDeclQualifier(t) || t == "if" ||
           t == "else" || t == "for" || t == "while" || t == "do" ||
           t == "switch" || t == "return" || t == "case" ||
           t == "break" || t == "continue" || t == "sizeof" ||
           t == "new" || t == "delete" || t == "true" ||
           t == "false" || t == "nullptr" || t == "using" ||
           t == "namespace" || t == "struct" || t == "class" ||
           t == "template" || t == "typename" || t == "operator" ||
           t == "throw" || t == "try" || t == "catch" ||
           t == "goto" || t == "default" || t == "std" ||
           t == "this" || t == "enum" || t == "typedef" ||
           t == "explicit" || t == "virtual" || t == "override" ||
           t == "final" || t == "public" || t == "private" ||
           t == "protected" || t == "noexcept" || t == "friend" ||
           t == "decltype" || t == "requires" || t == "concept";
}

bool
isLockTypeName(std::string_view name)
{
    return name == "lock_guard" || name == "scoped_lock" ||
           name == "unique_lock" || name == "shared_lock";
}

using cm::isFpTypeName;

/** The trailing identifier chain of [begin, end): "queue.mutex",
 *  "this.mu_", or the bare last identifier. */
std::string
trailingChain(const TokenVec &toks, std::size_t begin,
              std::size_t end)
{
    std::size_t name = end;
    for (std::size_t k = end; k-- > begin;)
        if (toks[k].kind == Token::Kind::Identifier ||
            toks[k].text == "this") {
            name = k;
            break;
        }
    if (name == end)
        return {};
    std::string expr(toks[name].text);
    if (name >= begin + 2 &&
        (toks[name - 1].text == "." || toks[name - 1].text == "->") &&
        (toks[name - 2].kind == Token::Kind::Identifier ||
         toks[name - 2].text == "this"))
        expr = std::string(toks[name - 2].text) + "." + expr;
    return expr;
}

bool
isMutatingMemberName(std::string_view name)
{
    return name == "push_back" || name == "emplace_back" ||
           name == "insert" || name == "emplace" ||
           name == "clear" || name == "resize" || name == "erase" ||
           name == "pop_back" || name == "assign";
}

std::size_t
skipBalanced(const TokenVec &tokens, std::size_t open,
             std::string_view openText, std::string_view closeText)
{
    int depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (tokens[i].text == openText)
            ++depth;
        else if (tokens[i].text == closeText && --depth == 0)
            return i;
    }
    return tokens.size();
}

/** Parse one parameter list into ParamInfo records. */
std::vector<ParamInfo>
parseParams(const TokenVec &tokens, std::size_t open,
            std::size_t close)
{
    std::vector<ParamInfo> params;
    std::size_t segBegin = open + 1;
    int depth = 1;
    for (std::size_t i = open + 1; i <= close && i < tokens.size();
         ++i) {
        const std::string_view t = tokens[i].text;
        if (t == "(" || t == "[" || t == "{" || t == "<")
            ++depth;
        else if (t == ")" || t == "]" || t == "}" || t == ">")
            --depth;
        const bool boundary =
            (t == "," && depth == 1) || (i == close && depth == 0);
        if (!boundary)
            continue;
        if (i > segBegin) {
            ParamInfo info;
            // Top-level identifiers of the segment; the last
            // non-reserved one is the name, its predecessor the type.
            std::vector<std::string_view> idents;
            int d = 0;
            for (std::size_t k = segBegin; k < i; ++k) {
                const std::string_view s = tokens[k].text;
                if (s == "<" || s == "(" || s == "[")
                    ++d;
                else if (s == ">" || s == ")" || s == "]")
                    --d;
                else if (s == "&" || s == "&&")
                    info.byRef = true;
                else if (s == "*")
                    info.isPointer = true;
                else if (s == "const")
                    info.isConst = true;
                if (d == 0 &&
                    tokens[k].kind == Token::Kind::Identifier &&
                    s != "std" && !isDeclQualifier(s))
                    idents.push_back(s);
            }
            while (!idents.empty() &&
                   isReservedWord(idents.back()) &&
                   !isTypeKeyword(idents.back()))
                idents.pop_back();
            if (!idents.empty() &&
                !isTypeKeyword(idents.back())) {
                info.name = std::string(idents.back());
                if (idents.size() >= 2)
                    info.type =
                        std::string(idents[idents.size() - 2]);
            } else if (!idents.empty()) {
                // Unnamed parameter like `f(double)`.
                info.type = std::string(idents.back());
            }
            params.push_back(std::move(info));
        }
        segBegin = i + 1;
    }
    return params;
}

/** Brace-context kinds for the pass-1 scanner. */
enum class Ctx
{
    Namespace,
    Class,
    Function,
    Other,
};

struct Frame
{
    Ctx ctx = Ctx::Namespace;
    std::string className; ///< for Ctx::Class
};

/**
 * From a `)` closing a parameter list, find the `{` opening the
 * function body, tolerating cv/ref/noexcept/override qualifiers,
 * trailing return types, and constructor initializer lists.  Returns
 * npos when the shape is not a definition (declaration, call, ...).
 */
std::size_t
findBodyBrace(const TokenVec &tokens, std::size_t closeParen)
{
    std::size_t i = closeParen + 1;
    bool initList = false;
    while (i < tokens.size()) {
        const std::string_view t = tokens[i].text;
        if (t == "{") {
            if (!initList)
                return i;
            // Brace-init of a member: skip, expect ',' or body.
            i = skipBalanced(tokens, i, "{", "}") + 1;
            if (i < tokens.size() && tokens[i].text == ",") {
                ++i;
                continue;
            }
            if (i < tokens.size() && tokens[i].text == "{")
                return i;
            continue;
        }
        if (t == ";" || t == "=")
            return npos;
        if (t == ",") {
            if (!initList)
                return npos;
            ++i;
            continue;
        }
        if (t == ":") {
            initList = true;
            ++i;
            continue;
        }
        if (t == "(") {
            i = skipBalanced(tokens, i, "(", ")") + 1;
            continue;
        }
        if (t == "const" || t == "noexcept" || t == "override" ||
            t == "final" || t == "mutable" || t == "&" ||
            t == "&&" || t == "->" || t == "::" || t == "<" ||
            t == ">" || t == "*" || t == "try" ||
            tokens[i].kind == Token::Kind::Identifier ||
            tokens[i].kind == Token::Kind::Number) {
            ++i;
            continue;
        }
        return npos;
    }
    return npos;
}

/** Statement start: walk back to the nearest ; { or }. */
std::size_t
stmtStart(const TokenVec &tokens, std::size_t i)
{
    while (i > 0) {
        const std::string_view t = tokens[i - 1].text;
        if (t == ";" || t == "{" || t == "}")
            break;
        --i;
    }
    return i;
}

/** Pass 1: declarations, contexts, and function shells. */
void
scanFile(int fileIndex, const SourceFile &src, const TokenVec &toks,
         SymbolIndex &index)
{
    std::vector<Frame> stack{{Ctx::Namespace, ""}};
    Ctx pending = Ctx::Other;
    std::string pendingClass;
    bool havePending = false;

    auto current = [&]() -> const Frame & { return stack.back(); };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &tok = toks[i];
        const std::string_view t = tok.text;

        if (t == "{") {
            Frame frame;
            frame.ctx = havePending ? pending : Ctx::Other;
            // A bare block inside a namespace stays namespace-like
            // only for `namespace {` (anonymous); other stray braces
            // (array initializers) are opaque.
            frame.className = pendingClass;
            stack.push_back(frame);
            havePending = false;
            pendingClass.clear();
            continue;
        }
        if (t == "}") {
            if (stack.size() > 1)
                stack.pop_back();
            continue;
        }
        if (t == ";") {
            havePending = false; // forward declaration
            pendingClass.clear();
            continue;
        }
        if (t == "namespace") {
            pending = Ctx::Namespace;
            havePending = true;
            continue;
        }
        if (t == "class" || t == "struct" || t == "union") {
            if (i + 1 < toks.size() &&
                toks[i + 1].kind == Token::Kind::Identifier) {
                pendingClass = std::string(toks[i + 1].text);
                pending = Ctx::Class;
            } else {
                pendingClass.clear();
                pending = Ctx::Class;
            }
            havePending = true;
            continue;
        }
        if (t == "enum") {
            pending = Ctx::Other;
            havePending = true;
            continue;
        }

        if (tok.kind != Token::Kind::Identifier ||
            isReservedWord(t))
            continue;

        const std::string_view next =
            i + 1 < toks.size() ? toks[i + 1].text
                                : std::string_view{};
        const std::string_view prev =
            i > 0 ? toks[i - 1].text : std::string_view{};

        // ---- atomic / unordered / pointer name sets -------------
        if ((t == "atomic" || t == "atomic_flag" ||
             t == "unordered_map" || t == "unordered_set" ||
             t == "unordered_multimap" ||
             t == "unordered_multiset")) {
            std::size_t j = i + 1;
            bool fpArg = false;
            if (j < toks.size() && toks[j].text == "<") {
                int depth = 0;
                for (; j < toks.size(); ++j) {
                    if (toks[j].text == "<")
                        ++depth;
                    else if (toks[j].text == ">")
                        --depth;
                    else if (toks[j].text == ">>")
                        depth -= 2;
                    else if (isFpTypeName(toks[j].text))
                        fpArg = true;
                    if (depth <= 0) {
                        ++j;
                        break;
                    }
                }
            }
            while (j < toks.size() && (toks[j].text == "&" ||
                                       toks[j].text == "*"))
                ++j;
            if (j < toks.size() &&
                toks[j].kind == Token::Kind::Identifier) {
                const std::string name(toks[j].text);
                const DeclSite site{fileIndex,
                                    src.lineOf(toks[j].offset)};
                if (t == "atomic" || t == "atomic_flag") {
                    index.atomics.insert(name);
                    index.atomicDecl.emplace(name, site);
                    // atomic<double> accumulations are race-free
                    // but still scheduling-order-dependent.
                    if (fpArg)
                        index.fpNames.insert(name);
                } else {
                    index.unorderedVars[fileIndex].insert(name);
                    index.unorderedDecl.emplace(name, site);
                }
            }
            continue;
        }

        // ---- function definition? -------------------------------
        const bool callCtx = prev == "." || prev == "->";
        if (next == "(" && !callCtx &&
            (current().ctx == Ctx::Namespace ||
             current().ctx == Ctx::Class)) {
            const bool qualified = prev == "::";
            const bool typeBefore =
                i > 0 &&
                ((toks[i - 1].kind == Token::Kind::Identifier &&
                  !isDeclQualifier(prev)) ||
                 isTypeKeyword(prev) || prev == ">" ||
                 prev == "&" || prev == "*");
            const bool ctorLike =
                current().ctx == Ctx::Class &&
                t == current().className;
            if (qualified || typeBefore || ctorLike) {
                const std::size_t closeParen =
                    skipBalanced(toks, i + 1, "(", ")");
                const std::size_t body =
                    findBodyBrace(toks, closeParen);
                if (body != npos && body < toks.size()) {
                    FunctionDef fn;
                    fn.name = std::string(t);
                    if (qualified && i >= 2 &&
                        toks[i - 2].kind == Token::Kind::Identifier)
                        fn.className = std::string(toks[i - 2].text);
                    else if (current().ctx == Ctx::Class)
                        fn.className = current().className;
                    fn.fileIndex = fileIndex;
                    fn.line = src.lineOf(tok.offset);
                    fn.nameTok = i;
                    fn.params =
                        parseParams(toks, i + 1, closeParen);
                    fn.bodyBegin = body + 1;
                    fn.bodyEnd =
                        skipBalanced(toks, body, "{", "}");
                    // VSGPU_ACQUIRES/EXCLUDES annotations sit
                    // between the parameter list and the body.
                    // Stored raw here; normalized once every file
                    // is scanned (buildSymbolIndex post-pass).
                    for (std::size_t k = closeParen + 1; k < body;
                         ++k) {
                        const bool acq =
                            toks[k].text == "VSGPU_ACQUIRES";
                        const bool exc =
                            toks[k].text == "VSGPU_EXCLUDES";
                        if ((!acq && !exc) ||
                            k + 1 >= toks.size() ||
                            toks[k + 1].text != "(")
                            continue;
                        const std::size_t close =
                            skipBalanced(toks, k + 1, "(", ")");
                        std::size_t seg = k + 2;
                        for (std::size_t a = k + 2; a <= close;
                             ++a) {
                            if (toks[a].text != "," && a != close)
                                continue;
                            const std::string expr =
                                trailingChain(toks, seg, a);
                            if (!expr.empty())
                                (acq ? fn.annAcquires
                                     : fn.annExcludes)
                                    .insert(expr);
                            seg = a + 1;
                        }
                        k = close;
                    }
                    const int id = static_cast<int>(
                        index.functions.size());
                    index.byName[fn.name].push_back(id);
                    index.functions.push_back(std::move(fn));
                    // The body is scanned by the main loop too (for
                    // const/pointer/atomic names); mark its context.
                    pending = Ctx::Function;
                    havePending = true;
                    continue;
                }
            }
        }

        // ---- variable declarations ------------------------------
        const bool typeBefore =
            i > 0 &&
            ((toks[i - 1].kind == Token::Kind::Identifier &&
              !isReservedWord(prev)) ||
             isTypeKeyword(prev) || prev == ">" || prev == "&" ||
             prev == "*");
        // A VSGPU_GUARDED_BY(mu) annotation sits between the name
        // and the initializer/semicolon; look through it for the
        // effective next token and remember the required mutex.
        std::string_view declNext = next;
        std::string guardExpr;
        if (typeBefore && next == "VSGPU_GUARDED_BY" &&
            i + 2 < toks.size() && toks[i + 2].text == "(") {
            const std::size_t close =
                skipBalanced(toks, i + 2, "(", ")");
            guardExpr = trailingChain(toks, i + 3, close);
            declNext = close + 1 < toks.size()
                           ? toks[close + 1].text
                           : std::string_view{};
        }
        if (!typeBefore ||
            !(declNext == "=" || declNext == ";" ||
              declNext == "{"))
            continue;
        // `foo} name =` style misparses guard: statement window.
        const std::size_t start = stmtStart(toks, i);
        bool hasConst = false, skip = false, chained = false;
        bool mutexType = false, lockType = false, fpType = false;
        bool atomicType = false;
        for (std::size_t k = start; k < i; ++k) {
            const std::string_view s = toks[k].text;
            if (s == "const" || s == "constexpr")
                hasConst = true;
            if (s == "atomic" || s == "atomic_flag")
                atomicType = true;
            if (s == "using" || s == "return" || s == "namespace" ||
                s == "template" || s == "typedef" ||
                s == "operator" || s == "=")
                skip = true;
            if (s == "." || s == "->")
                chained = true;
            if (cm::isMutexType(s))
                mutexType = true;
            if (isLockTypeName(s))
                lockType = true;
            if (isFpTypeName(s))
                fpType = true;
        }
        if (skip || chained)
            continue;
        const std::string name(t);
        const std::string className =
            current().ctx == Ctx::Class ? current().className
                                        : std::string{};
        if (!guardExpr.empty()) {
            GuardedVar guard;
            guard.name = name;
            guard.className = className;
            guard.mutexKey = guardExpr; // raw; normalized later
            guard.decl = {fileIndex, src.lineOf(tok.offset)};
            index.guarded.push_back(std::move(guard));
        }
        if (prev == "*")
            index.pointerNames.insert(name);
        if (hasConst) {
            index.constNames.insert(name);
            continue;
        }
        // `std::lock_guard<std::mutex> x{mu}` names the mutex TYPE
        // in its template argument; only a guard-free declaration
        // declares an actual mutex object.
        if (mutexType && !lockType) {
            index.mutexNames.insert(name);
            index.mutexOwners[name].insert(className);
        }
        if (current().ctx == Ctx::Namespace) {
            index.globals.insert(name);
            // Atomic declarations reach this scan too (the atomic
            // handler above already recorded them); keeping them
            // out of globalDecl lets atomics-misuse distinguish a
            // real plain redeclaration in another TU from an
            // atomic declaration seen again (extern or repeated).
            if (!atomicType)
                index.globalDecl.emplace(
                    name,
                    DeclSite{fileIndex, src.lineOf(tok.offset)});
            if (fpType)
                index.fpNames.insert(name);
        } else if (current().ctx == Ctx::Class &&
                   !className.empty()) {
            index.classFields[className].insert(name);
            if (fpType)
                index.fpNames.insert(className + "::" + name);
        }
    }
}

/** Pass 2: per-body side-effect summaries. */
void
summarizeBody(FunctionDef &fn, const TokenVec &toks,
              const SymbolIndex &index)
{
    for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i)
        if (toks[i].kind == Token::Kind::Identifier &&
            isLockTypeName(toks[i].text))
            fn.takesLock = true;

    // Mutexes this body acquires, as normalized lock-order keys.
    // Manual x.lock() counts only when x is a known mutex object
    // (lk.lock() on a unique_lock re-locks the guard, whose mutex
    // the RAII scope above already recorded).
    for (const cm::LockScope &scope :
         cm::lockScopes(toks, fn.bodyBegin, fn.bodyEnd)) {
        for (const std::string &expr : scope.mutexes) {
            const std::string last =
                expr.substr(expr.rfind('.') + 1);
            if (scope.manual && !index.mutexNames.count(last))
                continue;
            fn.locksAcquired.insert(
                normalizeMutexKey(index, expr, fn.className));
        }
    }

    const df::Cfg cfg = df::buildCfg(toks, fn.bodyBegin, fn.bodyEnd);

    std::set<std::string> locals;
    std::map<std::string, int> paramIndex;
    for (std::size_t p = 0; p < fn.params.size(); ++p)
        if (!fn.params[p].name.empty())
            paramIndex[fn.params[p].name] = static_cast<int>(p);
    for (const df::Block &block : cfg.blocks)
        for (const df::Stmt &stmt : block.stmts)
            if (stmt.declares)
                locals.insert(stmt.defs.begin(), stmt.defs.end());

    auto classifyWrite = [&](const std::string &name,
                             bool through) {
        if (name == "this") {
            fn.writesFields = true;
            return;
        }
        if (index.atomics.count(name) ||
            index.constNames.count(name))
            return;
        const auto pit = paramIndex.find(name);
        if (pit != paramIndex.end()) {
            const ParamInfo &p =
                fn.params[static_cast<std::size_t>(pit->second)];
            if (p.isConst)
                return;
            if ((p.byRef && !p.isPointer) ||
                (p.isPointer && through))
                fn.writesParams.insert(pit->second);
            return;
        }
        if (locals.count(name))
            return;
        if (index.globals.count(name)) {
            fn.writesGlobals.insert(name);
            return;
        }
        if (!fn.className.empty()) {
            const auto cit = index.classFields.find(fn.className);
            if (cit != index.classFields.end() &&
                cit->second.count(name))
                fn.writesFields = true;
        }
    };

    for (const df::Block &block : cfg.blocks) {
        for (const df::Stmt &stmt : block.stmts) {
            for (const std::string &def : stmt.defs) {
                if (stmt.declares)
                    continue;
                classifyWrite(def, stmt.defThrough);
            }
            for (const df::CallRef &call : stmt.calls) {
                fn.calls.insert(call.callee);
                if (!call.receiver.empty() &&
                    isMutatingMemberName(call.callee))
                    classifyWrite(call.receiver, true);
                for (std::size_t a = 0; a < call.args.size(); ++a)
                    for (const std::string &root : call.args[a]) {
                        const auto pit = paramIndex.find(root);
                        if (pit != paramIndex.end())
                            fn.forwards.push_back(
                                {pit->second, call.callee,
                                 static_cast<int>(a)});
                    }
            }
        }
    }

    for (const std::string &callee : fn.calls)
        if (cm::isPoolSubmitName(callee))
            fn.submitsToPool = true;

    // FP accumulations into shared state: `x += e`, `x -= e`,
    // `x *= e`, `x /= e`, and the spelled-out `x = x + e` — where x
    // is an FP-typed global, a field of this class, or an FP atomic.
    for (std::size_t i = fn.bodyBegin; i + 1 < fn.bodyEnd; ++i) {
        if (toks[i].kind != Token::Kind::Identifier)
            continue;
        const std::string_view op = toks[i + 1].text;
        bool accum = cm::isAccumOp(op);
        if (!accum && op == "=" && i + 3 < fn.bodyEnd)
            accum = toks[i + 2].text == toks[i].text &&
                    (toks[i + 3].text == "+" ||
                     toks[i + 3].text == "-");
        if (!accum)
            continue;
        const std::string name(toks[i].text);
        if (locals.count(name) || paramIndex.count(name))
            continue;
        if (index.fpNames.count(name))
            fn.fpAccumulates.insert(name);
        else if (!fn.className.empty() &&
                 index.fpNames.count(fn.className + "::" + name))
            fn.fpAccumulates.insert(fn.className + "::" + name);
    }
}

} // namespace

std::string
normalizeMutexKey(const SymbolIndex &index, const std::string &expr,
                  const std::string &contextClass)
{
    std::string name = expr;
    std::string receiver;
    const std::size_t dot = expr.rfind('.');
    if (dot != std::string::npos) {
        receiver = expr.substr(0, dot);
        name = expr.substr(dot + 1);
    }
    // Bare name / this.name inside a method of the owning class.
    if (!contextClass.empty() &&
        (receiver.empty() || receiver == "this")) {
        const auto cit = index.classFields.find(contextClass);
        if (cit != index.classFields.end() &&
            cit->second.count(name))
            return contextClass + "::" + name;
    }
    // queue.mutex where exactly one class declares a mutex member
    // of that name: qualify by the owning class so every instance's
    // lock folds into one lock-order node (per-instance locks of
    // one class rank equally in the global order).
    const auto oit = index.mutexOwners.find(name);
    if (oit != index.mutexOwners.end()) {
        std::string owner;
        int classOwners = 0;
        for (const std::string &cls : oit->second)
            if (!cls.empty()) {
                owner = cls;
                ++classOwners;
            }
        const bool alsoGlobal = oit->second.count("") > 0;
        if (classOwners == 1 && (!receiver.empty() || !alsoGlobal))
            return owner + "::" + name;
    }
    return name;
}

SymbolIndex
buildSymbolIndex(const std::vector<SourceFile> &sources,
                 const std::vector<std::vector<Token>> &tokens)
{
    SymbolIndex index;
    for (std::size_t f = 0; f < sources.size(); ++f)
        scanFile(static_cast<int>(f), sources[f], tokens[f], index);
    for (FunctionDef &fn : index.functions)
        summarizeBody(
            fn, tokens[static_cast<std::size_t>(fn.fileIndex)],
            index);
    // Normalize annotation mutex expressions now that every file's
    // classes and mutex owners are known.
    for (FunctionDef &fn : index.functions) {
        for (auto *ann : {&fn.annAcquires, &fn.annExcludes}) {
            std::set<std::string> norm;
            for (const std::string &raw : *ann)
                norm.insert(
                    normalizeMutexKey(index, raw, fn.className));
            *ann = std::move(norm);
        }
    }
    for (GuardedVar &guard : index.guarded)
        guard.mutexKey = normalizeMutexKey(index, guard.mutexKey,
                                           guard.className);
    return index;
}

Project::Project(std::vector<SourceFile> sources)
    : sources_(std::move(sources))
{
    tokens_.reserve(sources_.size());
    for (const SourceFile &src : sources_)
        tokens_.push_back(tokenize(src.code()));
    index_ = buildSymbolIndex(sources_, tokens_);
    graph_ = buildCallGraph(index_);
    propagateEffects(index_, graph_);
    lifetime_ = std::make_shared<const lm::LifetimeModel>(
        lm::LifetimeModel::build(sources_, tokens_, index_));
}

const std::vector<int> &
Project::lookup(const std::string &name) const
{
    static const std::vector<int> empty;
    const auto it = index_.byName.find(name);
    return it == index_.byName.end() ? empty : it->second;
}

void
runProjectChecks(const Project &project,
                 const std::vector<Check> &checks, bool ignoreScope,
                 std::vector<Diagnostic> &out)
{
    std::vector<Diagnostic> raw;
    for (Check check : checks) {
        switch (check) {
          case Check::PoolEscape:
            checkPoolEscape(project, raw);
            break;
          case Check::UnitFlow:
            checkUnitFlow(project, raw);
            break;
          case Check::DeterminismTaint:
            checkDeterminismTaint(project, raw);
            break;
          case Check::LockDiscipline:
            checkLockDiscipline(project, raw);
            break;
          case Check::AtomicsMisuse:
            checkAtomicsMisuse(project, raw);
            break;
          case Check::PoolHappensBefore:
            checkPoolHappensBefore(project, raw);
            break;
          case Check::FpDeterminism:
            checkFpDeterminism(project, raw);
            break;
          case Check::UseAfterMove:
            checkUseAfterMove(project, raw);
            break;
          case Check::DanglingView:
            checkDanglingView(project, raw);
            break;
          case Check::IterInvalidation:
            checkIterInvalidation(project, raw);
            break;
          case Check::InitOrder:
            checkInitOrder(project, raw);
            break;
          default:
            break;
        }
    }
    for (Diagnostic &diag : raw)
        if (ignoreScope || checkAppliesTo(diag.check, diag.file))
            out.push_back(std::move(diag));
}

namespace
{

void
jsonEscapeTo(std::ostream &os, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            os << c;
        }
    }
}

} // namespace

void
dumpIndexJson(const Project &project, std::ostream &os)
{
    const SymbolIndex &index = project.index();
    os << "{\n  \"functions\": [\n";
    for (std::size_t i = 0; i < index.functions.size(); ++i) {
        const FunctionDef &fn = index.functions[i];
        os << "    {\"name\": \"";
        jsonEscapeTo(os, fn.name);
        os << "\", \"class\": \"";
        jsonEscapeTo(os, fn.className);
        os << "\", \"file\": \"";
        jsonEscapeTo(
            os,
            project.sources()[static_cast<std::size_t>(fn.fileIndex)]
                .display());
        os << "\", \"line\": " << fn.line
           << ", \"params\": " << fn.params.size()
           << ", \"writesFields\": "
           << (fn.writesFields ? "true" : "false")
           << ", \"takesLock\": "
           << (fn.takesLock ? "true" : "false")
           << ", \"writesGlobals\": [";
        bool first = true;
        for (const std::string &g : fn.writesGlobals) {
            os << (first ? "\"" : ", \"");
            jsonEscapeTo(os, g);
            os << "\"";
            first = false;
        }
        os << "], \"writesParams\": [";
        first = true;
        for (int p : fn.writesParams) {
            os << (first ? "" : ", ") << p;
            first = false;
        }
        os << "]}";
        os << (i + 1 < index.functions.size() ? ",\n" : "\n");
    }
    os << "  ],\n  \"globals\": [";
    bool first = true;
    for (const std::string &g : index.globals) {
        os << (first ? "\"" : ", \"");
        jsonEscapeTo(os, g);
        os << "\"";
        first = false;
    }
    os << "],\n  \"atomics\": [";
    first = true;
    for (const std::string &a : index.atomics) {
        os << (first ? "\"" : ", \"");
        jsonEscapeTo(os, a);
        os << "\"";
        first = false;
    }
    os << "],\n  \"files\": " << project.sources().size() << "\n}\n";
}

} // namespace vsgpu::lint
