/**
 * @file
 * vsgpu_lint_ast — optional Clang LibTooling verifier.
 *
 * Built only when Clang development headers are available
 * (VSGPU_LINT_AST in tools/lint/CMakeLists.txt).  It cross-checks
 * the unit-safety family against the real AST: every function
 * parameter or return of builtin double/float type declared in a
 * converted public header whose name carries a unit suffix is
 * reported, with none of the token frontend's lexical guesswork.
 * The token frontend (vsgpu_lint) remains the canonical gate — this
 * binary exists to audit it where a full Clang is installed:
 *
 *   vsgpu_lint_ast -p build $(git ls-files 'src/**/*.hh')
 *
 * Diagnostics use the same "file:line: [unit-safety] ..." shape so
 * the two tools' outputs diff cleanly.
 */

#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/FrontendActions.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"

#include <cctype>
#include <string>

namespace
{

using namespace clang;
using namespace clang::ast_matchers;

llvm::cl::OptionCategory lintCategory("vsgpu_lint_ast options");

const char *const unitSuffixes[] = {
    "volts", "volt",  "amps",   "amp",    "ohms",    "ohm",
    "siemens", "farads", "farad", "henries", "henry", "watts",
    "watt",  "joules", "joule", "hertz",  "mhz",     "ghz",
    "khz",   "hz",     "seconds", "second", "secs",  "sec",
    "mm2",   "m2",     "nf",    "uf",     "pf",      "nh",
    "ph",    "mv",     "ma",    "mw",     "nj",      "us",
    "ns",    "ps",
};

bool
hasUnitSuffix(llvm::StringRef name)
{
    const std::string lower = name.lower();
    for (const char *suffix : unitSuffixes) {
        const llvm::StringRef suf(suffix);
        if (!llvm::StringRef(lower).endswith(suf))
            continue;
        const size_t at = name.size() - suf.size();
        if (at == 0)
            return true;
        const char before = name[at - 1];
        const char first = name[at];
        if (std::isupper(static_cast<unsigned char>(first)) ||
            before == '_' ||
            std::isdigit(static_cast<unsigned char>(before)))
            return true;
    }
    return false;
}

bool
inConvertedHeader(llvm::StringRef file)
{
    if (!file.endswith(".hh"))
        return false;
    for (const char *mod :
         {"src/circuit/", "src/pdn/", "src/ivr/", "src/power/",
          "src/sim/", "src/control/", "src/hypervisor/",
          "src/common/units.hh"}) {
        if (file.contains(mod))
            return true;
    }
    return false;
}

class UnitSafetyCallback : public MatchFinder::MatchCallback
{
  public:
    void
    run(const MatchFinder::MatchResult &result) override
    {
        const SourceManager &sm = *result.SourceManager;

        auto report = [&](SourceLocation loc, llvm::StringRef name,
                          const char *what) {
            if (loc.isInvalid() || !sm.isInFileID(
                    sm.getSpellingLoc(loc), sm.getMainFileID()))
                return;
            const SourceLocation spell = sm.getSpellingLoc(loc);
            const llvm::StringRef file = sm.getFilename(spell);
            if (!inConvertedHeader(file))
                return;
            llvm::errs() << file << ":"
                         << sm.getSpellingLineNumber(spell) << ": "
                         << "[unit-safety] " << what << " '" << name
                         << "' has builtin floating type but a "
                         << "unit-suffixed name — use a Quantity "
                         << "type (src/common/quantity.hh)\n";
            ++count_;
        };

        if (const auto *param =
                result.Nodes.getNodeAs<ParmVarDecl>("param")) {
            if (hasUnitSuffix(param->getName()))
                report(param->getLocation(), param->getName(),
                       "parameter");
        }
        if (const auto *field =
                result.Nodes.getNodeAs<FieldDecl>("field")) {
            if (hasUnitSuffix(field->getName()))
                report(field->getLocation(), field->getName(),
                       "field");
        }
        if (const auto *fn =
                result.Nodes.getNodeAs<FunctionDecl>("fn")) {
            if (hasUnitSuffix(fn->getName()))
                report(fn->getLocation(), fn->getName(),
                       "function");
        }
    }

    unsigned count() const { return count_; }

  private:
    unsigned count_ = 0;
};

} // namespace

int
main(int argc, const char **argv)
{
    auto expectedParser = tooling::CommonOptionsParser::create(
        argc, argv, lintCategory);
    if (!expectedParser) {
        llvm::errs() << llvm::toString(expectedParser.takeError());
        return 2;
    }
    tooling::CommonOptionsParser &options = *expectedParser;
    tooling::ClangTool tool(options.getCompilations(),
                            options.getSourcePathList());

    const auto floatingType =
        hasType(hasCanonicalType(realFloatingPointType()));

    UnitSafetyCallback callback;
    MatchFinder finder;
    finder.addMatcher(parmVarDecl(floatingType).bind("param"),
                      &callback);
    finder.addMatcher(fieldDecl(floatingType).bind("field"),
                      &callback);
    finder.addMatcher(
        functionDecl(returns(qualType(
                         hasCanonicalType(realFloatingPointType()))))
            .bind("fn"),
        &callback);

    const int status = tool.run(
        tooling::newFrontendActionFactory(&finder).get());
    if (status != 0)
        return 2;
    llvm::errs() << "vsgpu_lint_ast: " << callback.count()
                 << " finding(s)\n";
    return callback.count() == 0 ? 0 : 1;
}
