/**
 * @file
 * Intraprocedural dataflow core for vsgpu_lint's semantic families.
 *
 * A function body is lowered from the token stream into a simplified
 * statement IR: each statement records the variable it defines (if
 * any), the variable roots it uses, and the calls it makes, plus the
 * token range it covers so a check family can re-inspect expression
 * structure (additive operands, subscripts) when it needs more than
 * def/use granularity.  Statements are grouped into basic blocks
 * forming a CFG over if/else, loops, and switches.
 *
 * Two solvers run over the CFG:
 *
 *   reachingDefs   classic forward reaching-definitions (gen/kill by
 *                  defined name; writes through a pointer or member
 *                  chain are may-defs and do not kill).
 *
 *   solveTaint     a generic forward tag propagation: a caller-
 *                  supplied transfer function computes the tag set a
 *                  statement's definitions acquire from the incoming
 *                  environment, the engine iterates block entry
 *                  environments to a fixpoint (set-union join), and a
 *                  final in-order visit pass lets the family emit
 *                  diagnostics against the converged environments.
 *                  unit-flow and determinism-taint are both instances
 *                  of this solver with different transfer functions.
 *
 * The lowering is deliberately approximate (it is built on the same
 * dependency-free tokenizer as the rest of vsgpu_lint, not a C++
 * frontend); the solvers themselves are exact over the IR they are
 * given, which is what tests/lint/test_dataflow.cc pins down
 * table-driven.
 */

#ifndef VSGPU_TOOLS_LINT_DATAFLOW_HH
#define VSGPU_TOOLS_LINT_DATAFLOW_HH

#include "lint.hh"

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace vsgpu::lint::df
{

/** One call made by a statement. */
struct CallRef
{
    std::string callee;   ///< unqualified callee name
    std::string receiver; ///< chain root of x.f()/x->f(); "" if free
    /**
     * Root identifiers of each top-level argument (an argument like
     * "a + b.c" contributes {a, b}).
     */
    std::vector<std::vector<std::string>> args;
    std::size_t nameOffset = 0; ///< byte offset of the callee name
};

/** One simplified statement. */
struct Stmt
{
    /** Variable roots this statement defines (usually one). */
    std::vector<std::string> defs;
    bool declares = false;   ///< defs are fresh local declarations
    bool defThrough = false; ///< write via ->/./[]/deref (may-def)
    std::string declType;    ///< last type identifier of a declaration
    std::vector<std::string> uses; ///< identifier roots read
    std::vector<CallRef> calls;
    bool isReturn = false;
    /** Range-for loop header: container the loop iterates. */
    std::string rangeContainer;
    std::size_t tokBegin = 0; ///< token index range in the file's
    std::size_t tokEnd = 0;   ///< token vector (end exclusive)
    std::size_t offset = 0;   ///< byte offset of the first token
};

struct Block
{
    std::vector<Stmt> stmts;
    std::vector<int> succs;
};

/** Control-flow graph; block 0 is the entry. */
struct Cfg
{
    std::vector<Block> blocks;
};

/**
 * Lower the token range [begin, end) — a function or lambda body,
 * braces excluded — into a CFG.
 */
Cfg buildCfg(const std::vector<Token> &tokens, std::size_t begin,
             std::size_t end);

/** A definition site: (block index, statement index). */
struct DefSite
{
    int block = 0;
    int stmt = 0;
    bool operator<(const DefSite &o) const
    {
        return block != o.block ? block < o.block : stmt < o.stmt;
    }
    bool operator==(const DefSite &o) const
    {
        return block == o.block && stmt == o.stmt;
    }
};

/** Variable name -> definition sites that may reach a point. */
using ReachEnv = std::map<std::string, std::set<DefSite>>;

/**
 * Forward reaching-definitions: returns the environment at the entry
 * of each block.  A non-through definition of x kills prior defs of
 * x; a through-write (p->x = ..., *p = ...) is a may-def and only
 * adds.
 */
std::vector<ReachEnv> reachingDefs(const Cfg &cfg);

/** Tag sets used by the taint instantiation of the solver. */
using TagSet = std::set<std::string>;
using TaintEnv = std::map<std::string, TagSet>;

/**
 * Generic forward taint propagation.
 *
 * @param transfer  tags acquired by @p stmt's defs given the incoming
 *                  environment (sources seed here; pure moves return
 *                  the union of used tags).
 * @param visit     called once per statement, in block order, with
 *                  the converged environment before the statement —
 *                  the place to emit diagnostics.
 */
void solveTaint(
    const Cfg &cfg,
    const std::function<TagSet(const Stmt &, const TaintEnv &)>
        &transfer,
    const std::function<void(const Stmt &, const TaintEnv &)>
        &visit);

/** Union of the environment tags of every name in @p names. */
TagSet tagsOf(const TaintEnv &env,
              const std::vector<std::string> &names);

} // namespace vsgpu::lint::df

#endif // VSGPU_TOOLS_LINT_DATAFLOW_HH
