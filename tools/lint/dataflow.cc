/**
 * @file
 * Dataflow core: token-stream -> statement IR -> CFG lowering, plus
 * the reaching-definitions and generic taint solvers (dataflow.hh).
 *
 * Lowering approximations (documented so the families can reason
 * about them): switch bodies are lowered linearly with a bypass edge
 * (every case may or may not run); break/continue do not cut edges
 * (conservative for may-analyses: more paths, never fewer); return
 * keeps its linear successor for the same reason; exceptional flow
 * is ignored.  The solvers are exact over the IR they receive —
 * tests/lint/test_dataflow.cc pins them down on hand-built CFGs.
 */

#include "dataflow.hh"

#include <algorithm>

namespace vsgpu::lint::df
{

namespace
{

using TokenVec = std::vector<Token>;

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool
isAssignOp(std::string_view text)
{
    return text == "=" || text == "+=" || text == "-=" ||
           text == "*=" || text == "/=" || text == "%=" ||
           text == "&=" || text == "|=" || text == "^=" ||
           text == "<<=" || text == ">>=";
}

bool
isKeyword(std::string_view t)
{
    static const std::set<std::string, std::less<>> kw = {
        "if",       "else",     "for",      "while",   "do",
        "switch",   "return",   "case",     "break",   "continue",
        "sizeof",   "new",      "delete",   "true",    "false",
        "nullptr",  "auto",     "const",    "static",  "constexpr",
        "using",    "namespace","struct",   "class",   "template",
        "typename", "operator", "throw",    "try",     "catch",
        "goto",     "default",  "inline",   "void",    "int",
        "double",   "float",    "bool",     "char",    "long",
        "short",    "unsigned", "signed",   "std",     "static_cast",
        "dynamic_cast", "reinterpret_cast", "const_cast", "mutable",
        "noexcept", "co_return","co_await", "co_yield", "this",
        "enum",     "typedef",  "explicit", "virtual", "override",
        "final",    "public",   "private",  "protected",
    };
    return kw.count(t) > 0;
}

/** Index of the token closing the group opened at @p open. */
std::size_t
closeOf(const TokenVec &toks, std::size_t open, std::size_t end,
        std::string_view openText, std::string_view closeText)
{
    int depth = 0;
    for (std::size_t i = open; i < end; ++i) {
        if (toks[i].text == openText)
            ++depth;
        else if (toks[i].text == closeText && --depth == 0)
            return i;
    }
    return end;
}

/** First `;` at bracket depth 0 in [i, end). */
std::size_t
findSemi(const TokenVec &toks, std::size_t i, std::size_t end)
{
    int depth = 0;
    for (; i < end; ++i) {
        const std::string_view t = toks[i].text;
        if (t == "(" || t == "[" || t == "{")
            ++depth;
        else if (t == ")" || t == "]" || t == "}")
            --depth;
        else if (t == ";" && depth == 0)
            return i;
    }
    return end;
}

/**
 * A "plain variable" use: an identifier that is not a keyword, not a
 * member (preceded by . or ->), not a qualifier or qualified tail
 * (adjacent to ::), and not a callee (followed by '(').
 */
bool
isVarUse(const TokenVec &toks, std::size_t i, std::size_t s,
         std::size_t e)
{
    if (toks[i].kind != Token::Kind::Identifier ||
        isKeyword(toks[i].text))
        return false;
    const std::string_view prev =
        i > s ? toks[i - 1].text : std::string_view{};
    const std::string_view next =
        i + 1 < e ? toks[i + 1].text : std::string_view{};
    if (prev == "." || prev == "->" || prev == "::")
        return false;
    if (next == "::" || next == "(")
        return false;
    return true;
}

void
collectUses(const TokenVec &toks, std::size_t s, std::size_t e,
            std::vector<std::string> &uses)
{
    for (std::size_t i = s; i < e; ++i)
        if (isVarUse(toks, i, s, e))
            uses.emplace_back(toks[i].text);
}

/** Root identifiers of one argument segment. */
std::vector<std::string>
argRoots(const TokenVec &toks, std::size_t s, std::size_t e)
{
    std::vector<std::string> roots;
    collectUses(toks, s, e, roots);
    return roots;
}

void
collectCalls(const TokenVec &toks, std::size_t s, std::size_t e,
             std::vector<CallRef> &calls)
{
    for (std::size_t i = s; i < e; ++i) {
        if (toks[i].kind != Token::Kind::Identifier ||
            isKeyword(toks[i].text))
            continue;
        if (i + 1 >= e || toks[i + 1].text != "(")
            continue;
        CallRef call;
        call.callee = std::string(toks[i].text);
        call.nameOffset = toks[i].offset;
        // Receiver chain root: x.f() / x->f() / g(...).f().
        std::size_t back = i;
        while (back > s && (toks[back - 1].text == "." ||
                            toks[back - 1].text == "->")) {
            std::size_t prev = back - 2;
            if (prev < s)
                break;
            if (toks[prev].text == ")") {
                // Chained off a call: name that call as receiver.
                int depth = 0;
                std::size_t k = prev;
                for (;; --k) {
                    if (toks[k].text == ")")
                        ++depth;
                    else if (toks[k].text == "(" && --depth == 0)
                        break;
                    if (k == s)
                        break;
                }
                if (k > s &&
                    toks[k - 1].kind == Token::Kind::Identifier) {
                    back = k - 1;
                    continue;
                }
                break;
            }
            if (toks[prev].text == "]") {
                std::size_t k = prev;
                int depth = 0;
                for (;; --k) {
                    if (toks[k].text == "]")
                        ++depth;
                    else if (toks[k].text == "[" && --depth == 0)
                        break;
                    if (k == s)
                        break;
                }
                back = k;
                continue;
            }
            if (toks[prev].kind == Token::Kind::Identifier) {
                back = prev;
                continue;
            }
            break;
        }
        if (back != i)
            call.receiver = std::string(toks[back].text);
        // Arguments: split [open+1, close) at depth-1 commas.
        const std::size_t open = i + 1;
        const std::size_t close = closeOf(toks, open, e, "(", ")");
        std::size_t argBegin = open + 1;
        int depth = 0;
        for (std::size_t j = open; j <= close && j < e; ++j) {
            const std::string_view t = toks[j].text;
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}")
                --depth;
            const bool boundary = (t == "," && depth == 1) ||
                                  (j == close && depth == 0);
            if (!boundary)
                continue;
            if (j > argBegin)
                call.args.push_back(argRoots(toks, argBegin, j));
            else if (t == ",")
                call.args.emplace_back();
            argBegin = j + 1;
        }
        calls.push_back(std::move(call));
    }
}

/** Last "type-ish" identifier before the declared name. */
std::string
declTypeBefore(const TokenVec &toks, std::size_t s,
               std::size_t nameAt)
{
    for (std::size_t i = nameAt; i > s;) {
        --i;
        const std::string_view t = toks[i].text;
        if (t == "&" || t == "*" || t == "&&" || t == ">" ||
            t == "::" || t == "const" || t == "constexpr" ||
            t == "static")
            continue;
        if (t == "<") // inside a template argument list: keep going
            continue;
        if (toks[i].kind == Token::Kind::Identifier) {
            // Skip template arguments: take the identifier before a
            // '<' opener when this one closes a template list.
            return std::string(t);
        }
        break;
    }
    return {};
}

Stmt
parseStmt(const TokenVec &toks, std::size_t s, std::size_t e)
{
    Stmt st;
    st.tokBegin = s;
    st.tokEnd = e;
    if (s < e)
        st.offset = toks[s].offset;
    if (s >= e)
        return st;

    if (toks[s].text == "return") {
        st.isReturn = true;
        collectUses(toks, s + 1, e, st.uses);
        collectCalls(toks, s, e, st.calls);
        return st;
    }

    // Top-level assignment operator.
    std::size_t assignAt = npos;
    int depth = 0;
    for (std::size_t i = s; i < e; ++i) {
        const std::string_view t = toks[i].text;
        if (t == "(" || t == "[" || t == "{")
            ++depth;
        else if (t == ")" || t == "]" || t == "}")
            --depth;
        else if (depth == 0 && assignAt == npos && isAssignOp(t))
            assignAt = i;
    }

    collectCalls(toks, s, e, st.calls);

    if (assignAt != npos) {
        // --- LHS classification ------------------------------------
        bool lhsChain = false;
        std::size_t identCount = 0;
        std::size_t bindOpen = npos;
        for (std::size_t i = s; i < assignAt; ++i) {
            const std::string_view t = toks[i].text;
            if (t == "." || t == "->")
                lhsChain = true;
            if (t == "[" && i > s &&
                (toks[i - 1].text == "auto" ||
                 toks[i - 1].text == "&"))
                bindOpen = i;
            // Builtin type keywords count as declaration evidence
            // even though they are filtered from defs/uses.
            if (toks[i].kind == Token::Kind::Identifier &&
                (!isKeyword(t) || t == "int" || t == "double" ||
                 t == "float" || t == "long" || t == "short" ||
                 t == "char" || t == "bool" || t == "unsigned" ||
                 t == "signed" || t == "auto" || t == "size_t"))
                ++identCount;
        }
        if (bindOpen != npos) {
            // Structured binding: auto [a, b] = ...
            const std::size_t close =
                closeOf(toks, bindOpen, assignAt, "[", "]");
            for (std::size_t i = bindOpen + 1; i < close; ++i)
                if (toks[i].kind == Token::Kind::Identifier)
                    st.defs.emplace_back(toks[i].text);
            st.declares = true;
            st.declType = "auto";
        } else {
            const Token &last = toks[assignAt - 1];
            const std::string_view beforeLast =
                assignAt >= 2 ? toks[assignAt - 2].text
                              : std::string_view{};
            const bool typeBefore =
                assignAt >= 2 &&
                ((toks[assignAt - 2].kind ==
                      Token::Kind::Identifier &&
                  beforeLast != "return") ||
                 beforeLast == ">" || beforeLast == "&" ||
                 beforeLast == "*" || beforeLast == "&&");
            if (!lhsChain && identCount >= 2 &&
                last.kind == Token::Kind::Identifier && typeBefore) {
                // Declaration with initializer.
                st.defs.emplace_back(last.text);
                st.declares = true;
                st.declType = declTypeBefore(toks, s, assignAt - 1);
            } else {
                // Expression write: root of the postfix chain.
                for (std::size_t i = s; i < assignAt; ++i) {
                    if (toks[i].kind == Token::Kind::Identifier &&
                        !isKeyword(toks[i].text)) {
                        st.defs.emplace_back(toks[i].text);
                        break;
                    }
                    if (toks[i].text == "this") {
                        st.defs.emplace_back("this");
                        break;
                    }
                }
                if (st.defs.empty() && toks[s].text == "this")
                    st.defs.emplace_back("this");
                st.defThrough =
                    lhsChain || toks[s].text == "*" ||
                    (assignAt > s && toks[assignAt - 1].text == "]");
                // Subscript contents on the LHS are uses.
                for (std::size_t i = s; i < assignAt; ++i)
                    if (toks[i].text == "[") {
                        const std::size_t close = closeOf(
                            toks, i, assignAt, "[", "]");
                        collectUses(toks, i + 1, close, st.uses);
                        i = close;
                    }
            }
        }
        collectUses(toks, assignAt + 1, e, st.uses);
        // Compound assignment also reads its target.
        if (toks[assignAt].text != "=" && !st.defs.empty())
            st.uses.push_back(st.defs.front());
        return st;
    }

    // --- no assignment: ++/--, declaration, or expression ----------
    if (toks[s].text == "++" || toks[s].text == "--") {
        if (s + 1 < e && toks[s + 1].kind == Token::Kind::Identifier)
            st.defs.emplace_back(toks[s + 1].text);
        if (!st.defs.empty())
            st.uses.push_back(st.defs.front());
        return st;
    }
    if (e >= 2 && toks[e - 1].text == "++" &&
        toks[e - 2].kind == Token::Kind::Identifier) {
        st.defs.emplace_back(toks[e - 2].text);
        st.uses.push_back(st.defs.front());
        return st;
    }

    // Declaration without '=' : `T name;` or `T name(args);`.
    std::size_t nameAt = npos;
    for (std::size_t i = s; i < e; ++i) {
        if (toks[i].kind != Token::Kind::Identifier ||
            isKeyword(toks[i].text) || i == s)
            continue;
        const std::string_view prev = toks[i - 1].text;
        const std::string_view next =
            i + 1 < e ? toks[i + 1].text : std::string_view{};
        const bool typeBefore =
            (toks[i - 1].kind == Token::Kind::Identifier) ||
            prev == ">" || prev == "&" || prev == "*";
        if (typeBefore && (next.empty() || next == "(" ||
                           next == "{" || next == ";"))
            nameAt = i;
        if (next == "(" || next == "{")
            break;
    }
    if (nameAt != npos && !(toks[s].text == "." ||
                            toks[s].text == "->")) {
        bool chain = false;
        for (std::size_t i = s; i < nameAt; ++i)
            if (toks[i].text == "." || toks[i].text == "->")
                chain = true;
        if (!chain) {
            st.defs.emplace_back(toks[nameAt].text);
            st.declares = true;
            st.declType = declTypeBefore(toks, s, nameAt);
            if (nameAt + 1 < e && toks[nameAt + 1].text == "(") {
                const std::size_t close =
                    closeOf(toks, nameAt + 1, e, "(", ")");
                collectUses(toks, nameAt + 2, close, st.uses);
            }
            return st;
        }
    }

    collectUses(toks, s, e, st.uses);
    return st;
}

/** CFG builder over one token range. */
class Builder
{
  public:
    explicit Builder(const TokenVec &toks) : toks_(toks)
    {
        newBlock(); // entry
    }

    Cfg
    take(std::size_t begin, std::size_t end)
    {
        region(begin, end, 0);
        return std::move(cfg_);
    }

  private:
    int
    newBlock()
    {
        cfg_.blocks.emplace_back();
        return static_cast<int>(cfg_.blocks.size()) - 1;
    }

    void
    edge(int a, int b)
    {
        cfg_.blocks[static_cast<std::size_t>(a)].succs.push_back(b);
    }

    void
    append(int block, Stmt stmt)
    {
        cfg_.blocks[static_cast<std::size_t>(block)].stmts.push_back(
            std::move(stmt));
    }

    /** Lower [i, end); returns the block control flows out of. */
    int
    region(std::size_t i, std::size_t end, int cur)
    {
        while (i < end)
            i = construct(i, end, cur);
        return cur;
    }

    /** Lower one construct at @p i; updates @p cur, returns next. */
    std::size_t
    construct(std::size_t i, std::size_t end, int &cur)
    {
        const std::string_view t = toks_[i].text;

        if (t == ";") // empty statement
            return i + 1;
        if (t == "{") {
            const std::size_t close =
                closeOf(toks_, i, end, "{", "}");
            cur = region(i + 1, close, cur);
            return close + 1;
        }
        if (t == "case") { // skip `case expr:`
            std::size_t j = i + 1;
            while (j < end && toks_[j].text != ":")
                ++j;
            return j + 1;
        }
        if (t == "default" && i + 1 < end &&
            toks_[i + 1].text == ":")
            return i + 2;
        if (t == "break" || t == "continue") {
            const std::size_t semi = findSemi(toks_, i, end);
            return semi + 1; // conservative: edges uncut
        }
        if (t == "if")
            return lowerIf(i, end, cur);
        if (t == "for" || t == "while")
            return lowerLoop(i, end, cur);
        if (t == "do")
            return lowerDo(i, end, cur);
        if (t == "switch")
            return lowerSwitch(i, end, cur);
        if (t == "try") // lower the braced blocks linearly
            return i + 1;
        if (t == "catch") {
            std::size_t j = i + 1;
            if (j < end && toks_[j].text == "(")
                j = closeOf(toks_, j, end, "(", ")") + 1;
            return j;
        }
        if (t == "else") // handled by lowerIf; stray: skip
            return i + 1;

        const std::size_t semi = findSemi(toks_, i, end);
        append(cur, parseStmt(toks_, i, semi));
        return semi + 1;
    }

    std::size_t
    lowerIf(std::size_t i, std::size_t end, int &cur)
    {
        std::size_t j = i + 1;
        if (j < end && toks_[j].text == "(") {
            const std::size_t close =
                closeOf(toks_, j, end, "(", ")");
            append(cur, parseStmt(toks_, j + 1, close));
            j = close + 1;
        }
        const int head = cur;
        int thenB = newBlock();
        edge(head, thenB);
        j = subConstruct(j, end, thenB);
        const int thenExit = thenB;
        const int join = newBlock();
        edge(thenExit, join);
        if (j < end && toks_[j].text == "else") {
            ++j;
            int elseB = newBlock();
            edge(head, elseB);
            j = subConstruct(j, end, elseB);
            edge(elseB, join);
        } else {
            edge(head, join);
        }
        cur = join;
        return j;
    }

    std::size_t
    lowerLoop(std::size_t i, std::size_t end, int &cur)
    {
        const bool isFor = toks_[i].text == "for";
        std::size_t j = i + 1;
        const int header = newBlock();
        Stmt incr;
        bool haveIncr = false;
        if (j < end && toks_[j].text == "(") {
            const std::size_t close =
                closeOf(toks_, j, end, "(", ")");
            if (isFor) {
                // Range-for?  `:` at depth 1 before any `;`.
                std::size_t colon = npos, semi1 = npos;
                int depth = 0;
                for (std::size_t k = j; k < close; ++k) {
                    const std::string_view tk = toks_[k].text;
                    if (tk == "(" || tk == "[" || tk == "{")
                        ++depth;
                    else if (tk == ")" || tk == "]" || tk == "}")
                        --depth;
                    else if (tk == ":" && depth == 1 &&
                             colon == npos)
                        colon = k;
                    else if (tk == ";" && depth == 1 &&
                             semi1 == npos)
                        semi1 = k;
                }
                if (colon != npos && semi1 == npos) {
                    Stmt head;
                    head.tokBegin = j + 1;
                    head.tokEnd = close;
                    head.offset = toks_[j + 1].offset;
                    head.declares = true;
                    // Loop variable(s): identifiers before ':'
                    // (handles `auto &v` and `auto [k, v]`).
                    for (std::size_t k = j + 1; k < colon; ++k)
                        if (toks_[k].kind ==
                                Token::Kind::Identifier &&
                            !isKeyword(toks_[k].text))
                            head.defs.emplace_back(toks_[k].text);
                    collectUses(toks_, colon + 1, close,
                                head.uses);
                    collectCalls(toks_, colon + 1, close,
                                 head.calls);
                    for (std::size_t k = colon + 1; k < close; ++k)
                        if (isVarUse(toks_, k, colon + 1, close)) {
                            head.rangeContainer =
                                std::string(toks_[k].text);
                            break;
                        }
                    append(header, std::move(head));
                } else {
                    // Classic for: init ; cond ; incr.
                    const std::size_t s1 =
                        findSemi(toks_, j + 1, close);
                    const std::size_t s2 =
                        s1 < close
                            ? findSemi(toks_, s1 + 1, close)
                            : close;
                    append(cur, parseStmt(toks_, j + 1, s1));
                    if (s1 < close)
                        append(header,
                               parseStmt(toks_, s1 + 1, s2));
                    if (s2 < close) {
                        incr = parseStmt(toks_, s2 + 1, close);
                        haveIncr = true;
                    }
                }
            } else {
                append(header, parseStmt(toks_, j + 1, close));
            }
            j = close + 1;
        }
        edge(cur, header);
        int body = newBlock();
        edge(header, body);
        j = subConstruct(j, end, body);
        if (haveIncr)
            append(body, std::move(incr));
        edge(body, header);
        const int exit = newBlock();
        edge(header, exit);
        cur = exit;
        return j;
    }

    std::size_t
    lowerDo(std::size_t i, std::size_t end, int &cur)
    {
        std::size_t j = i + 1;
        int body = newBlock();
        edge(cur, body);
        j = subConstruct(j, end, body);
        if (j < end && toks_[j].text == "while") {
            ++j;
            if (j < end && toks_[j].text == "(") {
                const std::size_t close =
                    closeOf(toks_, j, end, "(", ")");
                append(body, parseStmt(toks_, j + 1, close));
                j = close + 1;
            }
            if (j < end && toks_[j].text == ";")
                ++j;
        }
        edge(body, body); // back edge
        const int exit = newBlock();
        edge(body, exit);
        cur = exit;
        return j;
    }

    std::size_t
    lowerSwitch(std::size_t i, std::size_t end, int &cur)
    {
        std::size_t j = i + 1;
        if (j < end && toks_[j].text == "(") {
            const std::size_t close =
                closeOf(toks_, j, end, "(", ")");
            append(cur, parseStmt(toks_, j + 1, close));
            j = close + 1;
        }
        const int head = cur;
        int body = newBlock();
        edge(head, body);
        if (j < end && toks_[j].text == "{") {
            const std::size_t close =
                closeOf(toks_, j, end, "{", "}");
            body = region(j + 1, close, body);
            j = close + 1;
        }
        const int join = newBlock();
        edge(body, join);
        edge(head, join); // no case taken
        cur = join;
        return j;
    }

    /**
     * Lower one nested construct (a brace block or a single
     * statement/if/loop) into @p block, mutating it to the exit.
     */
    std::size_t
    subConstruct(std::size_t j, std::size_t end, int &block)
    {
        if (j >= end)
            return j;
        return construct(j, end, block);
    }

    const TokenVec &toks_;
    Cfg cfg_;
};

} // namespace

Cfg
buildCfg(const std::vector<Token> &tokens, std::size_t begin,
         std::size_t end)
{
    return Builder(tokens).take(begin, std::min(end, tokens.size()));
}

std::vector<ReachEnv>
reachingDefs(const Cfg &cfg)
{
    const std::size_t n = cfg.blocks.size();
    std::vector<ReachEnv> in(n), out(n);

    auto transfer = [&](std::size_t b) {
        ReachEnv env = in[b];
        const Block &block = cfg.blocks[b];
        for (std::size_t s = 0; s < block.stmts.size(); ++s) {
            const Stmt &st = block.stmts[s];
            for (const std::string &d : st.defs) {
                auto &sites = env[d];
                if (!st.defThrough)
                    sites.clear(); // strong update kills
                sites.insert({static_cast<int>(b),
                              static_cast<int>(s)});
            }
        }
        return env;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < n; ++b) {
            // in[b] = union of out[p] over predecessors.
            ReachEnv merged;
            for (std::size_t p = 0; p < n; ++p)
                for (int succ : cfg.blocks[p].succs)
                    if (static_cast<std::size_t>(succ) == b)
                        for (const auto &[var, sites] : out[p])
                            merged[var].insert(sites.begin(),
                                               sites.end());
            if (merged != in[b]) {
                in[b] = std::move(merged);
                changed = true;
            }
            ReachEnv next = transfer(b);
            if (next != out[b]) {
                out[b] = std::move(next);
                changed = true;
            }
        }
    }
    return in;
}

TagSet
tagsOf(const TaintEnv &env, const std::vector<std::string> &names)
{
    TagSet tags;
    for (const std::string &n : names) {
        const auto it = env.find(n);
        if (it != env.end())
            tags.insert(it->second.begin(), it->second.end());
    }
    return tags;
}

void
solveTaint(
    const Cfg &cfg,
    const std::function<TagSet(const Stmt &, const TaintEnv &)>
        &transfer,
    const std::function<void(const Stmt &, const TaintEnv &)>
        &visit)
{
    const std::size_t n = cfg.blocks.size();
    std::vector<TaintEnv> in(n), out(n);

    auto apply = [&](std::size_t b, bool visiting) {
        TaintEnv env = in[b];
        for (const Stmt &st : cfg.blocks[b].stmts) {
            if (visiting)
                visit(st, env);
            const TagSet tags = transfer(st, env);
            for (const std::string &d : st.defs) {
                if (st.defThrough)
                    env[d].insert(tags.begin(), tags.end());
                else
                    env[d] = tags;
            }
        }
        return env;
    };

    // Fixpoint with a safety cap: transfer is caller-supplied and
    // joins are unions, so this converges, but cap anyway.
    const int cap = static_cast<int>(4 * n + 8);
    bool changed = true;
    for (int round = 0; changed && round < cap; ++round) {
        changed = false;
        for (std::size_t b = 0; b < n; ++b) {
            TaintEnv merged;
            for (std::size_t p = 0; p < n; ++p)
                for (int succ : cfg.blocks[p].succs)
                    if (static_cast<std::size_t>(succ) == b)
                        for (const auto &[var, tags] : out[p])
                            merged[var].insert(tags.begin(),
                                               tags.end());
            if (merged != in[b]) {
                in[b] = std::move(merged);
                changed = true;
            }
            TaintEnv next = apply(b, false);
            if (next != out[b]) {
                out[b] = std::move(next);
                changed = true;
            }
        }
    }

    for (std::size_t b = 0; b < n; ++b)
        apply(b, true);
}

} // namespace vsgpu::lint::df
