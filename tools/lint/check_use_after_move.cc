/**
 * @file
 * Family: use-after-move (semantic, project-wide).
 *
 * A moved-from object holds a valid-but-unspecified value; reading
 * it is either a silent logic bug (empty vector where data was
 * expected) or undefined behaviour one refactor later.  The family
 * runs a forward may-move dataflow over each function's CFG:
 *
 *   use-after-move.use         a local or parameter is read after a
 *       path moved its value away and nothing reinitialized it.
 *       Moves are visible directly (`std::move(x)` in any
 *       expression) and through sink-parameter callees — a helper
 *       whose every overload candidate std::move()s from a
 *       by-reference parameter moves the caller's argument, any
 *       bounded number of calls deep ("via helper" provenance from
 *       the lifetime model).
 *   use-after-move.double-move a second move of an already
 *       moved-from variable — usually a loop body moving the same
 *       captured value every iteration.
 *
 * The moved-from state ends at anything that plausibly
 * reinitializes: direct reassignment, clear()/reset()/assign(), the
 * variable passed to a callee that writes through that parameter,
 * or its address taken (ANY overload candidate suffices to kill —
 * kills are suppress-only, generation requires ALL candidates).
 * Only Local/Param-region names are tracked; an unclassifiable name
 * never flags.
 *
 * Waiver: // vsgpu-lint: move-ok(<reason>).
 */

#include "concurrency_model.hh"
#include "dataflow.hh"
#include "lifetime_model.hh"
#include "semantic.hh"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace vsgpu::lint
{

namespace
{

using TokenVec = std::vector<Token>;
constexpr std::string_view kWaiver = "vsgpu-lint: move-ok";

/** Where (and through what) a variable lost its value. */
struct MovedAt
{
    int line = 0;
    std::string via; ///< "" direct, "via helper ..." otherwise
};

/** Variable name -> move site that may reach this point. */
using MoveEnv = std::map<std::string, MovedAt>;

void
emit(const Project &project, int fileIndex, std::size_t offset,
     const std::string &id, std::string message,
     std::vector<Diagnostic> &out)
{
    const SourceFile &src =
        project.sources()[static_cast<std::size_t>(fileIndex)];
    const int line = src.lineOf(offset);
    if (src.hasWaiver(line, kWaiver))
        return;
    out.push_back({src.display(), line, Check::UseAfterMove,
                   std::move(message), id,
                   cm::columnOf(src, offset)});
}

/** Union join; returns true when @p into gained a new name. */
bool
joinInto(MoveEnv &into, const MoveEnv &from)
{
    bool changed = false;
    for (const auto &[name, at] : from)
        if (into.emplace(name, at).second)
            changed = true;
    return changed;
}

std::string
describeMove(const MovedAt &at)
{
    std::string where = "moved at line " + std::to_string(at.line);
    if (!at.via.empty())
        where += " (" + at.via + ")";
    return where;
}

/**
 * One statement's effect on the moved-from environment; when
 * @p diags is non-null the converged pass also reports uses.
 */
void
transfer(const Project &project, const FunctionDef &fn,
         const TokenVec &toks, const std::set<std::string> &locals,
         const df::Stmt &stmt, MoveEnv &env,
         std::vector<Diagnostic> *diags)
{
    const SymbolIndex &index = project.index();
    const std::vector<lm::MoveEvent> moves =
        lm::movesInStmt(toks, stmt, index, project.lifetime());
    std::set<std::string> movedHere;
    for (const lm::MoveEvent &mv : moves)
        movedHere.insert(mv.name);

    // --- kills first: anything that plausibly reinitializes ends
    // --- the moved-from state before this statement's reads are
    // --- judged (conservative: `x = f(x)` never flags).
    for (const std::string &def : stmt.defs)
        if (!stmt.defThrough)
            env.erase(def);
    for (const df::CallRef &call : stmt.calls) {
        if (!call.receiver.empty() &&
            lm::isReinitMemberName(call.callee)) {
            env.erase(call.receiver);
            continue;
        }
        if (!call.receiver.empty())
            continue;
        const std::vector<int> &cands = project.lookup(call.callee);
        if (cands.empty())
            continue;
        for (std::size_t k = 0; k < call.args.size(); ++k) {
            if (call.args[k].size() != 1)
                continue;
            // ANY candidate writing through parameter k counts as a
            // reinitialization of the argument (suppress-only).
            bool writes = false;
            for (int id : cands) {
                const FunctionDef &callee =
                    index.functions[static_cast<std::size_t>(id)];
                if (callee.writesParams.count(static_cast<int>(k)))
                    writes = true;
            }
            if (writes)
                env.erase(call.args[k].front());
        }
    }
    if (!env.empty()) {
        std::vector<std::string> addressed;
        for (const auto &[name, at] : env)
            if (lm::addressTakenIn(toks, stmt.tokBegin, stmt.tokEnd,
                                   name))
                addressed.push_back(name);
        for (const std::string &name : addressed)
            env.erase(name);
    }

    // --- report: reads of still-moved names, then repeat moves.
    if (diags != nullptr) {
        std::set<std::string> seen;
        for (const std::string &use : stmt.uses) {
            if (!seen.insert(use).second || movedHere.count(use))
                continue;
            const auto it = env.find(use);
            if (it == env.end())
                continue;
            const lm::Region region = lm::regionOf(
                project.index(), fn, locals, use);
            emit(project, fn.fileIndex, stmt.offset,
                 "use-after-move.use",
                 std::string(lm::regionName(region)) + " '" + use +
                     "' is read after its value was moved away (" +
                     describeMove(it->second) +
                     ") — a moved-from object holds an unspecified "
                     "value; reinitialize it before reuse or copy "
                     "instead of moving",
                 *diags);
        }
        for (const lm::MoveEvent &mv : moves) {
            const auto it = env.find(mv.name);
            if (it == env.end())
                continue;
            emit(project, fn.fileIndex, mv.offset,
                 "use-after-move.double-move",
                 "'" + mv.name +
                     "' is moved again after already being moved (" +
                     describeMove(it->second) +
                     ") — the second move transfers an unspecified "
                     "value; move once or reinitialize between "
                     "moves",
                 *diags);
        }
    }

    // --- gen: this statement's own moves (Local/Param only; a name
    // --- the region model cannot place never enters the state).
    for (const lm::MoveEvent &mv : moves) {
        bool redefined = false;
        for (const std::string &def : stmt.defs)
            if (!stmt.defThrough && def == mv.name)
                redefined = true;
        // A reinitializing call LATER in the same statement range
        // (a lambda body lowered into one statement: move, then
        // `x.clear()`) ends the moved-from state before it can
        // escape the statement.
        for (const df::CallRef &call : stmt.calls) {
            if (call.nameOffset <= mv.offset)
                continue;
            if (call.receiver == mv.name &&
                lm::isReinitMemberName(call.callee))
                redefined = true;
        }
        if (redefined)
            continue;
        const lm::Region region =
            lm::regionOf(project.index(), fn, locals, mv.name);
        if (region != lm::Region::Local &&
            region != lm::Region::Param)
            continue;
        const SourceFile &src =
            project.sources()[static_cast<std::size_t>(
                fn.fileIndex)];
        env.emplace(mv.name,
                    MovedAt{src.lineOf(mv.offset), mv.via});
    }
}

void
analyzeFunction(const Project &project, const FunctionDef &fn,
                std::vector<Diagnostic> &out)
{
    if (fn.bodyBegin >= fn.bodyEnd)
        return;
    const TokenVec &toks = project.tokens(fn.fileIndex);
    const df::Cfg cfg =
        df::buildCfg(toks, fn.bodyBegin, fn.bodyEnd);
    if (cfg.blocks.empty())
        return;
    const std::set<std::string> locals = lm::localsOf(toks, cfg);

    // Forward may-move fixpoint: block entry environments under
    // set-union join (a move on EITHER branch taints the join).
    std::vector<std::vector<int>> preds(cfg.blocks.size());
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
        for (int succ : cfg.blocks[b].succs)
            preds[static_cast<std::size_t>(succ)].push_back(
                static_cast<int>(b));
    std::vector<MoveEnv> entry(cfg.blocks.size());
    bool changed = true;
    int rounds = 0;
    while (changed && rounds++ < 64) {
        changed = false;
        for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
            MoveEnv in;
            for (int p : preds[b]) {
                MoveEnv outEnv =
                    entry[static_cast<std::size_t>(p)];
                for (const df::Stmt &stmt :
                     cfg.blocks[static_cast<std::size_t>(p)].stmts)
                    transfer(project, fn, toks, locals, stmt,
                             outEnv, nullptr);
                joinInto(in, outEnv);
            }
            if (b == 0 && preds[b].empty())
                in.clear();
            if (joinInto(entry[b], in))
                changed = true;
        }
    }

    // Converged reporting pass, in block order.
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        MoveEnv env = entry[b];
        for (const df::Stmt &stmt : cfg.blocks[b].stmts)
            transfer(project, fn, toks, locals, stmt, env, &out);
    }
}

} // namespace

void
checkUseAfterMove(const Project &project,
                  std::vector<Diagnostic> &out)
{
    for (const FunctionDef &fn : project.index().functions)
        analyzeFunction(project, fn, out);
}

} // namespace vsgpu::lint
