/**
 * @file
 * Family: atomics-misuse (semantic, project-wide).
 *
 * Three rules about the boundary between atomics, locks, and plain
 * memory — each one a silent miscompile rather than a crash:
 *
 *   atomics-misuse.mixed-declaration   the same variable name
 *       declared std::atomic in one translation unit and as a plain
 *       mutable global in another.  Cross-TU by construction (a
 *       single declaration can only be one or the other), so only
 *       the project-wide index can see it; both declaration sites
 *       are cited.
 *   atomics-misuse.unguarded-read      a global that every writer
 *       mutates under a common lock, read without that lock and
 *       outside any lock scope.  The write side's discipline shows
 *       the variable is shared; the unlocked read tears or reads
 *       stale values.
 *   atomics-misuse.relaxed-publish     a memory_order_relaxed store
 *       preceded (in the same function) by an unguarded plain write
 *       to shared state: the flag-then-data publication idiom.
 *       Relaxed provides no release ordering, so a reader that
 *       observes the flag may not observe the data.  Stores whose
 *       preceding writes are lock-guarded are ordered by the lock's
 *       release and are not flagged (the obs::Trace enable()
 *       pattern).
 *
 * Waiver: // vsgpu-lint: atomics-ok(<reason>).
 */

#include "concurrency_model.hh"
#include "semantic.hh"

#include <set>
#include <string>
#include <vector>

namespace vsgpu::lint
{

namespace
{

using TokenVec = std::vector<Token>;
constexpr std::string_view kWaiver = "vsgpu-lint: atomics-ok";

void
emit(const Project &project, int fileIndex, std::size_t offset,
     const std::string &id, std::string message,
     std::vector<Diagnostic> &out)
{
    const SourceFile &src =
        project.sources()[static_cast<std::size_t>(fileIndex)];
    const int line = src.lineOf(offset);
    if (src.hasWaiver(line, kWaiver))
        return;
    out.push_back({src.display(), line, Check::AtomicsMisuse,
                   std::move(message), id,
                   cm::columnOf(src, offset)});
}

/** Rule 1: atomic in one TU, plain global in another. */
void
mixedDeclarations(const Project &project,
                  std::vector<Diagnostic> &out)
{
    const SymbolIndex &index = project.index();
    for (const std::string &name : index.atomics) {
        if (!index.globals.count(name))
            continue;
        const auto ait = index.atomicDecl.find(name);
        const auto git = index.globalDecl.find(name);
        if (ait == index.atomicDecl.end() ||
            git == index.globalDecl.end())
            continue;
        const DeclSite &atomic = ait->second;
        const DeclSite &plain = git->second;
        if (atomic.fileIndex < 0 || plain.fileIndex < 0)
            continue;
        // One declaration indexed through both scans is not a mix —
        // a real conflict needs two distinct declaration sites.
        if (atomic.fileIndex == plain.fileIndex &&
            atomic.line == plain.line)
            continue;
        const SourceFile &atomicSrc =
            project.sources()[static_cast<std::size_t>(
                atomic.fileIndex)];
        // Report at the plain declaration (the one that loses the
        // atomicity), citing the atomic one for cross-TU provenance.
        const SourceFile &plainSrc =
            project.sources()[static_cast<std::size_t>(
                plain.fileIndex)];
        const int line = plain.line;
        if (plainSrc.hasWaiver(line, kWaiver))
            continue;
        out.push_back(
            {plainSrc.display(), line, Check::AtomicsMisuse,
             "'" + name +
                 "' is declared as a plain global here but as "
                 "std::atomic at " +
                 atomicSrc.display() + ":" +
                 std::to_string(atomic.line) +
                 " — accesses through this declaration bypass the "
                 "atomicity the other translation unit relies on",
             "atomics-misuse.mixed-declaration", 0});
    }
}

/** Rule 2: globals only ever written under a lock, read bare. */
void
unguardedReads(const Project &project, std::vector<Diagnostic> &out)
{
    const SymbolIndex &index = project.index();
    for (const std::string &g : index.globals) {
        if (index.atomics.count(g) || index.constNames.count(g))
            continue;
        // The write side: every function whose summary writes g must
        // hold a common lock for the discipline to be established.
        std::set<std::string> guard;
        bool firstWriter = true;
        int writers = 0;
        for (const FunctionDef &fn : index.functions) {
            if (!fn.writesGlobals.count(g))
                continue;
            ++writers;
            if (fn.locksAcquired.empty()) {
                guard.clear();
                break;
            }
            if (firstWriter) {
                guard = fn.locksAcquired;
                firstWriter = false;
            } else {
                for (auto it = guard.begin(); it != guard.end();)
                    it = fn.locksAcquired.count(*it)
                             ? std::next(it)
                             : guard.erase(it);
            }
        }
        if (writers == 0 || guard.empty())
            continue;
        const std::string &lock = *guard.begin();

        // The read side: a bare mention outside any lock scope in a
        // function that is not itself a writer and holds none of the
        // guard locks.
        for (const FunctionDef &fn : index.functions) {
            if (fn.writesGlobals.count(g))
                continue;
            bool holds = false;
            for (const std::string &k : guard)
                if (fn.locksAcquired.count(k) ||
                    fn.annAcquires.count(k))
                    holds = true;
            if (holds)
                continue;
            const TokenVec &toks = project.tokens(fn.fileIndex);
            const std::vector<cm::LockScope> scopes =
                cm::lockScopes(toks, fn.bodyBegin, fn.bodyEnd);
            for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd;
                 ++i) {
                if (toks[i].kind != Token::Kind::Identifier ||
                    toks[i].text != g)
                    continue;
                if (i > fn.bodyBegin &&
                    (toks[i - 1].text == "." ||
                     toks[i - 1].text == "->" ||
                     toks[i - 1].text == "::"))
                    continue; // member of something else
                if (i + 1 < fn.bodyEnd &&
                    (toks[i + 1].text == "(" ||
                     cm::isAssignOp(toks[i + 1].text)))
                    continue; // a call, or a write (writer summary)
                if (cm::underAnyLock(scopes, i))
                    continue;
                emit(project, fn.fileIndex, toks[i].offset,
                     "atomics-misuse.unguarded-read",
                     "plain read of '" + g +
                         "', which is only ever written under '" +
                         lock +
                         "' — the unlocked read races with those "
                         "writes; take the lock or make it atomic",
                     out);
                break; // one finding per function is enough
            }
        }
    }
}

/** Rule 3: relaxed store publishing earlier unguarded writes. */
void
relaxedPublish(const Project &project, std::vector<Diagnostic> &out)
{
    const SymbolIndex &index = project.index();
    for (const FunctionDef &fn : index.functions) {
        const TokenVec &toks = project.tokens(fn.fileIndex);
        const std::vector<cm::LockScope> scopes =
            cm::lockScopes(toks, fn.bodyBegin, fn.bodyEnd);
        std::set<std::string> locals;
        {
            const cm::NameSet names = cm::localNames(
                toks, fn.bodyBegin, fn.bodyEnd);
            locals.insert(names.begin(), names.end());
        }
        for (const ParamInfo &p : fn.params)
            locals.insert(p.name);

        for (std::size_t i = fn.bodyBegin; i + 1 < fn.bodyEnd;
             ++i) {
            if (toks[i].text != "store" ||
                toks[i + 1].text != "(")
                continue;
            const std::size_t close =
                cm::skipBalanced(toks, i + 1, "(", ")");
            bool relaxed = false;
            for (std::size_t j = i + 2; j < close; ++j)
                if (toks[j].text == "memory_order_relaxed")
                    relaxed = true;
            if (!relaxed || cm::underAnyLock(scopes, i))
                continue;
            // Earlier in this body: a plain write to shared state
            // (global or this-class field) not under a lock.
            for (std::size_t j = fn.bodyBegin; j < i; ++j) {
                if (toks[j].kind != Token::Kind::Identifier ||
                    j + 1 >= i ||
                    !cm::isAssignOp(toks[j + 1].text))
                    continue;
                const std::string w(toks[j].text);
                if (locals.count(w) || index.atomics.count(w) ||
                    index.constNames.count(w))
                    continue;
                if (j > fn.bodyBegin &&
                    (toks[j - 1].text == "." ||
                     toks[j - 1].text == "->") &&
                    !(j >= 2 && toks[j - 2].text == "this"))
                    continue;
                const bool global = index.globals.count(w) > 0;
                bool field = false;
                if (!fn.className.empty()) {
                    const auto cit =
                        index.classFields.find(fn.className);
                    field = cit != index.classFields.end() &&
                            cit->second.count(w) > 0;
                }
                if (!global && !field)
                    continue;
                if (cm::underAnyLock(scopes, j))
                    continue; // ordered by the lock's release
                std::string flag = "the atomic";
                if (i >= 2 && (toks[i - 1].text == "." ||
                               toks[i - 1].text == "->") &&
                    toks[i - 2].kind == Token::Kind::Identifier)
                    flag = "'" + std::string(toks[i - 2].text) +
                           "'";
                emit(project, fn.fileIndex, toks[i].offset,
                     "atomics-misuse.relaxed-publish",
                     "relaxed store to " + flag +
                         " publishes the earlier plain write to '" +
                         w +
                         "' — memory_order_relaxed has no release "
                         "ordering, so a reader that sees the flag "
                         "may not see the data; use "
                         "memory_order_release (with an acquire "
                         "load) or do both under one lock",
                     out);
                break;
            }
        }
    }
}

} // namespace

void
checkAtomicsMisuse(const Project &project,
                   std::vector<Diagnostic> &out)
{
    mixedDeclarations(project, out);
    unguardedReads(project, out);
    relaxedPublish(project, out);
}

} // namespace vsgpu::lint
