/**
 * @file
 * Minimal compile_commands.json reader.
 *
 * The database is a JSON array of objects; vsgpu_lint only needs the
 * "directory" and "file" members, so this is a purpose-built parser
 * for exactly that shape (tolerating and skipping every other member,
 * including "arguments" arrays), not a general JSON library.
 */

#include "lint.hh"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vsgpu::lint
{

namespace
{

class Parser
{
  public:
    Parser(std::string text, std::string path)
        : text_(std::move(text)), path_(std::move(path))
    {
    }

    std::vector<CompileCommand>
    parse()
    {
        std::vector<CompileCommand> commands;
        skipWs();
        expect('[');
        skipWs();
        if (peek() == ']')
            return commands;
        for (;;) {
            commands.push_back(parseEntry());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            break;
        }
        return commands;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw std::runtime_error(path_ + ": " + what +
                                 " at offset " +
                                 std::to_string(pos_));
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (peek() != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                const char esc = peek();
                ++pos_;
                switch (esc) {
                  case 'n':
                    out.push_back('\n');
                    break;
                  case 't':
                    out.push_back('\t');
                    break;
                  case 'r':
                    out.push_back('\r');
                    break;
                  case 'b':
                  case 'f':
                    out.push_back(' ');
                    break;
                  case 'u':
                    // Paths in compile databases are ASCII in
                    // practice; skip the four hex digits.
                    pos_ += 4;
                    out.push_back('?');
                    break;
                  default:
                    out.push_back(esc);
                    break;
                }
            } else {
                out.push_back(c);
            }
        }
        ++pos_; // closing quote
        return out;
    }

    /** Skip any JSON value (string, array, object, literal). */
    void
    skipValue()
    {
        skipWs();
        const char c = peek();
        if (c == '"') {
            parseString();
        } else if (c == '[') {
            ++pos_;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return;
            }
            for (;;) {
                skipValue();
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                break;
            }
        } else if (c == '{') {
            ++pos_;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return;
            }
            for (;;) {
                skipWs();
                parseString();
                skipWs();
                expect(':');
                skipValue();
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                break;
            }
        } else {
            // number / true / false / null
            while (pos_ < text_.size() && text_[pos_] != ',' &&
                   text_[pos_] != ']' && text_[pos_] != '}')
                ++pos_;
        }
    }

    CompileCommand
    parseEntry()
    {
        CompileCommand cmd;
        skipWs();
        expect('{');
        for (;;) {
            skipWs();
            const std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            if (key == "directory") {
                cmd.directory = parseString();
            } else if (key == "file") {
                cmd.file = parseString();
            } else {
                skipValue();
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            break;
        }
        return cmd;
    }

    std::string text_;
    std::string path_;
    std::size_t pos_ = 0;
};

} // namespace

std::vector<CompileCommand>
readCompileCommands(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error(
            "vsgpu_lint: cannot open compile database: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return Parser(buf.str(), path).parse();
}

} // namespace vsgpu::lint
