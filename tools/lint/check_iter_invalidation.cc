/**
 * @file
 * Family: iterator-invalidation (semantic, project-wide).
 *
 * An iterator, reference, or pointer into a container is a view of
 * one element; structural mutation of the container may reallocate
 * or erase the storage under it.  The family tracks bindings
 * (iterator = v.begin()/v.find(), `auto &r = v[i]`, `T *p =
 * &v[i]`) through each function in statement order and reports:
 *
 *   iterator-invalidation.use-after-mutate    a binding read after
 *       a may-mutate operation on its container.  erase / clear /
 *       resize / assign / pop_* invalidate unconditionally; the
 *       insert family (push_back, emplace, insert, ...) only when
 *       the container's type is known to relocate on growth
 *       (vector/string/deque) or rehash (unordered_*) — inserting
 *       into a std::map does NOT invalidate and never flags.
 *       Cross-TU: a helper whose every overload candidate
 *       structurally mutates its container parameter invalidates at
 *       the call site ("via helper" provenance from the lifetime
 *       model).
 *   iterator-invalidation.mutate-while-iterating    a range-for
 *       body structurally mutating the container it iterates — the
 *       loop's hidden iterator is invalidated mid-flight.
 *
 * Reassigning the binding (`it = v.insert(it, x)`) ends its tracked
 * state, so the standard rebind idiom never flags.
 *
 * Waiver: // vsgpu-lint: iter-ok(<reason>).
 */

#include "concurrency_model.hh"
#include "dataflow.hh"
#include "lifetime_model.hh"
#include "semantic.hh"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace vsgpu::lint
{

namespace
{

using TokenVec = std::vector<Token>;
constexpr std::string_view kWaiver = "vsgpu-lint: iter-ok";

void
emit(const Project &project, int fileIndex, std::size_t offset,
     const std::string &id, std::string message,
     std::vector<Diagnostic> &out)
{
    const SourceFile &src =
        project.sources()[static_cast<std::size_t>(fileIndex)];
    const int line = src.lineOf(offset);
    if (src.hasWaiver(line, kWaiver))
        return;
    out.push_back({src.display(), line, Check::IterInvalidation,
                   std::move(message), id,
                   cm::columnOf(src, offset)});
}

/** Containers whose insert family relocates elements on growth. */
bool
isRelocatingTypeName(std::string_view name)
{
    return name == "vector" || name == "string" ||
           name == "basic_string" || name == "wstring" ||
           name == "deque";
}

bool
isUnorderedTypeName(std::string_view name)
{
    return name.substr(0, 10) == "unordered_";
}

/** Token index of @p name inside the statement's range, or
 *  stmt.tokEnd when absent. */
std::size_t
findNameTok(const TokenVec &toks, const df::Stmt &stmt,
            const std::string &name)
{
    for (std::size_t i = stmt.tokBegin; i < stmt.tokEnd; ++i)
        if (toks[i].kind == Token::Kind::Identifier &&
            toks[i].text == name)
            return i;
    return stmt.tokEnd;
}

/** One live binding into a container. */
struct Binding
{
    std::string container;
};

/** A binding whose container was mutated after it was taken. */
struct Invalidated
{
    std::string container;
    int mutLine = 0;
    std::string mutation; ///< "v.push_back" / "helper(v)"
    std::string via;      ///< "" direct, "via helper ..." else
};

struct FnContext
{
    const Project *project = nullptr;
    const FunctionDef *fn = nullptr;
    const TokenVec *toks = nullptr;
    std::map<std::string, std::string> declType;
};

/** Is structural insertion into @p container known to invalidate
 *  (relocating sequence or rehashing unordered container)? */
bool
insertInvalidates(const FnContext &ctx, const std::string &cont)
{
    const auto it = ctx.declType.find(cont);
    if (it != ctx.declType.end() &&
        (isRelocatingTypeName(it->second) ||
         isUnorderedTypeName(it->second)))
        return true;
    const SymbolIndex &index = ctx.project->index();
    const auto uit = index.unorderedVars.find(ctx.fn->fileIndex);
    if (uit != index.unorderedVars.end() &&
        uit->second.count(cont))
        return true;
    return index.unorderedDecl.count(cont) > 0;
}

/** Mark every live binding into @p cont as invalidated. */
void
invalidateContainer(const std::map<std::string, Binding> &bindings,
                    std::map<std::string, Invalidated> &invalid,
                    const std::string &cont, int mutLine,
                    const std::string &mutation,
                    const std::string &via)
{
    for (const auto &[name, binding] : bindings)
        if (binding.container == cont)
            invalid.emplace(name, Invalidated{cont, mutLine,
                                              mutation, via});
}

void
analyzeBindings(const FnContext &ctx,
                const std::vector<const df::Stmt *> &stmts,
                std::vector<Diagnostic> &out)
{
    const Project &project = *ctx.project;
    const FunctionDef &fn = *ctx.fn;
    const TokenVec &toks = *ctx.toks;

    std::map<std::string, Binding> bindings;
    std::map<std::string, Invalidated> invalid;

    for (const df::Stmt *stmt : stmts) {
        // --- 1. reads of invalidated bindings (evaluated before
        // --- this statement's own mutations take effect).
        std::set<std::string> seen;
        for (const std::string &use : stmt->uses) {
            if (!seen.insert(use).second)
                continue;
            const auto it = invalid.find(use);
            if (it == invalid.end())
                continue;
            const Invalidated &inv = it->second;
            std::string msg =
                "'" + use + "' points into '" + inv.container +
                "', which '" + inv.mutation +
                "' may have restructured at line " +
                std::to_string(inv.mutLine);
            if (!inv.via.empty())
                msg += " (" + inv.via + ")";
            msg += " — the element storage may have moved or "
                   "gone; re-acquire the iterator/reference after "
                   "mutating";
            emit(project, fn.fileIndex, stmt->offset,
                 "iterator-invalidation.use-after-mutate",
                 std::move(msg), out);
            invalid.erase(it); // one report per binding
        }

        // --- 2. mutations this statement performs.
        const SourceFile &src =
            project.sources()[static_cast<std::size_t>(
                fn.fileIndex)];
        for (const df::CallRef &call : stmt->calls) {
            if (!call.receiver.empty()) {
                if (!lm::isInvalidatingMemberName(call.callee))
                    continue;
                if (lm::isInsertingMemberName(call.callee) &&
                    !insertInvalidates(ctx, call.receiver))
                    continue;
                invalidateContainer(
                    bindings, invalid, call.receiver,
                    src.lineOf(call.nameOffset),
                    call.receiver + "." + call.callee + "()", "");
                continue;
            }
            // Helper call: EVERY candidate must structurally
            // mutate the argument's parameter position, and the
            // container's type must be known to invalidate.
            const std::vector<int> &cands =
                project.lookup(call.callee);
            if (cands.empty())
                continue;
            for (std::size_t k = 0; k < call.args.size(); ++k) {
                if (call.args[k].size() != 1)
                    continue;
                const std::string &arg = call.args[k].front();
                bool anyBinding = false;
                for (const auto &[name, b] : bindings)
                    if (b.container == arg)
                        anyBinding = true;
                if (!anyBinding)
                    continue;
                bool allMutate = true;
                std::string via;
                for (int id : cands) {
                    const lm::FunctionLifetime &lt =
                        project.lifetime().of(id);
                    if (!lt.mutatesParams.count(
                            static_cast<int>(k))) {
                        allMutate = false;
                        break;
                    }
                    if (via.empty()) {
                        const auto vit = lt.mutateVia.find(
                            static_cast<int>(k));
                        via = vit == lt.mutateVia.end()
                                  ? "via " + call.callee
                                  : "via " + call.callee + " " +
                                        vit->second.substr(4);
                    }
                }
                if (!allMutate || !insertInvalidates(ctx, arg))
                    continue;
                invalidateContainer(
                    bindings, invalid, arg,
                    src.lineOf(call.nameOffset),
                    call.callee + "(" + arg + ")", via);
            }
        }

        // --- 3. redefinition ends a binding's tracked state (the
        // --- `it = v.insert(it, x)` rebind idiom).
        for (const std::string &def : stmt->defs)
            if (!stmt->defThrough) {
                bindings.erase(def);
                invalid.erase(def);
            }

        // --- 4. new bindings taken by this statement.
        if (stmt->defs.empty())
            continue;
        const std::string &target = stmt->defs.front();
        for (const df::CallRef &call : stmt->calls) {
            if (call.receiver.empty() || call.receiver == target)
                continue;
            const bool iterish =
                lm::isViewReturningMemberName(call.callee);
            bool refish = false;
            if (!iterish && stmt->declares &&
                (call.callee == "front" || call.callee == "back" ||
                 call.callee == "at")) {
                // Only a reference/pointer declaration keeps the
                // element aliased; a value copy is safe.
                const std::size_t at = lm::tokenAt(
                    toks, stmt->tokBegin, stmt->tokEnd,
                    call.nameOffset);
                for (std::size_t i = stmt->tokBegin;
                     i < at && i < stmt->tokEnd; ++i)
                    if ((toks[i].text == "&" ||
                         toks[i].text == "*") &&
                        i + 1 < stmt->tokEnd &&
                        toks[i + 1].text == target)
                        refish = true;
            }
            if (iterish || refish) {
                bindings[target] = Binding{call.receiver};
                invalid.erase(target);
                break;
            }
        }
        // `auto &r = v[i]` / `T *p = &v[i]`: a declared ref/ptr
        // whose initializer subscripts a container.
        if (stmt->declares && !bindings.count(target) &&
            stmt->calls.empty()) {
            const std::size_t at = findNameTok(toks, *stmt, target);
            if (at != stmt->tokEnd && at > stmt->tokBegin &&
                (toks[at - 1].text == "&" ||
                 toks[at - 1].text == "*")) {
                for (std::size_t i = at + 1;
                     i + 1 < stmt->tokEnd; ++i)
                    if (toks[i].kind == Token::Kind::Identifier &&
                        toks[i + 1].text == "[") {
                        bindings[target] =
                            Binding{std::string(toks[i].text)};
                        break;
                    }
            }
        }
    }
}

/** Range-for bodies structurally mutating their own container. */
void
mutateWhileIterating(const FnContext &ctx,
                     std::vector<Diagnostic> &out)
{
    const Project &project = *ctx.project;
    const FunctionDef &fn = *ctx.fn;
    const TokenVec &toks = *ctx.toks;

    for (std::size_t i = fn.bodyBegin; i + 1 < fn.bodyEnd; ++i) {
        if (toks[i].text != "for" || toks[i + 1].text != "(")
            continue;
        const std::size_t close =
            cm::skipBalanced(toks, i + 1, "(", ")");
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 2; j < close; ++j) {
            const std::string_view t = toks[j].text;
            if (t == "(" || t == "[" || t == "{" || t == "<")
                ++depth;
            else if (t == ")" || t == "]" || t == "}" || t == ">")
                --depth;
            else if (t == ":" && depth == 0) {
                colon = j;
                break;
            }
        }
        if (colon == 0)
            continue;
        std::size_t contTok = 0;
        for (std::size_t j = close; j-- > colon + 1;)
            if (toks[j].kind == Token::Kind::Identifier) {
                contTok = j;
                break;
            }
        if (contTok == 0 || toks[contTok - 1].text == "." ||
            toks[contTok - 1].text == "->")
            contTok = 0; // member-chain container: root ambiguous
        if (contTok == 0) {
            i = close;
            continue;
        }
        const std::string cont(toks[contTok].text);
        if (close + 1 >= fn.bodyEnd ||
            toks[close + 1].text != "{") {
            i = close;
            continue;
        }
        const std::size_t bodyClose =
            cm::skipBalanced(toks, close + 1, "{", "}");
        for (std::size_t j = close + 2; j + 2 < bodyClose; ++j) {
            if (toks[j].kind != Token::Kind::Identifier ||
                toks[j].text != cont)
                continue;
            if (toks[j + 1].text != "." &&
                toks[j + 1].text != "->")
                continue;
            const std::string_view member = toks[j + 2].text;
            if (!lm::isInvalidatingMemberName(member))
                continue;
            if (lm::isInsertingMemberName(member) &&
                !insertInvalidates(ctx, cont))
                continue;
            emit(project, fn.fileIndex, toks[j].offset,
                 "iterator-invalidation.mutate-while-iterating",
                 "range-for over '" + cont + "' calls '" + cont +
                     "." + std::string(member) +
                     "()' inside the loop body — the loop's "
                     "iterator is invalidated mid-iteration; "
                     "collect the changes and apply them after "
                     "the loop (or switch to an index loop)",
                 out);
            j = bodyClose;
        }
        i = close;
    }
}

void
analyzeFunction(const Project &project, const FunctionDef &fn,
                std::vector<Diagnostic> &out)
{
    if (fn.bodyBegin >= fn.bodyEnd)
        return;
    const TokenVec &toks = project.tokens(fn.fileIndex);
    const df::Cfg cfg =
        df::buildCfg(toks, fn.bodyBegin, fn.bodyEnd);
    if (cfg.blocks.empty())
        return;
    std::vector<const df::Stmt *> stmts;
    for (const df::Block &block : cfg.blocks)
        for (const df::Stmt &stmt : block.stmts)
            stmts.push_back(&stmt);

    FnContext ctx;
    ctx.project = &project;
    ctx.fn = &fn;
    ctx.toks = &toks;
    for (const ParamInfo &p : fn.params)
        if (!p.name.empty())
            ctx.declType[p.name] = p.type;
    for (const df::Stmt *stmt : stmts)
        if (stmt->declares && !stmt->defs.empty())
            ctx.declType[stmt->defs.front()] = stmt->declType;

    analyzeBindings(ctx, stmts, out);
    mutateWhileIterating(ctx, out);
}

} // namespace

void
checkIterInvalidation(const Project &project,
                      std::vector<Diagnostic> &out)
{
    for (const FunctionDef &fn : project.index().functions)
        analyzeFunction(project, fn, out);
}

} // namespace vsgpu::lint
