/**
 * @file
 * vsgpu_lint command-line driver.
 *
 * Usage:
 *   vsgpu_lint [-p <build-dir>] [--checks a,b,...]
 *              [--baseline <file> | --no-baseline]
 *              [--write-baseline] [--list-checks]
 *              [--explain <id>]
 *              [--sarif <file>] [--dump-index <file>]
 *              [--timings <file>] [file...]
 *
 * With no file arguments, lints every project source named by the
 * compile database (<build-dir>/compile_commands.json, default
 * build dir "build") plus every header under src/, bench/, tools/,
 * and tests/ (the lint fixture corpus excluded) — headers never
 * appear in a compile database but carry the interfaces the
 * unit-safety family polices.  Explicit file arguments are linted
 * with every enabled check regardless of path scoping (fixture
 * tests rely on this).  --timings writes wall-clock and per-family
 * seconds/finding counts as JSON for the CI budget gate
 * (scripts/check_bench.py --lint against BENCH_lint.json).
 *
 * Exit status: 0 clean (or baselined), 1 new diagnostics, 2 usage /
 * I/O error.
 */

#include "lint.hh"
#include "semantic.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using namespace vsgpu::lint;

namespace
{

struct Options
{
    std::string buildDir = "build";
    std::string baselinePath; ///< empty = default next to binary use
    bool useBaseline = true;
    bool writeBaseline = false;
    bool verbose = false;
    std::string sarifPath;     ///< write SARIF 2.1.0 log here
    std::string dumpIndexPath; ///< write symbol-index JSON here
    std::string timingsPath;   ///< write wall/per-family JSON here
    std::vector<Check> checks{std::begin(kAllChecks),
                              std::end(kAllChecks)};
    std::vector<std::string> files;
};

int
usage(std::ostream &os)
{
    os << "usage: vsgpu_lint [-p build-dir] [--checks a,b,...]\n"
          "                  [--baseline file | --no-baseline]\n"
          "                  [--write-baseline] [--verbose]\n"
          "                  [--sarif file] [--dump-index file]\n"
          "                  [--timings file]\n"
          "                  [--explain id] [--list-checks] "
          "[file...]\n";
    return 2;
}

bool
parseChecks(const std::string &arg, std::vector<Check> &out)
{
    out.clear();
    std::size_t start = 0;
    while (start <= arg.size()) {
        std::size_t comma = arg.find(',', start);
        if (comma == std::string::npos)
            comma = arg.size();
        const std::string name = arg.substr(start, comma - start);
        Check check{};
        if (!name.empty()) {
            if (!parseCheckName(name, check)) {
                std::cerr << "vsgpu_lint: unknown check '" << name
                          << "'\n";
                return false;
            }
            out.push_back(check);
        }
        start = comma + 1;
    }
    return !out.empty();
}

/** Repo root: nearest ancestor of @p from containing src/common. */
fs::path
findRepoRoot(const fs::path &from)
{
    fs::path dir = fs::absolute(from);
    while (!dir.empty()) {
        if (fs::exists(dir / "src" / "common" / "quantity.hh"))
            return dir;
        if (dir == dir.parent_path())
            break;
        dir = dir.parent_path();
    }
    return {};
}

/** Display path: repo-relative with forward slashes when possible. */
std::string
displayPath(const fs::path &file, const fs::path &repoRoot)
{
    std::error_code ec;
    const fs::path abs = fs::weakly_canonical(file, ec);
    if (!repoRoot.empty()) {
        const fs::path rel =
            fs::relative(ec ? file : abs, repoRoot, ec);
        if (!ec && !rel.empty() &&
            rel.native().rfind("..", 0) != 0)
            return rel.generic_string();
    }
    return file.generic_string();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                return nullptr;
            return argv[++i];
        };
        if (arg == "-p" || arg == "--build-dir") {
            const char *v = next();
            if (!v)
                return usage(std::cerr);
            opt.buildDir = v;
        } else if (arg == "--checks") {
            const char *v = next();
            if (!v || !parseChecks(v, opt.checks))
                return usage(std::cerr);
        } else if (arg == "--baseline") {
            const char *v = next();
            if (!v)
                return usage(std::cerr);
            opt.baselinePath = v;
        } else if (arg == "--no-baseline") {
            opt.useBaseline = false;
        } else if (arg == "--write-baseline") {
            opt.writeBaseline = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--sarif") {
            const char *v = next();
            if (!v)
                return usage(std::cerr);
            opt.sarifPath = v;
        } else if (arg == "--dump-index") {
            const char *v = next();
            if (!v)
                return usage(std::cerr);
            opt.dumpIndexPath = v;
        } else if (arg == "--timings") {
            const char *v = next();
            if (!v)
                return usage(std::cerr);
            opt.timingsPath = v;
        } else if (arg == "--explain") {
            const char *v = next();
            if (!v)
                return usage(std::cerr);
            if (!explainDiagnostic(v, std::cout)) {
                std::cerr << "vsgpu_lint: unknown diagnostic id '"
                          << v
                          << "' (see --list-checks for families)\n";
                return 2;
            }
            return 0;
        } else if (arg == "--list-checks") {
            for (Check c : kAllChecks)
                std::cout << checkName(c) << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout), 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "vsgpu_lint: unknown option " << arg
                      << "\n";
            return usage(std::cerr);
        } else {
            opt.files.push_back(arg);
        }
    }

    const bool explicitFiles = !opt.files.empty();
    fs::path repoRoot;
    std::vector<fs::path> targets;

    try {
        if (explicitFiles) {
            repoRoot = findRepoRoot(fs::current_path());
            for (const std::string &f : opt.files)
                targets.emplace_back(f);
        } else {
            const fs::path db =
                fs::path(opt.buildDir) / "compile_commands.json";
            const auto commands =
                readCompileCommands(db.string());
            if (commands.empty()) {
                std::cerr << "vsgpu_lint: empty compile database "
                          << db << "\n";
                return 2;
            }
            std::set<std::string> seen;
            for (const CompileCommand &cmd : commands) {
                fs::path file(cmd.file);
                if (file.is_relative())
                    file = fs::path(cmd.directory) / file;
                if (repoRoot.empty())
                    repoRoot = findRepoRoot(file.parent_path());
                std::error_code ec;
                const fs::path canon =
                    fs::weakly_canonical(file, ec);
                if (seen.insert(canon.string()).second)
                    targets.push_back(canon);
            }
            // Headers never appear in the compile database; the
            // unit-safety family lives in src/ headers, the
            // concurrency families cover bench/ and tools/ (they
            // submit to pools too), and the lifetime families
            // cover tests/ as well — test helpers hold views and
            // move values like any other code.  The lint fixture
            // corpus is excluded: it exists to CONTAIN seeded
            // violations.
            if (!repoRoot.empty()) {
                for (const char *tree :
                     {"src", "bench", "tools", "tests"}) {
                    const fs::path dir = repoRoot / tree;
                    if (!fs::is_directory(dir))
                        continue;
                    for (const auto &entry :
                         fs::recursive_directory_iterator(dir)) {
                        if (!entry.is_regular_file() ||
                            entry.path().extension() != ".hh")
                            continue;
                        std::error_code ec;
                        const fs::path canon =
                            fs::weakly_canonical(entry.path(), ec);
                        if (canon.string().find(
                                "tests/lint/fixtures") !=
                            std::string::npos)
                            continue;
                        if (seen.insert(canon.string()).second)
                            targets.push_back(canon);
                    }
                }
            }
        }

        std::sort(targets.begin(), targets.end());

        std::vector<SourceFile> loaded;
        loaded.reserve(targets.size());
        for (const fs::path &t : targets) {
            if (!fs::exists(t)) {
                std::cerr << "vsgpu_lint: no such file: " << t
                          << "\n";
                return 2;
            }
            loaded.push_back(loadSource(
                t.string(), displayPath(t, repoRoot)));
        }

        // The Project owns the sources: it tokenizes every file
        // once and builds the symbol index + call graph the
        // semantic families (and --dump-index) consume.
        Project project(std::move(loaded));
        const std::vector<SourceFile> &sources = project.sources();

        if (!opt.dumpIndexPath.empty()) {
            std::ofstream out(opt.dumpIndexPath);
            if (!out) {
                std::cerr << "vsgpu_lint: cannot write index "
                          << opt.dumpIndexPath << "\n";
                return 2;
            }
            dumpIndexJson(project, out);
        }

        if (opt.verbose)
            for (const SourceFile &src : sources)
                std::cerr << "lint " << src.display() << "\n";

        // One pass per family so --timings can attribute wall time
        // and raw finding counts to each check (the CI budget gate
        // and the job summary both read the breakdown).
        struct FamilyTiming
        {
            std::string_view name;
            double seconds = 0.0;
            std::size_t diagnostics = 0;
        };
        using Clock = std::chrono::steady_clock;
        const auto secondsSince = [](Clock::time_point t0) {
            return std::chrono::duration<double>(Clock::now() - t0)
                .count();
        };
        const auto wallStart = Clock::now();

        CheckOptions checkOpts;
        std::vector<Diagnostic> diags;
        std::vector<FamilyTiming> famTimes;
        for (Check check : opt.checks) {
            const auto t0 = Clock::now();
            const std::size_t before = diags.size();
            const std::vector<Check> one{check};
            for (const SourceFile &src : sources) {
                try {
                    runChecks(src, one, checkOpts, explicitFiles,
                              diags);
                } catch (const std::exception &err) {
                    // Name the file that broke the tokenizer or a
                    // check; without this a fixture sweep fails
                    // anonymously.
                    throw std::runtime_error(src.display() + ": " +
                                             err.what());
                }
            }
            runProjectChecks(project, one, explicitFiles, diags);
            famTimes.push_back({checkName(check), secondsSince(t0),
                                diags.size() - before});
        }
        dedupeFamilyOverlap(diags);

        std::sort(diags.begin(), diags.end(),
                  [](const Diagnostic &a, const Diagnostic &b) {
                      if (a.file != b.file)
                          return a.file < b.file;
                      if (a.line != b.line)
                          return a.line < b.line;
                      if (a.id != b.id)
                          return a.id < b.id;
                      return a.column < b.column;
                  });

        std::string baselinePath = opt.baselinePath;
        if (baselinePath.empty() && !repoRoot.empty())
            baselinePath = (repoRoot / "tools" / "lint" /
                            "lint_baseline.txt")
                               .string();

        if (opt.writeBaseline) {
            std::ofstream out(baselinePath);
            if (!out) {
                std::cerr << "vsgpu_lint: cannot write baseline "
                          << baselinePath << "\n";
                return 2;
            }
            out << "# vsgpu_lint baseline — frozen pre-existing "
                   "debt.\n"
                   "# Regenerate with: vsgpu_lint "
                   "--write-baseline\n"
                   "# Fix the underlying finding instead of adding "
                   "entries by hand.\n";
            std::vector<std::string> fps;
            for (const Diagnostic &d : diags) {
                const auto it = std::find_if(
                    sources.begin(), sources.end(),
                    [&](const SourceFile &s) {
                        return s.display() == d.file;
                    });
                fps.push_back(fingerprint(
                    d, it == sources.end() ? std::string_view{}
                                           : it->lineText(d.line)));
            }
            std::sort(fps.begin(), fps.end());
            for (const std::string &fp : fps)
                out << fp << "\n";
            std::cout << "vsgpu_lint: wrote " << fps.size()
                      << " baseline entr"
                      << (fps.size() == 1 ? "y" : "ies") << " to "
                      << baselinePath << "\n";
            return 0;
        }

        std::vector<Diagnostic> fresh = diags;
        std::size_t baselined = 0;
        if (opt.useBaseline && !baselinePath.empty()) {
            const auto baseline = loadBaseline(baselinePath);
            fresh = subtractBaseline(diags, sources, baseline);
            baselined = diags.size() - fresh.size();
        }

        if (!opt.timingsPath.empty()) {
            std::ofstream out(opt.timingsPath);
            if (!out) {
                std::cerr << "vsgpu_lint: cannot write timings "
                          << opt.timingsPath << "\n";
                return 2;
            }
            out << std::fixed << std::setprecision(6);
            out << "{\n  \"files\": " << sources.size()
                << ",\n  \"wall_seconds\": "
                << secondsSince(wallStart)
                << ",\n  \"new_diagnostics\": " << fresh.size()
                << ",\n  \"families\": [\n";
            for (std::size_t i = 0; i < famTimes.size(); ++i) {
                const FamilyTiming &ft = famTimes[i];
                out << "    {\"check\": \"" << ft.name
                    << "\", \"seconds\": " << ft.seconds
                    << ", \"diagnostics\": " << ft.diagnostics
                    << "}" << (i + 1 < famTimes.size() ? "," : "")
                    << "\n";
            }
            out << "  ]\n}\n";
        }

        if (!opt.sarifPath.empty()) {
            std::ofstream out(opt.sarifPath);
            if (!out) {
                std::cerr << "vsgpu_lint: cannot write SARIF "
                          << opt.sarifPath << "\n";
                return 2;
            }
            writeSarif(out, fresh);
        }

        for (const Diagnostic &d : fresh)
            std::cerr << d.file << ":" << d.line << ": ["
                      << (d.id.empty() ? std::string(checkName(
                                             d.check))
                                       : d.id)
                      << "] " << d.message << "\n";

        std::cout << "vsgpu_lint: " << sources.size()
                  << " file(s), " << fresh.size()
                  << " new diagnostic(s)";
        if (baselined > 0)
            std::cout << ", " << baselined << " baselined";
        std::cout << "\n";
        return fresh.empty() ? 0 : 1;
    } catch (const std::exception &err) {
        std::cerr << "vsgpu_lint: " << err.what() << "\n";
        return 2;
    }
}
