/**
 * @file
 * Family: fp-determinism (semantic, project-wide).
 *
 * Floating-point addition is not associative, so the project's
 * jobs-1-vs-N bitwise-identity invariant (the verify layer's sweep
 * tests) holds only when every FP reduction runs in a
 * schedule-independent order.  The race-focused families cannot see
 * this class: a lock or an atomic makes an accumulation perfectly
 * race-free while leaving its *order* up to the scheduler.
 *
 *   fp-determinism.locked-reduction    an FP accumulation into
 *       shared state from inside a pool task, serialized by a lock
 *       or atomic — race-free but order-unstable: task completion
 *       order changes the sum's rounding.  Fires directly on in-body
 *       accumulations under a lock scope and on calls whose every
 *       candidate is a lock-taking accumulator (the case pool-escape
 *       deliberately skips).  Fix: accumulate into a per-index slot
 *       and reduce in index order after the join, the runSweep
 *       pattern.
 *   fp-determinism.unordered-reduction an FP accumulation inside a
 *       range-for over a container whose unordered-ness is invisible
 *       in this file (declared in another translation unit) — the
 *       token-level determinism family already flags same-file
 *       unordered iteration, so this rule only fires when only the
 *       cross-TU index can know.
 *
 * Waiver: // vsgpu-lint: fp-order-ok(<reason>).
 */

#include "concurrency_model.hh"
#include "semantic.hh"

#include <set>
#include <string>
#include <vector>

namespace vsgpu::lint
{

namespace
{

using TokenVec = std::vector<Token>;
constexpr std::string_view kWaiver = "vsgpu-lint: fp-order-ok";

void
emit(const Project &project, int fileIndex, std::size_t offset,
     const std::string &id, std::string message,
     std::vector<Diagnostic> &out)
{
    const SourceFile &src =
        project.sources()[static_cast<std::size_t>(fileIndex)];
    const int line = src.lineOf(offset);
    if (src.hasWaiver(line, kWaiver))
        return;
    out.push_back({src.display(), line, Check::FpDeterminism,
                   std::move(message), id,
                   cm::columnOf(src, offset)});
}

/** Is @p name a shared FP target (global or some class's field)? */
bool
isSharedFpName(const SymbolIndex &index, const std::string &name)
{
    if (index.fpNames.count(name))
        return true;
    for (const std::string &qualified : index.fpNames) {
        const std::size_t pos = qualified.rfind("::");
        if (pos != std::string::npos &&
            qualified.substr(pos + 2) == name)
            return true;
    }
    return false;
}

/** Serialized-but-order-dependent accumulations in pool tasks. */
void
lockedReductions(const Project &project,
                 std::vector<Diagnostic> &out)
{
    const SymbolIndex &index = project.index();
    for (std::size_t f = 0; f < project.sources().size(); ++f) {
        const TokenVec &toks = project.tokens(static_cast<int>(f));
        for (const cm::PoolLambda &lam :
             cm::findPoolLambdas(toks)) {
            const cm::NameSet params =
                lam.paramOpen < lam.paramClose
                    ? cm::paramNames(toks, lam.paramOpen,
                                     lam.paramClose)
                    : cm::NameSet{};
            const cm::NameSet aliases = cm::indexAliasNames(
                toks, lam.bodyBegin, lam.bodyEnd, params);
            const cm::NameSet locals = cm::localNames(
                toks, lam.bodyBegin, lam.bodyEnd);
            const std::vector<cm::LockScope> scopes =
                cm::lockScopes(toks, lam.bodyBegin, lam.bodyEnd);

            for (std::size_t i = lam.bodyBegin;
                 i + 1 < lam.bodyEnd; ++i) {
                if (toks[i].kind != Token::Kind::Identifier)
                    continue;
                const std::string name(toks[i].text);

                // Direct: `x += e` (and `x = x + e`) on a shared FP
                // target, serialized by a lock scope or atomicity.
                bool accum = cm::isAccumOp(toks[i + 1].text);
                if (!accum && toks[i + 1].text == "=" &&
                    i + 3 < lam.bodyEnd)
                    accum = toks[i + 2].text == toks[i].text &&
                            (toks[i + 3].text == "+" ||
                             toks[i + 3].text == "-");
                if (accum && !locals.count(name) &&
                    !params.count(name) &&
                    isSharedFpName(index, name) &&
                    !cm::indexedByParam(toks, i, i + 1, aliases)) {
                    const bool serialized =
                        cm::underAnyLock(scopes, i) ||
                        index.atomics.count(name) > 0;
                    if (serialized) {
                        emit(project, static_cast<int>(f),
                             toks[i].offset,
                             "fp-determinism.locked-reduction",
                             "FP accumulation into shared '" +
                                 name +
                                 "' from a pool task is serialized "
                                 "but not order-stable — task "
                                 "scheduling reorders the sum and "
                                 "breaks jobs-1-vs-N bitwise "
                                 "identity; accumulate into a "
                                 "per-index slot and reduce in "
                                 "index order after the join",
                             out);
                        continue;
                    }
                }

                // Through a helper: every candidate accumulates FP
                // state and serializes itself (pool-escape skips
                // lock-taking callees, so only this family sees it).
                if (i + 1 >= lam.bodyEnd ||
                    toks[i + 1].text != "(" ||
                    locals.count(name) || params.count(name))
                    continue;
                const std::vector<int> &cands =
                    project.lookup(name);
                if (cands.empty())
                    continue;
                bool all = true;
                std::string target;
                std::string via;
                for (int id : cands) {
                    const FunctionDef &callee =
                        index.functions[static_cast<std::size_t>(
                            id)];
                    bool serialized = callee.takesLock;
                    if (!serialized) {
                        serialized = !callee.fpAccumulates.empty();
                        for (const std::string &t :
                             callee.fpAccumulates)
                            if (!index.atomics.count(t))
                                serialized = false;
                    }
                    if (callee.fpAccumulates.empty() ||
                        !serialized) {
                        all = false;
                        break;
                    }
                    if (target.empty()) {
                        target = *callee.fpAccumulates.begin();
                        const auto vit =
                            callee.fpVia.find(target);
                        via = vit == callee.fpVia.end()
                                  ? "via " + name
                                  : "via " + name + " " +
                                        vit->second.substr(4);
                    }
                }
                if (!all || target.empty())
                    continue;
                emit(project, static_cast<int>(f), toks[i].offset,
                     "fp-determinism.locked-reduction",
                     "pool task calls '" + name +
                         "', which accumulates into shared FP '" +
                         target + "' (" + via +
                         ") under its own serialization — "
                         "race-free but order-unstable; the sum "
                         "depends on task scheduling and breaks "
                         "jobs-1-vs-N bitwise identity",
                     out);
            }
        }
    }
}

/** FP reductions over containers unordered in another TU. */
void
unorderedReductions(const Project &project,
                    std::vector<Diagnostic> &out)
{
    const SymbolIndex &index = project.index();
    for (const FunctionDef &fn : index.functions) {
        const TokenVec &toks = project.tokens(fn.fileIndex);

        // FP-typed locals of this body (the usual accumulators).
        std::set<std::string> fpLocals;
        for (std::size_t i = fn.bodyBegin; i + 1 < fn.bodyEnd; ++i)
            if (toks[i].kind == Token::Kind::Identifier &&
                cm::isFpTypeName(toks[i].text) &&
                toks[i + 1].kind == Token::Kind::Identifier)
                fpLocals.insert(std::string(toks[i + 1].text));

        for (std::size_t i = fn.bodyBegin; i + 1 < fn.bodyEnd;
             ++i) {
            if (toks[i].text != "for" || toks[i + 1].text != "(")
                continue;
            const std::size_t close =
                cm::skipBalanced(toks, i + 1, "(", ")");
            // Range-for: the container is the last identifier chain
            // after the ':'.
            std::size_t colon = 0;
            int depth = 0;
            for (std::size_t j = i + 2; j < close; ++j) {
                const std::string_view t = toks[j].text;
                if (t == "(" || t == "[" || t == "{" || t == "<")
                    ++depth;
                else if (t == ")" || t == "]" || t == "}" ||
                         t == ">")
                    --depth;
                else if (t == ":" && depth == 0) {
                    colon = j;
                    break;
                }
            }
            if (colon == 0)
                continue;
            std::size_t contTok = 0;
            for (std::size_t j = close; j-- > colon + 1;)
                if (toks[j].kind == Token::Kind::Identifier) {
                    contTok = j;
                    break;
                }
            if (contTok == 0)
                continue;
            const std::string cont(toks[contTok].text);
            const auto uit = index.unorderedDecl.find(cont);
            if (uit == index.unorderedDecl.end())
                continue;
            // Only when the unordered-ness is invisible here: the
            // declaration lives in another file (same-file cases
            // belong to the token-level determinism family).
            if (uit->second.fileIndex == fn.fileIndex)
                continue;
            // Loop body: any FP accumulation?
            std::size_t bodyOpen = close + 1;
            if (bodyOpen >= fn.bodyEnd)
                continue;
            // Braced body, or a single unbraced statement up to ';'.
            std::size_t bodyClose;
            if (toks[bodyOpen].text == "{") {
                bodyClose =
                    cm::skipBalanced(toks, bodyOpen, "{", "}");
            } else {
                bodyClose = bodyOpen;
                while (bodyClose < fn.bodyEnd &&
                       toks[bodyClose].text != ";")
                    ++bodyClose;
                --bodyOpen; // the loop below starts at bodyOpen + 1
            }
            for (std::size_t j = bodyOpen + 1; j + 1 < bodyClose;
                 ++j) {
                if (toks[j].kind != Token::Kind::Identifier ||
                    !cm::isAccumOp(toks[j + 1].text))
                    continue;
                const std::string acc(toks[j].text);
                if (!fpLocals.count(acc) &&
                    !isSharedFpName(index, acc))
                    continue;
                const SourceFile &declSrc =
                    project.sources()[static_cast<std::size_t>(
                        uit->second.fileIndex)];
                emit(project, fn.fileIndex, toks[j].offset,
                     "fp-determinism.unordered-reduction",
                     "FP accumulation into '" + acc +
                         "' iterating '" + cont +
                         "', an unordered container (declared at " +
                         declSrc.display() + ":" +
                         std::to_string(uit->second.line) +
                         ") — bucket order is "
                         "implementation-defined, so the sum is "
                         "not reproducible; iterate a sorted view "
                         "or switch to std::map",
                     out);
                break;
            }
            i = close;
        }
    }
}

} // namespace

void
checkFpDeterminism(const Project &project,
                   std::vector<Diagnostic> &out)
{
    lockedReductions(project, out);
    unorderedReductions(project, out);
}

} // namespace vsgpu::lint
