/**
 * @file
 * Call graph over the symbol index (semantic.hh): name-resolved call
 * edges, a depth-bounded transitive closure, and fixpoint side-effect
 * propagation so a task body's writes are visible any bounded number
 * of calls deep.
 *
 * Resolution is by unqualified name with overloads merged — every
 * function sharing the callee's name receives an edge.  That is
 * deliberately conservative in the "more edges" direction for the
 * closure, which the families use only to widen effect summaries; a
 * spurious edge can at worst surface a finding against a call path
 * that names the wrong overload, never hide one.
 */

#include "semantic.hh"

#include <algorithm>
#include <queue>

namespace vsgpu::lint
{

CallGraph
buildCallGraph(const SymbolIndex &index, int depthBound)
{
    const std::size_t n = index.functions.size();
    CallGraph graph;
    graph.callees.resize(n);
    graph.reachable.resize(n);

    for (std::size_t i = 0; i < n; ++i) {
        std::set<int> edges;
        for (const std::string &callee : index.functions[i].calls) {
            const auto it = index.byName.find(callee);
            if (it == index.byName.end())
                continue;
            for (int id : it->second)
                if (static_cast<std::size_t>(id) != i)
                    edges.insert(id);
        }
        graph.callees[i].assign(edges.begin(), edges.end());
    }

    // Bounded BFS closure: cycles terminate because each node is
    // visited once; the depth bound caps how far effects travel.
    for (std::size_t i = 0; i < n; ++i) {
        std::set<int> seen;
        std::queue<std::pair<int, int>> frontier; // (id, depth)
        for (int c : graph.callees[i])
            frontier.push({c, 1});
        while (!frontier.empty()) {
            const auto [id, depth] = frontier.front();
            frontier.pop();
            if (!seen.insert(id).second)
                continue;
            if (depth >= depthBound)
                continue;
            for (int c :
                 graph.callees[static_cast<std::size_t>(id)])
                if (!seen.count(c))
                    frontier.push({c, depth + 1});
        }
        graph.reachable[i].assign(seen.begin(), seen.end());
    }
    return graph;
}

void
propagateEffects(SymbolIndex &index, const CallGraph &graph,
                 int rounds)
{
    const std::size_t n = index.functions.size();
    for (int round = 0; round < rounds; ++round) {
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            FunctionDef &fn = index.functions[i];
            for (int calleeId : graph.callees[i]) {
                const FunctionDef &callee =
                    index.functions[static_cast<std::size_t>(
                        calleeId)];
                // Lock acquisitions propagate through EVERY callee
                // — a serialized write is still an acquisition for
                // lock-order analysis even though it stops being a
                // race.  (FP accumulations propagate below, per call
                // NAME with strict all-candidates resolution.)
                for (const std::string &m : callee.locksAcquired) {
                    if (fn.locksAcquired.insert(m).second) {
                        const auto via = callee.lockVia.find(m);
                        fn.lockVia[m] =
                            via == callee.lockVia.end()
                                ? "via " + callee.name
                                : "via " + callee.name + " " +
                                      via->second.substr(4);
                        changed = true;
                    }
                }
                for (const std::string &m : callee.annAcquires) {
                    if (fn.locksAcquired.insert(m).second) {
                        fn.lockVia[m] = "via " + callee.name;
                        changed = true;
                    }
                }
                // A lock-taking callee serializes its own writes;
                // they are not a concurrency hazard for the caller.
                if (callee.takesLock)
                    continue;
                for (const std::string &g : callee.writesGlobals) {
                    if (fn.writesGlobals.insert(g).second) {
                        const auto via = callee.effectVia.find(g);
                        fn.effectVia[g] =
                            via == callee.effectVia.end()
                                ? "via " + callee.name
                                : "via " + callee.name + " " +
                                      via->second.substr(4);
                        changed = true;
                    }
                }
                if (callee.writesFields && !fn.writesFields &&
                    !callee.className.empty() &&
                    callee.className == fn.className) {
                    fn.writesFields = true;
                    changed = true;
                }
            }
            // FP accumulations resolve strictly, per call NAME: a
            // call contributes a shared accumulator only when EVERY
            // function sharing that name accumulates it.  Name-level
            // overload merging widens the closure, but it must only
            // ever suppress — it must never manufacture a finding
            // against the overload that was not called (an integer
            // Counters::add must not inherit the FP state of
            // RunningStats::add just because both are named "add").
            for (const std::string &calleeName : fn.calls) {
                const auto cit = index.byName.find(calleeName);
                if (cit == index.byName.end())
                    continue;
                std::vector<const FunctionDef *> cands;
                for (int id : cit->second)
                    if (static_cast<std::size_t>(id) != i)
                        cands.push_back(
                            &index.functions[static_cast<std::size_t>(
                                id)]);
                if (cands.empty())
                    continue;
                for (const std::string &g :
                     cands.front()->fpAccumulates) {
                    bool allAgree = true;
                    for (std::size_t k = 1;
                         k < cands.size() && allAgree; ++k)
                        allAgree =
                            cands[k]->fpAccumulates.count(g) != 0;
                    if (!allAgree)
                        continue;
                    if (fn.fpAccumulates.insert(g).second) {
                        const auto via =
                            cands.front()->fpVia.find(g);
                        fn.fpVia[g] =
                            via == cands.front()->fpVia.end()
                                ? "via " + calleeName
                                : "via " + calleeName + " " +
                                      via->second.substr(4);
                        changed = true;
                    }
                }
            }
            // Parameter forwarding: if this function passes its own
            // parameter p as argument a of a callee that writes
            // through its parameter a, then p is written too.
            for (const FunctionDef::ArgFlow &flow : fn.forwards) {
                const auto it = index.byName.find(flow.callee);
                if (it == index.byName.end())
                    continue;
                for (int id : it->second) {
                    const FunctionDef &callee =
                        index.functions[static_cast<std::size_t>(
                            id)];
                    if (callee.takesLock)
                        continue;
                    if (callee.writesParams.count(flow.arg) &&
                        fn.writesParams.insert(flow.param).second)
                        changed = true;
                }
            }
        }
        if (!changed)
            break;
    }
}

} // namespace vsgpu::lint
