/**
 * @file
 * Call graph over the symbol index (semantic.hh): name-resolved call
 * edges, a depth-bounded transitive closure, and fixpoint side-effect
 * propagation so a task body's writes are visible any bounded number
 * of calls deep.
 *
 * Resolution is by unqualified name with overloads merged — every
 * function sharing the callee's name receives an edge.  That is
 * deliberately conservative in the "more edges" direction for the
 * closure, which the families use only to widen effect summaries; a
 * spurious edge can at worst surface a finding against a call path
 * that names the wrong overload, never hide one.
 */

#include "semantic.hh"

#include <algorithm>
#include <queue>

namespace vsgpu::lint
{

CallGraph
buildCallGraph(const SymbolIndex &index, int depthBound)
{
    const std::size_t n = index.functions.size();
    CallGraph graph;
    graph.callees.resize(n);
    graph.reachable.resize(n);

    for (std::size_t i = 0; i < n; ++i) {
        std::set<int> edges;
        for (const std::string &callee : index.functions[i].calls) {
            const auto it = index.byName.find(callee);
            if (it == index.byName.end())
                continue;
            for (int id : it->second)
                if (static_cast<std::size_t>(id) != i)
                    edges.insert(id);
        }
        graph.callees[i].assign(edges.begin(), edges.end());
    }

    // Bounded BFS closure: cycles terminate because each node is
    // visited once; the depth bound caps how far effects travel.
    for (std::size_t i = 0; i < n; ++i) {
        std::set<int> seen;
        std::queue<std::pair<int, int>> frontier; // (id, depth)
        for (int c : graph.callees[i])
            frontier.push({c, 1});
        while (!frontier.empty()) {
            const auto [id, depth] = frontier.front();
            frontier.pop();
            if (!seen.insert(id).second)
                continue;
            if (depth >= depthBound)
                continue;
            for (int c :
                 graph.callees[static_cast<std::size_t>(id)])
                if (!seen.count(c))
                    frontier.push({c, depth + 1});
        }
        graph.reachable[i].assign(seen.begin(), seen.end());
    }
    return graph;
}

void
propagateEffects(SymbolIndex &index, const CallGraph &graph,
                 int rounds)
{
    const std::size_t n = index.functions.size();
    for (int round = 0; round < rounds; ++round) {
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            FunctionDef &fn = index.functions[i];
            for (int calleeId : graph.callees[i]) {
                const FunctionDef &callee =
                    index.functions[static_cast<std::size_t>(
                        calleeId)];
                // A lock-taking callee serializes its own writes;
                // they are not a concurrency hazard for the caller.
                if (callee.takesLock)
                    continue;
                for (const std::string &g : callee.writesGlobals) {
                    if (fn.writesGlobals.insert(g).second) {
                        const auto via = callee.effectVia.find(g);
                        fn.effectVia[g] =
                            via == callee.effectVia.end()
                                ? "via " + callee.name
                                : "via " + callee.name + " " +
                                      via->second.substr(4);
                        changed = true;
                    }
                }
                if (callee.writesFields && !fn.writesFields &&
                    !callee.className.empty() &&
                    callee.className == fn.className) {
                    fn.writesFields = true;
                    changed = true;
                }
            }
            // Parameter forwarding: if this function passes its own
            // parameter p as argument a of a callee that writes
            // through its parameter a, then p is written too.
            for (const FunctionDef::ArgFlow &flow : fn.forwards) {
                const auto it = index.byName.find(flow.callee);
                if (it == index.byName.end())
                    continue;
                for (int id : it->second) {
                    const FunctionDef &callee =
                        index.functions[static_cast<std::size_t>(
                            id)];
                    if (callee.takesLock)
                        continue;
                    if (callee.writesParams.count(flow.arg) &&
                        fn.writesParams.insert(flow.param).second)
                        changed = true;
                }
            }
        }
        if (!changed)
            break;
    }
}

} // namespace vsgpu::lint
