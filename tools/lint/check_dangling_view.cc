/**
 * @file
 * Family: dangling-view (semantic, project-wide).
 *
 * A view (string_view, span, reference, pointer, iterator) borrows
 * storage it does not own; it is safe exactly while its referent's
 * region outlives every region the view escapes to — the outlives
 * lattice of lifetime_model.hh.  Three ways to break that:
 *
 *   dangling-view.return-local    a function returning by reference
 *       or returning a view type hands back storage from its own
 *       frame: `return localBuf;` from a `std::string_view f()`.
 *       By-value parameters count — they live in the callee frame.
 *   dangling-view.bind-temporary  a view variable bound to an
 *       owning value a call returns by value: the temporary dies at
 *       the end of the full-expression and the view dangles on the
 *       next line (`std::string_view v = makeName();`).  Reference
 *       declarations are exempt — lifetime extension keeps the
 *       temporary alive.
 *   dangling-view.escape-local    the address or a view of a local
 *       stored into Field/Global/Param-region storage that outlives
 *       the frame: a bare `&local` assigned to a member, pushed
 *       into a long-lived registry container (the StatsGroup /
 *       Tracer shape), or passed to a callee whose parameter the
 *       lifetime model knows escapes ("via helper" provenance).
 *
 * Suppress-only discipline: a name the region model cannot place, a
 * pointer/view local with no tracked referent, or a call with an
 * unresolvable candidate never flags.
 *
 * Waiver: // vsgpu-lint: view-ok(<reason>).
 */

#include "concurrency_model.hh"
#include "dataflow.hh"
#include "lifetime_model.hh"
#include "semantic.hh"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace vsgpu::lint
{

namespace
{

using TokenVec = std::vector<Token>;
constexpr std::string_view kWaiver = "vsgpu-lint: view-ok";

void
emit(const Project &project, int fileIndex, std::size_t offset,
     const std::string &id, std::string message,
     std::vector<Diagnostic> &out)
{
    const SourceFile &src =
        project.sources()[static_cast<std::size_t>(fileIndex)];
    const int line = src.lineOf(offset);
    if (src.hasWaiver(line, kWaiver))
        return;
    out.push_back({src.display(), line, Check::DanglingView,
                   std::move(message), id,
                   cm::columnOf(src, offset)});
}

/** What a function body knows about its declared locals. */
struct LocalFacts
{
    std::map<std::string, std::string> declType;
    std::set<std::string> refs;  ///< declared `T &name`
    std::set<std::string> ptrs;  ///< declared `T *name`
    std::set<std::string> views; ///< declType is a view type
    /** view/pointer local -> the Local-region name it borrows. */
    std::map<std::string, std::string> viewOf;
};

/** Token index of @p name inside [begin, end), or end. */
std::size_t
findName(const TokenVec &toks, std::size_t begin, std::size_t end,
         const std::string &name)
{
    for (std::size_t i = begin; i < end; ++i)
        if (toks[i].kind == Token::Kind::Identifier &&
            toks[i].text == name)
            return i;
    return end;
}

LocalFacts
collectLocalFacts(const Project &project, const FunctionDef &fn,
                  const TokenVec &toks,
                  const std::vector<const df::Stmt *> &stmts,
                  const std::set<std::string> &locals)
{
    LocalFacts facts;
    for (const ParamInfo &p : fn.params)
        if (!p.name.empty())
            facts.declType[p.name] = p.type;
    for (const df::Stmt *stmt : stmts) {
        if (!stmt->declares || stmt->defs.empty())
            continue;
        const std::string &name = stmt->defs.front();
        facts.declType[name] = stmt->declType;
        if (lm::isViewTypeName(stmt->declType))
            facts.views.insert(name);
        const std::size_t at =
            findName(toks, stmt->tokBegin, stmt->tokEnd, name);
        if (at != stmt->tokEnd && at > stmt->tokBegin) {
            const std::string_view prev = toks[at - 1].text;
            if (prev == "&" || prev == "&&")
                facts.refs.insert(name);
            else if (prev == "*")
                facts.ptrs.insert(name);
        }
        // A view/pointer bound to exactly one call-free Local
        // source is a tracked borrow; anything structured stays
        // Unknown (and never flags).
        const bool viewish = facts.views.count(name) ||
                             facts.ptrs.count(name);
        if (viewish && stmt->calls.empty() &&
            stmt->uses.size() == 1) {
            const std::string &src = stmt->uses.front();
            if (src != name &&
                lm::regionOf(project.index(), fn, locals, src) ==
                    lm::Region::Local &&
                !facts.ptrs.count(src) && !facts.refs.count(src) &&
                !facts.views.count(src))
                facts.viewOf[name] = src;
        }
    }
    return facts;
}

/** First variable root a return statement hands back, "" if the
 *  returned expression is a call or literal.  @p derefed is set
 *  when the root is dereferenced (`*p`, `it->second`) — the
 *  returned storage then lives wherever the pointee does, not in
 *  the root itself. */
std::string
returnedRoot(const TokenVec &toks, const df::Stmt &stmt,
             bool &derefed)
{
    derefed = false;
    std::size_t i = stmt.tokBegin;
    while (i < stmt.tokEnd && toks[i].text != "return")
        ++i;
    for (++i; i < stmt.tokEnd; ++i) {
        const Token &tok = toks[i];
        if (tok.text == "*") {
            derefed = true;
            continue;
        }
        if (tok.text == "(" || tok.text == "&")
            continue;
        if (tok.kind != Token::Kind::Identifier)
            return "";
        // Skip namespace qualifiers (std::..., detail::...).
        if (i + 1 < stmt.tokEnd && toks[i + 1].text == "::") {
            ++i;
            continue;
        }
        if (i + 1 < stmt.tokEnd && toks[i + 1].text == "(")
            return ""; // a call, not a variable
        if (i + 1 < stmt.tokEnd && toks[i + 1].text == "->")
            derefed = true;
        // `return it == m.end() ? a : b;` — the first identifier
        // is an operand of a comparison/ternary, not the returned
        // storage; the cheap extraction cannot tell which branch
        // wins, so stay silent (suppress-only discipline).
        if (i + 1 < stmt.tokEnd) {
            const std::string_view next = toks[i + 1].text;
            if (next == "==" || next == "!=" || next == "<" ||
                next == ">" || next == "<=" || next == ">=" ||
                next == "?" || next == "&&" || next == "||")
                return "";
        }
        return std::string(tok.text);
    }
    return "";
}

void
checkReturnLocal(const Project &project, const FunctionDef &fn,
                 int fnId, const TokenVec &toks,
                 const std::vector<const df::Stmt *> &stmts,
                 const std::set<std::string> &locals,
                 const LocalFacts &facts,
                 std::vector<Diagnostic> &out)
{
    const lm::ReturnInfo &ret = project.lifetime().of(fnId).ret;
    if (!ret.byRef && !ret.isView)
        return;
    for (const df::Stmt *stmt : stmts) {
        if (!stmt->isReturn)
            continue;
        bool derefed = false;
        const std::string root =
            returnedRoot(toks, *stmt, derefed);
        if (root.empty() || facts.refs.count(root))
            continue;
        if (lm::regionOf(project.index(), fn, locals, root) !=
            lm::Region::Local)
            continue;
        // A pointer/view local — or a dereferenced root (`*p`,
        // `it->second`: an iterator designates container storage,
        // not its own frame slot) — only dangles when we know what
        // it borrows; an untracked one may alias long-lived
        // storage.
        std::string borrowed;
        if (derefed || facts.ptrs.count(root) ||
            facts.views.count(root) ||
            project.index().pointerNames.count(root)) {
            const auto it = facts.viewOf.find(root);
            if (it == facts.viewOf.end())
                continue;
            borrowed = it->second;
        }
        std::string what =
            ret.isView ? "a view" : "a reference";
        std::string msg =
            "function returns " + what + " into local '" +
            (borrowed.empty() ? root : borrowed) +
            "', whose storage dies with this frame";
        if (!borrowed.empty())
            msg += " (borrowed through '" + root + "')";
        msg += " — the caller receives a dangling " +
               std::string(ret.isView ? "view" : "reference") +
               "; return by value or take the storage from the "
               "caller";
        emit(project, fn.fileIndex, stmt->offset,
             "dangling-view.return-local", std::move(msg), out);
    }
}

void
checkBindTemporary(const Project &project, const FunctionDef &fn,
                   const std::vector<const df::Stmt *> &stmts,
                   const LocalFacts &facts,
                   std::vector<Diagnostic> &out)
{
    for (const df::Stmt *stmt : stmts) {
        std::string target;
        if (stmt->declares && !stmt->defs.empty() &&
            facts.views.count(stmt->defs.front()) &&
            !facts.refs.count(stmt->defs.front()))
            target = stmt->defs.front();
        else if (!stmt->declares && stmt->defs.size() == 1 &&
                 !stmt->defThrough &&
                 facts.views.count(stmt->defs.front()))
            target = stmt->defs.front();
        if (target.empty())
            continue;
        for (const df::CallRef &call : stmt->calls) {
            std::string producer;
            if (call.receiver.empty()) {
                const std::vector<int> &cands =
                    project.lookup(call.callee);
                if (cands.empty())
                    continue;
                bool allOwnerByValue = true;
                for (int id : cands) {
                    const lm::ReturnInfo &ret =
                        project.lifetime().of(id).ret;
                    if (!ret.isOwner || ret.byRef)
                        allOwnerByValue = false;
                }
                if (!allOwnerByValue)
                    continue;
                producer = call.callee + "()";
            } else {
                // s.substr(...) / oss.str() hand back an owning
                // temporary — but only claim so when the receiver's
                // type is a known owner.
                if (call.callee != "substr" && call.callee != "str")
                    continue;
                const auto it = facts.declType.find(call.receiver);
                if (it == facts.declType.end() ||
                    !lm::isOwnerTypeName(it->second))
                    continue;
                producer = call.receiver + "." + call.callee + "()";
            }
            emit(project, fn.fileIndex, stmt->offset,
                 "dangling-view.bind-temporary",
                 "view '" + target +
                     "' is bound to the owning temporary returned "
                     "by '" +
                     producer +
                     "' — the temporary dies at the end of this "
                     "statement and the view dangles; bind a named "
                     "owner first (or bind a const reference, which "
                     "extends the temporary's lifetime)",
                 out);
            break;
        }
    }
}

void
checkEscapeLocal(const Project &project, const FunctionDef &fn,
                 const TokenVec &toks,
                 const std::vector<const df::Stmt *> &stmts,
                 const std::set<std::string> &locals,
                 const LocalFacts &facts,
                 std::vector<Diagnostic> &out)
{
    const SymbolIndex &index = project.index();
    const int fieldRank = lm::regionRank(lm::Region::Field);
    const int localRank = lm::regionRank(lm::Region::Local);

    // The Local-region names whose address/view escaping matters:
    // tracked borrows expand to their referent for the message.
    const auto localNamed = [&](const std::string &name) {
        return lm::regionOf(index, fn, locals, name) ==
                   lm::Region::Local &&
               !facts.refs.count(name);
    };

    for (const df::Stmt *stmt : stmts) {
        // --- (a) assignment into longer-lived storage ------------
        if (!stmt->declares && !stmt->defs.empty()) {
            const std::string &target = stmt->defs.front();
            const lm::Region tr =
                lm::regionOf(index, fn, locals, target);
            if (tr != lm::Region::Unknown &&
                lm::regionRank(tr) >= fieldRank) {
                // Find the top-level '=' so only RHS mentions count.
                std::size_t eq = stmt->tokEnd;
                int depth = 0;
                for (std::size_t i = stmt->tokBegin;
                     i < stmt->tokEnd; ++i) {
                    const std::string_view t = toks[i].text;
                    if (t == "(" || t == "[" || t == "{")
                        ++depth;
                    else if (t == ")" || t == "]" || t == "}")
                        --depth;
                    else if (t == "=" && depth == 0) {
                        eq = i;
                        break;
                    }
                }
                if (eq != stmt->tokEnd) {
                    for (const std::string &name : locals) {
                        if (!localNamed(name))
                            continue;
                        if (lm::addressTakenIn(toks, eq + 1,
                                               stmt->tokEnd,
                                               name)) {
                            emit(project, fn.fileIndex,
                                 stmt->offset,
                                 "dangling-view.escape-local",
                                 "address of local '" + name +
                                     "' is stored into " +
                                     std::string(
                                         lm::regionName(tr)) +
                                     "-region '" + target +
                                     "', which outlives this "
                                     "frame — the stored pointer "
                                     "dangles on return; store a "
                                     "copy or heap-owned storage",
                                 out);
                            break;
                        }
                    }
                    // A tracked view of a local assigned whole.
                    const std::string sole = lm::soleIdentArg(
                        toks, eq + 1, stmt->tokEnd);
                    const auto vit = facts.viewOf.find(sole);
                    if (vit != facts.viewOf.end())
                        emit(project, fn.fileIndex, stmt->offset,
                             "dangling-view.escape-local",
                             "view '" + sole + "' of local '" +
                                 vit->second + "' is stored into " +
                                 std::string(lm::regionName(tr)) +
                                 "-region '" + target +
                                 "', which outlives this frame — "
                                 "the view dangles on return; "
                                 "store an owning copy",
                             out);
                }
            }
        }

        for (const df::CallRef &call : stmt->calls) {
            // --- (b) insertion into a longer-lived container -----
            if (!call.receiver.empty() &&
                lm::isInsertingMemberName(call.callee)) {
                const lm::Region rr =
                    lm::regionOf(index, fn, locals, call.receiver);
                if (rr == lm::Region::Unknown ||
                    lm::regionRank(rr) <= localRank)
                    continue;
                const std::size_t nameTok = lm::tokenAt(
                    toks, stmt->tokBegin, stmt->tokEnd,
                    call.nameOffset);
                if (nameTok + 1 >= stmt->tokEnd ||
                    toks[nameTok + 1].text != "(")
                    continue;
                for (const auto &[ab, ae] :
                     lm::argTokenRanges(toks, nameTok + 1)) {
                    const std::string sole =
                        lm::soleIdentArg(toks, ab, ae);
                    const bool addressed =
                        ae - ab == 2 && toks[ab].text == "&";
                    std::string borrowed;
                    if (addressed && localNamed(sole))
                        borrowed = sole;
                    else if (!addressed) {
                        const auto vit = facts.viewOf.find(sole);
                        if (vit != facts.viewOf.end())
                            borrowed = vit->second;
                    }
                    if (borrowed.empty())
                        continue;
                    emit(project, fn.fileIndex, stmt->offset,
                         "dangling-view.escape-local",
                         std::string(addressed ? "address of"
                                               : "view of") +
                             " local '" + borrowed +
                             "' is inserted into " +
                             std::string(lm::regionName(rr)) +
                             "-region container '" +
                             call.receiver +
                             "', which outlives this frame — the "
                             "registered entry dangles after "
                             "return; register an owning copy or "
                             "storage with matching lifetime",
                         out);
                    break;
                }
                continue;
            }

            // --- (c) callee whose parameter escapes --------------
            if (!call.receiver.empty())
                continue;
            const std::vector<int> &cands =
                project.lookup(call.callee);
            if (cands.empty())
                continue;
            const std::size_t nameTok =
                lm::tokenAt(toks, stmt->tokBegin, stmt->tokEnd,
                            call.nameOffset);
            if (nameTok + 1 >= stmt->tokEnd ||
                toks[nameTok + 1].text != "(")
                continue;
            const auto argRanges =
                lm::argTokenRanges(toks, nameTok + 1);
            for (std::size_t k = 0; k < argRanges.size(); ++k) {
                // ALL candidates must agree the parameter escapes
                // (and, for a plain argument, bind by reference).
                bool allEscape = !cands.empty();
                bool allByRef = true;
                std::string via;
                for (int id : cands) {
                    const lm::FunctionLifetime &lt =
                        project.lifetime().of(id);
                    if (!lt.escapesParams.count(
                            static_cast<int>(k))) {
                        allEscape = false;
                        break;
                    }
                    const FunctionDef &callee =
                        index.functions[static_cast<std::size_t>(
                            id)];
                    if (k >= callee.params.size() ||
                        !callee.params[k].byRef)
                        allByRef = false;
                    if (via.empty()) {
                        const auto vit = lt.escapeVia.find(
                            static_cast<int>(k));
                        via = vit == lt.escapeVia.end()
                                  ? "via " + call.callee
                                  : "via " + call.callee + " " +
                                        vit->second.substr(4);
                    }
                }
                if (!allEscape)
                    continue;
                const auto &[ab, ae] = argRanges[k];
                const std::string sole =
                    lm::soleIdentArg(toks, ab, ae);
                const bool addressed =
                    ae - ab == 2 && toks[ab].text == "&";
                std::string borrowed;
                if (addressed && localNamed(sole))
                    borrowed = sole;
                else if (!addressed && allByRef &&
                         localNamed(sole) &&
                         !facts.ptrs.count(sole))
                    borrowed = sole;
                else if (!addressed) {
                    const auto vit = facts.viewOf.find(sole);
                    if (vit != facts.viewOf.end())
                        borrowed = vit->second;
                }
                if (borrowed.empty())
                    continue;
                emit(project, fn.fileIndex, stmt->offset,
                     "dangling-view.escape-local",
                     "local '" + borrowed + "' escapes through '" +
                         call.callee +
                         "', which stores its parameter into "
                         "longer-lived storage (" +
                         via +
                         ") — the stored reference outlives this "
                         "frame and dangles; pass an owning copy "
                         "or hoist the storage",
                     out);
            }
        }
    }
}

void
analyzeFunction(const Project &project, const FunctionDef &fn,
                int fnId, std::vector<Diagnostic> &out)
{
    if (fn.bodyBegin >= fn.bodyEnd)
        return;
    const TokenVec &toks = project.tokens(fn.fileIndex);
    const df::Cfg cfg =
        df::buildCfg(toks, fn.bodyBegin, fn.bodyEnd);
    if (cfg.blocks.empty())
        return;
    const std::set<std::string> locals = lm::localsOf(toks, cfg);
    std::vector<const df::Stmt *> stmts;
    for (const df::Block &block : cfg.blocks)
        for (const df::Stmt &stmt : block.stmts)
            stmts.push_back(&stmt);

    const LocalFacts facts =
        collectLocalFacts(project, fn, toks, stmts, locals);
    checkReturnLocal(project, fn, fnId, toks, stmts, locals, facts,
                     out);
    checkBindTemporary(project, fn, stmts, facts, out);
    checkEscapeLocal(project, fn, toks, stmts, locals, facts, out);
}

} // namespace

void
checkDanglingView(const Project &project,
                  std::vector<Diagnostic> &out)
{
    const std::vector<FunctionDef> &fns =
        project.index().functions;
    for (std::size_t id = 0; id < fns.size(); ++id)
        analyzeFunction(project, fns[id], static_cast<int>(id),
                        out);
}

} // namespace vsgpu::lint
