/**
 * @file
 * SARIF 2.1.0 output for vsgpu_lint (GitHub code scanning).
 *
 * One run, one driver ("vsgpu_lint"), one rule per distinct
 * diagnostic id — the dotted semantic ids (pool-escape.global-write)
 * or the family name for the token-level families.  Locations use
 * the repo-relative display paths with uriBaseId %SRCROOT% so code
 * scanning anchors them to the checkout root.
 */

#include "lint.hh"

#include <algorithm>
#include <map>
#include <ostream>
#include <vector>

namespace vsgpu::lint
{

namespace
{

void
jsonString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf]
                   << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

std::string
ruleIdOf(const Diagnostic &diag)
{
    return diag.id.empty() ? std::string(checkName(diag.check))
                           : diag.id;
}

} // namespace

void
writeSarif(std::ostream &os, const std::vector<Diagnostic> &diags)
{
    // Deterministic output regardless of family execution order:
    // results sorted by (ruleId, file, line, column), identical
    // locations deduplicated (two scan paths reaching one finding
    // must not double-report to code scanning).
    std::vector<Diagnostic> sorted = diags;
    std::stable_sort(
        sorted.begin(), sorted.end(),
        [](const Diagnostic &a, const Diagnostic &b) {
            const std::string ra = ruleIdOf(a);
            const std::string rb = ruleIdOf(b);
            if (ra != rb)
                return ra < rb;
            if (a.file != b.file)
                return a.file < b.file;
            if (a.line != b.line)
                return a.line < b.line;
            return a.column < b.column;
        });
    sorted.erase(std::unique(sorted.begin(), sorted.end(),
                             [](const Diagnostic &a,
                                const Diagnostic &b) {
                                 return ruleIdOf(a) ==
                                            ruleIdOf(b) &&
                                        a.file == b.file &&
                                        a.line == b.line &&
                                        a.column == b.column &&
                                        a.message == b.message;
                             }),
                 sorted.end());

    // Rules: one per distinct ruleId, in sorted order.
    std::map<std::string, std::string> rules; // id -> family name
    for (const Diagnostic &diag : sorted)
        rules.emplace(ruleIdOf(diag),
                      std::string(checkName(diag.check)));

    os << "{\n"
          "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
          "  \"version\": \"2.1.0\",\n"
          "  \"runs\": [\n"
          "    {\n"
          "      \"tool\": {\n"
          "        \"driver\": {\n"
          "          \"name\": \"vsgpu_lint\",\n"
          "          \"informationUri\": "
          "\"docs/static_analysis.md\",\n"
          "          \"rules\": [\n";
    {
        bool first = true;
        for (const auto &[id, family] : rules) {
            os << (first ? "" : ",\n") << "            {\"id\": ";
            jsonString(os, id);
            os << ", \"shortDescription\": {\"text\": ";
            jsonString(os, family + " family");
            os << "}}";
            first = false;
        }
    }
    os << "\n          ]\n"
          "        }\n"
          "      },\n"
          "      \"results\": [\n";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const Diagnostic &diag = sorted[i];
        os << "        {\"ruleId\": ";
        jsonString(os, ruleIdOf(diag));
        os << ", \"level\": \"warning\", \"message\": {\"text\": ";
        jsonString(os, diag.message);
        os << "}, \"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": ";
        jsonString(os, diag.file);
        os << ", \"uriBaseId\": \"%SRCROOT%\"}, \"region\": "
              "{\"startLine\": "
           << (diag.line > 0 ? diag.line : 1);
        if (diag.column > 0)
            os << ", \"startColumn\": " << diag.column;
        os << "}}}]}";
        os << (i + 1 < sorted.size() ? ",\n" : "\n");
    }
    os << "      ]\n"
          "    }\n"
          "  ]\n"
          "}\n";
}

} // namespace vsgpu::lint
