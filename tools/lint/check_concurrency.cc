/**
 * @file
 * Family 3: pool-concurrency.
 *
 * Lambdas submitted to exec::Pool::parallelFor or the runSweep /
 * runIndexSweep templates execute concurrently.  A by-reference
 * capture that writes shared state from inside such a lambda is a
 * data race unless one of the sanctioned patterns applies:
 *
 *   per-index slot    results[i] = ...; the subscript names a lambda
 *                     parameter (the task index) so each task owns a
 *                     disjoint element — the pattern runSweep itself
 *                     uses for its ordered reduction.
 *   lock in scope     a lock_guard / scoped_lock / unique_lock /
 *                     shared_lock declared in the lambda body.
 *   atomic target     the written variable is declared std::atomic
 *                     in the same file.
 *
 * Everything else is flagged.  The check is intentionally local (one
 * file at a time): cross-TU aliasing is the AST backend's job; this
 * frontend catches the way the bug is actually written.
 *
 * Waiver: // vsgpu-lint: shared-ok(<reason>).
 */

#include "lint.hh"

#include <set>
#include <string>

namespace vsgpu::lint
{

namespace
{

using TokenVec = std::vector<Token>;
using NameSet = std::set<std::string, std::less<>>;

std::size_t
skipBalanced(const TokenVec &tokens, std::size_t open,
             std::string_view openText, std::string_view closeText)
{
    int depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (tokens[i].text == openText)
            ++depth;
        else if (tokens[i].text == closeText && --depth == 0)
            return i;
    }
    return tokens.size();
}

bool
isMutatingMember(std::string_view name)
{
    return name == "push_back" || name == "emplace_back" ||
           name == "insert" || name == "emplace" ||
           name == "clear" || name == "resize" || name == "erase" ||
           name == "pop_back" || name == "assign";
}

bool
isLockType(std::string_view name)
{
    return name == "lock_guard" || name == "scoped_lock" ||
           name == "unique_lock" || name == "shared_lock";
}

bool
isAssignOp(std::string_view text)
{
    return text == "=" || text == "+=" || text == "-=" ||
           text == "*=" || text == "/=" || text == "%=" ||
           text == "&=" || text == "|=" || text == "^=" ||
           text == "<<=" || text == ">>=";
}

/** Names declared std::atomic<...> anywhere in the file. */
NameSet
atomicNames(const TokenVec &tokens)
{
    NameSet atomics;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].text != "atomic" &&
            tokens[i].text != "atomic_flag")
            continue;
        std::size_t j = i + 1;
        if (tokens[j].text == "<") {
            int depth = 0;
            for (; j < tokens.size(); ++j) {
                if (tokens[j].text == "<")
                    ++depth;
                else if (tokens[j].text == ">")
                    --depth;
                else if (tokens[j].text == ">>")
                    depth -= 2;
                if (depth <= 0) {
                    ++j;
                    break;
                }
            }
        }
        if (j < tokens.size() &&
            tokens[j].kind == Token::Kind::Identifier)
            atomics.insert(std::string(tokens[j].text));
    }
    return atomics;
}

/**
 * Walk a lambda body [begin, end) and record identifiers that look
 * locally declared: an identifier preceded by a type-ish token
 * (identifier, '>', '&', '*') and followed by '=', ';', '{', or '('
 * in statement position.  Approximate on purpose — a false "local"
 * only suppresses a finding, never invents one.
 */
NameSet
localNames(const TokenVec &tokens, std::size_t begin,
           std::size_t end)
{
    NameSet locals;
    for (std::size_t i = begin; i < end; ++i) {
        if (tokens[i].kind != Token::Kind::Identifier || i == begin)
            continue;
        const Token &prev = tokens[i - 1];
        const bool typeBefore =
            (prev.kind == Token::Kind::Identifier &&
             prev.text != "return" && !isAssignOp(prev.text)) ||
            prev.text == ">" || prev.text == "&" || prev.text == "*";
        if (!typeBefore)
            continue;
        const std::string_view next =
            i + 1 < end ? tokens[i + 1].text : std::string_view{};
        if (next == "=" || next == ";" || next == "{" ||
            next == "(" || next == ",")
            locals.insert(std::string(tokens[i].text));
    }
    return locals;
}

/** Parameter names of a lambda: last identifier of each parameter. */
NameSet
paramNames(const TokenVec &tokens, std::size_t openParen,
           std::size_t closeParen)
{
    NameSet params;
    int depth = 0;
    std::size_t lastIdent = 0;
    bool haveIdent = false;
    for (std::size_t i = openParen; i <= closeParen &&
                                    i < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        if (tok.text == "(" || tok.text == "<" || tok.text == "[")
            ++depth;
        else if (tok.text == ")" || tok.text == ">" ||
                 tok.text == "]")
            --depth;
        if (tok.kind == Token::Kind::Identifier && depth == 1) {
            lastIdent = i;
            haveIdent = true;
        }
        const bool boundary =
            (tok.text == "," && depth == 1) ||
            (tok.text == ")" && depth == 0);
        if (boundary && haveIdent) {
            params.insert(std::string(tokens[lastIdent].text));
            haveIdent = false;
        }
    }
    return params;
}

/** Does any [subscript] in [chainBegin, writeOp) name a parameter? */
bool
indexedByParam(const TokenVec &tokens, std::size_t chainBegin,
               std::size_t writeOp, const NameSet &params)
{
    for (std::size_t i = chainBegin; i < writeOp; ++i) {
        if (tokens[i].text != "[")
            continue;
        const std::size_t close = skipBalanced(tokens, i, "[", "]");
        for (std::size_t j = i + 1; j < close; ++j)
            if (tokens[j].kind == Token::Kind::Identifier &&
                params.count(tokens[j].text) > 0)
                return true;
        i = close;
    }
    return false;
}

struct LambdaScan
{
    const SourceFile &src;
    const TokenVec &tokens;
    const NameSet &atomics;
    std::vector<Diagnostic> &out;
};

/**
 * Analyze one by-reference lambda body submitted to the pool.
 * @param captBegin/captEnd   the [...] capture list
 * @param bodyBegin/bodyEnd   the {...} body (token indices)
 */
void
analyzeLambda(LambdaScan &scan, std::size_t captBegin,
              std::size_t captEnd, std::size_t paramOpen,
              std::size_t paramClose, std::size_t bodyBegin,
              std::size_t bodyEnd)
{
    const TokenVec &tokens = scan.tokens;

    bool defaultRef = false;
    NameSet refCaptures;
    for (std::size_t i = captBegin + 1; i < captEnd; ++i) {
        if (tokens[i].text != "&")
            continue;
        if (i + 1 < captEnd &&
            tokens[i + 1].kind == Token::Kind::Identifier)
            refCaptures.insert(std::string(tokens[i + 1].text));
        else
            defaultRef = true;
    }
    if (!defaultRef && refCaptures.empty())
        return; // by-value only: nothing shared to race on

    const NameSet params =
        paramOpen < paramClose
            ? paramNames(tokens, paramOpen, paramClose)
            : NameSet{};
    const NameSet locals = localNames(tokens, bodyBegin, bodyEnd);

    bool lockHeld = false;
    for (std::size_t i = bodyBegin; i < bodyEnd; ++i)
        if (tokens[i].kind == Token::Kind::Identifier &&
            isLockType(tokens[i].text))
            lockHeld = true;
    if (lockHeld)
        return;

    auto isSharedName = [&](std::string_view name) {
        if (params.count(name) > 0 || locals.count(name) > 0 ||
            scan.atomics.count(name) > 0)
            return false;
        return defaultRef || refCaptures.count(name) > 0;
    };

    auto diagnose = [&](const Token &name, const char *what) {
        const int line = scan.src.lineOf(name.offset);
        if (scan.src.hasWaiver(line, "vsgpu-lint: shared-ok"))
            return;
        scan.out.push_back(
            {scan.src.display(), line, Check::PoolConcurrency,
             std::string(what) + " '" + std::string(name.text) +
                 "' captured by reference in a pool task without a "
                 "lock, atomic, or per-task-index slot — concurrent "
                 "tasks race; index by the task parameter, guard "
                 "with std::lock_guard, or make it atomic"});
    };

    for (std::size_t i = bodyBegin; i < bodyEnd; ++i) {
        if (tokens[i].kind != Token::Kind::Identifier)
            continue;
        const Token &root = tokens[i];
        // Follow the postfix chain: x, x.y, x->y, x[...], x(...).
        std::size_t j = i + 1;
        while (j < bodyEnd) {
            if (tokens[j].text == "." || tokens[j].text == "->") {
                j += 2;
            } else if (tokens[j].text == "[") {
                j = skipBalanced(tokens, j, "[", "]") + 1;
            } else {
                break;
            }
        }
        if (j >= bodyEnd) {
            i = j;
            continue;
        }
        const bool chained = j != i + 1;
        if (isAssignOp(tokens[j].text)) {
            // Plain write through the chain root.
            const std::string_view prevText =
                i > bodyBegin ? tokens[i - 1].text
                              : std::string_view{};
            const bool declaration =
                !chained && i > bodyBegin &&
                ((tokens[i - 1].kind == Token::Kind::Identifier &&
                  !isAssignOp(prevText)) ||
                 prevText == ">" || prevText == "&" ||
                 prevText == "*");
            if (!declaration && isSharedName(root.text) &&
                !indexedByParam(tokens, i, j, params))
                diagnose(root, "write to");
            i = j;
            continue;
        }
        if (chained && tokens[j - 1].kind == Token::Kind::Identifier &&
            isMutatingMember(tokens[j - 1].text) &&
            tokens[j].text == "(") {
            if (isSharedName(root.text) &&
                !indexedByParam(tokens, i, j, params))
                diagnose(root, "mutating call on");
            i = j;
            continue;
        }
    }
}

} // namespace

void
checkPoolConcurrency(const SourceFile &src,
                     std::vector<Diagnostic> &out)
{
    const TokenVec tokens = tokenize(src.code());
    const NameSet atomics = atomicNames(tokens);
    LambdaScan scan{src, tokens, atomics, out};

    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        if (tok.kind != Token::Kind::Identifier)
            continue;
        if (tok.text != "parallelFor" && tok.text != "runSweep" &&
            tok.text != "runIndexSweep")
            continue;
        if (tokens[i + 1].text != "(")
            continue;
        const std::size_t closeCall =
            skipBalanced(tokens, i + 1, "(", ")");

        // Find lambdas in argument position within the call.
        for (std::size_t j = i + 2; j < closeCall; ++j) {
            if (tokens[j].text != "[")
                continue;
            const std::string_view prev = tokens[j - 1].text;
            if (prev != "(" && prev != ",")
                continue; // subscript, not a lambda argument
            const std::size_t captEnd =
                skipBalanced(tokens, j, "[", "]");
            std::size_t k = captEnd + 1;
            std::size_t paramOpen = 0;
            std::size_t paramClose = 0;
            if (k < closeCall && tokens[k].text == "(") {
                paramOpen = k;
                paramClose = skipBalanced(tokens, k, "(", ")");
                k = paramClose + 1;
            }
            // Skip mutable/noexcept/-> return type up to the body.
            while (k < closeCall && tokens[k].text != "{")
                ++k;
            if (k >= closeCall)
                continue;
            const std::size_t bodyEnd =
                skipBalanced(tokens, k, "{", "}");
            analyzeLambda(scan, j, captEnd, paramOpen, paramClose,
                          k + 1, bodyEnd);
            j = bodyEnd;
        }
        i = closeCall;
    }
}

} // namespace vsgpu::lint
