/**
 * @file
 * Families 3 and 6: pool-concurrency (token-level) and pool-escape
 * (semantic).
 *
 * Lambdas submitted to exec::Pool::parallelFor or the runSweep /
 * runIndexSweep templates execute concurrently.  A capture that
 * writes shared state from inside such a lambda is a data race
 * unless one of the sanctioned patterns applies:
 *
 *   per-index slot    results[i] = ...; the subscript names a lambda
 *                     parameter (the task index) so each task owns a
 *                     disjoint element — the pattern runSweep itself
 *                     uses for its ordered reduction.
 *   lock in scope     a lock_guard / scoped_lock / unique_lock /
 *                     shared_lock declared in the lambda body.
 *   atomic target     the written variable is declared std::atomic.
 *
 * The token-level family (checkPoolConcurrency) is local to one file
 * and only looks at by-reference captures — fast, and the way the
 * bug is usually written.  The semantic family (checkPoolEscape)
 * runs over the whole project's symbol index and call graph and
 * additionally catches what the token scan provably cannot:
 *
 *   pool-escape.pointer-capture-write   a pointer captured BY VALUE
 *       whose pointee is written — the copy aliases the same object,
 *       so tasks still race (the token family bails out on by-value
 *       capture lists)
 *   pool-escape.global-write            a namespace-scope variable
 *       written directly or any bounded number of calls deep
 *       (globals need no capture at all)
 *   pool-escape.field-write             a member field written via
 *       the captured this (directly or through a same-class method)
 *   pool-escape.capture-write           a by-ref capture written in
 *       the task body (the semantic version of the token rule)
 *   pool-escape.param-alias-write       an escaped object passed to
 *       a callee that writes through that parameter
 *
 * Both families share the waiver: // vsgpu-lint: shared-ok(<reason>).
 */

#include "dataflow.hh"
#include "semantic.hh"

#include <set>
#include <string>

namespace vsgpu::lint
{

namespace
{

using TokenVec = std::vector<Token>;
using NameSet = std::set<std::string, std::less<>>;

std::size_t
skipBalanced(const TokenVec &tokens, std::size_t open,
             std::string_view openText, std::string_view closeText)
{
    int depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (tokens[i].text == openText)
            ++depth;
        else if (tokens[i].text == closeText && --depth == 0)
            return i;
    }
    return tokens.size();
}

bool
isMutatingMember(std::string_view name)
{
    return name == "push_back" || name == "emplace_back" ||
           name == "insert" || name == "emplace" ||
           name == "clear" || name == "resize" || name == "erase" ||
           name == "pop_back" || name == "assign";
}

bool
isLockType(std::string_view name)
{
    return name == "lock_guard" || name == "scoped_lock" ||
           name == "unique_lock" || name == "shared_lock";
}

bool
isAssignOp(std::string_view text)
{
    return text == "=" || text == "+=" || text == "-=" ||
           text == "*=" || text == "/=" || text == "%=" ||
           text == "&=" || text == "|=" || text == "^=" ||
           text == "<<=" || text == ">>=";
}

/** Names declared std::atomic<...> anywhere in the file. */
NameSet
atomicNames(const TokenVec &tokens)
{
    NameSet atomics;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].text != "atomic" &&
            tokens[i].text != "atomic_flag")
            continue;
        std::size_t j = i + 1;
        if (tokens[j].text == "<") {
            int depth = 0;
            for (; j < tokens.size(); ++j) {
                if (tokens[j].text == "<")
                    ++depth;
                else if (tokens[j].text == ">")
                    --depth;
                else if (tokens[j].text == ">>")
                    depth -= 2;
                if (depth <= 0) {
                    ++j;
                    break;
                }
            }
        }
        if (j < tokens.size() &&
            tokens[j].kind == Token::Kind::Identifier)
            atomics.insert(std::string(tokens[j].text));
    }
    return atomics;
}

/** Names declared const/constexpr anywhere in the file — a const
 *  object cannot be assigned, so a "write" finding against one is
 *  always a misparse (the FP class this set suppresses). */
NameSet
constDeclNames(const TokenVec &tokens)
{
    NameSet names;
    for (std::size_t i = 1; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind != Token::Kind::Identifier)
            continue;
        const std::string_view next = tokens[i + 1].text;
        if (next != "=" && next != ";" && next != "{")
            continue;
        const Token &prev = tokens[i - 1];
        const bool typeBefore =
            prev.kind == Token::Kind::Identifier || prev.text == ">" ||
            prev.text == "&" || prev.text == "*";
        if (!typeBefore)
            continue;
        // Statement window: back to the nearest ; { or }.
        bool hasConst = false;
        for (std::size_t k = i; k > 0; --k) {
            const std::string_view t = tokens[k - 1].text;
            if (t == ";" || t == "{" || t == "}")
                break;
            if (t == "const" || t == "constexpr")
                hasConst = true;
        }
        if (hasConst)
            names.insert(std::string(tokens[i].text));
    }
    return names;
}

/**
 * Walk a lambda body [begin, end) and record identifiers that look
 * locally declared: an identifier preceded by a type-ish token
 * (identifier, '>', '&', '*') and followed by '=', ';', '{', or '('
 * in statement position; the names of a structured binding
 * (auto [a, b] = ...); and trailing comma declarators
 * (double a = 0, b = 0).  Approximate on purpose — a false "local"
 * only suppresses a finding, never invents one.
 */
NameSet
localNames(const TokenVec &tokens, std::size_t begin,
           std::size_t end)
{
    NameSet locals;
    for (std::size_t i = begin; i < end; ++i) {
        // Structured binding: auto [a, b] / auto &[a, b].
        if (tokens[i].text == "[" && i > begin &&
            (tokens[i - 1].text == "auto" ||
             tokens[i - 1].text == "&")) {
            const std::size_t close =
                skipBalanced(tokens, i, "[", "]");
            for (std::size_t j = i + 1; j < close && j < end; ++j)
                if (tokens[j].kind == Token::Kind::Identifier)
                    locals.insert(std::string(tokens[j].text));
            i = close;
            continue;
        }
        if (tokens[i].kind != Token::Kind::Identifier || i == begin)
            continue;
        const Token &prev = tokens[i - 1];
        const bool typeBefore =
            (prev.kind == Token::Kind::Identifier &&
             prev.text != "return" && !isAssignOp(prev.text)) ||
            prev.text == ">" || prev.text == "&" || prev.text == "*";
        if (!typeBefore)
            continue;
        const std::string_view next =
            i + 1 < end ? tokens[i + 1].text : std::string_view{};
        if (next == "=" || next == ";" || next == "{" ||
            next == "(" || next == ",") {
            locals.insert(std::string(tokens[i].text));
            // Comma declarators: double a = 0, b = 0; — every
            // identifier right after a depth-0 ',' before the ';'
            // is part of the same declaration.
            if (next == "=") {
                int depth = 0;
                for (std::size_t j = i + 1; j < end; ++j) {
                    const std::string_view t = tokens[j].text;
                    if (t == "(" || t == "[" || t == "{")
                        ++depth;
                    else if (t == ")" || t == "]" || t == "}")
                        --depth;
                    else if (t == ";" && depth == 0)
                        break;
                    else if (t == "," && depth == 0 &&
                             j + 1 < end &&
                             tokens[j + 1].kind ==
                                 Token::Kind::Identifier)
                        locals.insert(
                            std::string(tokens[j + 1].text));
                }
            }
        }
    }
    return locals;
}

/** Parameter names of a lambda: last identifier of each parameter. */
NameSet
paramNames(const TokenVec &tokens, std::size_t openParen,
           std::size_t closeParen)
{
    NameSet params;
    int depth = 0;
    std::size_t lastIdent = 0;
    bool haveIdent = false;
    for (std::size_t i = openParen; i <= closeParen &&
                                    i < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        if (tok.text == "(" || tok.text == "<" || tok.text == "[")
            ++depth;
        else if (tok.text == ")" || tok.text == ">" ||
                 tok.text == "]")
            --depth;
        if (tok.kind == Token::Kind::Identifier && depth == 1) {
            lastIdent = i;
            haveIdent = true;
        }
        const bool boundary =
            (tok.text == "," && depth == 1) ||
            (tok.text == ")" && depth == 0);
        if (boundary && haveIdent) {
            params.insert(std::string(tokens[lastIdent].text));
            haveIdent = false;
        }
    }
    return params;
}

/**
 * Names usable as per-task-index subscripts: the task parameters
 * plus integer-typed locals initialised from them, transitively
 * (`const std::size_t k = static_cast<std::size_t>(i);`).  Two
 * passes resolve alias-of-alias chains declared in order.
 */
NameSet
indexAliasNames(const TokenVec &tokens, std::size_t bodyBegin,
                std::size_t bodyEnd, const NameSet &params)
{
    static constexpr std::string_view integerish[] = {
        "int", "long", "short", "unsigned", "size_t", "ptrdiff_t",
        "auto"};
    NameSet names = params;
    for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t i = bodyBegin; i + 1 < bodyEnd; ++i) {
            if (tokens[i].kind != Token::Kind::Identifier ||
                tokens[i + 1].text != "=")
                continue;
            // Walk the declaration type backwards; require an
            // integer-ish token so derived doubles do not become
            // index slots.
            bool integerType = false;
            bool sawType = false;
            for (std::size_t j = i; j-- > bodyBegin;) {
                const std::string_view t = tokens[j].text;
                if (t == ";" || t == "{" || t == "}" || t == ")")
                    break;
                if (tokens[j].kind == Token::Kind::Identifier) {
                    sawType = true;
                    for (std::string_view k : integerish)
                        if (t == k || (t.size() > k.size() &&
                                       t.find(k) !=
                                           std::string_view::npos))
                            integerType = true;
                } else if (t != "::" && t != "<" && t != ">" &&
                           t != "&" && t != "const") {
                    break;
                }
            }
            if (!sawType || !integerType)
                continue;
            // Initialiser up to ';' must mention a known index name.
            bool fromIndex = false;
            for (std::size_t j = i + 2;
                 j < bodyEnd && tokens[j].text != ";"; ++j)
                if (tokens[j].kind == Token::Kind::Identifier &&
                    names.count(tokens[j].text) > 0)
                    fromIndex = true;
            if (fromIndex)
                names.insert(std::string(tokens[i].text));
        }
    }
    return names;
}

/** Does any [subscript] in [chainBegin, writeOp) name a parameter? */
bool
indexedByParam(const TokenVec &tokens, std::size_t chainBegin,
               std::size_t writeOp, const NameSet &params)
{
    for (std::size_t i = chainBegin; i < writeOp; ++i) {
        if (tokens[i].text != "[")
            continue;
        const std::size_t close = skipBalanced(tokens, i, "[", "]");
        for (std::size_t j = i + 1; j < close; ++j)
            if (tokens[j].kind == Token::Kind::Identifier &&
                params.count(tokens[j].text) > 0)
                return true;
        i = close;
    }
    return false;
}

/** One lambda found in argument position of a pool submission. */
struct PoolLambda
{
    std::size_t captBegin = 0;  ///< '[' of the capture list
    std::size_t captEnd = 0;    ///< matching ']'
    std::size_t paramOpen = 0;  ///< '(' of the parameter list (or 0)
    std::size_t paramClose = 0; ///< matching ')' (or 0)
    std::size_t bodyBegin = 0;  ///< token just past the body '{'
    std::size_t bodyEnd = 0;    ///< token index of the body '}'
};

/** Find every lambda passed to parallelFor/runSweep/runIndexSweep. */
std::vector<PoolLambda>
findPoolLambdas(const TokenVec &tokens)
{
    std::vector<PoolLambda> found;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        if (tok.kind != Token::Kind::Identifier)
            continue;
        if (tok.text != "parallelFor" && tok.text != "runSweep" &&
            tok.text != "runIndexSweep")
            continue;
        if (tokens[i + 1].text != "(")
            continue;
        const std::size_t closeCall =
            skipBalanced(tokens, i + 1, "(", ")");

        for (std::size_t j = i + 2; j < closeCall; ++j) {
            if (tokens[j].text != "[")
                continue;
            const std::string_view prev = tokens[j - 1].text;
            if (prev != "(" && prev != ",")
                continue; // subscript, not a lambda argument
            PoolLambda lam;
            lam.captBegin = j;
            lam.captEnd = skipBalanced(tokens, j, "[", "]");
            std::size_t k = lam.captEnd + 1;
            if (k < closeCall && tokens[k].text == "(") {
                lam.paramOpen = k;
                lam.paramClose = skipBalanced(tokens, k, "(", ")");
                k = lam.paramClose + 1;
            }
            while (k < closeCall && tokens[k].text != "{")
                ++k;
            if (k >= closeCall)
                continue;
            lam.bodyBegin = k + 1;
            lam.bodyEnd = skipBalanced(tokens, k, "{", "}");
            found.push_back(lam);
            j = lam.bodyEnd;
        }
        i = closeCall;
    }
    return found;
}

struct LambdaScan
{
    const SourceFile &src;
    const TokenVec &tokens;
    const NameSet &atomics;
    const NameSet &consts;
    std::vector<Diagnostic> &out;
};

/** Analyze one by-reference lambda body submitted to the pool. */
void
analyzeLambda(LambdaScan &scan, const PoolLambda &lam)
{
    const TokenVec &tokens = scan.tokens;
    const std::size_t bodyBegin = lam.bodyBegin;
    const std::size_t bodyEnd = lam.bodyEnd;

    bool defaultRef = false;
    NameSet refCaptures;
    for (std::size_t i = lam.captBegin + 1; i < lam.captEnd; ++i) {
        if (tokens[i].text != "&")
            continue;
        if (i + 1 < lam.captEnd &&
            tokens[i + 1].kind == Token::Kind::Identifier)
            refCaptures.insert(std::string(tokens[i + 1].text));
        else
            defaultRef = true;
    }
    if (!defaultRef && refCaptures.empty())
        return; // by-value only: the semantic family's territory

    const NameSet taskParams =
        lam.paramOpen < lam.paramClose
            ? paramNames(tokens, lam.paramOpen, lam.paramClose)
            : NameSet{};
    const NameSet params =
        indexAliasNames(tokens, bodyBegin, bodyEnd, taskParams);
    const NameSet locals = localNames(tokens, bodyBegin, bodyEnd);

    bool lockHeld = false;
    for (std::size_t i = bodyBegin; i < bodyEnd; ++i)
        if (tokens[i].kind == Token::Kind::Identifier &&
            isLockType(tokens[i].text))
            lockHeld = true;
    if (lockHeld)
        return;

    auto isSharedName = [&](std::string_view name) {
        if (params.count(name) > 0 || locals.count(name) > 0 ||
            scan.atomics.count(name) > 0 ||
            scan.consts.count(name) > 0)
            return false;
        return defaultRef || refCaptures.count(name) > 0;
    };

    auto diagnose = [&](const Token &name, const char *what) {
        const int line = scan.src.lineOf(name.offset);
        if (scan.src.hasWaiver(line, "vsgpu-lint: shared-ok"))
            return;
        scan.out.push_back(
            {scan.src.display(), line, Check::PoolConcurrency,
             std::string(what) + " '" + std::string(name.text) +
                 "' captured by reference in a pool task without a "
                 "lock, atomic, or per-task-index slot — concurrent "
                 "tasks race; index by the task parameter, guard "
                 "with std::lock_guard, or make it atomic",
             ""});
    };

    for (std::size_t i = bodyBegin; i < bodyEnd; ++i) {
        if (tokens[i].kind != Token::Kind::Identifier)
            continue;
        const Token &root = tokens[i];
        // `auto [lo, hi] = f();` is a structured-binding
        // declaration, not a write through a subscript chain.
        if (root.text == "auto")
            continue;
        // Follow the postfix chain: x, x.y, x->y, x[...], x(...).
        std::size_t j = i + 1;
        while (j < bodyEnd) {
            if (tokens[j].text == "." || tokens[j].text == "->") {
                j += 2;
            } else if (tokens[j].text == "[") {
                j = skipBalanced(tokens, j, "[", "]") + 1;
            } else {
                break;
            }
        }
        if (j >= bodyEnd) {
            i = j;
            continue;
        }
        const bool chained = j != i + 1;
        if (isAssignOp(tokens[j].text)) {
            // Plain write through the chain root.
            const std::string_view prevText =
                i > bodyBegin ? tokens[i - 1].text
                              : std::string_view{};
            const bool declaration =
                !chained && i > bodyBegin &&
                ((tokens[i - 1].kind == Token::Kind::Identifier &&
                  !isAssignOp(prevText)) ||
                 prevText == ">" || prevText == "&" ||
                 prevText == "*");
            if (!declaration && isSharedName(root.text) &&
                !indexedByParam(tokens, i, j, params))
                diagnose(root, "write to");
            i = j;
            continue;
        }
        if (chained && tokens[j - 1].kind == Token::Kind::Identifier &&
            isMutatingMember(tokens[j - 1].text) &&
            tokens[j].text == "(") {
            if (isSharedName(root.text) &&
                !indexedByParam(tokens, i, j, params))
                diagnose(root, "mutating call on");
            i = j;
            continue;
        }
    }
}

} // namespace

void
checkPoolConcurrency(const SourceFile &src,
                     std::vector<Diagnostic> &out)
{
    const TokenVec tokens = tokenize(src.code());
    const NameSet atomics = atomicNames(tokens);
    const NameSet consts = constDeclNames(tokens);
    LambdaScan scan{src, tokens, atomics, consts, out};

    for (const PoolLambda &lam : findPoolLambdas(tokens))
        analyzeLambda(scan, lam);
}

// ====================================================================
// Family 6: pool-escape (semantic, project-wide)
// ====================================================================

namespace
{

/** Escape analysis of one pool task body. */
class EscapeAnalysis
{
  public:
    EscapeAnalysis(const Project &project, int fileIndex,
                   const PoolLambda &lam,
                   std::vector<Diagnostic> &out)
        : project_(project), index_(project.index()),
          fileIndex_(fileIndex),
          src_(project.sources()[static_cast<std::size_t>(
              fileIndex)]),
          tokens_(project.tokens(fileIndex)), lam_(lam), out_(out)
    {
    }

    void
    run()
    {
        parseCaptures();
        for (std::size_t i = lam_.bodyBegin; i < lam_.bodyEnd; ++i)
            if (tokens_[i].kind == Token::Kind::Identifier &&
                isLockType(tokens_[i].text))
                return; // serialized body
        params_ = lam_.paramOpen < lam_.paramClose
                      ? paramNames(tokens_, lam_.paramOpen,
                                   lam_.paramClose)
                      : NameSet{};
        indexNames_ = indexAliasNames(tokens_, lam_.bodyBegin,
                                      lam_.bodyEnd, params_);
        locals_ = localNames(tokens_, lam_.bodyBegin, lam_.bodyEnd);
        enclosingClass_ = findEnclosingClass();

        const df::Cfg cfg =
            df::buildCfg(tokens_, lam_.bodyBegin, lam_.bodyEnd);
        for (const df::Block &block : cfg.blocks)
            for (const df::Stmt &stmt : block.stmts) {
                if (stmt.declares)
                    locals_.insert(stmt.defs.begin(),
                                   stmt.defs.end());
            }
        for (const df::Block &block : cfg.blocks)
            for (const df::Stmt &stmt : block.stmts)
                visitStmt(stmt);
    }

  private:
    enum class Kind
    {
        None,
        Capture,
        PointerCapture,
        Global,
        Field,
    };

    void
    parseCaptures()
    {
        for (std::size_t i = lam_.captBegin + 1; i < lam_.captEnd;
             ++i) {
            const std::string_view t = tokens_[i].text;
            if (t == "&") {
                if (i + 1 < lam_.captEnd &&
                    tokens_[i + 1].kind == Token::Kind::Identifier) {
                    refCaptures_.insert(
                        std::string(tokens_[i + 1].text));
                    ++i;
                } else {
                    defaultRef_ = true;
                }
                continue;
            }
            if (t == "=") {
                defaultCopy_ = true;
                continue;
            }
            if (t == "this") {
                capturesThis_ = true;
                continue;
            }
            if (tokens_[i].kind == Token::Kind::Identifier) {
                valueCaptures_.insert(std::string(t));
                // Init capture [p = expr]: skip the initializer.
                if (i + 1 < lam_.captEnd &&
                    tokens_[i + 1].text == "=") {
                    int depth = 0;
                    for (++i; i < lam_.captEnd; ++i) {
                        const std::string_view s = tokens_[i].text;
                        if (s == "(" || s == "[" || s == "{")
                            ++depth;
                        else if (s == ")" || s == "]" || s == "}")
                            --depth;
                        else if (s == "," && depth == 0)
                            break;
                    }
                }
            }
        }
        if (defaultRef_ || defaultCopy_)
            capturesThis_ = true; // [&]/[=] capture this implicitly
    }

    std::string
    findEnclosingClass() const
    {
        std::string cls;
        std::size_t best = 0;
        for (const FunctionDef &fn : index_.functions) {
            if (fn.fileIndex != fileIndex_)
                continue;
            if (fn.bodyBegin <= lam_.captBegin &&
                lam_.captBegin < fn.bodyEnd &&
                fn.bodyBegin >= best) {
                best = fn.bodyBegin;
                cls = fn.className;
            }
        }
        return cls;
    }

    bool
    isEnclosingField(const std::string &name) const
    {
        if (enclosingClass_.empty())
            return false;
        const auto it = index_.classFields.find(enclosingClass_);
        return it != index_.classFields.end() &&
               it->second.count(name) > 0;
    }

    /** Classify a write to @p name (through = indirect write). */
    Kind
    classify(const std::string &name, bool through) const
    {
        if (name == "this")
            return capturesThis_ ? Kind::Field : Kind::None;
        if (params_.count(name) || locals_.count(name) ||
            index_.atomics.count(name) ||
            index_.constNames.count(name))
            return Kind::None;
        if (capturesThis_ && isEnclosingField(name))
            return Kind::Field;
        if (index_.globals.count(name))
            return Kind::Global;
        if (refCaptures_.count(name))
            return Kind::Capture;
        if ((valueCaptures_.count(name) || defaultCopy_) &&
            index_.pointerNames.count(name) && through)
            return Kind::PointerCapture;
        if (defaultRef_)
            return Kind::Capture;
        return Kind::None;
    }

    void
    diagnose(std::size_t offset, const std::string &id,
             std::string message)
    {
        const int line = src_.lineOf(offset);
        if (src_.hasWaiver(line, "vsgpu-lint: shared-ok"))
            return;
        const std::string key =
            id + ":" + std::to_string(line) + ":" + message;
        if (!seen_.insert(key).second)
            return;
        out_.push_back({src_.display(), line, Check::PoolEscape,
                        std::move(message), id});
    }

    void
    diagnoseWrite(Kind kind, const std::string &name,
                  std::size_t offset, const std::string &how)
    {
        switch (kind) {
          case Kind::None:
            return;
          case Kind::Capture:
            diagnose(offset, "pool-escape.capture-write",
                     "pool task " + how + " captured '" + name +
                         "' shared across concurrent tasks — index "
                         "by the task parameter, guard with a lock, "
                         "or make it atomic");
            return;
          case Kind::PointerCapture:
            diagnose(offset, "pool-escape.pointer-capture-write",
                     "pool task " + how + " the pointee of '" +
                         name +
                         "' captured by value — the copied pointer "
                         "aliases the same object, so concurrent "
                         "tasks still race on it");
            return;
          case Kind::Global:
            diagnose(offset, "pool-escape.global-write",
                     "pool task " + how + " global '" + name +
                         "' — globals are shared across every "
                         "concurrent task without any capture");
            return;
          case Kind::Field:
            diagnose(offset, "pool-escape.field-write",
                     "pool task " + how + " member field '" + name +
                         "' through the captured this — fields are "
                         "shared across concurrent tasks");
            return;
        }
    }

    void
    visitStmt(const df::Stmt &stmt)
    {
        // Per-index slot: a subscript naming a task parameter (or
        // an integer local derived from one) on the WRITTEN lvalue
        // suppresses the write (the runSweep pattern).  Only the
        // left-hand side counts — `*ptr += samples[i]` still races
        // on the pointee even though the read is indexed.
        std::size_t lhsEnd = stmt.tokEnd;
        {
            int depth = 0;
            for (std::size_t i = stmt.tokBegin; i < stmt.tokEnd;
                 ++i) {
                const std::string_view t = tokens_[i].text;
                if (t == "(" || t == "[" || t == "{")
                    ++depth;
                else if (t == ")" || t == "]" || t == "}")
                    --depth;
                else if (depth == 0 && isAssignOp(t)) {
                    lhsEnd = i;
                    break;
                }
            }
        }
        const bool perIndex = indexedByParam(
            tokens_, stmt.tokBegin, lhsEnd, indexNames_);

        if (!stmt.declares && !perIndex)
            for (const std::string &def : stmt.defs)
                diagnoseWrite(classify(def, stmt.defThrough), def,
                              stmt.offset, "writes");

        for (const df::CallRef &call : stmt.calls) {
            // For a mutating member call the "lvalue" is the
            // receiver chain, which ends at the callee name.
            std::size_t callTok = stmt.tokEnd;
            for (std::size_t i = stmt.tokBegin; i < stmt.tokEnd;
                 ++i)
                if (tokens_[i].offset == call.nameOffset) {
                    callTok = i;
                    break;
                }
            const bool perIndexCall = indexedByParam(
                tokens_, stmt.tokBegin, callTok, indexNames_);
            if (!call.receiver.empty() &&
                isMutatingMember(call.callee) && !perIndexCall) {
                diagnoseWrite(classify(call.receiver, true),
                              call.receiver, call.nameOffset,
                              "mutates");
                continue;
            }
            if (locals_.count(call.callee) ||
                params_.count(call.callee))
                continue;
            visitCall(call);
        }
    }

    /** Transitive effects through the call graph. */
    void
    visitCall(const df::CallRef &call)
    {
        for (int id : project_.lookup(call.callee)) {
            const FunctionDef &callee =
                index_.functions[static_cast<std::size_t>(id)];
            if (callee.takesLock)
                continue;
            for (const std::string &g : callee.writesGlobals) {
                if (index_.atomics.count(g))
                    continue;
                const auto via = callee.effectVia.find(g);
                diagnose(call.nameOffset,
                         "pool-escape.global-write",
                         "pool task calls '" + callee.name +
                             "' which writes shared global '" + g +
                             "'" +
                             (via == callee.effectVia.end()
                                  ? std::string{}
                                  : " (" + via->second + ")") +
                             " — concurrent tasks race on it");
            }
            for (int p : callee.writesParams) {
                if (static_cast<std::size_t>(p) >=
                    call.args.size())
                    continue;
                for (const std::string &root :
                     call.args[static_cast<std::size_t>(p)]) {
                    if (classify(root, true) == Kind::None)
                        continue;
                    diagnose(
                        call.nameOffset,
                        "pool-escape.param-alias-write",
                        "pool task passes shared '" + root +
                            "' to '" + callee.name +
                            "', which writes through that "
                            "parameter — concurrent tasks race on "
                            "the shared object");
                }
            }
            if (!call.receiver.empty() && callee.writesFields &&
                !callee.className.empty() &&
                classify(call.receiver, true) != Kind::None) {
                diagnose(call.nameOffset,
                         "pool-escape.field-write",
                         "pool task calls '" + call.receiver + "." +
                             callee.name +
                             "()', which mutates the shared "
                             "object's fields — concurrent tasks "
                             "race on it");
            }
        }
    }

    const Project &project_;
    const SymbolIndex &index_;
    int fileIndex_;
    const SourceFile &src_;
    const TokenVec &tokens_;
    PoolLambda lam_;
    std::vector<Diagnostic> &out_;

    bool defaultRef_ = false;
    bool defaultCopy_ = false;
    bool capturesThis_ = false;
    NameSet refCaptures_;
    NameSet valueCaptures_;
    NameSet params_;
    NameSet indexNames_;
    NameSet locals_;
    std::string enclosingClass_;
    std::set<std::string> seen_;
};

} // namespace

void
checkPoolEscape(const Project &project, std::vector<Diagnostic> &out)
{
    for (std::size_t f = 0; f < project.sources().size(); ++f) {
        const TokenVec &tokens =
            project.tokens(static_cast<int>(f));
        for (const PoolLambda &lam : findPoolLambdas(tokens)) {
            EscapeAnalysis analysis(project, static_cast<int>(f),
                                    lam, out);
            analysis.run();
        }
    }
}

} // namespace vsgpu::lint
